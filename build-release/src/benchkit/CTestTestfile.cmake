# CMake generated Testfile for 
# Source directory: /root/repo/src/benchkit
# Build directory: /root/repo/build-release/src/benchkit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
