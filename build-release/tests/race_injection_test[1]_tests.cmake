add_test([=[RaceInjectionTest.RequiresTestPoints]=]  /root/repo/build-release/tests/race_injection_test [==[--gtest_filter=RaceInjectionTest.RequiresTestPoints]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[RaceInjectionTest.RequiresTestPoints]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-release/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS concurrency)
set(  race_injection_test_TESTS RaceInjectionTest.RequiresTestPoints)
