// A memcached-text-protocol subset codec — the interface the paper's base
// system (MemC3, a memcached fork) speaks. Incremental: feed bytes as they
// arrive; complete requests are consumed, partial ones wait for more input.
//
// Supported commands:
//   get <key> [<key>...]\r\n                        (multi-key: one VALUE block
//   gets <key> [<key>...]\r\n                        per hit, single END)
//   set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//   cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
//   delete <key>\r\n
//   touch <key> <exptime>\r\n
//   stats [detail|slowlog]\r\n                      (detail adds latency
//                                                    percentiles; slowlog dumps
//                                                    the slow-op ring buffer)
//   bgsave\r\n                                      (OK / BUSY; durability ext.)
//   replicate <next_lsn>\r\n                        (upgrades the connection into
//                                                    a WAL-streaming replication
//                                                    channel; see docs/replication.md)
//   replicaof none\r\n                              (promote a replica to primary;
//                                                    "replicaof <host> <port>" is
//                                                    parsed but runtime re-pointing
//                                                    may be rejected by the server)
// Responses follow the memcached text protocol (VALUE/END, STORED, EXISTS,
// DELETED, NOT_FOUND, TOUCHED, ERROR). exptime follows memcached semantics:
// 0 = never expires, values up to 30 days are a relative TTL in seconds,
// larger values are an absolute UNIX timestamp. Expiry is evaluated lazily
// on access.
#ifndef SRC_KVSERVER_PROTOCOL_H_
#define SRC_KVSERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cuckoo {

enum class RequestType : std::uint8_t {
  kGet,
  kGets,   // get + cas id in the VALUE line
  kSet,
  kCas,    // compare-and-swap on the cas id
  kDelete,
  kTouch,  // update expiry only
  kStats,
  kBgsave,     // trigger an online snapshot (replies OK or BUSY)
  kReplicate,  // upgrade this connection into a WAL-streaming channel
  kReplicaof,  // replication control ("replicaof none" promotes a replica)
};

struct Request {
  RequestType type;
  std::string key;                // first (or only) key
  std::vector<std::string> keys;  // get/gets only: every requested key
  std::string data;               // set/cas only
  std::uint32_t flags = 0;        // set/cas only
  std::uint32_t exptime = 0;
  std::uint64_t cas_id = 0;  // cas only
  std::string stats_arg;     // stats only: optional sub-report ("detail", ...)
  std::uint64_t repl_lsn = 0;   // replicate only: first LSN the replica wants
  std::string repl_host;        // replicaof only; empty for "none"
  std::uint16_t repl_port = 0;  // replicaof only
};

enum class ParseStatus : std::uint8_t {
  kOk,          // *out holds a complete request; input was consumed
  kNeedMore,    // partial request; feed more bytes
  kError,       // malformed line; the offending line was consumed
};

// Streaming request parser. Append input with Feed(); pull requests with
// Next() until it stops returning kOk.
class RequestParser {
 public:
  // Hard caps so a malicious stream cannot balloon the buffer.
  static constexpr std::size_t kMaxKeyLength = 250;        // memcached's limit
  static constexpr std::size_t kMaxDataLength = 1 << 20;   // 1 MiB
  static constexpr std::size_t kMaxGetKeys = 64;           // keys per multi-get
  // A rejected set/cas still announces a data block; we swallow it (so the
  // payload is not reparsed as commands) as long as it is plausibly sized.
  // Beyond this the stream is unrecoverable and the parser marks itself
  // broken so the connection can be closed.
  static constexpr std::size_t kMaxSwallowLength = 8 << 20;  // 8 MiB

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // Extract the next complete request from the buffered input.
  ParseStatus Next(Request* out);

  // Bytes currently buffered (for tests / backpressure decisions).
  std::size_t BufferedBytes() const noexcept { return buffer_.size(); }

  // Drain and return the unparsed buffered input. Connection-upgrade path:
  // bytes past a `replicate` line are replication-channel traffic (early
  // ACKs), not protocol commands, and must travel with the fd.
  std::string TakeBuffered() {
    std::string bytes;
    bytes.swap(buffer_);
    return bytes;
  }

  // True once the stream cannot be resynchronized (e.g. a rejected set
  // announced an implausibly large data block). The connection should be
  // closed; Next() keeps returning kError.
  bool Broken() const noexcept { return broken_; }

 private:
  ParseStatus ParseCommandLine(std::string_view line, Request* out);

  std::string buffer_;
  // set-command state: after the command line is parsed we wait for
  // data_needed_ + 2 bytes (payload + trailing CRLF).
  bool awaiting_data_ = false;
  // The pending data block belongs to a rejected command line: swallow it
  // without emitting a request (memcached's CLIENT_ERROR flow).
  bool discard_data_ = false;
  bool broken_ = false;
  std::size_t data_needed_ = 0;
  Request pending_;
};

// Response serializers (append to `out`).
void AppendValueResponse(std::string_view key, std::uint32_t flags, std::string_view data,
                         std::string* out);
// gets-style VALUE line including the cas id.
void AppendValueResponseWithCas(std::string_view key, std::uint32_t flags,
                                std::string_view data, std::uint64_t cas_id, std::string* out);
void AppendEnd(std::string* out);          // END\r\n   (terminates a get)
void AppendStored(std::string* out);       // STORED\r\n
void AppendNotStored(std::string* out);    // NOT_STORED\r\n
void AppendDeleted(std::string* out);      // DELETED\r\n
void AppendNotFound(std::string* out);     // NOT_FOUND\r\n
void AppendError(std::string* out);        // ERROR\r\n
void AppendExists(std::string* out);       // EXISTS\r\n (cas id mismatch)
void AppendTouched(std::string* out);      // TOUCHED\r\n
void AppendOk(std::string* out);           // OK\r\n      (bgsave started)
void AppendBusy(std::string* out);         // BUSY\r\n    (bgsave already running)
// SERVER_ERROR <message>\r\n — the request was understood but could not be
// completed (e.g. the write-ahead log is in an unrecoverable I/O-error state).
void AppendServerError(std::string_view message, std::string* out);
void AppendStat(std::string_view name, std::uint64_t value, std::string* out);

}  // namespace cuckoo

#endif  // SRC_KVSERVER_PROTOCOL_H_
