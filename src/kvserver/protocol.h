// A memcached-text-protocol subset codec — the interface the paper's base
// system (MemC3, a memcached fork) speaks. Incremental: feed bytes as they
// arrive; complete requests are consumed, partial ones wait for more input.
//
// Supported commands:
//   get <key>\r\n
//   gets <key>\r\n                                  (VALUE line carries a cas id)
//   set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//   cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
//   delete <key>\r\n
//   touch <key> <exptime>\r\n
//   stats\r\n
// Responses follow the memcached text protocol (VALUE/END, STORED, EXISTS,
// DELETED, NOT_FOUND, TOUCHED, ERROR). exptime is a relative TTL in seconds
// (0 = never expires), evaluated lazily on access.
#ifndef SRC_KVSERVER_PROTOCOL_H_
#define SRC_KVSERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cuckoo {

enum class RequestType : std::uint8_t {
  kGet,
  kGets,   // get + cas id in the VALUE line
  kSet,
  kCas,    // compare-and-swap on the cas id
  kDelete,
  kTouch,  // update expiry only
  kStats,
};

struct Request {
  RequestType type;
  std::string key;
  std::string data;         // set/cas only
  std::uint32_t flags = 0;  // set/cas only
  std::uint32_t exptime = 0;
  std::uint64_t cas_id = 0;  // cas only
};

enum class ParseStatus : std::uint8_t {
  kOk,          // *out holds a complete request; input was consumed
  kNeedMore,    // partial request; feed more bytes
  kError,       // malformed line; the offending line was consumed
};

// Streaming request parser. Append input with Feed(); pull requests with
// Next() until it stops returning kOk.
class RequestParser {
 public:
  // Hard caps so a malicious stream cannot balloon the buffer.
  static constexpr std::size_t kMaxKeyLength = 250;        // memcached's limit
  static constexpr std::size_t kMaxDataLength = 1 << 20;   // 1 MiB

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // Extract the next complete request from the buffered input.
  ParseStatus Next(Request* out);

  // Bytes currently buffered (for tests / backpressure decisions).
  std::size_t BufferedBytes() const noexcept { return buffer_.size(); }

 private:
  ParseStatus ParseCommandLine(std::string_view line, Request* out);

  std::string buffer_;
  // set-command state: after the command line is parsed we wait for
  // data_needed_ + 2 bytes (payload + trailing CRLF).
  bool awaiting_data_ = false;
  std::size_t data_needed_ = 0;
  Request pending_;
};

// Response serializers (append to `out`).
void AppendValueResponse(std::string_view key, std::uint32_t flags, std::string_view data,
                         std::string* out);
// gets-style VALUE line including the cas id.
void AppendValueResponseWithCas(std::string_view key, std::uint32_t flags,
                                std::string_view data, std::uint64_t cas_id, std::string* out);
void AppendEnd(std::string* out);          // END\r\n   (terminates a get)
void AppendStored(std::string* out);       // STORED\r\n
void AppendNotStored(std::string* out);    // NOT_STORED\r\n
void AppendDeleted(std::string* out);      // DELETED\r\n
void AppendNotFound(std::string* out);     // NOT_FOUND\r\n
void AppendError(std::string* out);        // ERROR\r\n
void AppendExists(std::string* out);       // EXISTS\r\n (cas id mismatch)
void AppendTouched(std::string* out);      // TOUCHED\r\n
void AppendStat(std::string_view name, std::uint64_t value, std::string* out);

}  // namespace cuckoo

#endif  // SRC_KVSERVER_PROTOCOL_H_
