#include "src/kvserver/protocol.h"

#include <charconv>
#include <vector>

namespace cuckoo {
namespace {

// Split a command line on single spaces (memcached tokens never embed
// spaces). Returns at most `max_tokens` tokens; extra content fails parsing.
bool Tokenize(std::string_view line, std::vector<std::string_view>* tokens,
              std::size_t max_tokens) {
  tokens->clear();
  std::size_t pos = 0;
  while (pos < line.size()) {
    std::size_t space = line.find(' ', pos);
    std::string_view token =
        space == std::string_view::npos ? line.substr(pos) : line.substr(pos, space - pos);
    if (token.empty()) {
      return false;  // double space or leading/trailing space
    }
    if (tokens->size() == max_tokens) {
      return false;
    }
    tokens->push_back(token);
    if (space == std::string_view::npos) {
      break;
    }
    pos = space + 1;
  }
  return !tokens->empty();
}

bool ParseU32(std::string_view token, std::uint32_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseSize(std::string_view token, std::size_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseU64(std::string_view token, std::uint64_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

ParseStatus RequestParser::ParseCommandLine(std::string_view line, Request* out) {
  std::vector<std::string_view> tokens;
  if (!Tokenize(line, &tokens, 1 + kMaxGetKeys)) {
    return ParseStatus::kError;
  }
  const std::string_view command = tokens[0];
  if (command == "get" || command == "gets") {
    // get <key> [<key>...]
    if (tokens.size() < 2) {
      return ParseStatus::kError;
    }
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].size() > kMaxKeyLength) {
        return ParseStatus::kError;
      }
    }
    out->type = command == "get" ? RequestType::kGet : RequestType::kGets;
    out->keys.clear();
    out->keys.reserve(tokens.size() - 1);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      out->keys.emplace_back(tokens[i]);
    }
    out->key = out->keys.front();
    return ParseStatus::kOk;
  }
  if (command == "touch") {
    // touch <key> <exptime>
    if (tokens.size() != 3 || tokens[1].size() > kMaxKeyLength ||
        !ParseU32(tokens[2], &out->exptime)) {
      return ParseStatus::kError;
    }
    out->type = RequestType::kTouch;
    out->key.assign(tokens[1]);
    return ParseStatus::kOk;
  }
  if (command == "delete") {
    if (tokens.size() != 2 || tokens[1].size() > kMaxKeyLength) {
      return ParseStatus::kError;
    }
    out->type = RequestType::kDelete;
    out->key.assign(tokens[1]);
    return ParseStatus::kOk;
  }
  if (command == "stats") {
    // stats [<arg>] — the optional argument selects a sub-report ("detail",
    // "slowlog"); it is carried verbatim and validated by the service.
    if (tokens.size() > 2) {
      return ParseStatus::kError;
    }
    out->type = RequestType::kStats;
    out->key.clear();
    out->stats_arg.clear();
    if (tokens.size() == 2) {
      out->stats_arg.assign(tokens[1]);
    }
    return ParseStatus::kOk;
  }
  if (command == "bgsave") {
    if (tokens.size() != 1) {
      return ParseStatus::kError;
    }
    out->type = RequestType::kBgsave;
    out->key.clear();
    return ParseStatus::kOk;
  }
  if (command == "replicate") {
    // replicate <next_lsn> — first LSN the replica still needs (>= 1).
    if (tokens.size() != 2 || !ParseU64(tokens[1], &out->repl_lsn) || out->repl_lsn == 0) {
      return ParseStatus::kError;
    }
    out->type = RequestType::kReplicate;
    out->key.clear();
    return ParseStatus::kOk;
  }
  if (command == "replicaof") {
    // replicaof none | replicaof <host> <port>
    out->type = RequestType::kReplicaof;
    out->key.clear();
    out->repl_host.clear();
    out->repl_port = 0;
    if (tokens.size() == 2 && tokens[1] == "none") {
      return ParseStatus::kOk;
    }
    std::uint32_t port = 0;
    if (tokens.size() != 3 || tokens[1].empty() || !ParseU32(tokens[2], &port) ||
        port == 0 || port > 65535) {
      return ParseStatus::kError;
    }
    out->repl_host.assign(tokens[1]);
    out->repl_port = static_cast<std::uint16_t>(port);
    return ParseStatus::kOk;
  }
  if (command == "set" || command == "cas") {
    // set <key> <flags> <exptime> <bytes>  |  cas ... <bytes> <casid>
    const bool is_cas = command == "cas";
    const std::size_t expected_tokens = is_cas ? 6 : 5;
    // Parse the byte count first, independently of the other fields: even a
    // rejected command line announces a data block the client will send, and
    // those bytes must be swallowed or they get reparsed as commands and the
    // connection desyncs (memcached's CLIENT_ERROR flow).
    std::size_t bytes = 0;
    const bool bytes_ok = tokens.size() >= 5 && ParseSize(tokens[4], &bytes);
    const bool line_ok = tokens.size() == expected_tokens &&
                         tokens[1].size() <= kMaxKeyLength &&
                         ParseU32(tokens[2], &pending_.flags) &&
                         ParseU32(tokens[3], &pending_.exptime) && bytes_ok &&
                         bytes <= kMaxDataLength &&
                         (!is_cas || ParseU64(tokens[5], &pending_.cas_id));
    if (!line_ok) {
      if (bytes_ok) {
        if (bytes <= kMaxSwallowLength) {
          awaiting_data_ = true;
          discard_data_ = true;
          data_needed_ = bytes;
        } else {
          // The announced block is too large to buffer-and-discard; the
          // stream cannot be resynchronized. Flag the connection for close.
          broken_ = true;
          buffer_.clear();
        }
      }
      return ParseStatus::kError;
    }
    pending_.type = is_cas ? RequestType::kCas : RequestType::kSet;
    pending_.key.assign(tokens[1]);
    awaiting_data_ = true;
    data_needed_ = bytes;
    return ParseStatus::kNeedMore;  // caller loops; data handled in Next()
  }
  return ParseStatus::kError;
}

ParseStatus RequestParser::Next(Request* out) {
  for (;;) {
    if (broken_) {
      return ParseStatus::kError;
    }
    if (awaiting_data_) {
      if (buffer_.size() < data_needed_ + 2) {
        return ParseStatus::kNeedMore;
      }
      if (discard_data_) {
        // Data block of a rejected command: swallow payload + CRLF silently
        // and resume parsing at the next command line.
        buffer_.erase(0, data_needed_ + 2);
        awaiting_data_ = false;
        discard_data_ = false;
        continue;
      }
      if (buffer_[data_needed_] != '\r' || buffer_[data_needed_ + 1] != '\n') {
        // Data block not terminated properly: drop through the bad bytes.
        buffer_.erase(0, data_needed_ + 2);
        awaiting_data_ = false;
        return ParseStatus::kError;
      }
      pending_.data.assign(buffer_, 0, data_needed_);
      buffer_.erase(0, data_needed_ + 2);
      awaiting_data_ = false;
      *out = std::move(pending_);
      pending_ = Request{};
      return ParseStatus::kOk;
    }

    std::size_t eol = buffer_.find("\r\n");
    if (eol == std::string::npos) {
      // No complete line. Reject pathological unterminated lines early.
      // The longest legitimate line is a full multi-get: "gets " plus
      // kMaxGetKeys keys of kMaxKeyLength bytes each (space-separated).
      if (buffer_.size() > (kMaxKeyLength + 1) * kMaxGetKeys + 64) {
        buffer_.clear();
        return ParseStatus::kError;
      }
      return ParseStatus::kNeedMore;
    }
    std::string line = buffer_.substr(0, eol);
    buffer_.erase(0, eol + 2);
    if (line.empty()) {
      continue;  // tolerate stray blank lines
    }
    ParseStatus status = ParseCommandLine(line, out);
    if (status == ParseStatus::kOk || status == ParseStatus::kError) {
      return status;
    }
    // kNeedMore after a set command line: loop to consume the data block.
  }
}

void AppendValueResponse(std::string_view key, std::uint32_t flags, std::string_view data,
                         std::string* out) {
  out->append("VALUE ");
  out->append(key);
  out->push_back(' ');
  out->append(std::to_string(flags));
  out->push_back(' ');
  out->append(std::to_string(data.size()));
  out->append("\r\n");
  out->append(data);
  out->append("\r\n");
}

void AppendValueResponseWithCas(std::string_view key, std::uint32_t flags,
                                std::string_view data, std::uint64_t cas_id,
                                std::string* out) {
  out->append("VALUE ");
  out->append(key);
  out->push_back(' ');
  out->append(std::to_string(flags));
  out->push_back(' ');
  out->append(std::to_string(data.size()));
  out->push_back(' ');
  out->append(std::to_string(cas_id));
  out->append("\r\n");
  out->append(data);
  out->append("\r\n");
}

void AppendEnd(std::string* out) { out->append("END\r\n"); }
void AppendStored(std::string* out) { out->append("STORED\r\n"); }
void AppendNotStored(std::string* out) { out->append("NOT_STORED\r\n"); }
void AppendDeleted(std::string* out) { out->append("DELETED\r\n"); }
void AppendNotFound(std::string* out) { out->append("NOT_FOUND\r\n"); }
void AppendError(std::string* out) { out->append("ERROR\r\n"); }
void AppendExists(std::string* out) { out->append("EXISTS\r\n"); }
void AppendTouched(std::string* out) { out->append("TOUCHED\r\n"); }
void AppendOk(std::string* out) { out->append("OK\r\n"); }
void AppendBusy(std::string* out) { out->append("BUSY\r\n"); }

void AppendServerError(std::string_view message, std::string* out) {
  out->append("SERVER_ERROR ");
  out->append(message);
  out->append("\r\n");
}

void AppendStat(std::string_view name, std::uint64_t value, std::string* out) {
  out->append("STAT ");
  out->append(name);
  out->push_back(' ');
  out->append(std::to_string(value));
  out->append("\r\n");
}

}  // namespace cuckoo
