#include "src/kvserver/socket_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {
namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

bool FillUnixAddress(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

// Completion tokens posted by value-log reader threads when a parked GET's
// disk reads finish. Callbacks hold shared ownership of this queue plus the
// connection's numeric id — never a Conn* — so a connection may die while
// its read is in flight and the stale token is simply dropped. The eventfd
// write happens under the mutex, and the owning loop sets `dead` (under the
// same mutex) before the fd is closed, so a late completion can never write
// to a closed or recycled descriptor.
struct CompletionQueue {
  explicit CompletionQueue(int fd) : wake_fd(fd) {}

  void Post(std::uint64_t id) {
    MutexLock lk(mu);
    if (dead) {
      return;
    }
    ready.push_back(id);
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }

  Mutex mu;
  std::vector<std::uint64_t> ready GUARDED_BY(mu);
  bool dead GUARDED_BY(mu) = false;
  const int wake_fd;
};

}  // namespace

// One connection (or listener / wakeup sentinel) as seen by an event loop.
// Connections are owned by exactly one loop thread; no locking needed.
struct SocketServer::Conn {
  enum class Kind : std::uint8_t { kConnection, kListener, kWake };

  Conn(Kind k, int f, KvService* service) : kind(k), fd(f), driver(service->Connect()) {}

  Kind kind;
  int fd;
  std::uint64_t id = 0;  // completion-token namespace (stable for the lifetime)
  KvService::Connection driver;
  std::string out;           // accumulated, not-yet-flushed responses
  std::size_t out_off = 0;   // bytes of `out` already sent
  std::uint64_t last_active_ms = 0;
  bool paused_read = false;      // backpressure, park, or drain: EPOLLIN disabled
  bool want_write = false;       // partial flush pending: EPOLLOUT enabled
  bool close_after_flush = false;
  // Non-null while suspended on async value-log reads. The in-flight reads
  // reference only this shared DeferredGet and the loop's completion queue,
  // so closing a parked connection is always safe (no use-after-close).
  std::shared_ptr<KvService::DeferredGet> parked;
};

struct SocketServer::Loop {
  int epoll_fd = -1;
  std::unique_ptr<Conn> wake;
  std::unique_ptr<Conn> unix_listener;
  std::unique_ptr<Conn> tcp_listener;
  std::vector<Conn*> conns;
  // id -> Conn for resuming parked connections; a completion token whose id
  // is absent here raced a close and is ignored.
  std::unordered_map<std::uint64_t, Conn*> by_id;
  std::shared_ptr<CompletionQueue> completions;
  // Accepted sockets handed to this loop by another loop's accept path
  // (round-robin placement); adopted on the next wake-eventfd tick.
  Mutex pending_mu;
  std::vector<int> pending_fds GUARDED_BY(pending_mu);
  std::thread thread;
};

SocketServer::SocketServer(KvService* service, Options options)
    : service_(service), options_(std::move(options)) {
  if (options_.event_threads < 1) {
    options_.event_threads = 1;
  }
}

SocketServer::SocketServer(KvService* service, std::string path)
    : SocketServer(service, [&] {
        Options o;
        o.unix_path = std::move(path);
        return o;
      }()) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return false;
  }
  if (options_.unix_path.empty() && !options_.enable_tcp) {
    return false;
  }

  if (!options_.unix_path.empty()) {
    sockaddr_un addr;
    if (!FillUnixAddress(options_.unix_path, &addr)) {
      return false;
    }
    ::unlink(options_.unix_path.c_str());
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unix_listen_fd_ < 0 ||
        ::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(unix_listen_fd_, 256) != 0) {
      Stop();
      return false;
    }
  }
  if (options_.enable_tcp) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcp_listen_fd_ < 0) {
      Stop();
      return false;
    }
    int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(tcp_listen_fd_, 256) != 0) {
      Stop();
      return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound_tcp_port_ = ntohs(addr.sin_port);
    }
  }

  service_->AddExtraStatsHook([this](std::string* out) {
    StatsSnapshot s = Stats();
    AppendStat("server_connections_accepted", s.accepted, out);
    AppendStat("server_connections_rejected", s.rejected_over_limit, out);
    AppendStat("server_connections_idle_closed", s.closed_idle, out);
    AppendStat("server_curr_connections", s.curr_connections, out);
    AppendStat("server_bytes_read", s.bytes_read, out);
    AppendStat("server_bytes_written", s.bytes_written, out);
    AppendStat("server_backpressure_pauses", s.backpressure_pauses, out);
    AppendStat("server_parked_reads", s.parked_reads, out);
    AppendStat("server_curr_parked", s.curr_parked, out);
  });

  stopping_.store(false, std::memory_order_release);
  for (int i = 0; i < options_.event_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    int wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || wake_fd < 0) {
      if (wake_fd >= 0) {
        ::close(wake_fd);
      }
      Stop();
      return false;
    }
    loop->wake = std::make_unique<Conn>(Conn::Kind::kWake, wake_fd, service_);
    loop->completions = std::make_shared<CompletionQueue>(wake_fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = loop->wake.get();
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev);
    // Every loop registers the listeners with EPOLLEXCLUSIVE: the kernel
    // wakes one loop per incoming connection, which then owns it.
    if (unix_listen_fd_ >= 0) {
      loop->unix_listener =
          std::make_unique<Conn>(Conn::Kind::kListener, unix_listen_fd_, service_);
      ev.events = EPOLLIN | EPOLLEXCLUSIVE;
      ev.data.ptr = loop->unix_listener.get();
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, unix_listen_fd_, &ev);
    }
    if (tcp_listen_fd_ >= 0) {
      loop->tcp_listener =
          std::make_unique<Conn>(Conn::Kind::kListener, tcp_listen_fd_, service_);
      ev.events = EPOLLIN | EPOLLEXCLUSIVE;
      ev.data.ptr = loop->tcp_listener.get();
      ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, tcp_listen_fd_, &ev);
    }
    loops_.push_back(std::move(loop));
  }
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { RunLoop(raw); });
  }
  return true;
}

void SocketServer::Stop() {
  if (running_.exchange(false)) {
    stopping_.store(true, std::memory_order_release);
    for (auto& loop : loops_) {
      std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(loop->wake->fd, &one, sizeof(one));
    }
    for (auto& loop : loops_) {
      if (loop->thread.joinable()) {
        loop->thread.join();
      }
    }
  }
  for (auto& loop : loops_) {
    // Handoffs the target loop never got to adopt before it exited.
    for (int fd : loop->pending_fds) {
      ::close(fd);
      curr_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    loop->pending_fds.clear();
    if (loop->wake) {
      ::close(loop->wake->fd);
    }
    if (loop->epoll_fd >= 0) {
      ::close(loop->epoll_fd);
    }
  }
  loops_.clear();
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    unix_listen_fd_ = -1;
    ::unlink(options_.unix_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
}

SocketServer::StatsSnapshot SocketServer::Stats() const noexcept {
  StatsSnapshot s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_over_limit = rejected_over_limit_.load(std::memory_order_relaxed);
  s.closed_idle = closed_idle_.load(std::memory_order_relaxed);
  s.curr_connections = curr_connections_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.backpressure_pauses = backpressure_pauses_.load(std::memory_order_relaxed);
  s.parked_reads = parked_reads_.load(std::memory_order_relaxed);
  s.curr_parked = curr_parked_.load(std::memory_order_relaxed);
  return s;
}

void SocketServer::UpdateEvents(Loop* loop, Conn* conn) {
  epoll_event ev{};
  ev.events = (conn->paused_read ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (conn->want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.ptr = conn;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SocketServer::CloseConn(Loop* loop, Conn* conn) {
  if (conn->parked != nullptr) {
    // The in-flight disk reads keep the DeferredGet alive on their own; the
    // eventual completion token finds no conn under this id and is dropped.
    curr_parked_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop->by_id.erase(conn->id);
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  for (std::size_t i = 0; i < loop->conns.size(); ++i) {
    if (loop->conns[i] == conn) {
      loop->conns[i] = loop->conns.back();
      loop->conns.pop_back();
      break;
    }
  }
  curr_connections_.fetch_sub(1, std::memory_order_relaxed);
  delete conn;
}

int SocketServer::DetachConn(Loop* loop, Conn* conn) {
  if (conn->parked != nullptr) {
    curr_parked_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop->by_id.erase(conn->id);
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  const int fd = conn->fd;
  for (std::size_t i = 0; i < loop->conns.size(); ++i) {
    if (loop->conns[i] == conn) {
      loop->conns[i] = loop->conns.back();
      loop->conns.pop_back();
      break;
    }
  }
  curr_connections_.fetch_sub(1, std::memory_order_relaxed);
  delete conn;
  return fd;
}

// `replicate <lsn>` arrived: flush any responses to commands pipelined ahead
// of it (briefly blocking — past this point the fd speaks the replication
// framing, so interleaving is not an option), then detach the fd from the
// event loop and hand it to the replication hub.
void SocketServer::UpgradeToReplication(Loop* loop, Conn* conn) {
  const std::uint64_t start_lsn = conn->driver.upgrade_start_lsn();
  std::string leftover = conn->driver.TakeBufferedInput();
  const std::uint64_t deadline_ms = NowMs() + 1000;
  bool write_ok = true;
  while (conn->out_off < conn->out.size()) {
    ssize_t w = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_off += static_cast<std::size_t>(w);
      bytes_written_.fetch_add(static_cast<std::uint64_t>(w), std::memory_order_relaxed);
      continue;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && NowMs() < deadline_ms) {
      pollfd p{conn->fd, POLLOUT, 0};
      ::poll(&p, 1, 50);
      continue;
    }
    write_ok = false;
    break;
  }
  const int fd = DetachConn(loop, conn);
  if (!write_ok || !options_.replication_handoff) {
    ::close(fd);
    return;
  }
  options_.replication_handoff(fd, start_lsn, std::move(leftover));
}

void SocketServer::HandleAccept(Loop* loop, int listen_fd) {
  for (;;) {
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN: another loop took it, or the backlog is drained
    }
    if (curr_connections_.fetch_add(1, std::memory_order_relaxed) >=
        options_.max_connections) {
      curr_connections_.fetch_sub(1, std::memory_order_relaxed);
      rejected_over_limit_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));  // no-op on UNIX
    // Round-robin placement. EPOLLEXCLUSIVE alone skews badly: the loop that
    // wins one wakeup usually drains the whole backlog, and for a blocking
    // service path (durability's WaitDurable) connection concurrency — and
    // with it WAL group-commit depth — collapses to however many loops got
    // lucky. Spreading explicitly keeps every event thread loaded.
    Loop* target = loops_[next_loop_.fetch_add(1, std::memory_order_relaxed) %
                          loops_.size()].get();
    if (target == loop) {
      RegisterConn(loop, fd);
      continue;
    }
    {
      MutexLock lk(target->pending_mu);
      target->pending_fds.push_back(fd);
    }
    std::uint64_t tick = 1;
    [[maybe_unused]] ssize_t n = ::write(target->wake->fd, &tick, sizeof(tick));
  }
}

// Take ownership of an accepted socket on this loop's thread: wrap it in a
// Conn and register for reads. Only ever called from `loop`'s own thread.
void SocketServer::RegisterConn(Loop* loop, int fd) {
  Conn* conn = new Conn(Conn::Kind::kConnection, fd, service_);
  conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->last_active_ms = NowMs();
  loop->conns.push_back(conn);
  loop->by_id.emplace(conn->id, conn);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
}

// Adopt sockets other loops' accept paths queued for us. Runs on `loop`'s
// thread after its wake eventfd fires. During shutdown the fds are closed
// instead — the loop is about to drain and exit.
void SocketServer::AdoptPendingFds(Loop* loop) {
  std::vector<int> fds;
  {
    MutexLock lk(loop->pending_mu);
    fds.swap(loop->pending_fds);
  }
  const bool stopping = stopping_.load(std::memory_order_acquire);
  for (int fd : fds) {
    if (stopping) {
      ::close(fd);
      curr_connections_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      RegisterConn(loop, fd);
    }
  }
}

// Flush pending output. Returns false if the connection was closed (fatal
// write error, or close_after_flush and the buffer drained).
bool SocketServer::FlushOutput(Loop* loop, Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    ssize_t w = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (w > 0) {
      conn->out_off += static_cast<std::size_t>(w);
      bytes_written_.fetch_add(static_cast<std::uint64_t>(w), std::memory_order_relaxed);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (w < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(loop, conn);
    return false;
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
    if (conn->close_after_flush) {
      CloseConn(loop, conn);
      return false;
    }
    conn->want_write = false;
  } else {
    conn->want_write = true;
  }
  return true;
}

void SocketServer::HandleReadable(Loop* loop, Conn* conn) {
  char buffer[64 * 1024];
  bool peer_closed = false;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      bytes_read_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      conn->last_active_ms = NowMs();
      // Pipelining: Drive parses every complete request in the input and
      // appends all responses to conn->out for one accumulated flush below.
      // A GET that must touch the value log suspends the stream instead of
      // blocking this loop: park the connection, stop pulling input (the
      // kernel buffers it), and let other connections keep being served.
      std::shared_ptr<KvService::DeferredGet> deferred;
      const KvService::Connection::DriveStatus ds = conn->driver.Drive(
          std::string_view(buffer, static_cast<std::size_t>(n)), &conn->out, &deferred);
      if (ds == KvService::Connection::DriveStatus::kUpgradeReplication) {
        UpgradeToReplication(loop, conn);
        return;
      }
      if (deferred != nullptr) {
        ParkConn(loop, conn, std::move(deferred));
        break;
      }
      if (conn->driver.Broken() ||
          conn->driver.BufferedBytes() > options_.max_input_buffered) {
        conn->close_after_flush = true;  // protocol stream unrecoverable
        break;
      }
      if (conn->out.size() - conn->out_off > options_.max_output_buffered) {
        break;  // stop pulling more input until the peer drains responses
      }
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(loop, conn);
    return;
  }
  if (!FlushOutput(loop, conn)) {
    return;
  }
  const std::size_t pending = conn->out.size() - conn->out_off;
  if (peer_closed || conn->close_after_flush) {
    if (pending == 0) {
      CloseConn(loop, conn);
      return;
    }
    // Half-close: the peer may still be reading. Flush what we owe, then
    // close.
    conn->close_after_flush = true;
    conn->paused_read = true;
  } else if (pending > options_.max_output_buffered) {
    if (!conn->paused_read) {
      conn->paused_read = true;
      backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (conn->parked == nullptr && conn->paused_read &&
             pending <= options_.max_output_buffered / 2) {
    conn->paused_read = false;
  }
  UpdateEvents(loop, conn);
}

void SocketServer::SweepIdle(Loop* loop, std::uint64_t now_ms) {
  if (options_.idle_timeout_ms == 0) {
    return;
  }
  std::vector<Conn*> victims;
  for (Conn* conn : loop->conns) {
    if (conn->parked != nullptr) {
      continue;  // waiting on disk, not idle — immune to reaping
    }
    // last_active_ms can be fresher than now_ms (now_ms is captured before
    // the event batch; reads during the batch re-stamp the connection) — an
    // unsigned subtraction would underflow and reap an active connection.
    if (conn->last_active_ms < now_ms &&
        now_ms - conn->last_active_ms >= options_.idle_timeout_ms) {
      victims.push_back(conn);
    }
  }
  for (Conn* conn : victims) {
    closed_idle_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(loop, conn);
  }
}

void SocketServer::ParkConn(Loop* loop, Conn* conn,
                            std::shared_ptr<KvService::DeferredGet> deferred) {
  conn->parked = deferred;
  conn->paused_read = true;  // unread input waits (kernel + parser) until resume
  parked_reads_.fetch_add(1, std::memory_order_relaxed);
  curr_parked_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<CompletionQueue> cq = loop->completions;
  const std::uint64_t id = conn->id;
  service_->StartFetches(deferred, [cq, id] { cq->Post(id); });
}

void SocketServer::ProcessCompletions(Loop* loop, bool draining) {
  std::vector<std::uint64_t> ready;
  {
    MutexLock lk(loop->completions->mu);
    ready.swap(loop->completions->ready);
  }
  for (std::uint64_t id : ready) {
    auto it = loop->by_id.find(id);
    if (it == loop->by_id.end()) {
      continue;  // connection died while its read was in flight
    }
    Conn* conn = it->second;
    if (conn->parked == nullptr) {
      continue;  // stale token
    }
    std::shared_ptr<KvService::DeferredGet> done = std::move(conn->parked);
    conn->parked = nullptr;
    curr_parked_.fetch_sub(1, std::memory_order_relaxed);
    service_->FinishDeferred(*done, &conn->out);
    conn->last_active_ms = NowMs();
    if (draining || conn->close_after_flush) {
      // Shutdown (or half-close) caught this connection mid-read. The
      // response is now complete in conn->out: flush it, then close. A
      // response is never torn — either the read finished and the whole
      // payload goes out, or the drain deadline closes the socket before
      // any byte of it was written.
      conn->close_after_flush = true;
      if (FlushOutput(loop, conn)) {
        UpdateEvents(loop, conn);
      }
      continue;
    }
    // Resume the buffered request stream; pipelined GETs may suspend again
    // immediately, re-parking the connection for another disk round.
    std::shared_ptr<KvService::DeferredGet> next;
    const KvService::Connection::DriveStatus ds =
        conn->driver.Drive(std::string_view(), &conn->out, &next);
    if (ds == KvService::Connection::DriveStatus::kUpgradeReplication) {
      UpgradeToReplication(loop, conn);
      continue;
    }
    if (next != nullptr) {
      ParkConn(loop, conn, std::move(next));
    } else if (conn->driver.Broken() ||
               conn->driver.BufferedBytes() > options_.max_input_buffered) {
      conn->close_after_flush = true;
      conn->paused_read = true;
    } else {
      conn->paused_read =
          conn->out.size() - conn->out_off > options_.max_output_buffered;
    }
    if (FlushOutput(loop, conn)) {
      UpdateEvents(loop, conn);
    }
  }
}

void SocketServer::RunLoop(Loop* loop) {
  epoll_event events[64];
  bool draining = false;
  std::uint64_t drain_deadline_ms = 0;
  for (;;) {
    int timeout = -1;
    if (draining) {
      timeout = 10;
    } else if (options_.idle_timeout_ms > 0) {
      timeout = static_cast<int>(
          options_.idle_timeout_ms < 200 ? options_.idle_timeout_ms : 200);
    }
    int n = ::epoll_wait(loop->epoll_fd, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    const std::uint64_t now = NowMs();
    for (int i = 0; i < n; ++i) {
      Conn* conn = static_cast<Conn*>(events[i].data.ptr);
      switch (conn->kind) {
        case Conn::Kind::kWake: {
          std::uint64_t drained;
          [[maybe_unused]] ssize_t r = ::read(conn->fd, &drained, sizeof(drained));
          AdoptPendingFds(loop);
          ProcessCompletions(loop, draining);
          break;
        }
        case Conn::Kind::kListener:
          if (!stopping_.load(std::memory_order_acquire)) {
            HandleAccept(loop, conn->fd);
          }
          break;
        case Conn::Kind::kConnection: {
          // Guard against a connection closed earlier in this batch: epoll
          // does not deliver dangling pointers, but a single event can carry
          // IN|OUT|HUP together; handle errors first, then writes, reads.
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
            CloseConn(loop, conn);
            break;
          }
          if ((events[i].events & EPOLLOUT) != 0) {
            if (!FlushOutput(loop, conn)) {
              break;  // closed
            }
            const std::size_t pending = conn->out.size() - conn->out_off;
            if (!draining && conn->paused_read && !conn->close_after_flush &&
                conn->parked == nullptr &&
                pending <= options_.max_output_buffered / 2) {
              conn->paused_read = false;  // backpressure released
            }
            UpdateEvents(loop, conn);
          }
          if ((events[i].events & EPOLLIN) != 0 && !conn->paused_read && !draining) {
            HandleReadable(loop, conn);
          }
          break;
        }
      }
    }

    if (stopping_.load(std::memory_order_acquire) && !draining) {
      // Graceful drain: stop accepting and reading; responses already owed
      // keep flushing until done or the drain deadline passes.
      draining = true;
      drain_deadline_ms = now + options_.drain_timeout_ms;
      if (loop->unix_listener) {
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, loop->unix_listener->fd, nullptr);
      }
      if (loop->tcp_listener) {
        ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, loop->tcp_listener->fd, nullptr);
      }
      std::vector<Conn*> snapshot = loop->conns;
      for (Conn* conn : snapshot) {
        conn->paused_read = true;
        conn->close_after_flush = true;
        if (conn->parked != nullptr) {
          continue;  // its disk reads finish first; the completion flushes+closes
        }
        if (FlushOutput(loop, conn)) {
          UpdateEvents(loop, conn);  // EPOLLOUT only (or nothing if drained)
        }
      }
    }
    if (draining) {
      if (loop->conns.empty()) {
        break;
      }
      if (NowMs() >= drain_deadline_ms) {
        std::vector<Conn*> snapshot = loop->conns;
        for (Conn* conn : snapshot) {
          CloseConn(loop, conn);
        }
        break;
      }
      continue;
    }
    SweepIdle(loop, now);
  }
  // Force-close anything left (drain completed or loop errored out).
  std::vector<Conn*> snapshot = loop->conns;
  for (Conn* conn : snapshot) {
    CloseConn(loop, conn);
  }
  // Late completions must not touch the wake eventfd once Stop() closes it:
  // flip `dead` under the queue mutex before this thread is joined.
  {
    MutexLock lk(loop->completions->mu);
    loop->completions->dead = true;
  }
}

// ---- SocketClient -----------------------------------------------------------

SocketClient::SocketClient(const std::string& path) {
  sockaddr_un addr;
  if (!FillUnixAddress(path, &addr)) {
    return;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketClient::SocketClient(const std::string& host, std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return;
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool SocketClient::Send(std::string_view bytes) {
  if (fd_ < 0) {
    return false;
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t w = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

long SocketClient::Receive(std::string* buffer) {
  if (fd_ < 0) {
    return -1;
  }
  char chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n > 0) {
      buffer->append(chunk, static_cast<std::size_t>(n));
    }
    return static_cast<long>(n);
  }
}

std::string SocketClient::RoundTrip(const std::string& request, const std::string& terminator) {
  if (!Send(request)) {
    return {};
  }
  std::string response;
  while (response.size() < terminator.size() ||
         response.compare(response.size() - terminator.size(), terminator.size(),
                          terminator) != 0) {
    if (Receive(&response) <= 0) {
      break;
    }
  }
  return response;
}

}  // namespace cuckoo
