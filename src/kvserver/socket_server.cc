#include "src/kvserver/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cuckoo {
namespace {

int MakeUnixSocket() { return ::socket(AF_UNIX, SOCK_STREAM, 0); }

bool FillAddress(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

SocketServer::SocketServer(KvService* service, std::string path)
    : service_(service), path_(std::move(path)) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start() {
  sockaddr_un addr;
  if (!FillAddress(path_, &addr)) {
    return false;
  }
  ::unlink(path_.c_str());
  listen_fd_ = MakeUnixSocket();
  if (listen_fd_ < 0) {
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SocketServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Shutting the listen socket down unblocks accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Only clear the member once the accept loop (its only other reader) has
  // been joined.
  listen_fd_ = -1;
  {
    // Kick any connection thread blocked in read().
    std::lock_guard<std::mutex> g(fds_mutex_);
    for (int fd : open_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  connection_threads_.clear();
  ::unlink(path_.c_str());
}

void SocketServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket closed by Stop()
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  {
    std::lock_guard<std::mutex> g(fds_mutex_);
    open_fds_.push_back(fd);
  }
  KvService::Connection connection = service_->Connect();
  char buffer[16 * 1024];
  std::string response;
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) {
      break;  // peer closed (or server stopping closed the fd)
    }
    response.clear();
    connection.Drive(std::string_view(buffer, static_cast<std::size_t>(n)), &response);
    std::size_t sent = 0;
    bool write_failed = false;
    while (sent < response.size()) {
      ssize_t w = ::send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        write_failed = true;
        break;
      }
      sent += static_cast<std::size_t>(w);
    }
    if (write_failed) {
      break;
    }
  }
  {
    std::lock_guard<std::mutex> g(fds_mutex_);
    for (std::size_t i = 0; i < open_fds_.size(); ++i) {
      if (open_fds_[i] == fd) {
        open_fds_[i] = open_fds_.back();
        open_fds_.pop_back();
        break;
      }
    }
  }
  ::close(fd);
}

SocketClient::SocketClient(const std::string& path) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr)) {
    return;
  }
  fd_ = MakeUnixSocket();
  if (fd_ < 0) {
    return;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string SocketClient::RoundTrip(const std::string& request, const std::string& terminator) {
  if (fd_ < 0) {
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    ssize_t w = ::send(fd_, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      return {};
    }
    sent += static_cast<std::size_t>(w);
  }
  std::string response;
  char buffer[16 * 1024];
  while (response.size() < terminator.size() ||
         response.compare(response.size() - terminator.size(), terminator.size(),
                          terminator) != 0) {
    ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    response.append(buffer, static_cast<std::size_t>(n));
  }
  return response;
}

}  // namespace cuckoo
