#include "src/kvserver/kv_service.h"

#include <chrono>
#include <utility>

namespace cuckoo {
namespace {

std::uint64_t WallSeconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

KvService::KvService(Options opts)
    : store_([&] {
        GeneralCuckooMap<std::string, StoredValue>::Options o;
        o.initial_bucket_count_log2 = opts.initial_bucket_count_log2;
        o.auto_expand = opts.auto_expand;
        return o;
      }()),
      clock_(opts.clock ? std::move(opts.clock) : WallSeconds) {}

void KvService::HandleGet(const Request& request, bool with_cas, std::string* out) {
  const std::uint64_t now = NowSeconds();
  bool expired = false;
  bool hit = store_.WithValue(request.key, [&](const StoredValue& value) {
    if (Expired(value, now)) {
      expired = true;
      return;
    }
    if (with_cas) {
      AppendValueResponseWithCas(request.key, value.flags, value.data, value.cas_id, out);
    } else {
      AppendValueResponse(request.key, value.flags, value.data, out);
    }
  });
  if (hit && expired) {
    // Lazy expiry: reclaim the slot, but only if the entry is still the
    // expired one — a concurrent fresh Set must not be deleted. EraseIf
    // re-checks under the bucket locks.
    if (store_.EraseIf(request.key,
                       [&](const StoredValue& value) { return Expired(value, now); })) {
      expirations_.Increment();
    }
    hit = false;
  }
  if (hit) {
    hits_.Increment();
  } else {
    misses_.Increment();
  }
  AppendEnd(out);
}

void KvService::HandleSet(const Request& request, std::string* out) {
  StoredValue value;
  value.data = request.data;
  value.flags = request.flags;
  value.cas_id = next_cas_.fetch_add(1, std::memory_order_relaxed);
  value.expires_at = DeadlineFor(request.exptime);
  InsertResult r = store_.Upsert(std::string(request.key), std::move(value));
  if (r == InsertResult::kTableFull) {
    AppendNotStored(out);
  } else {
    sets_.Increment();
    AppendStored(out);
  }
}

void KvService::HandleCas(const Request& request, std::string* out) {
  const std::uint64_t now = NowSeconds();
  enum class Outcome { kNotFound, kExists, kStored } outcome = Outcome::kNotFound;
  store_.WithValueMut(request.key, [&](StoredValue& value) {
    if (Expired(value, now)) {
      outcome = Outcome::kNotFound;  // expired counts as absent
      return;
    }
    if (value.cas_id != request.cas_id) {
      outcome = Outcome::kExists;
      return;
    }
    value.data = request.data;
    value.flags = request.flags;
    value.expires_at = DeadlineFor(request.exptime);
    value.cas_id = next_cas_.fetch_add(1, std::memory_order_relaxed);
    outcome = Outcome::kStored;
  });
  switch (outcome) {
    case Outcome::kStored:
      sets_.Increment();
      AppendStored(out);
      return;
    case Outcome::kExists:
      AppendExists(out);
      return;
    case Outcome::kNotFound:
      AppendNotFound(out);
      return;
  }
}

void KvService::HandleTouch(const Request& request, std::string* out) {
  const std::uint64_t now = NowSeconds();
  bool touched = false;
  store_.WithValueMut(request.key, [&](StoredValue& value) {
    if (Expired(value, now)) {
      return;
    }
    value.expires_at = DeadlineFor(request.exptime);
    touched = true;
  });
  if (touched) {
    AppendTouched(out);
  } else {
    AppendNotFound(out);
  }
}

void KvService::Process(const Request& request, std::string* response_out) {
  switch (request.type) {
    case RequestType::kGet:
      HandleGet(request, /*with_cas=*/false, response_out);
      return;
    case RequestType::kGets:
      HandleGet(request, /*with_cas=*/true, response_out);
      return;
    case RequestType::kSet:
      HandleSet(request, response_out);
      return;
    case RequestType::kCas:
      HandleCas(request, response_out);
      return;
    case RequestType::kTouch:
      HandleTouch(request, response_out);
      return;
    case RequestType::kDelete: {
      if (store_.Erase(request.key)) {
        deletes_.Increment();
        AppendDeleted(response_out);
      } else {
        AppendNotFound(response_out);
      }
      return;
    }
    case RequestType::kStats: {
      AppendStat("curr_items", ItemCount(), response_out);
      AppendStat("get_hits", GetHits(), response_out);
      AppendStat("get_misses", GetMisses(), response_out);
      AppendStat("cmd_set", static_cast<std::uint64_t>(sets_.Sum()), response_out);
      AppendStat("cmd_delete", static_cast<std::uint64_t>(deletes_.Sum()), response_out);
      AppendStat("expired_unfetched", Expirations(), response_out);
      AppendEnd(response_out);
      return;
    }
  }
  AppendError(response_out);
}

void KvService::Connection::Drive(std::string_view bytes, std::string* out) {
  parser_.Feed(bytes);
  Request request;
  for (;;) {
    ParseStatus status = parser_.Next(&request);
    if (status == ParseStatus::kNeedMore) {
      return;
    }
    if (status == ParseStatus::kError) {
      AppendError(out);
      continue;
    }
    service_->Process(request, out);
  }
}

}  // namespace cuckoo
