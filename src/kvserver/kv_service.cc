#include "src/kvserver/kv_service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "src/common/timing.h"
#include "src/cuckoo/simd_probe.h"
#include "src/obs/metrics.h"

namespace cuckoo {
namespace {

std::uint64_t WallSeconds() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

// STAT <prefix>_count/_p50/_p99/_p999/_max lines for one latency histogram.
void AppendHistStats(const std::string& prefix, const obs::HistogramSnapshot& h,
                     std::string* out) {
  AppendStat(prefix + "_count", h.Count(), out);
  AppendStat(prefix + "_p50", h.P50(), out);
  AppendStat(prefix + "_p99", h.P99(), out);
  AppendStat(prefix + "_p999", h.P999(), out);
  AppendStat(prefix + "_max", h.Max(), out);
}

}  // namespace

KvService::KvService(Options opts)
    : store_([&] {
        GeneralCuckooMap<std::string, StoredValue>::Options o;
        o.initial_bucket_count_log2 = opts.initial_bucket_count_log2;
        o.auto_expand = opts.auto_expand;
        o.stripe_count = opts.stripe_count;
        o.hugepages = opts.hugepages;
        return o;
      }()),
      tier_(opts.tier),
      clock_(opts.clock ? std::move(opts.clock) : WallSeconds),
      slowlog_(opts.slowlog_threshold_ns, opts.slowlog_capacity) {}

const char* KvService::CommandName(RequestType type) noexcept {
  switch (type) {
    case RequestType::kGet:
      return "get";
    case RequestType::kGets:
      return "gets";
    case RequestType::kSet:
      return "set";
    case RequestType::kCas:
      return "cas";
    case RequestType::kDelete:
      return "delete";
    case RequestType::kTouch:
      return "touch";
    case RequestType::kStats:
      return "stats";
    case RequestType::kBgsave:
      return "bgsave";
    case RequestType::kReplicate:
      return "replicate";
    case RequestType::kReplicaof:
      return "replicaof";
  }
  return "unknown";
}

KvService::ProcessStatus KvService::HandleGet(const Request& request, bool with_cas,
                                              std::string* out,
                                              std::shared_ptr<DeferredGet>* deferred) {
  // Multi-key gets arrive in request.keys; requests constructed by hand may
  // only set request.key.
  const std::string* keys = request.keys.empty() ? &request.key : request.keys.data();
  const std::size_t count = request.keys.empty() ? 1 : request.keys.size();
  const std::uint64_t now = NowSeconds();

  if (tier_ == nullptr) {
    // Every value is inline: one batched pass hashes + prefetches the whole
    // key batch ahead of the probes, appending VALUE blocks under the bucket
    // locks as hits land.
    std::vector<std::uint8_t> live(count, 0);
    std::vector<std::uint8_t> expired(count, 0);
    store_.WithValueBatch(keys, count, [&](std::size_t i, const StoredValue& value) {
      if (Expired(value, now)) {
        expired[i] = 1;
        return;
      }
      live[i] = 1;
      if (with_cas) {
        AppendValueResponseWithCas(keys[i], value.flags, value.data, value.cas_id, out);
      } else {
        AppendValueResponse(keys[i], value.flags, value.data, out);
      }
    });
    // Replicas never erase on expiry: the delete must come from the primary's
    // WAL stream, or the local LSN sequence forks off the primary's.
    const bool reap_expired = !ReadOnly();
    for (std::size_t i = 0; i < count; ++i) {
      if (reap_expired && expired[i] && !live[i]) {
        // Lazy expiry: reclaim the slot, but only if the entry is still the
        // expired one — a concurrent fresh Set must not be deleted. EraseIf
        // re-checks under the bucket locks.
        std::uint64_t lsn = 0;
        if (store_.EraseIfThen(
                keys[i], [&](const StoredValue& value) { return Expired(value, now); },
                [&] {
                  if (observer_ != nullptr) {
                    lsn = observer_->OnDelete(keys[i]);
                  }
                })) {
          expirations_.Increment();
          // Logged (so replay does not resurrect the entry) but not awaited:
          // a get response makes no durability promise.
          (void)lsn;
        }
      }
      if (live[i]) {
        hits_.Increment();
      } else {
        misses_.Increment();
      }
    }
    AppendEnd(out);
    return ProcessStatus::kDone;
  }

  // Tiered path: the batch pass only copies metadata (and inline values)
  // under the bucket locks; value-log bytes are resolved afterwards so the
  // locks never wait on the hot cache or disk.
  auto d = std::make_shared<DeferredGet>();
  d->with_cas = with_cas;
  d->type = request.type;
  d->items.resize(count);
  std::vector<std::uint8_t> expired(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    d->items[i].key = keys[i];
  }
  store_.WithValueBatch(keys, count, [&](std::size_t i, const StoredValue& value) {
    if (Expired(value, now)) {
      expired[i] = 1;
      return;
    }
    DeferredGet::Item& item = d->items[i];
    item.live = true;
    item.flags = value.flags;
    item.cas_id = value.cas_id;
    if (value.Tiered()) {
      item.loc = value.loc;
      item.need_fetch = true;
    } else {
      item.data = value.data;
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    if (ReadOnly() || !expired[i] || d->items[i].live) {
      continue;  // replicas leave expiry to the primary's replicated delete
    }
    // Lazy expiry, tiered-aware: the predicate re-checks under the bucket
    // locks and captures the victim's log location so its bytes count as
    // garbage for GC.
    std::uint64_t lsn = 0;
    store::ValueLocation dead_loc{};
    if (store_.EraseIfThen(
            keys[i],
            [&](const StoredValue& value) {
              if (!Expired(value, now)) {
                return false;
              }
              dead_loc = value.loc;
              return true;
            },
            [&] {
              if (observer_ != nullptr) {
                lsn = observer_->OnDelete(keys[i]);
              }
            })) {
      expirations_.Increment();
      if (dead_loc.IsValid()) {
        tier_->MarkDead(dead_loc);
      }
      (void)lsn;
    }
  }

  // Hot-tier pass: cas-checked cache hits resolve without touching disk.
  std::size_t fetches = 0;
  for (DeferredGet::Item& item : d->items) {
    if (!item.need_fetch) {
      continue;
    }
    if (tier_->TryHot(item.key, item.cas_id, &item.data)) {
      item.need_fetch = false;
      continue;
    }
    ++fetches;
  }

  if (fetches == 0) {
    RenderGet(*d, out);
    return ProcessStatus::kDone;
  }
  if (deferred == nullptr) {
    // Blocking caller (tests, tools, recovery checks): read inline.
    for (DeferredGet::Item& item : d->items) {
      if (item.need_fetch) {
        item.fetch_ok = tier_->ReadValue(item.key, item.loc, item.cas_id, &item.data);
      }
    }
    RenderGet(*d, out);
    return ProcessStatus::kDone;
  }
  // Park: the caller submits the reads (StartFetches) and renders the
  // response (FinishDeferred) once the last one lands.
  d->remaining.store(fetches, std::memory_order_relaxed);
  *deferred = std::move(d);
  return ProcessStatus::kSuspended;
}

void KvService::RenderGet(DeferredGet& deferred, std::string* out) {
  for (DeferredGet::Item& item : deferred.items) {
    const bool hit = item.live && (!item.need_fetch || item.fetch_ok);
    if (!hit) {
      // Absent, expired, or the disk read failed verification — a tiered
      // read error degrades to a miss rather than a protocol error.
      misses_.Increment();
      continue;
    }
    hits_.Increment();
    if (deferred.with_cas) {
      AppendValueResponseWithCas(item.key, item.flags, item.data, item.cas_id, out);
    } else {
      AppendValueResponse(item.key, item.flags, item.data, out);
    }
  }
  AppendEnd(out);
}

void KvService::StartFetches(const std::shared_ptr<DeferredGet>& deferred,
                             std::function<void()> on_complete) {
  auto complete = std::make_shared<std::function<void()>>(std::move(on_complete));
  for (std::size_t i = 0; i < deferred->items.size(); ++i) {
    DeferredGet::Item& item = deferred->items[i];
    if (!item.need_fetch) {
      continue;
    }
    tier_->ReadValueAsync(item.key, item.loc, item.cas_id,
                          [deferred, i, complete](bool ok, std::string data) {
                            DeferredGet::Item& it = deferred->items[i];
                            it.fetch_ok = ok;
                            it.data = std::move(data);
                            // acq_rel: the last decrement publishes every
                            // sibling fetch's writes to whoever renders.
                            if (deferred->remaining.fetch_sub(
                                    1, std::memory_order_acq_rel) == 1) {
                              (*complete)();
                            }
                          });
  }
}

void KvService::FinishDeferred(DeferredGet& deferred, std::string* out) {
  RenderGet(deferred, out);
  const std::uint64_t elapsed = NowNanos() - deferred.start_ns;
  const std::size_t idx = static_cast<std::size_t>(deferred.type);
  if (idx < kCommandKinds) {
    cmd_ns_[idx].Record(elapsed);
  }
  slowlog_.MaybeRecord(elapsed, CommandName(deferred.type),
                       deferred.items.empty() ? std::string() : deferred.items.front().key);
}

void KvService::HandleSet(const Request& request, std::string* out) {
  StoredValue value;
  value.flags = request.flags;
  value.cas_id = next_cas_.fetch_add(1, std::memory_order_relaxed);
  value.expires_at = DeadlineFor(request.exptime);
  const bool tiered = tier_ != nullptr && tier_->ShouldTier(request.data.size());
  if (tiered) {
    // Append the bytes BEFORE taking any bucket lock: log I/O must never run
    // inside the table's critical sections. A crash between the append and
    // the table mutation leaves an unreferenced record GC reclaims.
    if (!tier_->AppendValue(request.key, request.data, &value.loc)) {
      AppendServerError("vlog io error", out);
      return;
    }
  } else {
    value.data = request.data;
  }
  const store::ValueLocation new_loc = value.loc;
  const std::uint64_t new_cas = value.cas_id;
  std::uint64_t lsn = 0;
  store::ValueLocation dead_loc{};
  InsertResult r = store_.UpsertReplaceThen(
      std::string(request.key), std::move(value),
      [&](const StoredValue& old) {
        // Under the pair lock, just before the overwrite destroys the old
        // value: remember its log location so those bytes become garbage.
        dead_loc = old.loc;
      },
      [&](const StoredValue& stored) {
        // Under the bucket-pair lock: the LSN the observer assigns here is
        // ordered exactly like the table mutation it describes.
        if (observer_ != nullptr) {
          lsn = observer_->OnSet(request.key, stored);
        }
      });
  if (r == InsertResult::kTableFull) {
    if (new_loc.IsValid()) {
      tier_->MarkDead(new_loc);  // appended but never referenced
    }
    AppendNotStored(out);
    return;
  }
  if (tier_ != nullptr && dead_loc.IsValid()) {
    tier_->MarkDead(dead_loc);
  }
  if (observer_ != nullptr && !observer_->WaitDurable(lsn)) {
    // Applied in memory but not durable (WAL in its sticky I/O-error state):
    // never ack what a restart would lose.
    AppendServerError("wal io error", out);
    return;
  }
  if (tiered) {
    // Write-through admission: the value just written is the likeliest next
    // read; serve it from RAM instead of paying an immediate disk miss.
    tier_->Admit(request.key, new_cas, request.data);
  }
  sets_.Increment();
  AppendStored(out);
}

void KvService::HandleCas(const Request& request, std::string* out) {
  const std::uint64_t now = NowSeconds();
  const bool tiered = tier_ != nullptr && tier_->ShouldTier(request.data.size());
  store::ValueLocation new_loc{};
  if (tiered) {
    // Optimistic pre-append outside the locks (same rule as HandleSet). If
    // the comparison then fails, the record is marked dead for GC.
    if (!tier_->AppendValue(request.key, request.data, &new_loc)) {
      AppendServerError("vlog io error", out);
      return;
    }
  }
  enum class Outcome { kNotFound, kExists, kStored } outcome = Outcome::kNotFound;
  std::uint64_t lsn = 0;
  std::uint64_t new_cas = 0;
  store::ValueLocation dead_loc{};
  store_.WithValueMut(request.key, [&](StoredValue& value) {
    if (Expired(value, now)) {
      outcome = Outcome::kNotFound;  // expired counts as absent
      return;
    }
    if (value.cas_id != request.cas_id) {
      outcome = Outcome::kExists;
      return;
    }
    dead_loc = value.loc;  // the replaced version's bytes become garbage
    if (tiered) {
      value.data.clear();
      value.loc = new_loc;
    } else {
      value.data = request.data;
      value.loc = store::ValueLocation{};
    }
    value.flags = request.flags;
    value.expires_at = DeadlineFor(request.exptime);
    value.cas_id = next_cas_.fetch_add(1, std::memory_order_relaxed);
    new_cas = value.cas_id;
    outcome = Outcome::kStored;
    // Log the RESOLVED state (an unconditional set) under the lock: replay
    // must not re-run the cas comparison against a different history.
    if (observer_ != nullptr) {
      lsn = observer_->OnSet(request.key, value);
    }
  });
  switch (outcome) {
    case Outcome::kStored:
      if (tier_ != nullptr && dead_loc.IsValid()) {
        tier_->MarkDead(dead_loc);
      }
      if (observer_ != nullptr && !observer_->WaitDurable(lsn)) {
        AppendServerError("wal io error", out);
        return;
      }
      if (tiered) {
        tier_->Admit(request.key, new_cas, request.data);
      }
      sets_.Increment();
      AppendStored(out);
      return;
    case Outcome::kExists:
      if (new_loc.IsValid()) {
        tier_->MarkDead(new_loc);  // pre-appended, comparison lost
      }
      AppendExists(out);
      return;
    case Outcome::kNotFound:
      if (new_loc.IsValid()) {
        tier_->MarkDead(new_loc);
      }
      AppendNotFound(out);
      return;
  }
}

void KvService::HandleTouch(const Request& request, std::string* out) {
  const std::uint64_t now = NowSeconds();
  bool touched = false;
  std::uint64_t lsn = 0;
  store_.WithValueMut(request.key, [&](StoredValue& value) {
    if (Expired(value, now)) {
      return;
    }
    value.expires_at = DeadlineFor(request.exptime);
    touched = true;
    if (observer_ != nullptr) {
      lsn = observer_->OnSet(request.key, value);  // resolved full state
    }
  });
  if (touched) {
    if (observer_ != nullptr && !observer_->WaitDurable(lsn)) {
      AppendServerError("wal io error", out);
      return;
    }
    AppendTouched(out);
  } else {
    AppendNotFound(out);
  }
}

bool KvService::RestoreEntry(std::string key, StoredValue value) {
  AdvanceCasFloor(value.cas_id);
  return store_.Upsert(std::move(key), std::move(value)) != InsertResult::kTableFull;
}

void KvService::AdvanceCasFloor(std::uint64_t cas_id) {
  std::uint64_t cur = next_cas_.load(std::memory_order_relaxed);
  while (cur <= cas_id &&
         !next_cas_.compare_exchange_weak(cur, cas_id + 1, std::memory_order_relaxed)) {
  }
}

void KvService::HandleDelete(const Request& request, std::string* out) {
  std::uint64_t lsn = 0;
  store::ValueLocation dead_loc{};
  if (store_.EraseIfThen(
          request.key,
          [&](const StoredValue& value) {
            dead_loc = value.loc;  // captured under the lock, like expiry
            return true;
          },
          [&] {
            if (observer_ != nullptr) {
              lsn = observer_->OnDelete(request.key);
            }
          })) {
    if (tier_ != nullptr && dead_loc.IsValid()) {
      tier_->MarkDead(dead_loc);
    }
    if (observer_ != nullptr && !observer_->WaitDurable(lsn)) {
      AppendServerError("wal io error", out);
      return;
    }
    deletes_.Increment();
    AppendDeleted(out);
  } else {
    AppendNotFound(out);
  }
}

store::TieredStore::RelocateResult KvService::RelocateTiered(
    const std::string& key, const store::ValueLocation& old_loc, std::string_view data) {
  // Cheap liveness probe first: in a GC-eligible segment most records are
  // dead, and the probe avoids appending bytes that would immediately be
  // garbage. The racy window is closed by the re-check under the lock below.
  bool maybe_live = false;
  store_.WithValue(key, [&](const StoredValue& value) { maybe_live = value.loc == old_loc; });
  if (!maybe_live) {
    return store::TieredStore::RelocateResult::kDead;
  }
  store::ValueLocation new_loc{};
  if (!tier_->AppendValue(key, data, &new_loc)) {
    return store::TieredStore::RelocateResult::kFailed;  // sticky log error
  }
  bool relocated = false;
  std::uint64_t lsn = 0;
  store_.WithValueMut(key, [&](StoredValue& value) {
    if (value.loc != old_loc) {
      return;  // overwritten/deleted since the probe — record is dead
    }
    value.loc = new_loc;
    relocated = true;
    // Same observer path as any set: replay learns the new location. The
    // cas id is unchanged — the value is byte-identical, so hot-cache
    // entries stay servable across the move.
    if (observer_ != nullptr) {
      lsn = observer_->OnSet(key, value);
    }
  });
  if (!relocated) {
    tier_->MarkDead(new_loc);
    return store::TieredStore::RelocateResult::kDead;
  }
  // Not awaited per record: TieredStore's persist barrier makes the whole
  // segment's relocations durable in one flush before retirement.
  (void)lsn;
  return store::TieredStore::RelocateResult::kRelocated;
}

KvService::ProcessStatus KvService::Process(const Request& request, std::string* response_out,
                                            std::shared_ptr<DeferredGet>* deferred) {
  // End-to-end command latency, including WaitDurable stalls. Always on:
  // one clock pair per network request is noise next to parsing + syscalls,
  // unlike the sampled per-probe timers inside the table.
  const std::uint64_t start = NowNanos();
  const ProcessStatus status = Dispatch(request, response_out, deferred);
  if (status == ProcessStatus::kSuspended) {
    // The command is still in flight; FinishDeferred closes its accounting.
    (*deferred)->start_ns = start;
    return status;
  }
  const std::uint64_t elapsed = NowNanos() - start;
  const std::size_t idx = static_cast<std::size_t>(request.type);
  if (idx < kCommandKinds) {
    cmd_ns_[idx].Record(elapsed);
  }
  slowlog_.MaybeRecord(elapsed, CommandName(request.type), request.key);
  return status;
}

KvService::ProcessStatus KvService::Dispatch(const Request& request, std::string* response_out,
                                             std::shared_ptr<DeferredGet>* deferred) {
  switch (request.type) {
    case RequestType::kGet:
      return HandleGet(request, /*with_cas=*/false, response_out, deferred);
    case RequestType::kGets:
      return HandleGet(request, /*with_cas=*/true, response_out, deferred);
    case RequestType::kSet:
    case RequestType::kCas:
    case RequestType::kTouch:
    case RequestType::kDelete:
      // Replica mode: reads only. Redirect the client to the primary rather
      // than silently diverging from the replicated stream.
      if (ReadOnly()) {
        AppendServerError(readonly_redirect_.empty()
                              ? std::string("read only replica")
                              : "read only replica; primary is " + readonly_redirect_,
                          response_out);
        return ProcessStatus::kDone;
      }
      switch (request.type) {
        case RequestType::kSet:
          HandleSet(request, response_out);
          break;
        case RequestType::kCas:
          HandleCas(request, response_out);
          break;
        case RequestType::kTouch:
          HandleTouch(request, response_out);
          break;
        default:
          HandleDelete(request, response_out);
          break;
      }
      return ProcessStatus::kDone;
    case RequestType::kReplicate:
      if (!repl_upgrade_enabled_) {
        AppendServerError("replication not enabled", response_out);
        return ProcessStatus::kDone;
      }
      // No response bytes: the server detaches this connection and the hub
      // answers with the SYNC/FULLSYNC header on the raw fd.
      return ProcessStatus::kUpgradeReplication;
    case RequestType::kReplicaof:
      if (!replicaof_) {
        AppendError(response_out);  // no replication control attached
      } else {
        response_out->append(replicaof_(request));
      }
      return ProcessStatus::kDone;
    case RequestType::kBgsave: {
      if (!bgsave_) {
        AppendError(response_out);  // no durability layer attached
      } else if (bgsave_()) {
        AppendOk(response_out);
      } else {
        AppendBusy(response_out);
      }
      return ProcessStatus::kDone;
    }
    case RequestType::kStats:
      HandleStats(request, response_out);
      return ProcessStatus::kDone;
  }
  AppendError(response_out);
  return ProcessStatus::kDone;
}

void KvService::HandleStats(const Request& request, std::string* response_out) {
  if (request.stats_arg == "slowlog") {
    AppendSlowlogStats(response_out);
    AppendEnd(response_out);
    return;
  }
  if (!request.stats_arg.empty() && request.stats_arg != "detail") {
    AppendError(response_out);  // unknown sub-report
    return;
  }
  AppendStat("curr_items", ItemCount(), response_out);
  AppendStat("get_hits", GetHits(), response_out);
  AppendStat("get_misses", GetMisses(), response_out);
  AppendStat("cmd_set", static_cast<std::uint64_t>(sets_.Sum()), response_out);
  AppendStat("cmd_delete", static_cast<std::uint64_t>(deletes_.Sum()), response_out);
  AppendStat("expired_unfetched", Expirations(), response_out);
  // Table-level observability: the MapStatsSnapshot counters that tell
  // an operator whether the serving layer stresses the cuckoo paths.
  const MapStatsSnapshot table = store_.Stats();
  AppendStat("table_lookups", static_cast<std::uint64_t>(table.lookups), response_out);
  AppendStat("table_read_retries", static_cast<std::uint64_t>(table.read_retries),
             response_out);
  AppendStat("table_path_searches", static_cast<std::uint64_t>(table.path_searches),
             response_out);
  AppendStat("table_path_invalidations",
             static_cast<std::uint64_t>(table.path_invalidations), response_out);
  AppendStat("table_displacements", static_cast<std::uint64_t>(table.displacements),
             response_out);
  AppendStat("table_expansions", static_cast<std::uint64_t>(table.expansions),
             response_out);
  AppendStat("table_insert_failures", static_cast<std::uint64_t>(table.insert_failures),
             response_out);
  AppendStat("table_migrations_started",
             static_cast<std::uint64_t>(table.migrations_started), response_out);
  AppendStat("table_migrations_completed",
             static_cast<std::uint64_t>(table.migrations_completed), response_out);
  AppendStat("table_migrations_force_finished",
             static_cast<std::uint64_t>(table.migrations_force_finished), response_out);
  AppendStat("table_migrated_entries",
             static_cast<std::uint64_t>(table.migrated_entries), response_out);
  AppendStat("table_migration_buckets_total",
             static_cast<std::uint64_t>(table.migration_buckets_total), response_out);
  AppendStat("table_migration_buckets_done",
             static_cast<std::uint64_t>(table.migration_buckets_done), response_out);
  AppendStat("table_hugepage_bytes", static_cast<std::uint64_t>(table.hugepage_bytes),
             response_out);
  AppendTierStats(response_out);
  for (const auto& hook : extra_stats_) {
    hook(response_out);  // server- and durability-layer counters
  }
  if (request.stats_arg == "detail") {
    AppendLatencyStats(response_out);
    for (const auto& hook : detail_stats_) {
      hook(response_out);  // durability-layer latency percentiles etc.
    }
  }
  AppendEnd(response_out);
}

void KvService::AppendLatencyStats(std::string* out) const {
  for (std::size_t i = 0; i < kCommandKinds; ++i) {
    const obs::HistogramSnapshot h = cmd_ns_[i].Snapshot();
    if (h.Count() == 0) {
      continue;
    }
    AppendHistStats(std::string("cmd_") + CommandName(static_cast<RequestType>(i)) + "_ns",
                    h, out);
  }
  const MapStatsSnapshot table = store_.Stats();
  AppendStat("table_lock_contended", static_cast<std::uint64_t>(table.lock_contended), out);
  AppendHistStats("table_lookup_ns", table.lookup_ns, out);
  AppendHistStats("table_insert_ns", table.insert_ns, out);
  AppendHistStats("table_expansion_pause_ns", table.expansion_pause_ns, out);
  AppendHistStats("table_migration_stall_ns", table.migration_stall_ns, out);
  AppendStat("table_migration_max_stall_ns",
             static_cast<std::uint64_t>(table.migration_max_stall_ns), out);
  // String-valued: the probe-kernel dispatch level lookups actually run with
  // (scalar / sse2 / avx2), resolved once from CPUID + CUCKOO_FORCE_PROBE.
  out->append("STAT probe_kernel ");
  out->append(simd::ProbeLevelName(simd::ActiveProbeLevel()));
  out->append("\r\n");
  if (tier_ != nullptr) {
    AppendHistStats("vlog_disk_read_ns", tier_->DiskReadLatency(), out);
  }
}

void KvService::AppendTierStats(std::string* out) const {
  if (tier_ == nullptr) {
    return;
  }
  const store::TieredStoreStats s = tier_->Stats();
  AppendStat("vlog_threshold_bytes", static_cast<std::uint64_t>(tier_->threshold_bytes()),
             out);
  AppendStat("vlog_segments", s.log.live_segments, out);
  AppendStat("vlog_total_bytes", s.log.total_bytes, out);
  AppendStat("vlog_dead_bytes", s.log.dead_bytes, out);
  AppendStat("vlog_appends", s.log.appends, out);
  AppendStat("vlog_append_bytes", s.log.append_bytes, out);
  AppendStat("vlog_torn_tail_bytes", s.log.torn_tail_bytes, out);
  AppendStat("vlog_tiered_sets", s.tiered_sets, out);
  AppendStat("vlog_hot_hits", s.hot_hits, out);
  AppendStat("vlog_hot_misses", s.hot_misses, out);
  AppendStat("vlog_disk_reads", s.disk_reads, out);
  AppendStat("vlog_disk_read_errors", s.disk_read_errors, out);
  AppendStat("vlog_gc_runs", s.gc_runs, out);
  AppendStat("vlog_gc_segments_retired", s.gc_segments, out);
  AppendStat("vlog_gc_records_scanned", s.gc_records_scanned, out);
  AppendStat("vlog_gc_records_relocated", s.gc_records_relocated, out);
  AppendStat("vlog_gc_failures", s.gc_failures, out);
  AppendStat("vlog_reclaimed_bytes", s.log.reclaimed_bytes, out);
  const auto hot = tier_->HotStats();
  AppendStat("vlog_cache_bytes", hot.bytes, out);
  AppendStat("vlog_cache_capacity_bytes", hot.capacity_bytes, out);
  AppendStat("vlog_cache_evictions", hot.evictions, out);
  out->append("STAT vlog_reader_backend ");
  out->append(tier_->reader_backend());
  out->append("\r\n");
}

void KvService::AppendSlowlogStats(std::string* out) const {
  AppendStat("slowlog_threshold_ns", slowlog_.threshold_ns(), out);
  AppendStat("slowlog_total", slowlog_.TotalLogged(), out);
  // One line per retained entry, oldest first:
  //   STAT slowlog_entry <id> <latency_ns> <op> [<key>]
  for (const obs::Slowlog::Entry& e : slowlog_.Entries()) {
    out->append("STAT slowlog_entry ");
    out->append(std::to_string(e.id));
    out->push_back(' ');
    out->append(std::to_string(e.latency_ns));
    out->push_back(' ');
    out->append(e.op);
    if (!e.detail.empty()) {
      out->push_back(' ');
      out->append(e.detail);
    }
    out->append("\r\n");
  }
}

void KvService::AppendMetricsText(std::string* out) const {
  obs::AppendGauge("cuckoo_kv_items", "Live entries in the store.",
                   static_cast<double>(ItemCount()), out);
  obs::AppendCounter("cuckoo_kv_get_hits_total", "get keys served from the table.",
                     GetHits(), out);
  obs::AppendCounter("cuckoo_kv_get_misses_total", "get keys not found (or expired).",
                     GetMisses(), out);
  obs::AppendCounter("cuckoo_kv_sets_total", "Successful set/cas stores.",
                     static_cast<std::uint64_t>(sets_.Sum()), out);
  obs::AppendCounter("cuckoo_kv_deletes_total", "Successful deletes.",
                     static_cast<std::uint64_t>(deletes_.Sum()), out);
  obs::AppendCounter("cuckoo_kv_expirations_total", "Entries reclaimed by lazy expiry.",
                     Expirations(), out);
  obs::AppendCounter("cuckoo_kv_slowlog_total",
                     "Commands that crossed the slowlog threshold.",
                     slowlog_.TotalLogged(), out);
  for (std::size_t i = 0; i < kCommandKinds; ++i) {
    const obs::HistogramSnapshot h = cmd_ns_[i].Snapshot();
    if (h.Count() == 0) {
      continue;
    }
    const std::string name = std::string("cuckoo_cmd_") +
                             CommandName(static_cast<RequestType>(i)) + "_seconds";
    obs::AppendLatencySummary(name, "End-to-end command latency.", h, 1e-9, out);
  }
  const MapStatsSnapshot table = store_.Stats();
  obs::AppendCounter("cuckoo_table_lookups_total", "Cuckoo table lookups.",
                     static_cast<std::uint64_t>(table.lookups), out);
  obs::AppendCounter("cuckoo_table_read_retries_total",
                     "Optimistic reads retried after a version bump.",
                     static_cast<std::uint64_t>(table.read_retries), out);
  obs::AppendCounter("cuckoo_table_path_searches_total", "BFS/DFS cuckoo path searches.",
                     static_cast<std::uint64_t>(table.path_searches), out);
  obs::AppendCounter("cuckoo_table_path_invalidations_total",
                     "Cuckoo paths invalidated by racing writers.",
                     static_cast<std::uint64_t>(table.path_invalidations), out);
  obs::AppendCounter("cuckoo_table_displacements_total", "Slot displacements executed.",
                     static_cast<std::uint64_t>(table.displacements), out);
  obs::AppendCounter("cuckoo_table_expansions_total", "Table expansions.",
                     static_cast<std::uint64_t>(table.expansions), out);
  obs::AppendCounter("cuckoo_table_lock_contended_total",
                     "Stripe-lock acquisitions that hit contention.",
                     static_cast<std::uint64_t>(table.lock_contended), out);
  obs::AppendLatencySummary("cuckoo_table_lookup_seconds",
                            "Sampled in-table lookup latency.", table.lookup_ns, 1e-9, out);
  obs::AppendLatencySummary("cuckoo_table_insert_seconds",
                            "Sampled in-table insert latency.", table.insert_ns, 1e-9, out);
  obs::AppendLatencySummary("cuckoo_table_expansion_pause_seconds",
                            "Write pause while the table doubled.",
                            table.expansion_pause_ns, 1e-9, out);
  obs::AppendCounter("cuckoo_table_migrations_total",
                     "Incremental expansion windows opened.",
                     static_cast<std::uint64_t>(table.migrations_started), out);
  obs::AppendCounter("cuckoo_table_migrations_completed_total",
                     "Incremental expansion windows fully drained.",
                     static_cast<std::uint64_t>(table.migrations_completed), out);
  obs::AppendCounter("cuckoo_table_migrations_force_finished_total",
                     "Migration windows closed by a bulk stop-the-world drain.",
                     static_cast<std::uint64_t>(table.migrations_force_finished), out);
  obs::AppendCounter("cuckoo_table_migrated_entries_total",
                     "Entries moved old-core to new-core during migration.",
                     static_cast<std::uint64_t>(table.migrated_entries), out);
  if (table.migration_buckets_total > 0) {
    obs::AppendGauge("cuckoo_table_migration_progress",
                     "Fraction of old-core buckets drained (current/last window).",
                     static_cast<double>(table.migration_buckets_done) /
                         static_cast<double>(table.migration_buckets_total),
                     out);
  }
  obs::AppendGauge("cuckoo_table_hugepage_bytes",
                   "Table bytes granted MADV_HUGEPAGE backing (0 without --hugepages "
                   "or when the kernel declined).",
                   static_cast<double>(table.hugepage_bytes), out);
  // One time-series per dispatch level, active level = 1: the idiomatic
  // Prometheus shape for an enum (obs::Append* have no label support, so the
  // lines are written directly).
  out->append("# HELP cuckoo_probe_kernel Active tag-probe dispatch level (1 = active).\n");
  out->append("# TYPE cuckoo_probe_kernel gauge\n");
  const simd::ProbeLevel active_level = simd::ActiveProbeLevel();
  for (const simd::ProbeLevel level :
       {simd::ProbeLevel::kScalar, simd::ProbeLevel::kSse2, simd::ProbeLevel::kAvx2}) {
    out->append("cuckoo_probe_kernel{level=\"");
    out->append(simd::ProbeLevelName(level));
    out->append(level == active_level ? "\"} 1\n" : "\"} 0\n");
  }
  obs::AppendGauge("cuckoo_table_migration_max_stall_seconds",
                   "Worst single-writer piggyback/help stall.",
                   static_cast<double>(table.migration_max_stall_ns) * 1e-9, out);
  obs::AppendLatencySummary("cuckoo_table_migration_stall_seconds",
                            "Per-writer migration piggyback/help stall.",
                            table.migration_stall_ns, 1e-9, out);
  if (tier_ != nullptr) {
    const store::TieredStoreStats s = tier_->Stats();
    obs::AppendCounter("cuckoo_vlog_tiered_sets_total",
                       "Sets whose value went to the value log.", s.tiered_sets, out);
    obs::AppendCounter("cuckoo_vlog_hot_hits_total",
                       "Tiered reads served from the hot value cache.", s.hot_hits, out);
    obs::AppendCounter("cuckoo_vlog_hot_misses_total",
                       "Tiered reads that missed the hot value cache.", s.hot_misses, out);
    obs::AppendCounter("cuckoo_vlog_disk_reads_total",
                       "Tiered reads served from the value log on disk.", s.disk_reads, out);
    obs::AppendCounter("cuckoo_vlog_disk_read_errors_total",
                       "Value-log reads that failed or failed verification.",
                       s.disk_read_errors, out);
    obs::AppendCounter("cuckoo_vlog_gc_segments_total",
                       "Value-log segments compacted and retired.", s.gc_segments, out);
    obs::AppendCounter("cuckoo_vlog_gc_records_relocated_total",
                       "Live records rewritten by value-log GC.", s.gc_records_relocated,
                       out);
    obs::AppendCounter("cuckoo_vlog_reclaimed_bytes_total",
                       "Bytes reclaimed by retiring value-log segments.",
                       s.log.reclaimed_bytes, out);
    obs::AppendGauge("cuckoo_vlog_segments", "Live value-log segment files.",
                     static_cast<double>(s.log.live_segments), out);
    obs::AppendGauge("cuckoo_vlog_total_bytes", "Bytes across live value-log segments.",
                     static_cast<double>(s.log.total_bytes), out);
    obs::AppendGauge("cuckoo_vlog_dead_bytes",
                     "Bytes in live segments no longer referenced by the table.",
                     static_cast<double>(s.log.dead_bytes), out);
    const auto hot = tier_->HotStats();
    obs::AppendGauge("cuckoo_vlog_cache_bytes", "Hot value cache footprint.",
                     static_cast<double>(hot.bytes), out);
    obs::AppendGauge("cuckoo_vlog_cache_capacity_bytes", "Hot value cache budget.",
                     static_cast<double>(hot.capacity_bytes), out);
    obs::AppendLatencySummary("cuckoo_vlog_disk_read_seconds",
                              "Value-log disk read latency (miss path).",
                              tier_->DiskReadLatency(), 1e-9, out);
  }
}

KvService::Connection::DriveStatus KvService::Connection::Drive(
    std::string_view bytes, std::string* out, std::shared_ptr<DeferredGet>* deferred) {
  parser_.Feed(bytes);
  Request request;
  for (;;) {
    ParseStatus status = parser_.Next(&request);
    if (status == ParseStatus::kNeedMore) {
      return DriveStatus::kIdle;
    }
    if (status == ParseStatus::kError) {
      AppendError(out);
      if (parser_.Broken()) {
        return DriveStatus::kIdle;  // caller should close the connection
      }
      continue;
    }
    const ProcessStatus status_p = service_->Process(request, out, deferred);
    if (status_p == ProcessStatus::kSuspended) {
      // Anything already parsed but not yet executed stays buffered in the
      // parser; the caller resumes with Drive("") after FinishDeferred.
      return DriveStatus::kSuspended;
    }
    if (status_p == ProcessStatus::kUpgradeReplication) {
      // The stream switched protocols; whatever is still buffered belongs to
      // the replication channel, not this parser.
      upgrade_start_lsn_ = request.repl_lsn;
      return DriveStatus::kUpgradeReplication;
    }
  }
}

}  // namespace cuckoo
