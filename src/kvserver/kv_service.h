// KvService — a MemC3-shaped in-process key-value service: the memcached
// text protocol dispatched onto the concurrent cuckoo table. Variable-length
// keys and values go through GeneralCuckooMap (the §7 generality layer);
// every public method is safe to call from any number of connection threads.
//
// Supported semantics: get/gets/set/cas/delete/touch/stats, with lazy TTL
// expiry (exptime seconds, 0 = never) and monotonically increasing cas ids.
#ifndef SRC_KVSERVER_KV_SERVICE_H_
#define SRC_KVSERVER_KV_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/per_thread_counter.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/kvserver/protocol.h"

namespace cuckoo {

class KvService {
 public:
  struct Options {
    std::size_t initial_bucket_count_log2 = 10;
    bool auto_expand = true;
    // Time source in seconds; injectable so TTL behaviour is testable
    // deterministically. Null = wall clock.
    std::function<std::uint64_t()> clock;
  };

  KvService() : KvService(Options{}) {}
  explicit KvService(Options opts);

  // Execute one request, appending the protocol response to *response_out.
  void Process(const Request& request, std::string* response_out);

  // Per-connection driver: feed raw protocol bytes, receive raw response
  // bytes. Each connection owns one Connection (the parser is stateful);
  // all connections share the service.
  class Connection {
   public:
    explicit Connection(KvService* service) : service_(service) {}

    // Parse and execute everything in `bytes`; append responses to *out.
    void Drive(std::string_view bytes, std::string* out);

   private:
    KvService* service_;
    RequestParser parser_;
  };

  Connection Connect() { return Connection(this); }

  std::size_t ItemCount() const noexcept { return store_.Size(); }
  std::uint64_t GetHits() const noexcept { return static_cast<std::uint64_t>(hits_.Sum()); }
  std::uint64_t GetMisses() const noexcept { return static_cast<std::uint64_t>(misses_.Sum()); }
  std::uint64_t Expirations() const noexcept {
    return static_cast<std::uint64_t>(expirations_.Sum());
  }

 private:
  struct StoredValue {
    std::string data;
    std::uint32_t flags = 0;
    std::uint64_t cas_id = 0;
    std::uint64_t expires_at = 0;  // absolute seconds; 0 = never
  };

  std::uint64_t NowSeconds() const { return clock_(); }
  std::uint64_t DeadlineFor(std::uint32_t exptime) const {
    return exptime == 0 ? 0 : NowSeconds() + exptime;
  }
  bool Expired(const StoredValue& value, std::uint64_t now) const {
    return value.expires_at != 0 && value.expires_at <= now;
  }

  void HandleGet(const Request& request, bool with_cas, std::string* out);
  void HandleSet(const Request& request, std::string* out);
  void HandleCas(const Request& request, std::string* out);
  void HandleTouch(const Request& request, std::string* out);

  GeneralCuckooMap<std::string, StoredValue> store_;
  std::function<std::uint64_t()> clock_;
  std::atomic<std::uint64_t> next_cas_{1};
  PerThreadCounter hits_;
  PerThreadCounter misses_;
  PerThreadCounter sets_;
  PerThreadCounter deletes_;
  PerThreadCounter expirations_;
};

}  // namespace cuckoo

#endif  // SRC_KVSERVER_KV_SERVICE_H_
