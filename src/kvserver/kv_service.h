// KvService — a MemC3-shaped in-process key-value service: the memcached
// text protocol dispatched onto the concurrent cuckoo table. Variable-length
// keys and values go through GeneralCuckooMap (the §7 generality layer);
// every public method is safe to call from any number of connection threads.
//
// Supported semantics: get/gets (single- and multi-key)/set/cas/delete/touch/
// stats, with lazy TTL expiry and monotonically increasing cas ids. exptime
// follows memcached: 0 = never, <= 30 days = relative seconds, > 30 days =
// absolute UNIX timestamp. Multi-key gets route through the table's batched
// prefetching lookup (WithValueBatch).
#ifndef SRC_KVSERVER_KV_SERVICE_H_
#define SRC_KVSERVER_KV_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/per_thread_counter.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/kvserver/protocol.h"

namespace cuckoo {

class KvService {
 public:
  // exptime values above this are absolute UNIX timestamps, not relative
  // TTLs (memcached's REALTIME_MAXDELTA, 30 days in seconds).
  static constexpr std::uint32_t kMaxRelativeExptime = 60 * 60 * 24 * 30;

  struct Options {
    std::size_t initial_bucket_count_log2 = 10;
    bool auto_expand = true;
    // Time source in seconds; injectable so TTL behaviour is testable
    // deterministically. Null = wall clock.
    std::function<std::uint64_t()> clock;
  };

  KvService() : KvService(Options{}) {}
  explicit KvService(Options opts);

  // Execute one request, appending the protocol response to *response_out.
  void Process(const Request& request, std::string* response_out);

  // Per-connection driver: feed raw protocol bytes, receive raw response
  // bytes. Each connection owns one Connection (the parser is stateful);
  // all connections share the service.
  class Connection {
   public:
    explicit Connection(KvService* service) : service_(service) {}

    // Parse and execute everything in `bytes`; append responses to *out.
    void Drive(std::string_view bytes, std::string* out);

    // Bytes of partial request currently buffered (backpressure input).
    std::size_t BufferedBytes() const noexcept { return parser_.BufferedBytes(); }

    // True if the protocol stream is unrecoverable; close the connection.
    bool Broken() const noexcept { return parser_.Broken(); }

   private:
    KvService* service_;
    RequestParser parser_;
  };

  Connection Connect() { return Connection(this); }

  // Extra STAT lines appended to every `stats` response — the network server
  // installs its connection/traffic counters here. The hook must be
  // thread-safe; install before serving traffic.
  void SetExtraStatsHook(std::function<void(std::string*)> hook) {
    extra_stats_ = std::move(hook);
  }

  std::size_t ItemCount() const noexcept { return store_.Size(); }
  std::uint64_t GetHits() const noexcept { return static_cast<std::uint64_t>(hits_.Sum()); }
  std::uint64_t GetMisses() const noexcept { return static_cast<std::uint64_t>(misses_.Sum()); }
  std::uint64_t Expirations() const noexcept {
    return static_cast<std::uint64_t>(expirations_.Sum());
  }
  MapStatsSnapshot StoreStats() const { return store_.Stats(); }

 private:
  struct StoredValue {
    std::string data;
    std::uint32_t flags = 0;
    std::uint64_t cas_id = 0;
    std::uint64_t expires_at = 0;  // absolute seconds; 0 = never
  };

  std::uint64_t NowSeconds() const { return clock_(); }
  // memcached exptime semantics: 0 = never; values up to 30 days are a
  // relative TTL; anything larger is already an absolute UNIX timestamp
  // (which may be in the past, making the entry immediately expired).
  std::uint64_t DeadlineFor(std::uint32_t exptime) const {
    if (exptime == 0) {
      return 0;
    }
    if (exptime > kMaxRelativeExptime) {
      return exptime;
    }
    return NowSeconds() + exptime;
  }
  bool Expired(const StoredValue& value, std::uint64_t now) const {
    return value.expires_at != 0 && value.expires_at <= now;
  }

  void HandleGet(const Request& request, bool with_cas, std::string* out);
  void HandleSet(const Request& request, std::string* out);
  void HandleCas(const Request& request, std::string* out);
  void HandleTouch(const Request& request, std::string* out);

  GeneralCuckooMap<std::string, StoredValue> store_;
  std::function<std::uint64_t()> clock_;
  std::function<void(std::string*)> extra_stats_;
  std::atomic<std::uint64_t> next_cas_{1};
  PerThreadCounter hits_;
  PerThreadCounter misses_;
  PerThreadCounter sets_;
  PerThreadCounter deletes_;
  PerThreadCounter expirations_;
};

}  // namespace cuckoo

#endif  // SRC_KVSERVER_KV_SERVICE_H_
