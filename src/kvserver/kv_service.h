// KvService — a MemC3-shaped in-process key-value service: the memcached
// text protocol dispatched onto the concurrent cuckoo table. Variable-length
// keys and values go through GeneralCuckooMap (the §7 generality layer);
// every public method is safe to call from any number of connection threads.
//
// Supported semantics: get/gets (single- and multi-key)/set/cas/delete/touch/
// stats, with lazy TTL expiry and monotonically increasing cas ids. exptime
// follows memcached: 0 = never, <= 30 days = relative seconds, > 30 days =
// absolute UNIX timestamp. Multi-key gets route through the table's batched
// prefetching lookup (WithValueBatch).
#ifndef SRC_KVSERVER_KV_SERVICE_H_
#define SRC_KVSERVER_KV_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/per_thread_counter.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/kvserver/protocol.h"
#include "src/obs/histogram.h"
#include "src/obs/slowlog.h"
#include "src/store/tiered_store.h"

namespace cuckoo {

class KvService {
 public:
  // exptime values above this are absolute UNIX timestamps, not relative
  // TTLs (memcached's REALTIME_MAXDELTA, 30 days in seconds).
  static constexpr std::uint32_t kMaxRelativeExptime = 60 * 60 * 24 * 30;

  // The stored record for one key. Public so the durability layer (WAL,
  // snapshots, recovery) can serialize and restore entries verbatim.
  // With a tiered store attached, values at/above the tiering threshold
  // keep `data` empty and carry a value-log location instead — the table
  // entry is then a 16-byte index record, which is what lets the dataset
  // outgrow RAM.
  struct StoredValue {
    std::string data;
    std::uint32_t flags = 0;
    std::uint64_t cas_id = 0;
    std::uint64_t expires_at = 0;  // absolute seconds; 0 = never
    store::ValueLocation loc{};    // set iff the value lives in the value log

    bool Tiered() const noexcept { return loc.IsValid(); }
  };

  using StoreMap = GeneralCuckooMap<std::string, StoredValue>;

  // Durability hook. OnSet/OnDelete are invoked INSIDE the table's
  // bucket-pair critical section at the instant the mutation is applied, so
  // the observer can assign a log sequence number whose order matches the
  // per-key order of table mutations (two racing SETs of one key serialize
  // identically in the table and in the log). They must not block on I/O —
  // enqueue and return. WaitDurable is called OUTSIDE the locks, before the
  // client response is released, and may block per the fsync policy. It
  // returns false when durability could not be achieved (the log hit a
  // write/fsync error); the service then answers SERVER_ERROR instead of a
  // success ack — the mutation is applied in memory but never promised.
  //
  // Every mutation is logged as its resolved unconditional effect: a
  // successful cas/touch reports the final stored state through OnSet, so
  // replay never needs to re-evaluate conditions.
  class MutationObserver {
   public:
    virtual ~MutationObserver() = default;
    virtual std::uint64_t OnSet(std::string_view key, const StoredValue& stored) = 0;
    virtual std::uint64_t OnDelete(std::string_view key) = 0;
    virtual bool WaitDurable(std::uint64_t lsn) = 0;
  };

  // Install before serving traffic; the observer must outlive the service.
  void SetMutationObserver(MutationObserver* observer) { observer_ = observer; }

  // `bgsave` command handler: return true if a snapshot was started, false
  // if one is already running (reported to the client as BUSY).
  void SetBgsaveHook(std::function<bool()> hook) { bgsave_ = std::move(hook); }

  // ----- Replication hooks ---------------------------------------------------

  // Read-only (replica) mode: set/cas/delete/touch answer SERVER_ERROR with
  // a redirect to `primary` instead of mutating, and lazy expiry stops
  // erasing on GET (the primary replicates the authoritative delete; erasing
  // locally would fork the replica's WAL off the primary's LSN sequence).
  // `primary` is latched on the first call and must not change afterwards;
  // promotion (`replicaof none`) only ever flips the flag back off.
  void SetReadOnly(bool read_only, const std::string& primary) {
    if (readonly_redirect_.empty() && !primary.empty()) {
      readonly_redirect_ = primary;
    }
    read_only_.store(read_only, std::memory_order_release);
  }
  bool ReadOnly() const noexcept { return read_only_.load(std::memory_order_acquire); }

  // Allow `replicate` connection upgrades (the server wires the actual fd
  // handoff; without this the verb answers SERVER_ERROR).
  void SetReplicationUpgradeEnabled(bool enabled) { repl_upgrade_enabled_ = enabled; }

  // `replicaof` command handler: receives the parsed request and returns the
  // full protocol response (e.g. "OK\r\n"). Unset => ERROR.
  void SetReplicaofHandler(std::function<std::string(const Request&)> handler) {
    replicaof_ = std::move(handler);
  }

  struct Options {
    std::size_t initial_bucket_count_log2 = 10;
    bool auto_expand = true;
    // Lock stripes in the backing table. Expansion goes incremental (online)
    // once bucket_count % stripe_count == 0; smaller tables fall back to the
    // stop-the-world rehash. Tests shrink this to force the online path early.
    std::size_t stripe_count = LockStripes::kDefaultStripeCount;
    // Back the table cores with 2 MB transparent huge pages (madvise; falls
    // back to normal pages when the kernel declines). The granted byte count
    // is visible as `table_hugepage_bytes` / cuckoo_table_hugepage_bytes.
    bool hugepages = false;
    // Time source in seconds; injectable so TTL behaviour is testable
    // deterministically. Null = wall clock.
    std::function<std::uint64_t()> clock;
    // Commands taking at least this long land in a bounded ring dumped by
    // `stats slowlog`. 0 disables the log (the per-command latency
    // histograms are always on).
    std::uint64_t slowlog_threshold_ns = 0;
    std::size_t slowlog_capacity = 128;
    // Larger-than-memory tier. Null = every value inline in RAM (legacy
    // behaviour). The tier must be opened before and outlive the service.
    store::TieredStore* tier = nullptr;
  };

  KvService() : KvService(Options{}) {}
  explicit KvService(Options opts);

  // A GET parked on disk reads: HandleGet fills the item list and location
  // records, StartFetches resolves them on reader threads, FinishDeferred
  // renders the response in key order back on the caller's thread.
  struct DeferredGet {
    struct Item {
      std::string key;
      bool live = false;        // table hit, not expired
      bool need_fetch = false;  // tiered and not in the hot cache
      bool fetch_ok = false;    // disk read landed and verified
      std::string data;
      std::uint32_t flags = 0;
      std::uint64_t cas_id = 0;
      store::ValueLocation loc{};
    };
    bool with_cas = false;
    RequestType type = RequestType::kGet;
    std::uint64_t start_ns = 0;  // Process() entry; closes at FinishDeferred
    std::vector<Item> items;
    std::atomic<std::size_t> remaining{0};  // outstanding disk fetches
  };

  // kUpgradeReplication: the request was a `replicate` verb on a server with
  // replication enabled — no response bytes are appended; the caller must
  // detach the connection and hand its fd to the replication hub.
  enum class ProcessStatus : std::uint8_t { kDone, kSuspended, kUpgradeReplication };

  // Execute one request, appending the protocol response to *response_out.
  void Process(const Request& request, std::string* response_out) {
    (void)Process(request, response_out, nullptr);
  }

  // Async-aware variant: a GET that must touch disk returns kSuspended with
  // *deferred set instead of blocking; the caller parks the connection,
  // calls StartFetches, and on completion FinishDeferred. With `deferred`
  // null every request completes synchronously (disk reads block inline).
  ProcessStatus Process(const Request& request, std::string* response_out,
                        std::shared_ptr<DeferredGet>* deferred);

  // Submit the deferred GET's disk reads; `on_complete` fires exactly once,
  // on a reader thread, after the last fetch lands. Call once per deferred.
  void StartFetches(const std::shared_ptr<DeferredGet>& deferred,
                    std::function<void()> on_complete);

  // Render the completed deferred GET (failed fetches count as misses) and
  // close out its latency accounting.
  void FinishDeferred(DeferredGet& deferred, std::string* out);

  // Per-connection driver: feed raw protocol bytes, receive raw response
  // bytes. Each connection owns one Connection (the parser is stateful);
  // all connections share the service.
  class Connection {
   public:
    explicit Connection(KvService* service) : service_(service) {}

    // kUpgradeReplication: stop driving — the stream switched protocols.
    // upgrade_start_lsn() has the requested LSN and TakeBufferedInput() any
    // bytes that arrived after the `replicate` line.
    enum class DriveStatus : std::uint8_t { kIdle, kSuspended, kUpgradeReplication };

    // Parse and execute everything in `bytes`; append responses to *out.
    void Drive(std::string_view bytes, std::string* out) {
      (void)Drive(bytes, out, nullptr);
    }

    // Async-aware variant: stops at the first request that parks on disk,
    // returning kSuspended with *deferred set; unparsed input stays
    // buffered. After FinishDeferred, call Drive("", ...) to resume the
    // buffered stream (which may suspend again).
    DriveStatus Drive(std::string_view bytes, std::string* out,
                      std::shared_ptr<DeferredGet>* deferred);

    // Bytes of partial request currently buffered (backpressure input).
    std::size_t BufferedBytes() const noexcept { return parser_.BufferedBytes(); }

    // True if the protocol stream is unrecoverable; close the connection.
    bool Broken() const noexcept { return parser_.Broken(); }

    // Valid after Drive returned kUpgradeReplication.
    std::uint64_t upgrade_start_lsn() const noexcept { return upgrade_start_lsn_; }
    std::string TakeBufferedInput() { return parser_.TakeBuffered(); }

   private:
    KvService* service_;
    RequestParser parser_;
    std::uint64_t upgrade_start_lsn_ = 0;
  };

  Connection Connect() { return Connection(this); }

  // ----- Tiered-store integration -------------------------------------------

  store::TieredStore* tier() const noexcept { return tier_; }

  // GC relocation hook (see TieredStore::RelocateFn): re-checks liveness
  // under the bucket locks and swings the entry's location to the record's
  // new home, logging the move through the normal observer path.
  store::TieredStore::RelocateResult RelocateTiered(const std::string& key,
                                                    const store::ValueLocation& old_loc,
                                                    std::string_view data);

  // Extra STAT lines appended to every `stats` response — the network server
  // installs its connection/traffic counters here, the durability layer its
  // WAL/snapshot counters. Hooks must be thread-safe; install before serving
  // traffic. Hooks run in installation order.
  void AddExtraStatsHook(std::function<void(std::string*)> hook) {
    extra_stats_.push_back(std::move(hook));
  }

  // Extra STAT lines appended only to `stats detail` responses — latency
  // percentiles and other expensive-to-render reports live here so the plain
  // `stats` hot path stays cheap. Same contract as AddExtraStatsHook.
  void AddDetailStatsHook(std::function<void(std::string*)> hook) {
    detail_stats_.push_back(std::move(hook));
  }

  // Prometheus text-format metrics for the service: per-command latency
  // summaries, hit/miss/mutation counters, and the table-level cuckoo
  // counters. Thread-safe; wire into a MetricsRegistry as a source.
  void AppendMetricsText(std::string* out) const;

  obs::Slowlog& slowlog() noexcept { return slowlog_; }
  const obs::Slowlog& slowlog() const noexcept { return slowlog_; }

  // Snapshot of the end-to-end Process() latency histogram for one command
  // kind (benches and tests; `stats detail` serves the same data on-wire).
  obs::HistogramSnapshot CommandLatency(RequestType type) const {
    return cmd_ns_[static_cast<std::size_t>(type)].Snapshot();
  }

  // Toggle sampled latency recording inside the cuckoo table (the
  // per-command histograms in this class are unaffected — they are one
  // clock pair per network request and always on).
  void SetLatencyProfiling(bool enabled) { store_.SetLatencyProfiling(enabled); }

  // ----- Recovery API (single-threaded, before serving traffic) -------------

  // Apply a snapshot/WAL record directly: upsert the entry verbatim and
  // advance the cas floor past its cas id. Returns false only if the table
  // refused the insert (auto_expand disabled and full).
  bool RestoreEntry(std::string key, StoredValue value);

  // Apply a logged delete. Missing keys are fine (idempotent replay).
  bool RestoreErase(const std::string& key) { return store_.Erase(key); }

  // Ensure future cas ids are strictly greater than `cas_id`.
  void AdvanceCasFloor(std::uint64_t cas_id);

  // Drop everything (recovery retry after a partially loaded corrupt
  // snapshot). Exclusive; only call before serving traffic.
  void RestoreClear() { store_.Clear(); }

  // ----- Online snapshot (fuzzy walk; writers keep running) -----------------

  // Walk a fuzzy snapshot of the store (see GeneralCuckooMap::
  // TrySnapshotBuckets): `fn` sees each live entry at least once, copies
  // taken under per-bucket locks only. Returns false if a table expansion
  // interrupted the walk — the caller discards partial output and retries.
  bool TrySnapshotEntries(const std::function<void(const std::string&, const StoredValue&)>& fn,
                          StoreMap::SnapshotWalkStats* stats = nullptr) const {
    return store_.TrySnapshotBuckets(fn, /*lock_retries=*/8, stats);
  }

  std::size_t ItemCount() const noexcept { return store_.Size(); }
  std::uint64_t GetHits() const noexcept { return static_cast<std::uint64_t>(hits_.Sum()); }
  std::uint64_t GetMisses() const noexcept { return static_cast<std::uint64_t>(misses_.Sum()); }
  std::uint64_t Expirations() const noexcept {
    return static_cast<std::uint64_t>(expirations_.Sum());
  }
  MapStatsSnapshot StoreStats() const { return store_.Stats(); }

 private:
  std::uint64_t NowSeconds() const { return clock_(); }
  // memcached exptime semantics: 0 = never; values up to 30 days are a
  // relative TTL; anything larger is already an absolute UNIX timestamp
  // (which may be in the past, making the entry immediately expired).
  std::uint64_t DeadlineFor(std::uint32_t exptime) const {
    if (exptime == 0) {
      return 0;
    }
    if (exptime > kMaxRelativeExptime) {
      return exptime;
    }
    return NowSeconds() + exptime;
  }
  bool Expired(const StoredValue& value, std::uint64_t now) const {
    return value.expires_at != 0 && value.expires_at <= now;
  }

  ProcessStatus HandleGet(const Request& request, bool with_cas, std::string* out,
                          std::shared_ptr<DeferredGet>* deferred);
  void HandleSet(const Request& request, std::string* out);
  void HandleCas(const Request& request, std::string* out);
  void HandleTouch(const Request& request, std::string* out);
  void HandleStats(const Request& request, std::string* out);
  void HandleDelete(const Request& request, std::string* out);

  // Shared tail of the sync and deferred GET paths: VALUE blocks in key
  // order, hit/miss accounting, END.
  void RenderGet(DeferredGet& deferred, std::string* out);

  // Process() minus the latency accounting (the switch on request type).
  ProcessStatus Dispatch(const Request& request, std::string* out,
                         std::shared_ptr<DeferredGet>* deferred);
  void AppendLatencyStats(std::string* out) const;
  void AppendSlowlogStats(std::string* out) const;
  void AppendTierStats(std::string* out) const;

  // One histogram slot per RequestType value.
  static constexpr std::size_t kCommandKinds = 10;
  static const char* CommandName(RequestType type) noexcept;

  StoreMap store_;
  store::TieredStore* tier_ = nullptr;
  std::function<std::uint64_t()> clock_;
  std::vector<std::function<void(std::string*)>> extra_stats_;
  std::vector<std::function<void(std::string*)>> detail_stats_;
  MutationObserver* observer_ = nullptr;
  std::function<bool()> bgsave_;
  std::function<std::string(const Request&)> replicaof_;
  std::atomic<bool> read_only_{false};
  bool repl_upgrade_enabled_ = false;    // set before serving traffic
  std::string readonly_redirect_;        // latched before serving traffic
  std::atomic<std::uint64_t> next_cas_{1};
  PerThreadCounter hits_;
  PerThreadCounter misses_;
  PerThreadCounter sets_;
  PerThreadCounter deletes_;
  PerThreadCounter expirations_;
  obs::Histogram cmd_ns_[kCommandKinds];  // end-to-end Process() latency
  obs::Slowlog slowlog_;
};

}  // namespace cuckoo

#endif  // SRC_KVSERVER_KV_SERVICE_H_
