// SocketServer — a thread-per-connection UNIX-domain-socket front end for
// KvService, turning the in-process service into a runnable memcached-lite
// daemon. Deliberately simple (blocking I/O, one thread per connection): the
// point of this repo is the table, not an event loop.
#ifndef SRC_KVSERVER_SOCKET_SERVER_H_
#define SRC_KVSERVER_SOCKET_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/kvserver/kv_service.h"

namespace cuckoo {

class SocketServer {
 public:
  // Serves `service` (not owned) on a UNIX socket at `path` (unlinked and
  // re-created).
  SocketServer(KvService* service, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Bind + listen + start the accept loop. Returns false on socket errors.
  bool Start();

  // Stop accepting, close all connections, join all threads.
  void Stop();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t ConnectionsAccepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  KvService* service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  // Open connection fds, so Stop() can shut down blocked readers.
  std::mutex fds_mutex_;
  std::vector<int> open_fds_;
};

// Minimal blocking client for tests and examples: connects to the server's
// UNIX socket, sends protocol bytes, reads until the expected terminator.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }

  // Send `request` and read until the response ends with `terminator`
  // (e.g. "END\r\n" for get, "STORED\r\n" for set). Returns the raw bytes.
  std::string RoundTrip(const std::string& request, const std::string& terminator);

 private:
  int fd_ = -1;
};

}  // namespace cuckoo

#endif  // SRC_KVSERVER_SOCKET_SERVER_H_
