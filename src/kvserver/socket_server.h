// SocketServer — an epoll-based, non-blocking network front end for
// KvService, serving the memcached text protocol over UNIX domain sockets
// and/or loopback TCP. This is the production-shaped layer the in-process
// service plugs into:
//
//   * N event-loop threads, each with its own epoll instance; listening
//     sockets are registered in every loop with EPOLLEXCLUSIVE so the kernel
//     wakes exactly one loop per connection burst. Accepted sockets are then
//     spread round-robin across loops (the accepting loop hands foreign fds
//     over via a per-loop queue + wake eventfd); once adopted, a connection
//     is owned by exactly one loop for its lifetime.
//   * Request pipelining: a readable event drains the socket, parses every
//     complete request in the input, and responds with one accumulated
//     flush (writev-style single send of all pending responses).
//   * Robustness controls: max-connection cap (accept-then-close over the
//     limit), per-connection idle timeout, output-buffer backpressure (a
//     connection that doesn't read its responses stops being read from until
//     it drains), input caps via RequestParser, and graceful shutdown that
//     stops reading, flushes in-flight responses up to a drain deadline,
//     then closes.
//   * Parked reads (larger-than-memory tier): a GET whose values live in the
//     value log suspends the connection instead of blocking the event loop.
//     The loop keeps serving other connections; when the disk reads land on
//     reader threads, a completion token wakes the owning loop, which renders
//     the response and resumes the connection's buffered input stream. Parked
//     connections are immune to idle reaping, and a graceful Stop() lets
//     their in-flight reads finish (bounded by the drain deadline) so the
//     response is either fully flushed or never started — no torn writes.
#ifndef SRC_KVSERVER_SOCKET_SERVER_H_
#define SRC_KVSERVER_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kvserver/kv_service.h"

namespace cuckoo {

class SocketServer {
 public:
  struct Options {
    // UNIX listener: empty = disabled. The path is unlinked and re-created.
    std::string unix_path;
    // TCP listener on loopback: disabled unless enable_tcp. Port 0 binds an
    // ephemeral port; read the result from tcp_port() after Start().
    bool enable_tcp = false;
    std::uint16_t tcp_port = 0;
    // Event-loop threads (>= 1). Accepted connections are spread across
    // loops round-robin, so concurrency scales with this even when one loop
    // drains the whole accept backlog.
    int event_threads = 2;
    // Hard cap on concurrent connections; over the cap, accepts are closed
    // immediately (counted in StatsSnapshot::rejected_over_limit).
    std::size_t max_connections = 1024;
    // Close connections silent for this long. 0 = never.
    std::uint64_t idle_timeout_ms = 0;
    // Backpressure: stop reading from a connection whose un-flushed output
    // exceeds this; resume when it drains below half.
    std::size_t max_output_buffered = 8u << 20;
    // Close a connection whose buffered partial request exceeds this.
    std::size_t max_input_buffered = 2u << 20;
    // Graceful Stop(): how long to keep flushing in-flight responses.
    std::uint64_t drain_timeout_ms = 1000;
    // Replication upgrade: when a connection issues `replicate <lsn>`, the
    // server detaches its fd from the event loop and hands it here along
    // with the requested start LSN and any input bytes that arrived after
    // the command line (early ACKs). The callee owns the fd (non-blocking;
    // it may flip it back to blocking). Unset => the verb is answered with
    // SERVER_ERROR at the service layer.
    std::function<void(int fd, std::uint64_t start_lsn, std::string leftover)>
        replication_handoff;
  };

  struct StatsSnapshot {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_over_limit = 0;
    std::uint64_t closed_idle = 0;
    std::uint64_t curr_connections = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t backpressure_pauses = 0;
    // Connections suspended on an async value-log read (cumulative), and the
    // number currently suspended.
    std::uint64_t parked_reads = 0;
    std::uint64_t curr_parked = 0;
  };

  SocketServer(KvService* service, Options options);
  // Legacy convenience: UNIX-only server with default options.
  SocketServer(KvService* service, std::string path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Bind + listen + start the event loops. Returns false on socket errors.
  // Also installs the server's counters as extra `stats` lines on `service`.
  bool Start();

  // Graceful stop: stop accepting and reading, flush pending responses
  // (bounded by drain_timeout_ms), close everything, join the loops.
  void Stop();

  const std::string& path() const noexcept { return options_.unix_path; }
  // Actual TCP port after Start() (useful with tcp_port = 0).
  std::uint16_t tcp_port() const noexcept { return bound_tcp_port_; }

  std::uint64_t ConnectionsAccepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  StatsSnapshot Stats() const noexcept;

 private:
  struct Conn;
  struct Loop;

  void RunLoop(Loop* loop);
  void HandleAccept(Loop* loop, int listen_fd);
  void RegisterConn(Loop* loop, int fd);
  void AdoptPendingFds(Loop* loop);
  void HandleReadable(Loop* loop, Conn* conn);
  bool FlushOutput(Loop* loop, Conn* conn);  // false = connection died
  void CloseConn(Loop* loop, Conn* conn);
  // CloseConn minus the ::close(): deregisters the connection and returns
  // its fd to the caller (replication upgrade handoff).
  int DetachConn(Loop* loop, Conn* conn);
  // Flush pipelined responses, detach the fd, invoke replication_handoff.
  void UpgradeToReplication(Loop* loop, Conn* conn);
  void UpdateEvents(Loop* loop, Conn* conn);
  void SweepIdle(Loop* loop, std::uint64_t now_ms);
  // Suspend `conn` on `deferred` and launch its disk fetches; the completion
  // callback posts the connection id to the loop's completion queue (never a
  // Conn* — the connection may die while the read is in flight).
  void ParkConn(Loop* loop, Conn* conn, std::shared_ptr<KvService::DeferredGet> deferred);
  // Drain the loop's completion queue: render finished deferred GETs, flush,
  // and resume (or re-park, or close when draining) their connections.
  void ProcessCompletions(Loop* loop, bool draining);

  KvService* service_;
  Options options_;
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::uint64_t> next_loop_{0};  // round-robin accept placement
  std::atomic<std::uint64_t> next_conn_id_{1};  // completion-token namespace

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_over_limit_{0};
  std::atomic<std::uint64_t> closed_idle_{0};
  std::atomic<std::uint64_t> curr_connections_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> backpressure_pauses_{0};
  std::atomic<std::uint64_t> parked_reads_{0};
  std::atomic<std::uint64_t> curr_parked_{0};
};

// Minimal blocking client for tests, examples, and benches: connects over a
// UNIX socket or loopback TCP, sends protocol bytes, reads responses.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path);          // UNIX
  SocketClient(const std::string& host, std::uint16_t port);  // TCP
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  bool connected() const noexcept { return fd_ >= 0; }

  // Send raw bytes (blocking until fully written). Returns false on error.
  bool Send(std::string_view bytes);

  // One blocking read; appends to *buffer. Returns bytes read (0 = EOF,
  // negative = error).
  long Receive(std::string* buffer);

  // Send `request` and read until the response ends with `terminator`
  // (e.g. "END\r\n" for get, "STORED\r\n" for set). Returns the raw bytes.
  std::string RoundTrip(const std::string& request, const std::string& terminator);

 private:
  int fd_ = -1;
};

}  // namespace cuckoo

#endif  // SRC_KVSERVER_SOCKET_SERVER_H_
