// A deliberately tiny HTTP/1.0 exposition endpoint for /metrics.
//
// One background thread, blocking accept (poll with a short timeout so Stop()
// is prompt), one request per connection, loopback TCP only. This is a
// scrape target, not a web server: a Prometheus scraper sends one GET every
// few seconds, so there is nothing to pipeline or multiplex — and keeping it
// off the epoll front end means a wedged scraper can never interfere with
// the KV data plane.
#ifndef SRC_OBS_METRICS_HTTP_H_
#define SRC_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace cuckoo {
namespace obs {

class MetricsHttpServer {
 public:
  // Serves `registry->Render()` at GET /metrics. The registry must outlive
  // the server.
  explicit MetricsHttpServer(const MetricsRegistry* registry) : registry_(registry) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Bind 127.0.0.1:`port` (0 = ephemeral; read back via port()) and start
  // the serving thread. Returns false on socket errors.
  bool Start(std::uint16_t port);

  // Close the listener and join the thread. Idempotent.
  void Stop();

  std::uint16_t port() const noexcept { return port_; }
  std::uint64_t RequestsServed() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConnection(int fd);

  const MetricsRegistry* registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace cuckoo

#endif  // SRC_OBS_METRICS_HTTP_H_
