// Mergeable log-bucketed latency histogram with per-thread shards.
//
// Layout is HdrHistogram-style log-linear (the same bucket math as
// src/benchkit/latency.h, widened to the full uint64 range): values below 16
// get exact 1-unit buckets; above that, each power-of-two major bucket is
// split into 16 linear sub-buckets, bounding relative error at 1/16 = 6.25%.
//
// The record path is the part that matters: it runs on the hot paths of the
// cuckoo table and the KV server, so it must not serialize threads.
//   * Each thread writes to its own cache-line-padded shard (dense thread ids
//     from CurrentThreadId()), allocated lazily on first record.
//   * Counters are std::atomic slots but are only ever written by their
//     owning thread, so updates use a relaxed load+store pair — plain
//     mov/add/mov on x86, no lock prefix, no RMW, no contention. The atomic
//     type exists solely so concurrent Snapshot() readers are race-free
//     under TSan; readers may observe a slightly stale count, never a torn
//     one.
//   * If more than kMaxThreads threads ever run, dense ids wrap and two
//     threads can share a shard; the non-RMW increment then loses updates.
//     That is an accepted trade (counts are statistics, not invariants) and
//     does not corrupt bucket structure: every slot still holds a valid
//     count that is <= the true count.
//
// Snapshot() sums the shards into a HistogramSnapshot — a plain value type
// that merges associatively (bucket-wise addition), so per-thread, per-shard,
// and per-process histograms aggregate in any order.
//
// Compile-time contracts: nothing here is lock-protected, so there are no
// GUARDED_BY annotations — every shared word is an atomic, and the relaxed
// orders used are listed in tools/analysis/memory_order_allowlist.json for
// this file (see docs/memory_model.md, "Compile-time contracts").
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/cpu.h"

namespace cuckoo {
namespace obs {

// ----- Bucket math ---------------------------------------------------------

inline constexpr int kHistSubBits = 4;
inline constexpr std::size_t kHistSubBuckets = std::size_t{1} << kHistSubBits;  // 16
// Majors 4..63 plus the 16 exact low buckets: (64 - 4 + 1) * 16 = 976.
inline constexpr std::size_t kHistBucketCount = (64 - kHistSubBits + 1) * kHistSubBuckets;

// Bucket index for `v`, covering the full uint64 range.
inline std::size_t HistBucketFor(std::uint64_t v) noexcept {
  if (v < kHistSubBuckets) {
    return static_cast<std::size_t>(v);  // exact buckets below 16
  }
  const int major = 63 - __builtin_clzll(v);
  const std::size_t sub =
      static_cast<std::size_t>(v >> (major - kHistSubBits)) & (kHistSubBuckets - 1);
  return static_cast<std::size_t>(major - kHistSubBits + 1) * kHistSubBuckets + sub;
}

// Largest value mapping to bucket `index` (inverse of HistBucketFor).
inline std::uint64_t HistBucketUpperBound(std::size_t index) noexcept {
  if (index < kHistSubBuckets) {
    return index;
  }
  const std::uint64_t major = index / kHistSubBuckets + kHistSubBits - 1;
  const std::uint64_t sub = index % kHistSubBuckets;
  // Wraps to 2^64-1 for the topmost bucket (unsigned overflow is defined).
  return ((kHistSubBuckets + sub + 1) << (major - kHistSubBits)) - 1;
}

// ----- Snapshot (plain value, mergeable) -----------------------------------

struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBucketCount> counts{};
  std::uint64_t total = 0;  // number of recorded values
  std::uint64_t sum = 0;    // exact sum of recorded values
  std::uint64_t max = 0;    // exact maximum recorded value

  // Bucket-wise addition: associative and commutative, so shards, threads,
  // and map shards can be merged in any grouping.
  void Merge(const HistogramSnapshot& other) noexcept {
    for (std::size_t i = 0; i < kHistBucketCount; ++i) {
      counts[i] += other.counts[i];
    }
    total += other.total;
    sum += other.sum;
    max = std::max(max, other.max);
  }

  std::uint64_t Count() const noexcept { return total; }

  // Exact mean (sum is tracked exactly, not reconstructed from buckets).
  double Mean() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(total);
  }

  // Value at quantile q in [0, 1]: upper edge of the bucket holding the q-th
  // sample (so the reported value is >= the true quantile and within 6.25%
  // of it). q = 1 reports the exact max. Returns 0 when empty.
  std::uint64_t Percentile(double q) const noexcept {
    if (total == 0) {
      return 0;
    }
    if (q >= 1.0) {
      return max;
    }
    if (q < 0.0) {
      q = 0.0;
    }
    const std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistBucketCount; ++i) {
      seen += counts[i];
      if (seen > rank) {
        // Never report past the exact max (the max's bucket upper bound can
        // exceed it by the sub-bucket width).
        return std::min(HistBucketUpperBound(i), max);
      }
    }
    return max;
  }

  std::uint64_t P50() const noexcept { return Percentile(0.50); }
  std::uint64_t P90() const noexcept { return Percentile(0.90); }
  std::uint64_t P99() const noexcept { return Percentile(0.99); }
  std::uint64_t P999() const noexcept { return Percentile(0.999); }
  std::uint64_t Max() const noexcept { return max; }
};

// ----- Recorder ------------------------------------------------------------

class Histogram {
 public:
  Histogram() = default;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  ~Histogram() {
    for (auto& slot : shards_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

  // Record one value. Hot path: a bucket computation plus three non-RMW
  // relaxed load/store pairs on this thread's private shard.
  void Record(std::uint64_t value) noexcept {
    Shard* shard = ShardForThisThread();
    RecordInto(shard, value);
  }

  // Sum every shard into a mergeable snapshot. Safe to call while other
  // threads record; concurrently recorded values may or may not appear, and
  // `sum`/`max` may run slightly ahead of `total` (each field is read
  // independently). No value is ever torn or double-counted.
  HistogramSnapshot Snapshot() const noexcept {
    HistogramSnapshot out;
    for (const auto& slot : shards_) {
      const Shard* shard = slot.load(std::memory_order_acquire);
      if (shard == nullptr) {
        continue;
      }
      for (std::size_t i = 0; i < kHistBucketCount; ++i) {
        const std::uint64_t c = shard->counts[i].load(std::memory_order_relaxed);
        out.counts[i] += c;
        out.total += c;
      }
      out.sum += shard->sum.load(std::memory_order_relaxed);
      out.max = std::max(out.max, shard->max.load(std::memory_order_relaxed));
    }
    return out;
  }

  // Zero every shard. Not atomic with respect to concurrent recorders: a
  // racing Record may land before or after the wipe of its slot, so counts
  // recorded during Reset may survive partially (e.g. in `sum` but not
  // `total`). Callers quiesce recorders when they need an exact zero.
  void Reset() noexcept {
    for (auto& slot : shards_) {
      Shard* shard = slot.load(std::memory_order_acquire);
      if (shard == nullptr) {
        continue;
      }
      for (auto& c : shard->counts) {
        c.store(0, std::memory_order_relaxed);
      }
      shard->sum.store(0, std::memory_order_relaxed);
      shard->max.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::array<std::atomic<std::uint64_t>, kHistBucketCount> counts{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };

  static void RecordInto(Shard* shard, std::uint64_t value) noexcept {
    auto& bucket = shard->counts[HistBucketFor(value)];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    shard->sum.store(shard->sum.load(std::memory_order_relaxed) + value,
                     std::memory_order_relaxed);
    if (value > shard->max.load(std::memory_order_relaxed)) {
      shard->max.store(value, std::memory_order_relaxed);
    }
  }

  Shard* ShardForThisThread() noexcept {
    auto& slot = shards_[static_cast<std::size_t>(CurrentThreadId())];
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard != nullptr) {
      return shard;
    }
    Shard* fresh = new Shard();
    Shard* expected = nullptr;
    // Another thread with a wrapped id may have installed first; use theirs.
    if (!slot.compare_exchange_strong(expected, fresh, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      delete fresh;
      return expected;
    }
    return fresh;
  }

  // Lazily allocated: an idle histogram costs kMaxThreads pointers, and a
  // snapshot only walks shards that exist.
  std::array<std::atomic<Shard*>, kMaxThreads> shards_{};
};

// ----- Sampling gate -------------------------------------------------------

// Decides, per thread and per call site family, whether to time this
// operation: true once every 2^kLog2Period calls. Used where a clock read
// per op would be measurable (the table's nanosecond-scale lookup path);
// microsecond-scale paths (KV commands, fsyncs) record every op instead.
//
// kTag distinguishes call-site families so each gets its own thread-local
// counter. Sharing one counter between two interleaved paths aliases badly:
// a strict insert/lookup alternation against an even period lands every
// sample on the same op kind, leaving the other histogram empty.
template <int kLog2Period, int kTag = 0>
struct SampleGate {
  static bool Tick() noexcept {
    thread_local std::uint32_t n = 0;
    return (n++ & ((std::uint32_t{1} << kLog2Period) - 1)) == 0;
  }
};

}  // namespace obs
}  // namespace cuckoo

#endif  // SRC_OBS_HISTOGRAM_H_
