// Prometheus text-exposition rendering (format version 0.0.4).
//
// MetricsRegistry collects text sources — callbacks that append fully-formed
// exposition lines — and renders them on demand; the HTTP endpoint
// (metrics_http.h) serves the rendered page. Helpers below emit the two
// shapes we use: plain counters/gauges and histogram summaries with
// quantile labels.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/histogram.h"

namespace cuckoo {
namespace obs {

// "# HELP name help\n# TYPE name type\nname value\n"
void AppendMetric(const std::string& name, const std::string& help,
                  const std::string& type, double value, std::string* out);
void AppendCounter(const std::string& name, const std::string& help,
                   std::uint64_t value, std::string* out);
void AppendGauge(const std::string& name, const std::string& help, double value,
                 std::string* out);

// A Prometheus summary from a histogram snapshot, in seconds if the samples
// are nanoseconds and `scale` is 1e-9 (quantile labels 0.5/0.9/0.99/0.999,
// plus _sum, _count, and a _max gauge).
void AppendLatencySummary(const std::string& name, const std::string& help,
                          const HistogramSnapshot& snapshot, double scale,
                          std::string* out);

class MetricsRegistry {
 public:
  using Source = std::function<void(std::string*)>;

  // Sources run in registration order on every render; they must be
  // thread-safe. Register before serving.
  void AddSource(Source source) {
    MutexLock lk(mutex_);
    sources_.push_back(std::move(source));
  }

  std::string Render() const {
    std::string out;
    MutexLock lk(mutex_);
    for (const auto& source : sources_) {
      source(&out);
    }
    return out;
  }

 private:
  mutable Mutex mutex_;
  std::vector<Source> sources_ GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace cuckoo

#endif  // SRC_OBS_METRICS_H_
