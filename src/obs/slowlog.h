// Threshold-based slowlog: a bounded ring buffer of the most recent
// operations whose latency exceeded a configured threshold (redis SLOWLOG
// shape). The fast path — latency below threshold — is one branch; only
// actual slow ops take the mutex, and a slow op by definition already paid
// far more than a lock handoff.
#ifndef SRC_OBS_SLOWLOG_H_
#define SRC_OBS_SLOWLOG_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {
namespace obs {

class Slowlog {
 public:
  struct Entry {
    std::uint64_t id = 0;          // monotonically increasing
    std::uint64_t latency_ns = 0;
    std::string op;                // command name, e.g. "set"
    std::string detail;            // typically the key
  };

  // threshold_ns == 0 disables the log entirely.
  Slowlog(std::uint64_t threshold_ns, std::size_t capacity)
      : threshold_ns_(threshold_ns), capacity_(capacity == 0 ? 1 : capacity) {}

  std::uint64_t threshold_ns() const noexcept { return threshold_ns_; }
  bool enabled() const noexcept { return threshold_ns_ != 0; }

  // Record `op` if it was slow enough. Returns true if logged.
  bool MaybeRecord(std::uint64_t latency_ns, std::string_view op,
                   std::string_view detail) {
    if (threshold_ns_ == 0 || latency_ns < threshold_ns_) {
      return false;
    }
    MutexLock lk(mutex_);
    if (entries_.size() == capacity_) {
      entries_.pop_front();
    }
    Entry e;
    e.id = next_id_++;
    e.latency_ns = latency_ns;
    e.op.assign(op.data(), op.size());
    e.detail.assign(detail.data(), detail.size());
    entries_.push_back(std::move(e));
    return true;
  }

  // Most recent entries, newest last.
  std::vector<Entry> Entries() const {
    MutexLock lk(mutex_);
    return std::vector<Entry>(entries_.begin(), entries_.end());
  }

  // Total ops that ever crossed the threshold (not capped by capacity).
  std::uint64_t TotalLogged() const {
    MutexLock lk(mutex_);
    return next_id_;
  }

  void Clear() {
    MutexLock lk(mutex_);
    entries_.clear();
  }

 private:
  const std::uint64_t threshold_ns_;
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<Entry> entries_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace cuckoo

#endif  // SRC_OBS_SLOWLOG_H_
