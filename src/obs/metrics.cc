#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace cuckoo {
namespace obs {
namespace {

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

void AppendHeader(const std::string& name, const std::string& help,
                  const std::string& type, std::string* out) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

}  // namespace

void AppendMetric(const std::string& name, const std::string& help,
                  const std::string& type, double value, std::string* out) {
  AppendHeader(name, help, type, out);
  out->append(name).append(" ");
  AppendDouble(value, out);
  out->append("\n");
}

void AppendCounter(const std::string& name, const std::string& help,
                   std::uint64_t value, std::string* out) {
  AppendHeader(name, help, "counter", out);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(name).append(" ").append(buf).append("\n");
}

void AppendGauge(const std::string& name, const std::string& help, double value,
                 std::string* out) {
  AppendMetric(name, help, "gauge", value, out);
}

void AppendLatencySummary(const std::string& name, const std::string& help,
                          const HistogramSnapshot& snapshot, double scale,
                          std::string* out) {
  AppendHeader(name, help, "summary", out);
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  static const char* kLabels[] = {"0.5", "0.9", "0.99", "0.999"};
  for (std::size_t i = 0; i < 4; ++i) {
    out->append(name).append("{quantile=\"").append(kLabels[i]).append("\"} ");
    AppendDouble(static_cast<double>(snapshot.Percentile(kQuantiles[i])) * scale, out);
    out->append("\n");
  }
  out->append(name).append("_sum ");
  AppendDouble(static_cast<double>(snapshot.sum) * scale, out);
  out->append("\n");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, snapshot.total);
  out->append(name).append("_count ").append(buf).append("\n");
  AppendGauge(name + "_max", help + " (maximum)",
              static_cast<double>(snapshot.max) * scale, out);
}

}  // namespace obs
}  // namespace cuckoo
