#include "src/obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cuckoo {
namespace obs {

bool MetricsHttpServer::Start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    return false;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&MetricsHttpServer::Serve, this);
  return true;
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (n <= 0) {
      continue;  // timeout (checks the stop flag) or EINTR
    }
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      continue;
    }
    HandleConnection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int fd) {
  // Read until the end of the request head (or the scraper stops sending).
  // Request bodies are not supported and not needed for GET.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/1000) <= 0) {
      return;  // slow or dead scraper: drop it, never block the loop
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      return;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  std::string status = "200 OK";
  std::string body;
  const bool is_get = request.rfind("GET ", 0) == 0;
  const std::size_t path_end = request.find(' ', 4);
  const std::string path =
      (is_get && path_end != std::string::npos) ? request.substr(4, path_end - 4) : "";
  if (!is_get) {
    status = "405 Method Not Allowed";
    body = "only GET is supported\n";
  } else if (path == "/metrics" || path == "/metrics/") {
    body = registry_->Render();
    requests_.fetch_add(1, std::memory_order_relaxed);
  } else if (path == "/" || path == "/health") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "try /metrics\n";
  }

  std::string response = "HTTP/1.0 " + status +
                         "\r\n"
                         "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\n"
                         "Connection: close\r\n\r\n" +
                         body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::write(fd, response.data() + sent, response.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace obs
}  // namespace cuckoo
