// ReplicaClient — the replica side of WAL-shipping replication.
//
// A single background thread maintains the link to the primary: connect,
// send `replicate <next_lsn>` (next_lsn = local WAL head + 1, so a restart
// resumes exactly where the local log ends), then either
//   * "SYNC <lsn> ..."      — apply the live frame stream record by record
//     through DurabilityManager::ApplyReplicated (local WAL first, table
//     second, LSNs preserved), or
//   * "FULLSYNC <lsn> <n>"  — download the snapshot to a temp file, swap all
//     local state for it (DurabilityManager::ResyncFromSnapshot), then apply
//     the stream from lsn + 1.
// Applied positions are acknowledged with "ACK <lsn>" lines on the same
// socket (heartbeats are acked too, keeping lag observable when idle). Any
// stream error — disconnect, CRC mismatch, LSN gap — tears the session down
// and reconnects with exponential backoff; the handshake re-negotiates
// resume-vs-bootstrap from scratch, so every failure mode converges.
//
// Stop() also doubles as promotion: the caller stops the client, then flips
// the service out of read-only mode (see server_main's `replicaof none`).
#ifndef SRC_REPL_REPLICA_CLIENT_H_
#define SRC_REPL_REPLICA_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/persist/durability.h"

namespace cuckoo {
namespace repl {

struct ReplicaClientOptions {
  std::string host;  // primary address (dotted quad or "localhost")
  std::uint16_t port = 0;
  persist::DurabilityManager* durability = nullptr;
  std::string wal_dir;  // scratch space for the bootstrap snapshot download
  std::uint64_t reconnect_min_ms = 50;
  std::uint64_t reconnect_max_ms = 2000;
};

class ReplicaClient {
 public:
  enum class State : int { kDisconnected, kConnecting, kFullSync, kStreaming };

  explicit ReplicaClient(ReplicaClientOptions options);
  ~ReplicaClient();

  ReplicaClient(const ReplicaClient&) = delete;
  ReplicaClient& operator=(const ReplicaClient&) = delete;

  // Spawn the replication thread. Call once, before the server's listeners
  // open — a `replicaof none` arriving between the two would otherwise
  // promote first and be overridden by this Start.
  void Start();

  // Disconnect and join the thread. Idempotent; safe from any thread
  // (including a server event loop handling `replicaof none`) — the
  // lifecycle is serialized internally.
  void Stop();

  State state() const { return static_cast<State>(state_.load(std::memory_order_acquire)); }
  const char* StateName() const;
  std::uint64_t Reconnects() const { return reconnects_.load(std::memory_order_relaxed); }
  std::uint64_t FullSyncs() const { return full_syncs_.load(std::memory_order_relaxed); }
  std::uint64_t CorruptStreams() const {
    return corrupt_streams_.load(std::memory_order_relaxed);
  }
  const std::string& primary_host() const { return options_.host; }
  std::uint16_t primary_port() const { return options_.port; }

  void AppendStats(std::string* out) const;        // `stats` lines
  void AppendMetricsText(std::string* out) const;  // Prometheus

 private:
  void Run();
  // One connection lifetime. Returns when the session dies; Run reconnects.
  void Session();
  int Connect();
  // Read up to and including '\n' into *line; overflow into *spill.
  bool ReadLine(int fd, std::string* line, std::string* spill);
  bool ReceiveSnapshot(int fd, std::uint64_t nbytes, std::string* carry,
                       const std::string& path);
  bool SendAck(int fd);
  // Poll+recv with stop checks; 0 = timeout, <0 = dead, >0 = bytes appended.
  long Receive(int fd, std::string* buffer);

  ReplicaClientOptions options_;
  // Serializes Start/Stop (e.g. a promotion racing shutdown); Run() never
  // takes it, so joining under the lock cannot deadlock.
  Mutex lifecycle_mu_;
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
  bool started_ GUARDED_BY(lifecycle_mu_) = false;
  std::atomic<bool> stop_{false};
  std::atomic<int> fd_{-1};  // live socket, for Stop() to shutdown()
  std::atomic<int> state_{static_cast<int>(State::kDisconnected)};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> corrupt_streams_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
};

}  // namespace repl
}  // namespace cuckoo

#endif  // SRC_REPL_REPLICA_CLIENT_H_
