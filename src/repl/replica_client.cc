#include "src/repl/replica_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/file_util.h"
#include "src/kvserver/protocol.h"
#include "src/obs/metrics.h"
#include "src/persist/wal.h"

namespace cuckoo {
namespace repl {
namespace {

constexpr int kPollIntervalMs = 200;

bool ParseU64Token(std::string_view token, std::uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  std::uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

ReplicaClient::ReplicaClient(ReplicaClientOptions options) : options_(std::move(options)) {}

ReplicaClient::~ReplicaClient() { Stop(); }

void ReplicaClient::Start() {
  MutexLock lock(lifecycle_mu_);
  started_ = true;
  thread_ = std::thread(&ReplicaClient::Run, this);
}

void ReplicaClient::Stop() {
  MutexLock lock(lifecycle_mu_);
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  started_ = false;
}

const char* ReplicaClient::StateName() const {
  switch (state()) {
    case State::kDisconnected:
      return "disconnected";
    case State::kConnecting:
      return "connecting";
    case State::kFullSync:
      return "full-sync";
    case State::kStreaming:
      return "streaming";
  }
  return "?";
}

void ReplicaClient::Run() {
  std::uint64_t backoff_ms = options_.reconnect_min_ms;
  bool first = true;
  while (!stop_.load(std::memory_order_acquire)) {
    if (!first) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      // Sleep in poll-interval slices so Stop() stays responsive.
      std::uint64_t slept = 0;
      while (slept < backoff_ms && !stop_.load(std::memory_order_acquire)) {
        const std::uint64_t step =
            backoff_ms - slept < kPollIntervalMs ? backoff_ms - slept : kPollIntervalMs;
        ::poll(nullptr, 0, static_cast<int>(step));
        slept += step;
      }
      backoff_ms = backoff_ms * 2 < options_.reconnect_max_ms ? backoff_ms * 2
                                                              : options_.reconnect_max_ms;
    }
    first = false;
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    Session();
    // Any session that got as far as streaming resets the backoff; a
    // connect/handshake failure keeps growing it.
    if (state() == State::kStreaming) {
      backoff_ms = options_.reconnect_min_ms;
    }
    state_.store(static_cast<int>(State::kDisconnected), std::memory_order_release);
  }
  state_.store(static_cast<int>(State::kDisconnected), std::memory_order_release);
}

int ReplicaClient::Connect() {
  state_.store(static_cast<int>(State::kConnecting), std::memory_order_release);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const char* host =
      (options_.host.empty() || options_.host == "localhost") ? "127.0.0.1"
                                                              : options_.host.c_str();
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

long ReplicaClient::Receive(int fd, std::string* buffer) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  const int r = ::poll(&pfd, 1, kPollIntervalMs);
  if (r == 0) {
    return 0;
  }
  if (r < 0) {
    return errno == EINTR ? 0 : -1;
  }
  char tmp[64 << 10];
  const ssize_t got = ::recv(fd, tmp, sizeof(tmp), 0);
  if (got > 0) {
    buffer->append(tmp, static_cast<std::size_t>(got));
    return static_cast<long>(got);
  }
  if (got < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return 0;
  }
  return -1;  // EOF or hard error
}

bool ReplicaClient::ReadLine(int fd, std::string* line, std::string* spill) {
  std::string buf;
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      *line = buf.substr(0, nl);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      spill->assign(buf, nl + 1, std::string::npos);
      return true;
    }
    if (buf.size() > 4096) {
      return false;  // no sane handshake line is this long
    }
    if (stop_.load(std::memory_order_acquire)) {
      return false;
    }
    if (Receive(fd, &buf) < 0) {
      return false;
    }
  }
}

bool ReplicaClient::ReceiveSnapshot(int fd, std::uint64_t nbytes, std::string* carry,
                                    const std::string& path) {
  AppendFile file;
  if (!file.Open(path, /*truncate=*/true)) {
    return false;
  }
  std::uint64_t written = 0;
  // Bytes that arrived glued to the handshake line belong to the snapshot.
  if (!carry->empty()) {
    const std::uint64_t take =
        carry->size() < nbytes ? carry->size() : static_cast<std::size_t>(nbytes);
    if (!file.Append(std::string_view(carry->data(), static_cast<std::size_t>(take)))) {
      return false;
    }
    written += take;
    carry->erase(0, static_cast<std::size_t>(take));
  }
  std::string buf;
  while (written < nbytes) {
    if (stop_.load(std::memory_order_acquire)) {
      return false;
    }
    buf.clear();
    const long got = Receive(fd, &buf);
    if (got < 0) {
      return false;
    }
    if (got == 0) {
      continue;
    }
    const std::uint64_t want = nbytes - written;
    const std::size_t take =
        buf.size() < want ? buf.size() : static_cast<std::size_t>(want);
    if (!file.Append(std::string_view(buf.data(), take))) {
      return false;
    }
    written += take;
    if (take < buf.size()) {
      carry->append(buf, take, std::string::npos);  // first live frames
    }
  }
  return file.Sync() && file.Close();
}

bool ReplicaClient::SendAck(int fd) {
  const std::string line =
      "ACK " + std::to_string(options_.durability->wal().LastAssignedLsn()) + "\r\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t sent = ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  acks_sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ReplicaClient::Session() {
  const int fd = Connect();
  if (fd < 0) {
    return;
  }
  fd_.store(fd, std::memory_order_release);
  std::string buf;
  bool ok = true;
  const std::uint64_t next_lsn = options_.durability->wal().LastAssignedLsn() + 1;
  {
    const std::string req = "replicate " + std::to_string(next_lsn) + "\r\n";
    std::size_t off = 0;
    while (ok && off < req.size()) {
      const ssize_t sent = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
      if (sent > 0) {
        off += static_cast<std::size_t>(sent);
      } else if (sent < 0 && errno == EINTR) {
        continue;
      } else {
        ok = false;
      }
    }
  }
  std::string line;
  if (ok) {
    ok = ReadLine(fd, &line, &buf);
  }
  if (ok) {
    if (line.compare(0, 9, "FULLSYNC ") == 0) {
      state_.store(static_cast<int>(State::kFullSync), std::memory_order_release);
      const std::size_t space = line.find(' ', 9);
      std::uint64_t snapshot_lsn = 0;
      std::uint64_t nbytes = 0;
      ok = space != std::string::npos &&
           ParseU64Token(std::string_view(line).substr(9, space - 9), &snapshot_lsn) &&
           ParseU64Token(std::string_view(line).substr(space + 1), &nbytes);
      const std::string path = options_.wal_dir + "/bootstrap.ckpt.tmp";
      if (ok) {
        ok = ReceiveSnapshot(fd, nbytes, &buf, path);
      }
      std::string error;
      if (ok && !options_.durability->ResyncFromSnapshot(path, snapshot_lsn, &error)) {
        ok = false;
      }
      RemoveFile(path);  // gone on success (renamed); clean up on failure
      if (ok) {
        full_syncs_.fetch_add(1, std::memory_order_relaxed);
        ok = SendAck(fd);
      }
    } else if (line.compare(0, 5, "SYNC ") != 0) {
      ok = false;  // error reply or protocol violation
    }
  }
  if (ok) {
    state_.store(static_cast<int>(State::kStreaming), std::memory_order_release);
  }
  // Frame loop: decode every complete record in the buffer, apply, ack once
  // per drained chunk, then block for more bytes.
  while (ok && !stop_.load(std::memory_order_acquire)) {
    std::size_t pos = 0;
    bool pending_ack = false;
    while (ok) {
      if (buf.size() - pos < persist::internal::kRecordFrameSize) {
        break;
      }
      std::uint32_t len = 0;
      std::memcpy(&len, buf.data() + pos + 4, sizeof(len));
      if (len > persist::internal::kMaxRecordPayload) {
        corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
        ok = false;  // garbage length: the TCP stream is unusable
        break;
      }
      if (buf.size() - pos < persist::internal::kRecordFrameSize + len) {
        break;  // incomplete frame; wait for more bytes
      }
      persist::WalRecord record;
      std::size_t p = pos;
      if (persist::internal::DecodeWalRecord(buf, &p, &record) != 1) {
        corrupt_streams_.fetch_add(1, std::memory_order_relaxed);
        ok = false;  // CRC mismatch on a complete frame
        break;
      }
      pos = p;
      if (record.lsn == 0) {
        pending_ack = true;  // heartbeat: just refresh the primary's view
        continue;
      }
      std::string error;
      if (!options_.durability->ApplyReplicated(record, &error)) {
        // LSN gap — the next handshake offers our (unchanged) position and
        // the primary decides resume vs full sync.
        ok = false;
        break;
      }
      pending_ack = true;
    }
    buf.erase(0, pos);
    if (pending_ack && !SendAck(fd)) {
      ok = false;
    }
    if (!ok) {
      break;
    }
    if (Receive(fd, &buf) < 0) {
      break;
    }
  }
  fd_.store(-1, std::memory_order_release);
  ::close(fd);
}

void ReplicaClient::AppendStats(std::string* out) const {
  out->append("STAT repl_primary ");
  out->append(options_.host);
  out->append(":");
  out->append(std::to_string(options_.port));
  out->append("\r\n");
  out->append("STAT repl_state ");
  out->append(StateName());
  out->append("\r\n");
  AppendStat("repl_reconnects", reconnects_.load(std::memory_order_relaxed), out);
  AppendStat("repl_client_full_syncs", full_syncs_.load(std::memory_order_relaxed), out);
  AppendStat("repl_corrupt_streams", corrupt_streams_.load(std::memory_order_relaxed),
             out);
  AppendStat("repl_acks_sent", acks_sent_.load(std::memory_order_relaxed), out);
}

void ReplicaClient::AppendMetricsText(std::string* out) const {
  obs::AppendGauge("cuckoo_repl_streaming",
                   "1 while the replica is applying the primary's live stream",
                   state() == State::kStreaming ? 1.0 : 0.0, out);
  obs::AppendCounter("cuckoo_repl_reconnects_total", "replication link reconnects",
                     reconnects_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_repl_client_full_syncs_total",
                     "snapshot bootstraps performed by this replica",
                     full_syncs_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_repl_corrupt_streams_total",
                     "replication sessions torn down on a corrupt frame",
                     corrupt_streams_.load(std::memory_order_relaxed), out);
}

}  // namespace repl
}  // namespace cuckoo
