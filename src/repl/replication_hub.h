// ReplicationHub — the primary side of WAL-shipping replication.
//
// The socket server hands over connections that issued `replicate <lsn>`
// (see SocketServer::Options::replication_handoff); the hub runs one sender
// thread per replica. A sender either resumes the stream from the requested
// LSN (tailing the live WAL segments — see WalTailer) or, when the tail was
// GC'd away, bootstraps the replica with a full snapshot (values inlined)
// before streaming. The WAL's group-commit thread notifies the hub after
// every drain (DurabilityManager installs the commit sink), so senders wake
// exactly when new frames become streamable.
//
// The hub is also the DurabilityManager's ReplicationBridge: it gates
// semi-sync client acks on replica acks and holds WAL GC back to the
// slowest connected replica's position.
#ifndef SRC_REPL_REPLICATION_HUB_H_
#define SRC_REPL_REPLICATION_HUB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/kvserver/kv_service.h"
#include "src/persist/durability.h"
#include "src/persist/repl_bridge.h"
#include "src/repl/replication.h"

namespace cuckoo {
namespace repl {

struct ReplicationHubOptions {
  KvService* service = nullptr;                  // snapshot source
  persist::DurabilityManager* durability = nullptr;  // WAL owner
  store::TieredStore* tier = nullptr;  // may be null; inlines tiered values
  std::string wal_dir;                 // scratch space for replica snapshots
  AckLevel ack = AckLevel::kAsync;
  // Semi-sync: how long WaitReplicated blocks for a replica ack before the
  // write is refused. Ignored at other levels.
  std::uint64_t semi_sync_timeout_ms = 1000;
  // Idle senders emit a heartbeat frame (lsn=0) this often.
  std::uint64_t heartbeat_ms = 200;
};

class ReplicationHub : public persist::ReplicationBridge {
 public:
  explicit ReplicationHub(ReplicationHubOptions options);
  ~ReplicationHub() override;

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  // Take ownership of an upgraded connection (non-blocking fd) and start
  // streaming from `start_lsn`. `leftover` is input that arrived after the
  // `replicate` line (early ACKs). Wire as SocketServer's
  // replication_handoff. Safe to call from any event-loop thread.
  void Adopt(int fd, std::uint64_t start_lsn, std::string leftover);

  // Close every replica connection and join the sender threads. Idempotent;
  // called by the destructor.
  void Stop();

  // Promotion/demotion flips the role string reported in stats ("primary" /
  // "replica"); purely informational.
  void SetRole(const char* role) { role_.store(role, std::memory_order_relaxed); }

  // ----- persist::ReplicationBridge ----------------------------------------
  void OnWalCommit(std::uint64_t written_lsn, std::uint64_t durable_lsn) override;
  bool WaitReplicated(std::uint64_t lsn) override;
  std::uint64_t MinReplicaLsn() override;

  // ----- Observability -----------------------------------------------------
  std::uint64_t ConnectedReplicas() const;
  // Replication lag of the slowest connected replica, in LSNs (0 when no
  // replicas or fully caught up).
  std::uint64_t LagLsns() const;
  // Approximate lag in WAL bytes (group-commit watermark ring; see .cc).
  std::uint64_t LagBytes() const;

  void AppendStats(std::string* out) const;        // `stats` lines
  void AppendDetailStats(std::string* out) const;  // per-replica lines
  void AppendMetricsText(std::string* out) const;  // Prometheus

 private:
  struct Peer {
    int fd = -1;
    std::uint64_t id = 0;
    std::thread thread;
    // Dedicated ACK reader (see AckLoop): acks advance the moment they hit
    // the socket, even while the sender sleeps waiting for commits. Spawned
    // and joined by PeerLoop.
    std::thread ack_thread;
    // Highest LSN the replica acknowledged as applied.
    std::atomic<std::uint64_t> acked_lsn{0};
    // Next LSN this sender will read from the WAL (GC holdback input);
    // UINT64_MAX until known and again after the peer dies.
    std::atomic<std::uint64_t> needed_lsn{UINT64_MAX};
    std::atomic<bool> stop{false};
    std::atomic<bool> done{false};
    std::atomic<bool> full_sync{false};  // currently/last bootstrapped
    std::atomic<std::uint64_t> sent_bytes{0};
  };

  void PeerLoop(Peer* peer, std::uint64_t start_lsn, std::string leftover);
  // Reads the peer's socket for "ACK <lsn>" lines until stop/hangup; the
  // only reader of the fd, so ack latency is one socket wakeup regardless of
  // what the sender thread is doing. On hangup it shuts the socket down so
  // the sender fails fast.
  void AckLoop(Peer* peer, std::string buffer);
  // One streaming session; returns false when the connection died.
  bool StreamTo(Peer* peer, std::uint64_t start_lsn);
  // Snapshot + send "FULLSYNC ..." + file bytes. On success *resume_lsn is
  // the first LSN the stream must continue from.
  bool SendFullSync(Peer* peer, std::uint64_t* resume_lsn);
  // Drain "ACK <lsn>" lines out of *buffer, updating the peer.
  void ConsumeAcks(Peer* peer, std::string* buffer);
  // Blocking-ish write with poll(); ACKs are the AckLoop's business, so a
  // replica that pipelines acks while we send can't deadlock the sender.
  bool WriteAll(Peer* peer, std::string_view bytes);
  void ReapDonePeers() REQUIRES(mu_);

  ReplicationHubOptions options_;
  std::atomic<const char*> role_{"primary"};

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Peer>> peers_ GUARDED_BY(mu_);
  std::uint64_t next_peer_id_ GUARDED_BY(mu_) = 1;
  bool stopping_ GUARDED_BY(mu_) = false;

  // Commit watermarks from the WAL writer thread. Senders wait on commit_cv_
  // when caught up; WaitReplicated waits on ack_cv_.
  mutable Mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::condition_variable ack_cv_;
  std::atomic<std::uint64_t> head_written_lsn_{0};
  std::atomic<std::uint64_t> head_durable_lsn_{0};
  // (written_lsn, wal_bytes_appended) samples, newest last — turns an acked
  // LSN into an approximate byte position for repl_lag_bytes.
  static constexpr std::size_t kLagRingSize = 128;
  struct LagSample {
    std::uint64_t lsn = 0;
    std::uint64_t bytes = 0;
  };
  LagSample lag_ring_[kLagRingSize] GUARDED_BY(commit_mu_);
  std::size_t lag_ring_next_ GUARDED_BY(commit_mu_) = 0;

  std::atomic<std::uint64_t> replicas_adopted_{0};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> semi_sync_timeouts_{0};
  // Semi-sync acks granted with zero replicas connected (degraded mode).
  std::atomic<std::uint64_t> degraded_acks_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
};

}  // namespace repl
}  // namespace cuckoo

#endif  // SRC_REPL_REPLICATION_HUB_H_
