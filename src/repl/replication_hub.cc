#include "src/repl/replication_hub.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/file_util.h"
#include "src/kvserver/protocol.h"
#include "src/obs/metrics.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal_tailer.h"
#include "src/store/tiered_store.h"

namespace cuckoo {
namespace repl {
namespace {

// Target size of one streamed batch: big enough to amortize syscalls, small
// enough that a sender reacts to Stop() and incoming ACKs promptly.
constexpr std::size_t kStreamBatchBytes = 256u << 10;
// A replica that accepts no bytes for this long is dead weight — drop it
// (it reconnects and resumes; semi-sync degrades per WaitReplicated).
constexpr std::uint64_t kWriteStallTimeoutMs = 10000;

std::uint64_t MonoMs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

bool ParseAckLevel(std::string_view name, AckLevel* out) {
  if (name == "none") {
    *out = AckLevel::kNone;
  } else if (name == "async") {
    *out = AckLevel::kAsync;
  } else if (name == "semi-sync" || name == "semisync") {
    *out = AckLevel::kSemiSync;
  } else {
    return false;
  }
  return true;
}

const char* AckLevelName(AckLevel level) {
  switch (level) {
    case AckLevel::kNone:
      return "none";
    case AckLevel::kAsync:
      return "async";
    case AckLevel::kSemiSync:
      return "semi-sync";
  }
  return "?";
}

ReplicationHub::ReplicationHub(ReplicationHubOptions options)
    : options_(std::move(options)) {}

ReplicationHub::~ReplicationHub() { Stop(); }

void ReplicationHub::Adopt(int fd, std::uint64_t start_lsn, std::string leftover) {
  Peer* peer = nullptr;
  {
    MutexLock lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ReapDonePeers();
    auto owned = std::make_unique<Peer>();
    owned->fd = fd;
    owned->id = next_peer_id_++;
    // Hold GC back from the moment the peer exists: the sender thread
    // refines this, but segments >= start_lsn must survive the gap between
    // handoff and the tailer opening.
    owned->needed_lsn.store(start_lsn, std::memory_order_relaxed);
    peer = owned.get();
    peers_.push_back(std::move(owned));
  }
  replicas_adopted_.fetch_add(1, std::memory_order_relaxed);
  peer->thread = std::thread(&ReplicationHub::PeerLoop, this, peer, start_lsn,
                             std::move(leftover));
}

void ReplicationHub::Stop() {
  std::vector<std::unique_ptr<Peer>> peers;
  {
    MutexLock lk(mu_);
    stopping_ = true;
    peers.swap(peers_);
  }
  for (auto& peer : peers) {
    peer->stop.store(true, std::memory_order_release);
    // Unblock poll()/send() immediately; the fd stays valid until the join.
    ::shutdown(peer->fd, SHUT_RDWR);
  }
  {
    MutexLock lk(commit_mu_);
    commit_cv_.notify_all();
    ack_cv_.notify_all();
  }
  for (auto& peer : peers) {
    if (peer->thread.joinable()) {
      peer->thread.join();
    }
    ::close(peer->fd);
  }
}

void ReplicationHub::ReapDonePeers() {
  for (std::size_t i = 0; i < peers_.size();) {
    if (peers_[i]->done.load(std::memory_order_acquire)) {
      if (peers_[i]->thread.joinable()) {
        peers_[i]->thread.join();
      }
      ::close(peers_[i]->fd);
      peers_.erase(peers_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void ReplicationHub::PeerLoop(Peer* peer, std::uint64_t start_lsn, std::string leftover) {
  peer->ack_thread =
      std::thread(&ReplicationHub::AckLoop, this, peer, std::move(leftover));
  std::uint64_t lsn = start_lsn;
  // StreamTo returning true means the requested tail is not available (GC'd,
  // or the replica asked past our head after a failover) — bootstrap with a
  // full snapshot and resume from its LSN. Cap the alternation so a replica
  // that keeps outrunning snapshots cannot loop forever.
  for (int attempts = 0; attempts < 4 && !peer->stop.load(std::memory_order_acquire);
       ++attempts) {
    if (!StreamTo(peer, lsn)) {
      break;
    }
    if (!SendFullSync(peer, &lsn)) {
      break;
    }
  }
  // The fd is closed by ReapDonePeers/Stop (whoever still owns the Peer);
  // shutdown here unblocks the ACK reader's poll so it can be joined.
  ::shutdown(peer->fd, SHUT_RDWR);
  if (peer->ack_thread.joinable()) {
    peer->ack_thread.join();
  }
  peer->needed_lsn.store(UINT64_MAX, std::memory_order_release);
  {
    // A dying peer changes both MinReplicaLsn and the WaitReplicated peer
    // count; wake semi-sync waiters so zero-replica degradation kicks in.
    MutexLock lk(commit_mu_);
    ack_cv_.notify_all();
  }
  // Last store: ReapDonePeers joins threads with done set while holding mu_,
  // so this thread must be past every lock acquisition by then.
  peer->done.store(true, std::memory_order_release);
}

void ReplicationHub::AckLoop(Peer* peer, std::string buffer) {
  ConsumeAcks(peer, &buffer);
  char tmp[4096];
  while (!peer->stop.load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = peer->fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, 100);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (r == 0) {
      continue;
    }
    const ssize_t got = ::recv(peer->fd, tmp, sizeof(tmp), MSG_DONTWAIT);
    if (got > 0) {
      buffer.append(tmp, static_cast<std::size_t>(got));
      ConsumeAcks(peer, &buffer);
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    break;  // orderly close (got == 0) or hard error: the replica is gone
  }
  // Fail the sender fast: its next send() hits EPIPE instead of waiting out
  // the stall timeout, and an idle sender wakes into a doomed heartbeat.
  ::shutdown(peer->fd, SHUT_RDWR);
  MutexLock lk(commit_mu_);
  commit_cv_.notify_all();
}

bool ReplicationHub::StreamTo(Peer* peer, std::uint64_t start_lsn) {
  const persist::WriteAheadLog& wal = options_.durability->wal();
  if (start_lsn > wal.LastAssignedLsn() + 1) {
    return true;  // replica is ahead of this primary's history: full sync
  }
  persist::WalTailer tailer;
  std::string error;
  if (!tailer.Open(options_.wal_dir, start_lsn, &error)) {
    return true;  // tail GC'd away: full sync
  }
  peer->needed_lsn.store(start_lsn, std::memory_order_release);
  const bool want_acks = options_.ack != AckLevel::kNone;
  std::string out = "SYNC " + std::to_string(start_lsn) +
                    " ack=" + std::string(want_acks ? "1" : "0") + "\r\n";
  if (!WriteAll(peer, out)) {
    return false;
  }
  persist::WalRecord record;
  while (!peer->stop.load(std::memory_order_acquire)) {
    out.clear();
    bool corrupt = false;
    while (out.size() < kStreamBatchBytes) {
      const persist::WalTailer::Result r = tailer.Next(wal.WrittenLsn(), &record, &error);
      if (r == persist::WalTailer::Result::kCaughtUp) {
        break;
      }
      if (r == persist::WalTailer::Result::kError) {
        corrupt = true;
        break;
      }
      if (record.type == persist::WalRecord::Type::kSetTiered &&
          options_.tier != nullptr) {
        // Ship the value, not our private 16-byte location. A failed read
        // means GC relocated the record after it was logged; the relocation
        // record — later in this same stream — re-delivers the value, so
        // forwarding the original verbatim (the replica skips it, advancing
        // only its cas floor) still converges.
        store::ValueLocation loc;
        std::string value;
        if (store::DecodeValueLocation(record.data, &loc) &&
            options_.tier->ReadValue(record.key, loc, record.cas_id, &value)) {
          record.type = persist::WalRecord::Type::kSet;
          record.data = std::move(value);
        }
      }
      persist::internal::EncodeWalRecord(record, &out);
      peer->needed_lsn.store(tailer.next_lsn(), std::memory_order_release);
    }
    if (corrupt) {
      return false;  // local WAL tail unreadable; drop the replica loudly
    }
    if (out.empty()) {
      // Caught up: sleep until the group-commit sink advances the head or
      // the heartbeat interval elapses (keeps lag observable when idle and
      // lets the sender notice a shut-down socket promptly).
      const std::uint64_t want = tailer.next_lsn();
      bool heartbeat = false;
      {
        MutexLock lk(commit_mu_);
        if (head_written_lsn_.load(std::memory_order_acquire) < want &&
            !peer->stop.load(std::memory_order_acquire)) {
          commit_cv_.wait_for(lk.native_handle(),
                              std::chrono::milliseconds(options_.heartbeat_ms));
        }
        heartbeat = head_written_lsn_.load(std::memory_order_acquire) < want;
      }
      if (!heartbeat) {
        continue;
      }
      persist::WalRecord hb;  // lsn == 0: heartbeat, never persisted
      persist::internal::EncodeWalRecord(hb, &out);
      heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!WriteAll(peer, out)) {
      return false;
    }
  }
  return false;
}

bool ReplicationHub::SendFullSync(Peer* peer, std::uint64_t* resume_lsn) {
  const persist::WriteAheadLog& wal = options_.durability->wal();
  // Conservative GC holdback BEFORE the snapshot samples its LSN: everything
  // past the current head must survive until the stream takes over.
  peer->needed_lsn.store(wal.LastAssignedLsn() + 1, std::memory_order_release);
  peer->full_sync.store(true, std::memory_order_relaxed);
  const std::string path =
      options_.wal_dir + "/replsnap-" + std::to_string(peer->id) + ".tmp";
  persist::SnapshotWriteStats stats;
  std::string error;
  if (!persist::WriteReplicaSnapshot(
          *options_.service, path, [&wal] { return wal.LastAssignedLsn(); },
          /*max_attempts=*/8, &stats, &error)) {
    RemoveFile(path);
    return false;
  }
  peer->needed_lsn.store(stats.wal_lsn + 1, std::memory_order_release);
  full_syncs_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t nbytes = FileSize(path);
  std::string header = "FULLSYNC " + std::to_string(stats.wal_lsn) + " " +
                       std::to_string(nbytes) + "\r\n";
  bool ok = WriteAll(peer, header);
  int fd = ok ? ::open(path.c_str(), O_RDONLY | O_CLOEXEC) : -1;
  if (fd >= 0) {
    std::string chunk(kStreamBatchBytes, '\0');
    std::uint64_t off = 0;
    while (ok && off < nbytes) {
      const ssize_t got = ::pread(fd, chunk.data(), chunk.size(), static_cast<off_t>(off));
      if (got <= 0) {
        ok = false;
        break;
      }
      ok = WriteAll(peer,
                    std::string_view(chunk.data(), static_cast<std::size_t>(got)));
      off += static_cast<std::uint64_t>(got);
    }
    ::close(fd);
  } else {
    ok = false;
  }
  RemoveFile(path);
  if (ok) {
    *resume_lsn = stats.wal_lsn + 1;
  }
  return ok;
}

void ReplicationHub::ConsumeAcks(Peer* peer, std::string* buffer) {
  bool advanced = false;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer->find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    std::string_view line(buffer->data() + start, nl - start);
    start = nl + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.size() <= 4 || line.substr(0, 4) != "ACK ") {
      continue;  // tolerate unknown chatter; the framing self-heals per line
    }
    std::uint64_t lsn = 0;
    bool valid = true;
    for (char c : line.substr(4)) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      lsn = lsn * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (valid && lsn > peer->acked_lsn.load(std::memory_order_relaxed)) {
      peer->acked_lsn.store(lsn, std::memory_order_release);
      advanced = true;
    }
  }
  buffer->erase(0, start);
  if (advanced) {
    MutexLock lk(commit_mu_);
    ack_cv_.notify_all();
  }
}

bool ReplicationHub::WriteAll(Peer* peer, std::string_view bytes) {
  std::size_t off = 0;
  std::uint64_t last_progress_ms = MonoMs();
  while (off < bytes.size()) {
    if (peer->stop.load(std::memory_order_acquire)) {
      return false;
    }
    const ssize_t sent =
        ::send(peer->fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<std::size_t>(sent);
      peer->sent_bytes.fetch_add(static_cast<std::uint64_t>(sent),
                                 std::memory_order_relaxed);
      last_progress_ms = MonoMs();
      continue;
    }
    if (sent < 0 && errno == EINTR) {
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (MonoMs() - last_progress_ms > kWriteStallTimeoutMs) {
        return false;  // replica stopped reading; drop it
      }
      struct pollfd pfd;
      pfd.fd = peer->fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int r = ::poll(&pfd, 1, 100);
      if (r < 0 && errno != EINTR) {
        return false;
      }
      continue;
    }
    return false;  // EPIPE/ECONNRESET/...
  }
  return true;
}

void ReplicationHub::OnWalCommit(std::uint64_t written_lsn, std::uint64_t durable_lsn) {
  head_written_lsn_.store(written_lsn, std::memory_order_release);
  head_durable_lsn_.store(durable_lsn, std::memory_order_release);
  MutexLock lk(commit_mu_);
  lag_ring_[lag_ring_next_ % kLagRingSize] = {
      written_lsn, options_.durability->wal().BytesAppended()};
  ++lag_ring_next_;
  commit_cv_.notify_all();
}

bool ReplicationHub::WaitReplicated(std::uint64_t lsn) {
  if (options_.ack != AckLevel::kSemiSync) {
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.semi_sync_timeout_ms);
  MutexLock lk(commit_mu_);
  for (;;) {
    std::size_t live = 0;
    {
      MutexLock peers(mu_);
      for (const auto& peer : peers_) {
        if (peer->done.load(std::memory_order_acquire)) {
          continue;
        }
        ++live;
        if (peer->acked_lsn.load(std::memory_order_acquire) >= lsn) {
          return true;
        }
      }
    }
    if (live == 0) {
      // Degraded mode: with zero replicas connected, semi-sync falls back to
      // local durability (which already succeeded) instead of refusing every
      // write. Counted so operators can alert on it.
      degraded_acks_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      semi_sync_timeouts_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ack_cv_.wait_for(lk.native_handle(),
                     std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
  }
}

std::uint64_t ReplicationHub::MinReplicaLsn() {
  MutexLock lk(mu_);
  std::uint64_t min_lsn = UINT64_MAX;
  for (const auto& peer : peers_) {
    if (peer->done.load(std::memory_order_acquire)) {
      continue;
    }
    const std::uint64_t needed = peer->needed_lsn.load(std::memory_order_acquire);
    if (needed < min_lsn) {
      min_lsn = needed;
    }
  }
  return min_lsn;
}

std::uint64_t ReplicationHub::ConnectedReplicas() const {
  MutexLock lk(mu_);
  std::uint64_t live = 0;
  for (const auto& peer : peers_) {
    if (!peer->done.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

std::uint64_t ReplicationHub::LagLsns() const {
  const std::uint64_t head = head_written_lsn_.load(std::memory_order_acquire);
  MutexLock lk(mu_);
  std::uint64_t worst = 0;
  for (const auto& peer : peers_) {
    if (peer->done.load(std::memory_order_acquire)) {
      continue;
    }
    // Position = what the replica confirmed applied; without acks (ack=none)
    // fall back to how far the sender has read, which bounds lag from below.
    std::uint64_t pos = peer->acked_lsn.load(std::memory_order_acquire);
    if (options_.ack == AckLevel::kNone) {
      const std::uint64_t needed = peer->needed_lsn.load(std::memory_order_acquire);
      pos = (needed == UINT64_MAX || needed == 0) ? 0 : needed - 1;
    }
    const std::uint64_t lag = head > pos ? head - pos : 0;
    if (lag > worst) {
      worst = lag;
    }
  }
  return worst;
}

std::uint64_t ReplicationHub::LagBytes() const {
  const std::uint64_t lag_lsns = LagLsns();
  if (lag_lsns == 0) {
    return 0;
  }
  const std::uint64_t head = head_written_lsn_.load(std::memory_order_acquire);
  const std::uint64_t target = head - lag_lsns;  // slowest replica's position
  MutexLock lk(commit_mu_);
  const std::uint64_t now_bytes = options_.durability->wal().BytesAppended();
  // Oldest retained sample at or after the target position approximates the
  // byte offset the replica has reached; older lag saturates at the ring.
  const std::size_t count = lag_ring_next_ < kLagRingSize ? lag_ring_next_ : kLagRingSize;
  std::uint64_t best = count > 0 ? UINT64_MAX : now_bytes;
  for (std::size_t i = 0; i < count; ++i) {
    const LagSample& s = lag_ring_[i];
    if (s.lsn >= target && s.bytes < best) {
      best = s.bytes;
    }
  }
  if (best == UINT64_MAX) {
    // Every sample is newer than the target: the replica is further behind
    // than the ring remembers; report from the oldest sample we have.
    best = lag_ring_[lag_ring_next_ % kLagRingSize].bytes;
    for (std::size_t i = 0; i < count; ++i) {
      if (lag_ring_[i].bytes < best) {
        best = lag_ring_[i].bytes;
      }
    }
  }
  return now_bytes > best ? now_bytes - best : 0;
}

void ReplicationHub::AppendStats(std::string* out) const {
  out->append("STAT repl_role ");
  out->append(role_.load(std::memory_order_relaxed));
  out->append("\r\n");
  out->append("STAT repl_ack ");
  out->append(AckLevelName(options_.ack));
  out->append("\r\n");
  AppendStat("repl_replicas", ConnectedReplicas(), out);
  AppendStat("repl_head_lsn", head_written_lsn_.load(std::memory_order_acquire), out);
  AppendStat("repl_lag_lsn", LagLsns(), out);
  AppendStat("repl_lag_bytes", LagBytes(), out);
  AppendStat("repl_replicas_adopted", replicas_adopted_.load(std::memory_order_relaxed),
             out);
  AppendStat("repl_full_syncs", full_syncs_.load(std::memory_order_relaxed), out);
  AppendStat("repl_semi_sync_timeouts",
             semi_sync_timeouts_.load(std::memory_order_relaxed), out);
  AppendStat("repl_degraded_acks", degraded_acks_.load(std::memory_order_relaxed), out);
}

void ReplicationHub::AppendDetailStats(std::string* out) const {
  AppendStat("repl_heartbeats_sent", heartbeats_sent_.load(std::memory_order_relaxed),
             out);
  MutexLock lk(mu_);
  for (const auto& peer : peers_) {
    if (peer->done.load(std::memory_order_acquire)) {
      continue;
    }
    const std::string prefix = "repl_peer_" + std::to_string(peer->id);
    AppendStat(prefix + "_acked_lsn", peer->acked_lsn.load(std::memory_order_acquire),
               out);
    const std::uint64_t needed = peer->needed_lsn.load(std::memory_order_acquire);
    AppendStat(prefix + "_next_lsn", needed == UINT64_MAX ? 0 : needed, out);
    AppendStat(prefix + "_sent_bytes", peer->sent_bytes.load(std::memory_order_relaxed),
               out);
    AppendStat(prefix + "_full_sync", peer->full_sync.load(std::memory_order_relaxed) ? 1 : 0,
               out);
  }
}

void ReplicationHub::AppendMetricsText(std::string* out) const {
  obs::AppendGauge("cuckoo_repl_replicas", "connected read replicas",
                   static_cast<double>(ConnectedReplicas()), out);
  obs::AppendGauge("cuckoo_repl_head_lsn", "primary replication head (written LSN)",
                   static_cast<double>(head_written_lsn_.load(std::memory_order_acquire)),
                   out);
  obs::AppendGauge("cuckoo_repl_lag_lsn",
                   "replication lag of the slowest connected replica, in records",
                   static_cast<double>(LagLsns()), out);
  obs::AppendGauge("cuckoo_repl_lag_bytes",
                   "approximate replication lag of the slowest replica, in WAL bytes",
                   static_cast<double>(LagBytes()), out);
  obs::AppendCounter("cuckoo_repl_full_syncs_total", "replica snapshot bootstraps served",
                     full_syncs_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_repl_semi_sync_timeouts_total",
                     "writes refused because no replica acked in time",
                     semi_sync_timeouts_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_repl_degraded_acks_total",
                     "semi-sync acks granted with zero replicas connected",
                     degraded_acks_.load(std::memory_order_relaxed), out);
}

}  // namespace repl
}  // namespace cuckoo
