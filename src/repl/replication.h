// Shared replication definitions: ack levels and the stream protocol.
//
// Wire protocol (text handshake, then binary WAL frames):
//   replica -> primary   "replicate <next_lsn>\r\n"  (normal protocol verb;
//                        the server detaches the fd and hands it to the hub)
//   primary -> replica   "SYNC <start_lsn> ack=<0|1>\r\n"
//                        followed by an endless sequence of WAL wire frames
//                        (src/persist/wal.h record framing), LSNs contiguous
//                        from start_lsn; OR
//                        "FULLSYNC <snapshot_lsn> <nbytes>\r\n"
//                        followed by exactly nbytes of replica-snapshot file
//                        (values inlined), then frames from snapshot_lsn + 1.
//   replica -> primary   "ACK <lsn>\r\n" text lines on the same socket
//                        (requested via ack=1): every record with lsn <= that
//                        is applied locally.
// A frame whose lsn == 0 is a heartbeat: never persisted, and the replica
// answers it with an ACK of its last applied LSN so lag stays observable on
// an idle stream.
#ifndef SRC_REPL_REPLICATION_H_
#define SRC_REPL_REPLICATION_H_

#include <cstdint>
#include <string_view>

namespace cuckoo {
namespace repl {

// How a client-visible write ack relates to replication:
//   kNone     — replicas stream without acking; client acks never wait.
//   kAsync    — replicas ack (lag is tracked) but client acks never wait.
//   kSemiSync — a client ack additionally waits for one replica ack (or the
//               timeout / degraded rule; see ReplicationHub::WaitReplicated).
enum class AckLevel : std::uint8_t { kNone, kAsync, kSemiSync };

// "none" / "async" / "semi-sync".
bool ParseAckLevel(std::string_view name, AckLevel* out);
const char* AckLevelName(AckLevel level);

}  // namespace repl
}  // namespace cuckoo

#endif  // SRC_REPL_REPLICATION_H_
