#include "src/benchkit/memory.h"

#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace cuckoo {

std::size_t CurrentRssBytes() noexcept {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  long total_pages = 0;
  long rss_pages = 0;
  int n = std::fscanf(f, "%ld %ld", &total_pages, &rss_pages);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace cuckoo
