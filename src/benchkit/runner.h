// Multi-threaded run harness reproducing the paper's measurement method:
// "Each experiment first creates an empty cuckoo hash table and then fills it
// to 95% capacity, with random mixed concurrent reads and writes as per the
// specified insert/lookup ratio. ... we measure both overall throughput and
// throughput for certain load factor intervals (e.g., empty to 50% full)."
//
// The run is split into load-factor segments; each segment is a timed
// parallel phase bounded by insert counts, so per-interval throughput falls
// out directly. Works with any map exposing
//   InsertResult Insert(const K&, const V&)  and  bool Find(const K&, V*).
#ifndef SRC_BENCHKIT_RUNNER_H_
#define SRC_BENCHKIT_RUNNER_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/timing.h"
#include "src/benchkit/workload.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

struct RunOptions {
  int threads = 1;
  double insert_fraction = 1.0;
  // Total keys to insert across the whole run (e.g. 0.95 * slot count).
  std::uint64_t total_inserts = 1 << 20;
  // Segment boundaries as fractions of total_inserts, ascending, ending at 1.
  // Default: the paper's 0-0.75 / 0.75-0.9 / 0.9-0.95 split maps to
  // boundaries relative to the fill target.
  std::vector<double> segment_boundaries = {0.789, 0.947, 1.0};
  std::uint64_t seed = 42;
};

struct SegmentResult {
  double fill_fraction_lo = 0.0;  // of total_inserts
  double fill_fraction_hi = 0.0;
  std::uint64_t inserts = 0;
  std::uint64_t lookups = 0;
  std::uint64_t failed_inserts = 0;
  std::uint64_t nanos = 0;

  std::uint64_t TotalOps() const noexcept { return inserts + lookups; }
  double MopsPerSec() const noexcept { return Mops(TotalOps(), nanos); }
};

struct RunResult {
  std::vector<SegmentResult> segments;

  std::uint64_t TotalOps() const noexcept {
    std::uint64_t n = 0;
    for (const SegmentResult& s : segments) {
      n += s.TotalOps();
    }
    return n;
  }
  std::uint64_t TotalNanos() const noexcept {
    std::uint64_t n = 0;
    for (const SegmentResult& s : segments) {
      n += s.nanos;
    }
    return n;
  }
  std::uint64_t FailedInserts() const noexcept {
    std::uint64_t n = 0;
    for (const SegmentResult& s : segments) {
      n += s.failed_inserts;
    }
    return n;
  }
  double OverallMops() const noexcept { return Mops(TotalOps(), TotalNanos()); }

  // Throughput over segments whose fill range lies within [lo, hi].
  double MopsBetween(double lo, double hi) const noexcept {
    std::uint64_t ops = 0;
    std::uint64_t nanos = 0;
    for (const SegmentResult& s : segments) {
      if (s.fill_fraction_lo >= lo - 1e-9 && s.fill_fraction_hi <= hi + 1e-9) {
        ops += s.TotalOps();
        nanos += s.nanos;
      }
    }
    return Mops(ops, nanos);
  }
};

// Fill `map` with opts.total_inserts unique keys, mixed with lookups at the
// configured ratio, across opts.threads threads, timing each segment.
template <typename Map>
RunResult RunMixedFill(Map& map, const RunOptions& opts) {
  const int threads = opts.threads;
  RunResult result;
  result.segments.resize(opts.segment_boundaries.size());

  std::atomic<std::uint64_t> watermark{0};
  std::vector<std::jthread> team;

  // Segment boundaries are timestamped by the barrier completion step (which
  // runs on whichever thread arrives last), not by the coordinator: on an
  // oversubscribed host the coordinator may be descheduled across an entire
  // segment, so its own clock reads would be meaningless.
  std::vector<std::uint64_t> stamps(2 * opts.segment_boundaries.size(), 0);
  std::size_t next_stamp = 0;
  auto stamp_phase = [&stamps, &next_stamp]() noexcept {
    if (next_stamp < stamps.size()) {
      stamps[next_stamp++] = NowNanos();
    }
  };
  std::barrier<decltype(stamp_phase)> sync(threads + 1, stamp_phase);

  // Per-segment per-thread tallies, aggregated by the coordinator.
  struct Tally {
    std::uint64_t inserts = 0;
    std::uint64_t lookups = 0;
    std::uint64_t failed = 0;
  };
  std::vector<std::vector<Tally>> tallies(opts.segment_boundaries.size(),
                                          std::vector<Tally>(threads));

  // Compute per-thread insert quotas per segment.
  std::vector<std::uint64_t> segment_end(opts.segment_boundaries.size());
  for (std::size_t i = 0; i < opts.segment_boundaries.size(); ++i) {
    segment_end[i] =
        static_cast<std::uint64_t>(opts.segment_boundaries[i] * static_cast<double>(opts.total_inserts));
  }

  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      OpStream::Config cfg;
      cfg.insert_fraction = opts.insert_fraction;
      cfg.thread_index = t;
      cfg.thread_count = threads;
      cfg.seed = opts.seed;
      OpStream stream(cfg, &watermark, 0);

      std::uint64_t done = 0;  // this thread's completed inserts
      typename Map::ValueType sink{};
      for (std::size_t seg = 0; seg < segment_end.size(); ++seg) {
        // Quota: this thread's share of inserts in [prev_end, end).
        std::uint64_t prev = seg == 0 ? 0 : segment_end[seg - 1];
        std::uint64_t span = segment_end[seg] - prev;
        std::uint64_t quota = span / static_cast<std::uint64_t>(threads) +
                              (static_cast<std::uint64_t>(t) <
                                       span % static_cast<std::uint64_t>(threads)
                                   ? 1
                                   : 0);
        sync.arrive_and_wait();  // segment start
        Tally& tally = tallies[seg][t];
        for (std::uint64_t i = 0; i < quota; ++i) {
          std::uint64_t key = stream.NextInsertKey();
          InsertResult r = map.Insert(key, sink);
          ++tally.inserts;
          if (r == InsertResult::kTableFull) {
            ++tally.failed;
          }
          ++done;
          if ((done & 0xff) == 0) {
            stream.AdvanceWatermark(0x100);
          }
          for (std::uint64_t l = stream.LookupsOwedAfterInsert(); l > 0; --l) {
            map.Find(stream.NextLookupKey(), &sink);
            ++tally.lookups;
          }
        }
        sync.arrive_and_wait();  // segment end
      }
    });
  }

  for (std::size_t seg = 0; seg < segment_end.size(); ++seg) {
    sync.arrive_and_wait();  // release workers into the segment
    sync.arrive_and_wait();  // workers finished the segment
    SegmentResult& s = result.segments[seg];
    s.nanos = stamps[2 * seg + 1] - stamps[2 * seg];
    s.fill_fraction_lo =
        seg == 0 ? 0.0
                 : static_cast<double>(segment_end[seg - 1]) / static_cast<double>(opts.total_inserts);
    s.fill_fraction_hi =
        static_cast<double>(segment_end[seg]) / static_cast<double>(opts.total_inserts);
    for (const Tally& tl : tallies[seg]) {
      s.inserts += tl.inserts;
      s.lookups += tl.lookups;
      s.failed_inserts += tl.failed;
    }
  }
  team.clear();  // join
  return result;
}

// Pre-populate `map` with ids [0, count) without timing (helper for
// lookup-only experiments; uses the same key scrambling as RunMixedFill).
template <typename Map>
std::uint64_t Prefill(Map& map, std::uint64_t count, std::uint64_t seed = 42) {
  std::uint64_t inserted = 0;
  for (std::uint64_t id = 0; id < count; ++id) {
    if (map.Insert(KeyForId(id, seed), typename Map::ValueType{}) == InsertResult::kOk) {
      ++inserted;
    }
  }
  return inserted;
}

struct LookupRunResult {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t nanos = 0;
  double MopsPerSec() const noexcept { return Mops(lookups, nanos); }
  double HitRate() const noexcept {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

// Timed lookup-only run over keys with ids below `inserted_count`
// (Figure 8's 100% Lookup workload).
template <typename Map>
LookupRunResult RunLookupOnly(Map& map, int threads, std::uint64_t lookups_per_thread,
                              std::uint64_t inserted_count, std::uint64_t seed = 42) {
  LookupRunResult result;
  std::vector<std::jthread> team;
  std::vector<std::uint64_t> stamps(2, 0);
  std::size_t next_stamp = 0;
  auto stamp_phase = [&stamps, &next_stamp]() noexcept {
    if (next_stamp < stamps.size()) {
      stamps[next_stamp++] = NowNanos();
    }
  };
  std::barrier<decltype(stamp_phase)> sync(threads + 1, stamp_phase);
  std::vector<std::uint64_t> hit_counts(threads, 0);

  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      Xorshift128Plus rng(Mix64(seed + 77u + static_cast<std::uint64_t>(t)));
      typename Map::ValueType sink{};
      std::uint64_t hits = 0;
      sync.arrive_and_wait();
      for (std::uint64_t i = 0; i < lookups_per_thread; ++i) {
        std::uint64_t id = rng.NextBelow(inserted_count == 0 ? 1 : inserted_count);
        if (map.Find(KeyForId(id, seed), &sink)) {
          ++hits;
        }
      }
      hit_counts[t] = hits;
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  sync.arrive_and_wait();
  result.nanos = stamps[1] - stamps[0];
  result.lookups = static_cast<std::uint64_t>(threads) * lookups_per_thread;
  for (std::uint64_t h : hit_counts) {
    result.hits += h;
  }
  team.clear();
  return result;
}

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_RUNNER_H_
