// Workload generation for the paper's experiments (§6 "Method and
// Workloads"): mixed random reads and writes at a fixed insert fraction
// (100% / 50% / 10% insert), filling a table toward a target occupancy.
//
// Key model: logical key ids 0..n-1 are bijectively scrambled through Mix64 so
// the table sees uniformly random 64-bit keys while the generator stays
// stateless. Thread t inserts the ids congruent to t (mod threads), so insert
// streams are disjoint without coordination; lookups draw a random id below
// the global inserted watermark so they overwhelmingly hit.
#ifndef SRC_BENCHKIT_WORKLOAD_H_
#define SRC_BENCHKIT_WORKLOAD_H_

#include <atomic>
#include <cstdint>

#include "src/common/hash.h"
#include "src/common/random.h"

namespace cuckoo {

// Deterministic id -> key scrambling (Mix64 is a bijection on uint64).
inline std::uint64_t KeyForId(std::uint64_t id, std::uint64_t seed = 0) noexcept {
  return Mix64(id + seed * 0x9e3779b97f4a7c15ull);
}

// Per-thread operation stream for one run segment.
//
// Maintains the exact insert : lookup ratio via an accumulator instead of a
// random draw, so segment totals are deterministic; only lookup targets are
// random.
class OpStream {
 public:
  struct Config {
    double insert_fraction = 1.0;  // 1.0, 0.5, 0.1 in the paper
    int thread_index = 0;
    int thread_count = 1;
    std::uint64_t seed = 42;
    double zipf_theta = 0.0;  // 0 = uniform lookups
  };

  // `watermark` tracks the number of ids inserted table-wide (shared across
  // all streams of a run) so lookups target live keys.
  OpStream(const Config& config, std::atomic<std::uint64_t>* watermark,
           std::uint64_t first_local_insert_index)
      : config_(config),
        watermark_(watermark),
        rng_(Mix64(config.seed + 0x1234u + static_cast<std::uint64_t>(config.thread_index))),
        next_insert_ordinal_(first_local_insert_index) {
    if (config_.insert_fraction > 0.0) {
      lookups_per_insert_ = (1.0 - config_.insert_fraction) / config_.insert_fraction;
    }
  }

  // Id of the next key this thread inserts (strided across threads).
  std::uint64_t NextInsertId() noexcept {
    std::uint64_t id = next_insert_ordinal_ * static_cast<std::uint64_t>(config_.thread_count) +
                       static_cast<std::uint64_t>(config_.thread_index);
    ++next_insert_ordinal_;
    return id;
  }

  std::uint64_t NextInsertKey() noexcept { return KeyForId(NextInsertId(), config_.seed); }

  // After each insert, the stream owes this many lookups to keep the ratio.
  std::uint64_t LookupsOwedAfterInsert() noexcept {
    lookup_debt_ += lookups_per_insert_;
    std::uint64_t owed = static_cast<std::uint64_t>(lookup_debt_);
    lookup_debt_ -= static_cast<double>(owed);
    return owed;
  }

  // A random key that has (almost certainly) been inserted already.
  std::uint64_t NextLookupKey() noexcept {
    std::uint64_t limit = watermark_->load(std::memory_order_relaxed);
    if (limit == 0) {
      limit = 1;
    }
    std::uint64_t id = rng_.NextBelow(limit);
    return KeyForId(id, config_.seed);
  }

  // Publish that this thread has completed `count` more inserts.
  void AdvanceWatermark(std::uint64_t count) noexcept {
    watermark_->fetch_add(count, std::memory_order_relaxed);
  }

  Xorshift128Plus& rng() noexcept { return rng_; }

 private:
  Config config_;
  std::atomic<std::uint64_t>* watermark_;
  Xorshift128Plus rng_;
  std::uint64_t next_insert_ordinal_;
  double lookups_per_insert_ = 0.0;
  double lookup_debt_ = 0.0;
};

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_WORKLOAD_H_
