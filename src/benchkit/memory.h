// Process-level memory introspection, used to cross-check the per-table
// HeapBytes() accounting in the memory-efficiency comparison (§6.2: cuckoo+
// "uses 2-3x less memory" than the TBB-style table).
#ifndef SRC_BENCHKIT_MEMORY_H_
#define SRC_BENCHKIT_MEMORY_H_

#include <cstddef>

namespace cuckoo {

// Resident set size of this process in bytes (0 if unavailable).
std::size_t CurrentRssBytes() noexcept;

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_MEMORY_H_
