#include "src/benchkit/flags.h"

#include <cstdlib>

namespace cuckoo {

Flags::Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

bool Flags::Raw(const std::string& name, std::string* out) const {
  const std::string dashed = "--" + name;
  for (int i = 1; i < argc_; ++i) {
    std::string arg = argv_[i];
    if (arg == dashed) {
      if (i + 1 < argc_ && argv_[i + 1][0] != '-') {
        *out = argv_[i + 1];
      } else {
        *out = "";  // bare boolean flag
      }
      return true;
    }
    if (arg.rfind(dashed + "=", 0) == 0) {
      *out = arg.substr(dashed.size() + 1);
      return true;
    }
  }
  return false;
}

bool Flags::Has(const std::string& name) const {
  std::string ignored;
  return Raw(name, &ignored);
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) const {
  std::string raw;
  if (!Raw(name, &raw) || raw.empty()) {
    return def;
  }
  return std::strtoll(raw.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  std::string raw;
  if (!Raw(name, &raw) || raw.empty()) {
    return def;
  }
  return std::strtod(raw.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  std::string raw;
  if (!Raw(name, &raw) || raw.empty()) {
    return def;
  }
  return raw;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  std::string raw;
  if (!Raw(name, &raw)) {
    return def;
  }
  return raw.empty() || raw == "true" || raw == "1";
}

}  // namespace cuckoo
