// Minimal --flag=value / --flag value command-line parsing for the bench
// binaries (google-benchmark's flags don't cover our sweep parameters).
#ifndef SRC_BENCHKIT_FLAGS_H_
#define SRC_BENCHKIT_FLAGS_H_

#include <cstdint>
#include <string>

namespace cuckoo {

class Flags {
 public:
  Flags(int argc, char** argv);

  // Returns the flag's value, or `def` if absent. Accepted spellings:
  // --name=value and --name value.
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  // --name (bare), --name=true/false.
  bool GetBool(const std::string& name, bool def = false) const;

  bool Has(const std::string& name) const;

 private:
  bool Raw(const std::string& name, std::string* out) const;

  int argc_;
  char** argv_;
};

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_FLAGS_H_
