// A small log-linear latency histogram (HdrHistogram-style): power-of-two
// major buckets, 16 linear sub-buckets each, covering 1 ns .. ~17 s with
// <= 6.25% relative error. Recording is one relaxed atomic increment, so
// worker threads can share one histogram.
#ifndef SRC_BENCHKIT_LATENCY_H_
#define SRC_BENCHKIT_LATENCY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace cuckoo {

class LatencyHistogram {
 public:
  LatencyHistogram() : counts_(new std::atomic<std::uint64_t>[kBucketCount]) {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
  }

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(std::uint64_t nanos) noexcept {
    counts_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t TotalCount() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      total += counts_[i].load(std::memory_order_relaxed);
    }
    return total;
  }

  // Latency (ns) at quantile q in [0, 1]: upper edge of the bucket holding
  // the q-th sample. Returns 0 for an empty histogram.
  std::uint64_t PercentileNanos(double q) const noexcept {
    const std::uint64_t total = TotalCount();
    if (total == 0) {
      return 0;
    }
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      seen += counts_[i].load(std::memory_order_relaxed);
      if (seen > rank) {
        return BucketUpperBound(i);
      }
    }
    return BucketUpperBound(kBucketCount - 1);
  }

  double MeanNanos() const noexcept {
    std::uint64_t total = 0;
    double weighted = 0.0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
      total += c;
      weighted += static_cast<double>(c) * static_cast<double>(BucketUpperBound(i));
    }
    return total == 0 ? 0.0 : weighted / static_cast<double>(total);
  }

  void Reset() noexcept {
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Exposed for tests.
  static std::size_t BucketFor(std::uint64_t nanos) noexcept {
    if (nanos < kSubBuckets) {
      return static_cast<std::size_t>(nanos);  // exact 1-ns buckets below 16
    }
    // Major bucket = floor(log2(nanos)); sub-bucket = next 4 bits.
    int major = 63 - __builtin_clzll(nanos);
    std::size_t sub = static_cast<std::size_t>(nanos >> (major - kSubBits)) & (kSubBuckets - 1);
    std::size_t idx = static_cast<std::size_t>(major - kSubBits + 1) * kSubBuckets + sub;
    return idx < kBucketCount ? idx : kBucketCount - 1;
  }

  static std::uint64_t BucketUpperBound(std::size_t index) noexcept {
    if (index < kSubBuckets) {
      return index;  // exact 1-ns buckets
    }
    // Inverse of BucketFor: bucket holds [ (16+sub) << (major-4),
    // (16+sub+1) << (major-4) ).
    std::uint64_t major = index / kSubBuckets + kSubBits - 1;
    std::uint64_t sub = index % kSubBuckets;
    return ((kSubBuckets + sub + 1) << (major - kSubBits)) - 1;
  }

 private:
  static constexpr int kSubBits = 4;
  static constexpr std::size_t kSubBuckets = 1u << kSubBits;  // 16
  static constexpr std::size_t kMajorBuckets = 32;            // up to ~2^35 ns
  static constexpr std::size_t kBucketCount = kSubBuckets * (kMajorBuckets + 1);

  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_LATENCY_H_
