#include "src/benchkit/report.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace cuckoo {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

ReportTable::ReportTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}
ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(const char* s) {
  cells_.emplace_back(s);
  return *this;
}
ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(double v, int precision) {
  cells_.push_back(FormatDouble(v, precision));
  return *this;
}
ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(std::uint64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
ReportTable::RowBuilder& ReportTable::RowBuilder::Cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
ReportTable::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

void ReportTable::PrintText(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void ReportTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void ReportTable::Print(std::ostream& os, bool csv) const {
  if (csv) {
    PrintCsv(os);
  } else {
    PrintText(os);
  }
}

}  // namespace cuckoo
