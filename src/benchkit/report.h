// Table-style result reporting: fixed-width text for humans (mirroring the
// paper's figures as rows/series) or CSV for plotting.
#ifndef SRC_BENCHKIT_REPORT_H_
#define SRC_BENCHKIT_REPORT_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace cuckoo {

class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers);

  // Append a row; values are stringified by the typed helpers below.
  void AddRow(std::vector<std::string> cells);

  // Convenience: build a row incrementally.
  class RowBuilder {
   public:
    explicit RowBuilder(ReportTable* table) : table_(table) {}
    RowBuilder& Cell(const std::string& s);
    RowBuilder& Cell(const char* s);
    RowBuilder& Cell(double v, int precision = 2);
    RowBuilder& Cell(std::uint64_t v);
    RowBuilder& Cell(std::int64_t v);
    RowBuilder& Cell(int v);
    ~RowBuilder();

   private:
    ReportTable* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  // Render as an aligned text table.
  void PrintText(std::ostream& os) const;

  // Render as CSV (headers + rows).
  void PrintCsv(std::ostream& os) const;

  // One or the other, by flag.
  void Print(std::ostream& os, bool csv) const;

  std::size_t RowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Format helpers shared by the bench binaries.
std::string FormatDouble(double v, int precision = 2);

}  // namespace cuckoo

#endif  // SRC_BENCHKIT_REPORT_H_
