// DenseMap — an open-addressing table in the style of Google's
// dense_hash_map (§2.1): "It uses open addressing with quadratic internal
// probing. It maintains a maximum 0.5 load factor by default, and stores
// entries in a single large array."
//
// Instead of dense_hash_map's reserved empty/deleted sentinel keys we keep a
// one-byte state per slot, which keeps the public API free of set_empty_key()
// ceremony at a small space cost. Single-threaded.
#ifndef SRC_BASELINES_DENSE_MAP_H_
#define SRC_BASELINES_DENSE_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>>
class DenseMap {
 public:
  using KeyType = K;
  using ValueType = V;

  explicit DenseMap(std::size_t initial_capacity = 32, Hash hasher = Hash{},
                    KeyEqual eq = KeyEqual{})
      : hasher_(std::move(hasher)), eq_(std::move(eq)) {
    std::size_t n = 32;
    while (n < initial_capacity) {
      n <<= 1;
    }
    states_.assign(n, kEmpty);
    entries_.resize(n);
  }

  DenseMap(const DenseMap&) = delete;
  DenseMap& operator=(const DenseMap&) = delete;

  bool Find(const K& key, V* out) const {
    std::size_t idx;
    if (!Probe(key, &idx)) {
      return false;
    }
    *out = entries_[idx].second;
    return true;
  }

  bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  InsertResult Insert(const K& key, const V& value) { return DoInsert(key, value, false); }
  InsertResult Upsert(const K& key, const V& value) { return DoInsert(key, value, true); }

  bool Update(const K& key, const V& value) {
    std::size_t idx;
    if (!Probe(key, &idx)) {
      return false;
    }
    entries_[idx].second = value;
    return true;
  }

  bool Erase(const K& key) {
    std::size_t idx;
    if (!Probe(key, &idx)) {
      return false;
    }
    states_[idx] = kTombstone;
    --size_;
    ++tombstones_;
    return true;
  }

  std::size_t Size() const noexcept { return size_; }
  std::size_t Capacity() const noexcept { return states_.size(); }
  double LoadFactor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(states_.size());
  }

  void Clear() {
    std::fill(states_.begin(), states_.end(), kEmpty);
    size_ = 0;
    tombstones_ = 0;
  }

  std::size_t HeapBytes() const noexcept {
    return states_.size() * (sizeof(std::uint8_t) + sizeof(std::pair<K, V>));
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) {
        fn(entries_[i].first, entries_[i].second);
      }
    }
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

  std::size_t Mask() const noexcept { return states_.size() - 1; }

  // Quadratic probe for an existing key. Returns false when an empty slot is
  // reached first.
  bool Probe(const K& key, std::size_t* out_idx) const {
    const std::uint64_t h = hasher_(key);
    std::size_t idx = static_cast<std::size_t>(h) & Mask();
    for (std::size_t step = 0;; ++step) {
      if (states_[idx] == kEmpty) {
        return false;
      }
      if (states_[idx] == kFull && eq_(entries_[idx].first, key)) {
        *out_idx = idx;
        return true;
      }
      idx = (idx + step + 1) & Mask();  // triangular-number quadratic probing
    }
  }

  InsertResult DoInsert(const K& key, const V& value, bool overwrite) {
    if ((size_ + tombstones_ + 1) * 2 > states_.size()) {
      Rehash(states_.size() * 2);
    }
    const std::uint64_t h = hasher_(key);
    std::size_t idx = static_cast<std::size_t>(h) & Mask();
    std::size_t first_tombstone = states_.size();  // sentinel: none seen
    for (std::size_t step = 0;; ++step) {
      if (states_[idx] == kEmpty) {
        std::size_t target = first_tombstone != states_.size() ? first_tombstone : idx;
        if (states_[target] == kTombstone) {
          --tombstones_;
        }
        states_[target] = kFull;
        entries_[target] = {key, value};
        ++size_;
        return InsertResult::kOk;
      }
      if (states_[idx] == kTombstone) {
        if (first_tombstone == states_.size()) {
          first_tombstone = idx;
        }
      } else if (eq_(entries_[idx].first, key)) {
        if (overwrite) {
          entries_[idx].second = value;
        }
        return InsertResult::kKeyExists;
      }
      idx = (idx + step + 1) & Mask();
    }
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<std::uint8_t> old_states = std::move(states_);
    std::vector<std::pair<K, V>> old_entries = std::move(entries_);
    states_.assign(new_capacity, kEmpty);
    entries_.assign(new_capacity, {});
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] == kFull) {
        DoInsert(old_entries[i].first, old_entries[i].second, false);
      }
    }
  }

  Hash hasher_;
  KeyEqual eq_;
  std::vector<std::uint8_t> states_;
  std::vector<std::pair<K, V>> entries_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace cuckoo

#endif  // SRC_BASELINES_DENSE_MAP_H_
