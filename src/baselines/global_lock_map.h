// GlobalLockMap — "the simplest form of locking is to wrap a coarse-grained
// lock around the whole shared data structure" (§2.2). Wraps any
// single-threaded map (ChainingMap, DenseMap, ...) in one lock, which may be
// a pthread-style mutex, a spinlock, or a TSX-elided lock — exactly the §2.3
// configurations whose collapse under concurrent writers motivates the paper.
#ifndef SRC_BASELINES_GLOBAL_LOCK_MAP_H_
#define SRC_BASELINES_GLOBAL_LOCK_MAP_H_

#include <cstddef>
#include <mutex>
#include <utility>

#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename InnerMap, typename Lock = std::mutex>
class GlobalLockMap {
 public:
  using KeyType = typename InnerMap::KeyType;
  using ValueType = typename InnerMap::ValueType;
  using K = KeyType;
  using V = ValueType;

  template <typename... Args>
  explicit GlobalLockMap(Args&&... args) : inner_(std::forward<Args>(args)...) {}

  GlobalLockMap(const GlobalLockMap&) = delete;
  GlobalLockMap& operator=(const GlobalLockMap&) = delete;

  bool Find(const K& key, V* out) const {
    std::lock_guard<Lock> g(lock_);
    return inner_.Find(key, out);
  }

  bool Contains(const K& key) const {
    std::lock_guard<Lock> g(lock_);
    return inner_.Contains(key);
  }

  InsertResult Insert(const K& key, const V& value) {
    std::lock_guard<Lock> g(lock_);
    return inner_.Insert(key, value);
  }

  InsertResult Upsert(const K& key, const V& value) {
    std::lock_guard<Lock> g(lock_);
    return inner_.Upsert(key, value);
  }

  bool Update(const K& key, const V& value) {
    std::lock_guard<Lock> g(lock_);
    return inner_.Update(key, value);
  }

  bool Erase(const K& key) {
    std::lock_guard<Lock> g(lock_);
    return inner_.Erase(key);
  }

  std::size_t Size() const {
    std::lock_guard<Lock> g(lock_);
    return inner_.Size();
  }

  std::size_t HeapBytes() const {
    std::lock_guard<Lock> g(lock_);
    return inner_.HeapBytes();
  }

  Lock& global_lock() noexcept { return lock_; }
  InnerMap& inner() noexcept { return inner_; }
  const InnerMap& inner() const noexcept { return inner_; }

 private:
  InnerMap inner_;
  mutable Lock lock_;
};

}  // namespace cuckoo

#endif  // SRC_BASELINES_GLOBAL_LOCK_MAP_H_
