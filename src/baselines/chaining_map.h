// ChainingMap — a separate-chaining hash table in the style of C++11's
// std::unordered_map ("very fast lookup performance, but also at the cost of
// more memory usage", §2.1). Single-threaded; wrap in GlobalLockMap (or an
// elided lock) for the §2.3 naive-concurrency experiments.
//
// Every entry is a separately allocated node carrying a next pointer and the
// cached full hash — the per-item pointer overhead the paper contrasts with
// pointer-free cuckoo buckets.
#ifndef SRC_BASELINES_CHAINING_MAP_H_
#define SRC_BASELINES_CHAINING_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>>
class ChainingMap {
 public:
  using KeyType = K;
  using ValueType = V;

  explicit ChainingMap(std::size_t initial_bucket_count = 16, Hash hasher = Hash{},
                       KeyEqual eq = KeyEqual{})
      : hasher_(std::move(hasher)), eq_(std::move(eq)) {
    std::size_t n = 16;
    while (n < initial_bucket_count) {
      n <<= 1;
    }
    buckets_.assign(n, nullptr);
  }

  ChainingMap(const ChainingMap&) = delete;
  ChainingMap& operator=(const ChainingMap&) = delete;

  ~ChainingMap() { DeleteAllNodes(); }

  bool Find(const K& key, V* out) const {
    const std::uint64_t h = hasher_(key);
    for (Node* n = buckets_[h & Mask()]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        *out = n->value;
        return true;
      }
    }
    return false;
  }

  bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  InsertResult Insert(const K& key, const V& value) { return DoInsert(key, value, false); }
  InsertResult Upsert(const K& key, const V& value) { return DoInsert(key, value, true); }

  bool Update(const K& key, const V& value) {
    const std::uint64_t h = hasher_(key);
    for (Node* n = buckets_[h & Mask()]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        n->value = value;
        return true;
      }
    }
    return false;
  }

  bool Erase(const K& key) {
    const std::uint64_t h = hasher_(key);
    Node** link = &buckets_[h & Mask()];
    while (*link != nullptr) {
      Node* n = *link;
      if (n->hash == h && eq_(n->key, key)) {
        *link = n->next;
        delete n;
        --size_;
        return true;
      }
      link = &n->next;
    }
    return false;
  }

  std::size_t Size() const noexcept { return size_; }
  std::size_t BucketCount() const noexcept { return buckets_.size(); }
  double LoadFactor() const noexcept {
    return static_cast<double>(size_) / static_cast<double>(buckets_.size());
  }

  void Clear() {
    DeleteAllNodes();
    std::fill(buckets_.begin(), buckets_.end(), nullptr);
    size_ = 0;
  }

  // Bucket array + one heap node per entry.
  std::size_t HeapBytes() const noexcept {
    return buckets_.size() * sizeof(Node*) + size_ * sizeof(Node);
  }

  // Visit every entry (iteration support for examples / tests).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* head : buckets_) {
      for (Node* n = head; n != nullptr; n = n->next) {
        fn(n->key, n->value);
      }
    }
  }

 private:
  struct Node {
    Node* next;
    std::uint64_t hash;
    K key;
    V value;
  };

  std::size_t Mask() const noexcept { return buckets_.size() - 1; }

  InsertResult DoInsert(const K& key, const V& value, bool overwrite) {
    const std::uint64_t h = hasher_(key);
    std::size_t idx = h & Mask();
    for (Node* n = buckets_[idx]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        if (overwrite) {
          n->value = value;
        }
        return InsertResult::kKeyExists;
      }
    }
    if (size_ + 1 > buckets_.size() * kMaxLoadFactor) {
      Rehash(buckets_.size() * 2);
      idx = h & Mask();
    }
    buckets_[idx] = new Node{buckets_[idx], h, key, value};
    ++size_;
    return InsertResult::kOk;
  }

  void Rehash(std::size_t new_count) {
    std::vector<Node*> fresh(new_count, nullptr);
    const std::size_t new_mask = new_count - 1;
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        std::size_t idx = head->hash & new_mask;
        head->next = fresh[idx];
        fresh[idx] = head;
        head = next;
      }
    }
    buckets_ = std::move(fresh);
  }

  void DeleteAllNodes() {
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        delete head;
        head = next;
      }
    }
  }

  static constexpr std::size_t kMaxLoadFactor = 1;  // matches libstdc++'s default of 1.0

  Hash hasher_;
  KeyEqual eq_;
  std::vector<Node*> buckets_;
  std::size_t size_ = 0;
};

}  // namespace cuckoo

#endif  // SRC_BASELINES_CHAINING_MAP_H_
