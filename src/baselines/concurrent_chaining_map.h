// ConcurrentChainingMap — a stand-in for Intel TBB's concurrent_hash_map
// (§2.1): "based upon the classic separate chaining design, where keys are
// hashed to a bucket that contains a linked list of entries... holding a
// per-bucket lock permits guaranteed exclusive modification while still
// allowing fine-grained access."
//
// Structure mirrors what the paper measures against:
//   * chained nodes (pointer + cached hash per entry — the 2-3x memory
//     overhead for small pairs),
//   * fine-grained reader-writer locks striped over buckets,
//   * reads take a (shared) lock — unlike cuckoo+'s lock-free reads.
//
// The bucket count is fixed at construction (the paper's experiments
// "initialize the TBB table with the same number of buckets"); chains absorb
// any overflow, so inserts never fail.
#ifndef SRC_BASELINES_CONCURRENT_CHAINING_MAP_H_
#define SRC_BASELINES_CONCURRENT_CHAINING_MAP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/per_thread_counter.h"
#include "src/common/rw_spinlock.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>>
class ConcurrentChainingMap {
 public:
  using KeyType = K;
  using ValueType = V;

  static constexpr std::size_t kDefaultLockCount = 2048;

  explicit ConcurrentChainingMap(std::size_t bucket_count = 1 << 16,
                                 std::size_t lock_count = kDefaultLockCount,
                                 Hash hasher = Hash{}, KeyEqual eq = KeyEqual{})
      : hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        lock_mask_(lock_count - 1),
        locks_(new PaddedRwSpinLock[lock_count]) {
    std::size_t n = 16;
    while (n < bucket_count) {
      n <<= 1;
    }
    buckets_.assign(n, nullptr);
  }

  ConcurrentChainingMap(const ConcurrentChainingMap&) = delete;
  ConcurrentChainingMap& operator=(const ConcurrentChainingMap&) = delete;

  ~ConcurrentChainingMap() {
    for (Node* head : buckets_) {
      while (head != nullptr) {
        Node* next = head->next;
        delete head;
        head = next;
      }
    }
  }

  bool Find(const K& key, V* out) const {
    const std::uint64_t h = hasher_(key);
    const std::size_t idx = h & Mask();
    RwSpinLock& lock = LockFor(idx);
    lock.LockShared();
    bool found = false;
    for (Node* n = buckets_[idx]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        *out = n->value;
        found = true;
        break;
      }
    }
    lock.UnlockShared();
    return found;
  }

  bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  InsertResult Insert(const K& key, const V& value) { return DoInsert(key, value, false); }
  InsertResult Upsert(const K& key, const V& value) { return DoInsert(key, value, true); }

  bool Update(const K& key, const V& value) {
    const std::uint64_t h = hasher_(key);
    const std::size_t idx = h & Mask();
    RwSpinLock& lock = LockFor(idx);
    lock.Lock();
    bool found = false;
    for (Node* n = buckets_[idx]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        n->value = value;
        found = true;
        break;
      }
    }
    lock.Unlock();
    return found;
  }

  bool Erase(const K& key) {
    const std::uint64_t h = hasher_(key);
    const std::size_t idx = h & Mask();
    RwSpinLock& lock = LockFor(idx);
    lock.Lock();
    bool found = false;
    Node** link = &buckets_[idx];
    while (*link != nullptr) {
      Node* n = *link;
      if (n->hash == h && eq_(n->key, key)) {
        *link = n->next;
        delete n;
        found = true;
        break;
      }
      link = &n->next;
    }
    lock.Unlock();
    if (found) {
      size_.Decrement();
    }
    return found;
  }

  std::size_t Size() const noexcept {
    std::int64_t n = size_.Sum();
    return n < 0 ? 0 : static_cast<std::size_t>(n);
  }

  std::size_t BucketCount() const noexcept { return buckets_.size(); }

  std::size_t HeapBytes() const noexcept {
    return buckets_.size() * sizeof(Node*) + Size() * sizeof(Node) +
           (lock_mask_ + 1) * sizeof(PaddedRwSpinLock);
  }

 private:
  struct Node {
    Node* next;
    std::uint64_t hash;
    K key;
    V value;
  };

  std::size_t Mask() const noexcept { return buckets_.size() - 1; }

  RwSpinLock& LockFor(std::size_t bucket_index) const noexcept {
    return locks_[bucket_index & lock_mask_];
  }

  InsertResult DoInsert(const K& key, const V& value, bool overwrite) {
    const std::uint64_t h = hasher_(key);
    const std::size_t idx = h & Mask();
    RwSpinLock& lock = LockFor(idx);
    lock.Lock();
    for (Node* n = buckets_[idx]; n != nullptr; n = n->next) {
      if (n->hash == h && eq_(n->key, key)) {
        if (overwrite) {
          n->value = value;
        }
        lock.Unlock();
        return InsertResult::kKeyExists;
      }
    }
    buckets_[idx] = new Node{buckets_[idx], h, key, value};
    lock.Unlock();
    size_.Increment();
    return InsertResult::kOk;
  }

  Hash hasher_;
  KeyEqual eq_;
  std::size_t lock_mask_;
  std::unique_ptr<PaddedRwSpinLock[]> locks_;
  std::vector<Node*> buckets_;
  PerThreadCounter size_;
};

}  // namespace cuckoo

#endif  // SRC_BASELINES_CONCURRENT_CHAINING_MAP_H_
