#include "src/htm/rtm.h"

#include <atomic>

#include "src/common/cpu.h"

#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
#include <immintrin.h>
#endif

namespace cuckoo {
namespace {

std::atomic<int> g_forced{-1};

bool ProbeOnce() noexcept {
#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
  if (!CpuSupportsRtm()) {
    return false;
  }
  // Even with the CPUID bit set, microcode on most post-2021 parts aborts
  // every transaction (TAA mitigations). Require at least one real commit.
  for (int i = 0; i < 16; ++i) {
    unsigned status = _xbegin();
    if (status == _XBEGIN_STARTED) {
      _xend();
      return true;
    }
  }
  return false;
#else
  return false;
#endif
}

}  // namespace

bool RtmIsUsable() noexcept {
  int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return forced != 0;
  }
  static const bool usable = ProbeOnce();
  return usable;
}

void RtmForceUsable(int usable) noexcept {
  g_forced.store(usable, std::memory_order_relaxed);
}

unsigned RtmBegin() noexcept {
#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
  return _xbegin();
#else
  return 0;  // abort, no retry hint
#endif
}

void RtmEnd() noexcept {
#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
  _xend();
#endif
}

void RtmAbort() noexcept {
#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
  _xabort(0xff);
#endif
}

bool RtmInTransaction() noexcept {
#if defined(CUCKOO_HAVE_RTM_INTRINSICS)
  return _xtest() != 0;
#else
  return false;
#endif
}

}  // namespace cuckoo
