// Minimal wrapper over Intel TSX Restricted Transactional Memory (RTM).
//
// The paper evaluates its tables on Haswell TSX hardware. This repo targets
// arbitrary hosts, so:
//   * when the CPU reports RTM *and* a runtime functional probe shows
//     transactions can actually commit (microcode updates have disabled TSX on
//     most parts), the real XBEGIN/XEND/XABORT instructions are used;
//   * otherwise an *emulated* engine with deterministic abort injection stands
//     in, so every elision code path (retry budgets, abort-status decisions,
//     fallback locking, abort-rate accounting) still executes and is testable.
//
// Abort status bits mirror Intel's EAX layout so the elision logic is written
// once against the same constants in both modes.
#ifndef SRC_HTM_RTM_H_
#define SRC_HTM_RTM_H_

#include <cstdint>

namespace cuckoo {

// Status returned by RtmBegin(). Matches Intel's _XBEGIN_STARTED / _XABORT_*.
inline constexpr unsigned kRtmStarted = ~0u;           // _XBEGIN_STARTED
inline constexpr unsigned kRtmAbortExplicit = 1u << 0;  // _XABORT_EXPLICIT
inline constexpr unsigned kRtmAbortRetry = 1u << 1;     // _XABORT_RETRY
inline constexpr unsigned kRtmAbortConflict = 1u << 2;  // _XABORT_CONFLICT
inline constexpr unsigned kRtmAbortCapacity = 1u << 3;  // _XABORT_CAPACITY

// Extract the 8-bit code passed to RtmAbort() from an explicit-abort status.
constexpr std::uint8_t RtmAbortCode(unsigned status) noexcept {
  return static_cast<std::uint8_t>(status >> 24);
}

// True if the instructions exist AND the functional probe committed at least
// one transaction. Result is computed once and cached.
bool RtmIsUsable() noexcept;

// Force the answer of RtmIsUsable() (tests / benches use this to pin the
// emulated engine). Passing -1 restores autodetection.
void RtmForceUsable(int usable) noexcept;

// Raw instruction wrappers. Only call when RtmIsUsable(); otherwise they
// return kRtmAbortRetry-free failure (Begin) or are no-ops.
unsigned RtmBegin() noexcept;
void RtmEnd() noexcept;
void RtmAbort() noexcept;       // XABORT with code 0xff ("lock busy")
bool RtmInTransaction() noexcept;

}  // namespace cuckoo

#endif  // SRC_HTM_RTM_H_
