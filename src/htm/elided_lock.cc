#include "src/htm/elided_lock.h"

#include "src/common/random.h"

namespace cuckoo {

EmulatedRtmConfig& GlobalEmulatedRtmConfig() noexcept {
  static EmulatedRtmConfig config;
  return config;
}

namespace internal {

std::uint64_t NextEmulationDraw() noexcept {
  thread_local Xorshift128Plus rng(GlobalEmulatedRtmConfig().seed +
                                   static_cast<std::uint64_t>(CurrentThreadId()) * 0x9e37u);
  return rng.Next();
}

unsigned EmulatedBegin() noexcept {
  const EmulatedRtmConfig& config = GlobalEmulatedRtmConfig();
  std::uint64_t draw = NextEmulationDraw();
  unsigned permille = static_cast<unsigned>(draw % 1000);
  if (permille >= config.abort_permille) {
    return kRtmStarted;
  }
  unsigned hint_draw = static_cast<unsigned>((draw >> 32) % 1000);
  if (hint_draw < config.retry_hint_permille) {
    return kRtmAbortConflict | kRtmAbortRetry;
  }
  return kRtmAbortCapacity;
}

}  // namespace internal
}  // namespace cuckoo
