// TSX lock elision (Appendix A of the paper).
//
// ElidedLock<LockT> wraps any lock exposing lock()/try_lock()/unlock()/
// is_locked() and executes critical sections transactionally when possible,
// taking the wrapped ("fallback") lock only when transactions keep aborting.
// Two retry policies are provided:
//
//   * kGlibcElision — models the released glibc TSX elision the paper
//     criticizes: as soon as an abort arrives without the RETRY hint it takes
//     the fallback lock, "forcing all other concurrent transactions to abort".
//   * kTunedElision — the paper's TSX* (Figure 11): "we always retry several
//     times before taking the fallback lock (using more retries if
//     _ABORT_RETRY is set)".
//
// When real RTM is unusable on the host, the same control flow runs against an
// emulated engine with deterministic abort injection (see EmulatedRtmConfig);
// mutual exclusion is then provided by the fallback lock itself, while commit/
// abort/fallback statistics still flow through identical code.
#ifndef SRC_HTM_ELIDED_LOCK_H_
#define SRC_HTM_ELIDED_LOCK_H_

#include <atomic>
#include <cstdint>

#include "src/common/cpu.h"
#include "src/common/hash.h"
#include "src/common/thread_annotations.h"
#include "src/htm/rtm.h"

namespace cuckoo {

struct ElisionPolicy {
  // Maximum transactional attempts before falling back (_MAX_XBEGIN_RETRY).
  int max_xbegin_retry;
  // Extra budget for aborts that arrive *without* the RETRY hint
  // (_MAX_ABORT_RETRY). Only meaningful when retry_without_hint is true.
  int max_abort_retry;
  // If false, any abort without the RETRY hint immediately takes the fallback
  // lock (glibc behaviour); if true, keep retrying within max_abort_retry
  // ("we found that even if _ABORT_RETRY is not set ... the transaction may
  // succeed still on a retry").
  bool retry_without_hint;
};

inline constexpr ElisionPolicy kGlibcElision{3, 0, false};
inline constexpr ElisionPolicy kTunedElision{10, 5, true};

// Deterministic abort injection for the emulated engine. Global so benches can
// model different contention regimes; threads derive independent streams.
struct EmulatedRtmConfig {
  // Probability (per mille) that a transactional attempt aborts for a reason
  // other than the lock being busy.
  unsigned abort_permille = 250;
  // Of those aborts, probability (per mille) that the RETRY hint is set
  // (i.e. the abort looks transient: a data conflict rather than capacity).
  unsigned retry_hint_permille = 700;
  std::uint64_t seed = 0x5eedf00dull;
};

EmulatedRtmConfig& GlobalEmulatedRtmConfig() noexcept;

// Aggregated elision statistics. Updated outside transactional regions only
// (a transactional store to a shared counter would serialize every elided
// section on one cache line — the exact pathology principle P1 warns about).
class ElisionStats {
 public:
  struct Snapshot {
    std::uint64_t commits = 0;
    std::uint64_t aborts_explicit = 0;
    std::uint64_t aborts_conflict = 0;
    std::uint64_t aborts_capacity = 0;
    std::uint64_t aborts_other = 0;
    std::uint64_t fallback_acquisitions = 0;

    std::uint64_t TotalAborts() const noexcept {
      return aborts_explicit + aborts_conflict + aborts_capacity + aborts_other;
    }
    // Fraction of transactional attempts that aborted.
    double AbortRate() const noexcept {
      std::uint64_t attempts = commits + TotalAborts();
      return attempts == 0 ? 0.0
                           : static_cast<double>(TotalAborts()) / static_cast<double>(attempts);
    }
  };

  void RecordCommit() noexcept { commits_.fetch_add(1, std::memory_order_relaxed); }
  void RecordFallback() noexcept { fallbacks_.fetch_add(1, std::memory_order_relaxed); }
  void RecordAbort(unsigned status) noexcept {
    if (status & kRtmAbortExplicit) {
      aborts_explicit_.fetch_add(1, std::memory_order_relaxed);
    } else if (status & kRtmAbortConflict) {
      aborts_conflict_.fetch_add(1, std::memory_order_relaxed);
    } else if (status & kRtmAbortCapacity) {
      aborts_capacity_.fetch_add(1, std::memory_order_relaxed);
    } else {
      aborts_other_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Snapshot Read() const noexcept {
    Snapshot s;
    s.commits = commits_.load(std::memory_order_relaxed);
    s.aborts_explicit = aborts_explicit_.load(std::memory_order_relaxed);
    s.aborts_conflict = aborts_conflict_.load(std::memory_order_relaxed);
    s.aborts_capacity = aborts_capacity_.load(std::memory_order_relaxed);
    s.aborts_other = aborts_other_.load(std::memory_order_relaxed);
    s.fallback_acquisitions = fallbacks_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() noexcept {
    commits_.store(0, std::memory_order_relaxed);
    aborts_explicit_.store(0, std::memory_order_relaxed);
    aborts_conflict_.store(0, std::memory_order_relaxed);
    aborts_capacity_.store(0, std::memory_order_relaxed);
    aborts_other_.store(0, std::memory_order_relaxed);
    fallbacks_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_explicit_{0};
  std::atomic<std::uint64_t> aborts_conflict_{0};
  std::atomic<std::uint64_t> aborts_capacity_{0};
  std::atomic<std::uint64_t> aborts_other_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
};

namespace internal {

// Per-thread xorshift stream for the emulated engine, seeded from the global
// config seed and the thread id so runs are reproducible.
std::uint64_t NextEmulationDraw() noexcept;

// Emulated _xbegin: returns kRtmStarted or an injected abort status.
unsigned EmulatedBegin() noexcept;

}  // namespace internal

// The elided wrapper is itself a capability: callers hold "the critical
// section" whether it ran transactionally or under the fallback lock. The
// bodies are excluded from analysis — lock() may return while holding
// nothing at all (a started transaction), which the lock-based model cannot
// express; mutual exclusion there is RTM's, not the analyzer's, concern.
template <typename LockT>
class CAPABILITY("elided_lock") ElidedLock {
 public:
  explicit ElidedLock(ElisionPolicy policy = kTunedElision) noexcept : policy_(policy) {}
  ElidedLock(const ElidedLock&) = delete;
  ElidedLock& operator=(const ElidedLock&) = delete;

  // Figure 11's elided_lock_wrapper.
  void lock() noexcept ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    if (RtmIsUsable()) {
      LockHardware();
    } else {
      LockEmulated();
    }
  }

  // Figure 11's elided_unlock_wrapper: if the fallback lock is free we must be
  // inside a transaction — commit it; otherwise we hold the fallback lock.
  void unlock() noexcept RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    if (RtmIsUsable() && !inner_.is_locked()) {
      RtmEnd();
      stats_.RecordCommit();
      return;
    }
    bool was_emulated_txn = emulated_txn_;
    emulated_txn_ = false;
    inner_.unlock();
    if (was_emulated_txn) {
      stats_.RecordCommit();
    }
  }

  bool is_locked() const noexcept { return inner_.is_locked(); }

  const ElisionStats& stats() const noexcept { return stats_; }
  ElisionStats& stats() noexcept { return stats_; }
  const ElisionPolicy& policy() const noexcept { return policy_; }

 private:
  void LockHardware() noexcept NO_THREAD_SAFETY_ANALYSIS {
    int xbegin_retry = 0;
    int abort_retry = 0;
    while (xbegin_retry < policy_.max_xbegin_retry) {
      unsigned status = RtmBegin();
      if (status == kRtmStarted) {
        // Bring the fallback lock into the read-set: if someone takes it, our
        // transaction aborts, preserving mutual exclusion with fallback users.
        if (!inner_.is_locked()) {
          return;  // execute the critical section transactionally
        }
        RtmAbort();  // lock busy; abort lands below with kRtmAbortExplicit
      }
      stats_.RecordAbort(status);
      if ((status & kRtmAbortRetry) == 0) {
        if (!policy_.retry_without_hint || abort_retry >= policy_.max_abort_retry) {
          break;
        }
        ++abort_retry;
      }
      ++xbegin_retry;
    }
    stats_.RecordFallback();
    inner_.lock();
  }

  void LockEmulated() noexcept NO_THREAD_SAFETY_ANALYSIS {
    int xbegin_retry = 0;
    int abort_retry = 0;
    while (xbegin_retry < policy_.max_xbegin_retry) {
      unsigned status = internal::EmulatedBegin();
      if (status == kRtmStarted) {
        // Mutual exclusion for the emulated "transaction" comes from the
        // fallback lock itself; a busy lock plays the role of a conflict.
        if (inner_.try_lock()) {
          emulated_txn_ = true;
          return;
        }
        status = kRtmAbortExplicit | (0xffu << 24);
      }
      stats_.RecordAbort(status);
      if ((status & kRtmAbortRetry) == 0) {
        if (!policy_.retry_without_hint || abort_retry >= policy_.max_abort_retry) {
          break;
        }
        ++abort_retry;
      }
      ++xbegin_retry;
    }
    stats_.RecordFallback();
    inner_.lock();
  }

  LockT inner_;
  ElisionPolicy policy_;
  ElisionStats stats_;
  // Only written while holding inner_, so a plain bool is race-free.
  bool emulated_txn_ = false;
};

// Default-constructible aliases so lock types can be plugged into templates
// (e.g. FlatCuckooMap's GlobalLock parameter) without threading a policy
// argument through.
template <typename LockT>
class GlibcElided : public ElidedLock<LockT> {
 public:
  GlibcElided() noexcept : ElidedLock<LockT>(kGlibcElision) {}
};

template <typename LockT>
class TunedElided : public ElidedLock<LockT> {
 public:
  TunedElided() noexcept : ElidedLock<LockT>(kTunedElision) {}
};

}  // namespace cuckoo

#endif  // SRC_HTM_ELIDED_LOCK_H_
