// Online fuzzy snapshots of a KvService, paired with the WAL for point-in-
// time recovery.
//
// WriteKvSnapshot samples S = LastAssignedLsn() and then walks the live
// table with KvService::TrySnapshotEntries — writers are never globally
// blocked; the walk holds at most one stripe lock at a time. The resulting
// file is a FUZZY image: it reflects every mutation with lsn <= S (each such
// mutation committed inside a bucket critical section the walk later
// synchronizes with) and possibly some with lsn > S. Replaying the WAL from
// S+1 with last-writer-wins upserts/deletes therefore converges the loaded
// image to the exact logged state — duplicates and already-applied records
// are harmless by idempotence.
//
// On-disk format (host-endian, machine-local):
//   file    := header record* footer
//   header  := "CKKVSNP1" u32 version=1 u32 flags=0 u64 wal_lsn     (24 bytes)
//   record  := u32 masked_crc32c u32 len payload[len]
//   payload := u8 type=1  u32 flags u64 cas_id u64 expires_at
//              u32 klen u32 dlen key[klen] data[dlen]
//   footer  := framed like a record, payload := u8 type=2 u64 count u64 max_cas
// The footer is mandatory: a snapshot without one (truncated mid-write) is
// invalid and recovery falls back to the previous snapshot. Files are
// written as <name>.tmp, fsynced, then renamed into snap-<wal_lsn>.ckpt —
// a crash mid-snapshot never damages an existing good snapshot.
#ifndef SRC_PERSIST_SNAPSHOT_H_
#define SRC_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/kvserver/kv_service.h"

namespace cuckoo {
namespace persist {

struct SnapshotWriteStats {
  std::uint64_t entries = 0;
  std::uint64_t wal_lsn = 0;
  std::uint64_t bytes = 0;
  std::uint64_t attempts = 0;  // walk attempts (core swaps force retries)
  KvService::StoreMap::SnapshotWalkStats walk;
};

// Write a fuzzy snapshot of `service` into `dir` as snap-<lsn>.ckpt.
// `lsn_provider` is sampled immediately before each walk attempt (pass the
// WAL's LastAssignedLsn). A table expansion mid-walk aborts the attempt and
// retries, up to `max_attempts`. Returns false (with *error) on I/O failure
// or if every attempt was interrupted.
bool WriteKvSnapshot(const KvService& service, const std::string& dir,
                     const std::function<std::uint64_t()>& lsn_provider, int max_attempts,
                     SnapshotWriteStats* stats, std::string* error);

// Write a fuzzy snapshot to an explicit `file_path` (no rename/publish) for
// shipping to a replica, with every value INLINED: tiered entries are read
// back from the service's value log and written as plain entry records,
// because the primary's 16-byte locations are meaningless in the replica's
// (possibly absent) log. An entry whose tier read fails is skipped — the
// read can only fail when GC relocated the record after our walk copied the
// bucket, and that relocation logged a WAL record with lsn > this
// snapshot's, so the live stream that follows re-delivers the value.
bool WriteReplicaSnapshot(const KvService& service, const std::string& file_path,
                          const std::function<std::uint64_t()>& lsn_provider,
                          int max_attempts, SnapshotWriteStats* stats, std::string* error);

struct SnapshotLoadStats {
  std::uint64_t entries = 0;
  std::uint64_t wal_lsn = 0;
  std::uint64_t max_cas = 0;
};

// Load a snapshot file into `service` via RestoreEntry. Every record CRC is
// verified and the footer count must match; any mismatch returns false and
// the service may hold a partial load (recovery clears by retrying older
// snapshots into a fresh service, or tolerates the partial state because a
// full reload follows). Intended for recovery before serving traffic.
bool LoadKvSnapshot(const std::string& path, KvService* service, SnapshotLoadStats* stats,
                    std::string* error);

// (wal_lsn, filename) of every well-named snapshot in `dir`, ascending.
std::vector<std::pair<std::uint64_t, std::string>> ListSnapshots(const std::string& dir);

namespace internal {
inline constexpr char kKvSnapMagic[8] = {'C', 'K', 'K', 'V', 'S', 'N', 'P', '1'};
inline constexpr std::uint32_t kKvSnapVersion = 1;
inline constexpr std::uint8_t kEntryRecord = 1;
inline constexpr std::uint8_t kFooterRecord = 2;
// Same layout as kEntryRecord, but the data bytes are the 16-byte encoded
// value-log location (src/store/value_log.h), not the value itself. Load
// re-validates the location against the live log and skips entries whose
// record is gone (a never-acked write torn off the log tail).
inline constexpr std::uint8_t kTieredEntryRecord = 3;
std::string SnapshotFileName(std::uint64_t wal_lsn);
bool ParseSnapshotFileName(const std::string& name, std::uint64_t* wal_lsn);
}  // namespace internal

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_SNAPSHOT_H_
