#include "src/persist/wal.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/crc32c.h"

namespace cuckoo {
namespace persist {
namespace {

std::uint64_t SteadyMs() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(const std::string& bytes, std::size_t* pos, T* out) {
  if (bytes.size() - *pos < sizeof(T)) {
    return false;
  }
  std::memcpy(out, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void EncodeFields(std::string* out, std::uint64_t lsn, WalRecord::Type type,
                  std::uint32_t flags, std::uint64_t expires_at, std::uint64_t cas_id,
                  std::string_view key, std::string_view data) {
  std::string payload;
  payload.reserve(8 + 1 + 4 + 8 + 8 + 4 + 4 + key.size() + data.size());
  AppendPod(&payload, lsn);
  AppendPod(&payload, static_cast<std::uint8_t>(type));
  AppendPod(&payload, flags);
  AppendPod(&payload, expires_at);
  AppendPod(&payload, cas_id);
  AppendPod(&payload, static_cast<std::uint32_t>(key.size()));
  AppendPod(&payload, static_cast<std::uint32_t>(data.size()));
  payload.append(key);
  payload.append(data);

  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = Crc32c(&len, sizeof(len));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  AppendPod(out, Crc32cMask(crc));
  AppendPod(out, len);
  out->append(payload);
}

}  // namespace

namespace internal {

int DecodeWalRecord(const std::string& bytes, std::size_t* pos, WalRecord* out) {
  std::size_t p = *pos;
  std::uint32_t stored_crc = 0;
  std::uint32_t len = 0;
  if (!ReadPod(bytes, &p, &stored_crc) || !ReadPod(bytes, &p, &len)) {
    return 0;
  }
  if (len > internal::kMaxRecordPayload || bytes.size() - p < len) {
    return 0;
  }
  std::uint32_t crc = Crc32c(&len, sizeof(len));
  crc = Crc32cExtend(crc, bytes.data() + p, len);
  if (Crc32cMask(crc) != stored_crc) {
    return 0;
  }
  const std::size_t payload_end = p + len;
  std::uint8_t type = 0;
  std::uint32_t klen = 0;
  std::uint32_t dlen = 0;
  if (!ReadPod(bytes, &p, &out->lsn) || !ReadPod(bytes, &p, &type) ||
      !ReadPod(bytes, &p, &out->flags) || !ReadPod(bytes, &p, &out->expires_at) ||
      !ReadPod(bytes, &p, &out->cas_id) || !ReadPod(bytes, &p, &klen) ||
      !ReadPod(bytes, &p, &dlen)) {
    return 0;
  }
  if (type != static_cast<std::uint8_t>(WalRecord::Type::kSet) &&
      type != static_cast<std::uint8_t>(WalRecord::Type::kDelete) &&
      type != static_cast<std::uint8_t>(WalRecord::Type::kSetTiered)) {
    return 0;
  }
  if (payload_end - p != static_cast<std::uint64_t>(klen) + dlen) {
    return 0;
  }
  out->type = static_cast<WalRecord::Type>(type);
  out->key.assign(bytes, p, klen);
  out->data.assign(bytes, p + klen, dlen);
  *pos = payload_end;
  return 1;
}

}  // namespace internal

bool ParseFsyncPolicy(std::string_view name, FsyncPolicy* out) {
  if (name == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (name == "everysec") {
    *out = FsyncPolicy::kEverySec;
  } else if (name == "none") {
    *out = FsyncPolicy::kNone;
  } else {
    return false;
  }
  return true;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kEverySec:
      return "everysec";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "?";
}

namespace internal {

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  EncodeFields(out, record.lsn, record.type, record.flags, record.expires_at, record.cas_id,
               record.key, record.data);
}

std::string SegmentName(std::uint64_t first_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

bool ParseSegmentName(const std::string& name, std::uint64_t* first_lsn) {
  unsigned long long lsn = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log%n", &lsn, &consumed) != 1 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  *first_lsn = lsn;
  return true;
}

}  // namespace internal

bool WriteAheadLog::Open(WalOptions options, std::uint64_t next_lsn) {
  assert(next_lsn >= 1);
  options_ = std::move(options);
  if (!EnsureDir(options_.dir)) {
    return false;
  }
  next_lsn_.store(next_lsn, std::memory_order_release);
  durable_lsn_.store(next_lsn - 1, std::memory_order_release);
  written_lsn_.store(next_lsn - 1, std::memory_order_release);
  {
    MutexLock io(io_mutex_);
    segment_next_lsn_ = next_lsn;
    // Always begin a fresh segment: replay never has to scan past the torn
    // tail of an old one, and the name collision case (an empty segment left
    // by a previous run) is safely overwritten because an empty segment
    // contributes no LSNs.
    if (!StartSegment(next_lsn)) {
      return false;
    }
    last_fsync_ms_ = SteadyMs();
  }
  {
    MutexLock lk(mutex_);
    assert(!started_);
    shutdown_ = false;
    started_ = true;
  }
  io_error_.store(false, std::memory_order_release);
  inject_io_error_.store(false, std::memory_order_release);
  writer_ = std::thread(&WriteAheadLog::WriterLoop, this);
  return true;
}

bool WriteAheadLog::StartSegment(std::uint64_t first_lsn) {
  const std::string path = options_.dir + "/" + internal::SegmentName(first_lsn);
  file_.Close();
  if (!file_.Open(path, /*truncate=*/true)) {
    return false;
  }
  std::string header;
  header.append(internal::kWalMagic, sizeof(internal::kWalMagic));
  AppendPod(&header, internal::kWalVersion);
  AppendPod(&header, std::uint32_t{0});  // flags
  AppendPod(&header, first_lsn);
  if (!file_.Append(header) || !file_.Sync() || !SyncDir(options_.dir)) {
    return false;
  }
  segment_first_lsn_ = first_lsn;
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t WriteAheadLog::Append(WalRecord::Type type, std::string_view key,
                                    std::string_view data, std::uint32_t flags,
                                    std::uint64_t expires_at, std::uint64_t cas_id) {
  MutexLock lk(mutex_);
  // LSN assignment and batch-buffer append happen under one mutex hold, so
  // buffer order always equals LSN order.
  const std::uint64_t lsn = next_lsn_.fetch_add(1, std::memory_order_acq_rel);
  const std::size_t before = pending_.size();
  EncodeFields(&pending_, lsn, type, flags, expires_at, cas_id, key, data);
  pending_max_lsn_ = lsn;
  ++pending_records_;
  bytes_appended_.fetch_add(pending_.size() - before, std::memory_order_relaxed);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return lsn;
}

bool WriteAheadLog::AppendReplicated(const WalRecord& record) {
  MutexLock lk(mutex_);
  // The replicated stream must stay contiguous with the local log; a gap
  // here would be exactly the LSN hole replay rejects.
  const std::uint64_t expected = next_lsn_.load(std::memory_order_relaxed);
  if (record.lsn != expected) {
    return false;
  }
  next_lsn_.store(expected + 1, std::memory_order_release);
  const std::size_t before = pending_.size();
  EncodeFields(&pending_, record.lsn, record.type, record.flags, record.expires_at,
               record.cas_id, record.key, record.data);
  pending_max_lsn_ = record.lsn;
  ++pending_records_;
  bytes_appended_.fetch_add(pending_.size() - before, std::memory_order_relaxed);
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return true;
}

bool WriteAheadLog::WaitDurable(std::uint64_t lsn) {
  if (lsn == 0) {
    return true;  // nothing was logged, nothing to promise
  }
  if (io_error_.load(std::memory_order_acquire)) {
    return false;  // sticky: durability is gone until the log is reopened
  }
  if (options_.fsync_policy != FsyncPolicy::kAlways) {
    return true;  // weaker policies ack on enqueue
  }
  MutexLock lk(mutex_);
  // Explicit wait loop (not the predicate overload): the analysis treats a
  // predicate lambda as an unrelated function that reads guarded fields
  // without the mutex, even though wait() only runs it under the lock.
  while (!(durable_lsn_.load(std::memory_order_acquire) >= lsn ||
           io_error_.load(std::memory_order_relaxed) || !started_)) {
    durable_cv_.wait(lk.native_handle());
  }
  return !io_error_.load(std::memory_order_relaxed) &&
         durable_lsn_.load(std::memory_order_acquire) >= lsn;
}

bool WriteAheadLog::Flush() {
  MutexLock lk(mutex_);
  if (!started_) {
    return !io_error_.load(std::memory_order_acquire);
  }
  flush_requested_ = true;
  const std::uint64_t my_gen = ++flush_generation_;
  work_cv_.notify_one();
  while (!(flushes_done_ >= my_gen || io_error_.load(std::memory_order_relaxed) ||
           !started_)) {
    durable_cv_.wait(lk.native_handle());
  }
  return !io_error_.load(std::memory_order_relaxed);
}

void WriteAheadLog::Shutdown() {
  {
    MutexLock lk(mutex_);
    if (!started_) {
      return;
    }
    shutdown_ = true;
    work_cv_.notify_one();
  }
  writer_.join();
  {
    MutexLock lk(mutex_);
    started_ = false;
    durable_cv_.notify_all();
  }
  MutexLock io(io_mutex_);
  file_.Close();
}

void WriteAheadLog::WriterLoop() {
  for (;;) {
    std::string batch;
    std::uint64_t batch_max_lsn = 0;
    std::uint64_t batch_records = 0;
    std::uint64_t flush_gen = 0;
    bool do_flush = false;
    bool stopping = false;
    {
      MutexLock lk(mutex_);
      // Single timed wait instead of the predicate overload (see
      // WaitDurable). A spurious wakeup just drains an empty batch and
      // re-enters the wait; the 200 ms cap bounds the everysec fsync lag
      // either way.
      if (!(shutdown_ || flush_requested_ || !pending_.empty())) {
        work_cv_.wait_for(lk.native_handle(), std::chrono::milliseconds(200));
      }
      batch.swap(pending_);
      batch_max_lsn = pending_max_lsn_;
      batch_records = pending_records_;
      pending_records_ = 0;
      do_flush = flush_requested_;
      flush_requested_ = false;
      flush_gen = flush_generation_;
      stopping = shutdown_;
    }

    bool synced = false;
    bool ok = true;
    std::uint64_t written_max = 0;
    {
      MutexLock io(io_mutex_);
      // Freeze the file after the first failure: a batch that failed (or was
      // dropped) is an LSN hole, and appending later batches past it would
      // corrupt the valid on-disk prefix that replay can still recover.
      if (io_error_.load(std::memory_order_relaxed) ||
          inject_io_error_.exchange(false, std::memory_order_acq_rel)) {
        ok = false;
      }
      if (ok && !batch.empty()) {
        ok = file_.Append(batch);
        group_commits_.fetch_add(1, std::memory_order_relaxed);
        batch_records_hist_.Record(batch_records);
        std::uint64_t prev = max_batch_records_.load(std::memory_order_relaxed);
        while (batch_records > prev &&
               !max_batch_records_.compare_exchange_weak(prev, batch_records,
                                                         std::memory_order_relaxed)) {
        }
        segment_next_lsn_ = batch_max_lsn + 1;
      }
      written_max = segment_next_lsn_ - 1;  // high-water mark in the file
      const std::uint64_t now_ms = SteadyMs();
      const bool unsynced_tail = written_max > durable_lsn_.load(std::memory_order_relaxed);
      const bool want_sync =
          ok && (do_flush || stopping ||
                 (options_.fsync_policy == FsyncPolicy::kAlways && !batch.empty()) ||
                 (options_.fsync_policy == FsyncPolicy::kEverySec && unsynced_tail &&
                  now_ms - last_fsync_ms_ >= 1000));
      if (want_sync) {
        ok = file_.Sync() && ok;
        if (ok) {
          synced = true;
          last_fsync_ms_ = now_ms;
          fsyncs_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Rotate after the batch is safely down; the next batch opens fresh.
      // The pre-rotation fsync makes everything in the old segment durable,
      // so it advances durable_lsn_ exactly like a want_sync fsync (skipped
      // when this batch already synced above — the data is already down).
      if (ok && file_.Size() >= options_.segment_bytes) {
        if (!synced) {
          ok = file_.Sync();
          if (ok) {
            synced = true;
            last_fsync_ms_ = now_ms;
            fsyncs_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ok = ok && RotateLocked(segment_next_lsn_);
      }
    }

    if (ok && written_max > written_lsn_.load(std::memory_order_relaxed)) {
      written_lsn_.store(written_max, std::memory_order_release);
    }

    bool exiting = false;
    {
      MutexLock lk(mutex_);
      if (!ok) {
        io_error_.store(true, std::memory_order_release);
      } else {
        if (synced && written_max > durable_lsn_.load(std::memory_order_relaxed)) {
          durable_lsn_.store(written_max, std::memory_order_release);
        }
        if (do_flush) {
          flushes_done_ = flush_gen;
        }
      }
      durable_cv_.notify_all();
      exiting = stopping && pending_.empty();
    }
    // Fan the commit out to replication after the watermarks advanced, from
    // outside both mutexes: the sink may wake sender threads that turn
    // around and read WAL state.
    if (ok && !batch.empty() && commit_sink_) {
      commit_sink_(written_max, durable_lsn_.load(std::memory_order_acquire));
    }
    if (exiting) {
      return;
    }
  }
}

bool WriteAheadLog::RotateLocked(std::uint64_t first_lsn) {
  return StartSegment(first_lsn);
}

WalStats WriteAheadLog::Stats() const {
  WalStats s;
  s.records_appended = records_appended_.load(std::memory_order_relaxed);
  s.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.group_commits = group_commits_.load(std::memory_order_relaxed);
  s.max_batch_records = max_batch_records_.load(std::memory_order_relaxed);
  s.segments_created = segments_created_.load(std::memory_order_relaxed);
  s.last_assigned_lsn = LastAssignedLsn();
  s.durable_lsn = DurableLsn();
  s.io_error = InErrorState();
  return s;
}

void WriteAheadLog::RemoveSegmentsBelow(std::uint64_t lsn) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const std::string& name : ListFilesWithPrefix(options_.dir, "wal-")) {
    std::uint64_t first = 0;
    if (internal::ParseSegmentName(name, &first)) {
      segments.emplace_back(first, name);
    }
  }
  std::sort(segments.begin(), segments.end());
  std::string active_path;
  {
    MutexLock io(io_mutex_);
    active_path = file_.path();
  }
  bool removed = false;
  // Segment i holds LSNs [first_i, first_{i+1}); it is fully covered by a
  // snapshot at `lsn` iff first_{i+1} <= lsn + 1.
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::string path = options_.dir + "/" + segments[i].second;
    if (segments[i + 1].first <= lsn + 1 && path != active_path) {
      removed = RemoveFile(path) || removed;
    }
  }
  if (removed) {
    SyncDir(options_.dir);
  }
}

bool ReplayWal(const std::string& dir, std::uint64_t start_lsn, bool truncate_torn_tail,
               const std::function<void(const WalRecord&)>& apply, WalReplayStats* stats,
               std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = msg;
    }
    return false;
  };
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const std::string& name : ListFilesWithPrefix(dir, "wal-")) {
    std::uint64_t first = 0;
    if (internal::ParseSegmentName(name, &first)) {
      segments.emplace_back(first, name);
    }
  }
  std::sort(segments.begin(), segments.end());

  // Anchor at the NEWEST segment whose first_lsn <= start_lsn. Older
  // segments hold only records the snapshot already covers, and after a
  // crash that lost the un-fsynced WAL tail of a published snapshot
  // (fsync=everysec/none) they can legitimately end short of the next
  // segment's first LSN — scanning them would trip the continuity check on
  // every restart. If no segment starts at or below start_lsn we scan from
  // the oldest and let the caller's gap check reject the hole.
  std::size_t begin = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first <= start_lsn) {
      begin = i;
    }
  }
  stats->segments_ignored = begin;

  std::uint64_t expected_lsn = 0;  // 0 = not yet anchored
  for (std::size_t i = begin; i < segments.size(); ++i) {
    const bool last_segment = i + 1 == segments.size();
    const std::string path = dir + "/" + segments[i].second;
    ++stats->segments;
    std::string bytes;
    if (!ReadFileToString(path, &bytes)) {
      return fail("cannot read WAL segment " + path);
    }

    // Header. A short/invalid header is tolerable only as the torn tail of
    // the final segment (crash during segment creation).
    bool header_ok = bytes.size() >= internal::kWalHeaderSize &&
                     std::memcmp(bytes.data(), internal::kWalMagic, 8) == 0;
    std::uint32_t version = 0;
    std::uint32_t flags = 0;
    std::uint64_t first_lsn = 0;
    if (header_ok) {
      std::size_t pos = 8;
      ReadPod(bytes, &pos, &version);
      ReadPod(bytes, &pos, &flags);
      ReadPod(bytes, &pos, &first_lsn);
      header_ok = version == internal::kWalVersion && flags == 0 &&
                  first_lsn == segments[i].first;
    }
    if (!header_ok) {
      if (!last_segment) {
        return fail("corrupt WAL segment header: " + path);
      }
      stats->truncated_tail = true;
      stats->torn_tail_bytes += bytes.size();
      if (truncate_torn_tail && !TruncateFile(path, 0)) {
        return fail("cannot truncate torn WAL segment " + path);
      }
      break;
    }
    if (expected_lsn == 0) {
      expected_lsn = first_lsn;  // anchor at the oldest surviving segment
      stats->anchor_lsn = first_lsn;
    } else if (first_lsn != expected_lsn) {
      return fail("WAL segment LSN discontinuity at " + path);
    }

    std::size_t pos = internal::kWalHeaderSize;
    while (pos < bytes.size()) {
      WalRecord record;
      const std::size_t record_start = pos;
      if (internal::DecodeWalRecord(bytes, &pos, &record) != 1) {
        // Invalid frame: torn tail if and only if this is the end of the log.
        if (!last_segment) {
          return fail("corrupt WAL record mid-log in " + path);
        }
        stats->truncated_tail = true;
        stats->torn_tail_bytes += bytes.size() - record_start;
        if (truncate_torn_tail && !TruncateFile(path, record_start)) {
          return fail("cannot truncate torn WAL tail in " + path);
        }
        pos = bytes.size();
        break;
      }
      if (record.lsn != expected_lsn) {
        return fail("WAL record LSN discontinuity in " + path);
      }
      ++expected_lsn;
      if (record.lsn < start_lsn) {
        ++stats->records_skipped;  // already covered by the snapshot
        continue;
      }
      apply(record);
      ++stats->records_applied;
    }
  }
  stats->next_lsn = expected_lsn == 0 ? 1 : expected_lsn;
  return true;
}

}  // namespace persist
}  // namespace cuckoo
