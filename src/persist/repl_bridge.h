// The durability layer's view of replication. DurabilityManager owns the
// WAL and the client-visible ack path; the replication hub (src/repl/) owns
// sockets and replica state. This interface is the seam between them, so
// persist never links against repl.
#ifndef SRC_PERSIST_REPL_BRIDGE_H_
#define SRC_PERSIST_REPL_BRIDGE_H_

#include <cstdint>

namespace cuckoo {
namespace persist {

class ReplicationBridge {
 public:
  virtual ~ReplicationBridge() = default;

  // Called by the WAL's log-writer thread after each group-commit drain
  // (see WriteAheadLog::SetCommitSink): records up to `written_lsn` are in
  // the file and streamable; `durable_lsn` is the fsync watermark. Must be
  // cheap — it runs on the group-commit path.
  virtual void OnWalCommit(std::uint64_t written_lsn, std::uint64_t durable_lsn) = 0;

  // Semi-sync gate: block until one replica acknowledged `lsn` (or the
  // configured timeout / degraded-mode rule says stop). Returns false iff
  // the write must NOT be acked to the client. Only ever called AFTER local
  // durability succeeded — a replica ack can never resurrect a write the
  // local WAL already failed.
  virtual bool WaitReplicated(std::uint64_t lsn) = 0;

  // Smallest LSN any connected replica still needs from the local WAL
  // (UINT64_MAX when none): snapshot GC must not remove segments at or
  // above it, or every lagging replica is forced into a full resync.
  virtual std::uint64_t MinReplicaLsn() = 0;
};

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_REPL_BRIDGE_H_
