#include "src/persist/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/crc32c.h"
#include "src/common/file_util.h"
#include "src/store/value_log.h"

namespace cuckoo {
namespace persist {
namespace {

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(const std::string& bytes, std::size_t* pos, T* out) {
  if (bytes.size() - *pos < sizeof(T)) {
    return false;
  }
  std::memcpy(out, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void FrameRecord(std::string_view payload, std::string* out) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::uint32_t crc = Crc32c(&len, sizeof(len));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  AppendPod(out, Crc32cMask(crc));
  AppendPod(out, len);
  out->append(payload);
}

void EncodeEntry(const std::string& key, const KvService::StoredValue& value,
                 std::string* out) {
  // Tiered entries persist their 16-byte location record, never the value
  // bytes — that is what keeps snapshot size (and recovery time) a function
  // of the index, not the dataset.
  std::string data;
  if (value.Tiered()) {
    store::EncodeValueLocation(value.loc, &data);
  } else {
    data = value.data;
  }
  std::string payload;
  payload.reserve(1 + 4 + 8 + 8 + 4 + 4 + key.size() + data.size());
  AppendPod(&payload,
            value.Tiered() ? internal::kTieredEntryRecord : internal::kEntryRecord);
  AppendPod(&payload, value.flags);
  AppendPod(&payload, value.cas_id);
  AppendPod(&payload, value.expires_at);
  AppendPod(&payload, static_cast<std::uint32_t>(key.size()));
  AppendPod(&payload, static_cast<std::uint32_t>(data.size()));
  payload.append(key);
  payload.append(data);
  FrameRecord(payload, out);
}

// Unframe the record at *pos; false on any malformation (truncation, bad
// CRC, absurd length). *payload_out receives the verified payload bytes.
bool DecodeFrame(const std::string& bytes, std::size_t* pos, std::string_view* payload_out) {
  std::size_t p = *pos;
  std::uint32_t stored_crc = 0;
  std::uint32_t len = 0;
  if (!ReadPod(bytes, &p, &stored_crc) || !ReadPod(bytes, &p, &len)) {
    return false;
  }
  if (len > (16u << 20) || bytes.size() - p < len) {
    return false;
  }
  std::uint32_t crc = Crc32c(&len, sizeof(len));
  crc = Crc32cExtend(crc, bytes.data() + p, len);
  if (Crc32cMask(crc) != stored_crc) {
    return false;
  }
  *payload_out = std::string_view(bytes).substr(p, len);
  *pos = p + len;
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

}  // namespace

namespace internal {

std::string SnapshotFileName(std::uint64_t wal_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.ckpt",
                static_cast<unsigned long long>(wal_lsn));
  return buf;
}

bool ParseSnapshotFileName(const std::string& name, std::uint64_t* wal_lsn) {
  unsigned long long lsn = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "snap-%llu.ckpt%n", &lsn, &consumed) != 1 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  *wal_lsn = lsn;
  return true;
}

}  // namespace internal

std::vector<std::pair<std::uint64_t, std::string>> ListSnapshots(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const std::string& name : ListFilesWithPrefix(dir, "snap-")) {
    std::uint64_t lsn = 0;
    if (internal::ParseSnapshotFileName(name, &lsn)) {
      out.emplace_back(lsn, name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool WriteKvSnapshot(const KvService& service, const std::string& dir,
                     const std::function<std::uint64_t()>& lsn_provider, int max_attempts,
                     SnapshotWriteStats* stats, std::string* error) {
  if (!EnsureDir(dir)) {
    return Fail(error, "cannot create snapshot dir " + dir);
  }
  const std::string tmp_path = dir + "/snap.tmp";
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stats != nullptr) {
      ++stats->attempts;
    }
    // Sample S before the walk starts: every mutation with lsn <= S is
    // already committed under a bucket lock the walk will synchronize with.
    const std::uint64_t wal_lsn = lsn_provider ? lsn_provider() : 0;

    AppendFile file;
    if (!file.Open(tmp_path, /*truncate=*/true)) {
      return Fail(error, "cannot open " + tmp_path);
    }
    std::string buf;
    buf.reserve(1u << 20);
    buf.append(internal::kKvSnapMagic, sizeof(internal::kKvSnapMagic));
    AppendPod(&buf, internal::kKvSnapVersion);
    AppendPod(&buf, std::uint32_t{0});  // flags
    AppendPod(&buf, wal_lsn);

    std::uint64_t entries = 0;
    std::uint64_t max_cas = 0;
    bool io_ok = true;
    KvService::StoreMap::SnapshotWalkStats walk;
    const bool complete = service.TrySnapshotEntries(
        [&](const std::string& key, const KvService::StoredValue& value) {
          if (!io_ok) {
            return;
          }
          EncodeEntry(key, value, &buf);
          ++entries;
          max_cas = std::max(max_cas, value.cas_id);
          if (buf.size() >= (1u << 20)) {
            io_ok = file.Append(buf);
            buf.clear();
          }
        },
        &walk);
    if (!io_ok) {
      return Fail(error, "write error on " + tmp_path);
    }
    if (!complete) {
      continue;  // table expansion mid-walk; rewind and retry
    }
    // Footer: entry count + max cas id, CRC-framed like every record.
    std::string footer;
    AppendPod(&footer, internal::kFooterRecord);
    AppendPod(&footer, entries);
    AppendPod(&footer, max_cas);
    FrameRecord(footer, &buf);
    if (!file.Append(buf) || !file.Sync()) {
      return Fail(error, "write error on " + tmp_path);
    }
    const std::uint64_t bytes = file.Size();
    file.Close();
    const std::string final_path = dir + "/" + internal::SnapshotFileName(wal_lsn);
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0 || !SyncDir(dir)) {
      return Fail(error, "cannot publish " + final_path);
    }
    if (stats != nullptr) {
      stats->entries = entries;
      stats->wal_lsn = wal_lsn;
      stats->bytes = bytes;
      stats->walk = walk;
    }
    return true;
  }
  return Fail(error, "snapshot walk interrupted by expansion on every attempt");
}

bool WriteReplicaSnapshot(const KvService& service, const std::string& file_path,
                          const std::function<std::uint64_t()>& lsn_provider,
                          int max_attempts, SnapshotWriteStats* stats, std::string* error) {
  store::TieredStore* tier = service.tier();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stats != nullptr) {
      ++stats->attempts;
    }
    const std::uint64_t wal_lsn = lsn_provider ? lsn_provider() : 0;

    AppendFile file;
    if (!file.Open(file_path, /*truncate=*/true)) {
      return Fail(error, "cannot open " + file_path);
    }
    std::string buf;
    buf.reserve(1u << 20);
    buf.append(internal::kKvSnapMagic, sizeof(internal::kKvSnapMagic));
    AppendPod(&buf, internal::kKvSnapVersion);
    AppendPod(&buf, std::uint32_t{0});  // flags
    AppendPod(&buf, wal_lsn);

    std::uint64_t entries = 0;
    std::uint64_t max_cas = 0;
    bool io_ok = true;
    KvService::StoreMap::SnapshotWalkStats walk;
    const bool complete = service.TrySnapshotEntries(
        [&](const std::string& key, const KvService::StoredValue& value) {
          if (!io_ok) {
            return;
          }
          KvService::StoredValue inlined = value;
          if (value.Tiered()) {
            inlined.loc = store::ValueLocation{};
            // A failed read means GC moved the record after our bucket copy;
            // that relocation's WAL record (lsn > wal_lsn) re-delivers the
            // value on the stream, so skipping here cannot lose data.
            if (tier == nullptr ||
                !tier->ReadValue(key, value.loc, value.cas_id, &inlined.data)) {
              return;
            }
          }
          EncodeEntry(key, inlined, &buf);
          ++entries;
          max_cas = std::max(max_cas, value.cas_id);
          if (buf.size() >= (1u << 20)) {
            io_ok = file.Append(buf);
            buf.clear();
          }
        },
        &walk);
    if (!io_ok) {
      return Fail(error, "write error on " + file_path);
    }
    if (!complete) {
      continue;  // table expansion mid-walk; rewind and retry
    }
    std::string footer;
    AppendPod(&footer, internal::kFooterRecord);
    AppendPod(&footer, entries);
    AppendPod(&footer, max_cas);
    FrameRecord(footer, &buf);
    if (!file.Append(buf) || !file.Sync()) {
      return Fail(error, "write error on " + file_path);
    }
    if (stats != nullptr) {
      stats->entries = entries;
      stats->wal_lsn = wal_lsn;
      stats->bytes = file.Size();
      stats->walk = walk;
    }
    return true;
  }
  return Fail(error, "snapshot walk interrupted by expansion on every attempt");
}

bool LoadKvSnapshot(const std::string& path, KvService* service, SnapshotLoadStats* stats,
                    std::string* error) {
  std::string bytes;
  if (!ReadFileToString(path, &bytes)) {
    return Fail(error, "cannot read " + path);
  }
  constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), internal::kKvSnapMagic, 8) != 0) {
    return Fail(error, "bad snapshot magic in " + path);
  }
  std::size_t pos = 8;
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t wal_lsn = 0;
  ReadPod(bytes, &pos, &version);
  ReadPod(bytes, &pos, &flags);
  ReadPod(bytes, &pos, &wal_lsn);
  if (version != internal::kKvSnapVersion || flags != 0) {
    return Fail(error, "unknown snapshot version/flags in " + path);
  }

  std::uint64_t entries = 0;
  std::uint64_t max_cas = 0;
  bool saw_footer = false;
  while (pos < bytes.size()) {
    std::string_view payload;
    if (!DecodeFrame(bytes, &pos, &payload)) {
      return Fail(error, "corrupt snapshot record in " + path);
    }
    std::string pstr(payload);  // ReadPod operates on std::string
    std::size_t p = 0;
    std::uint8_t type = 0;
    if (!ReadPod(pstr, &p, &type)) {
      return Fail(error, "empty snapshot record in " + path);
    }
    if (type == internal::kEntryRecord || type == internal::kTieredEntryRecord) {
      if (saw_footer) {
        return Fail(error, "snapshot entry after footer in " + path);
      }
      KvService::StoredValue value;
      std::uint32_t klen = 0;
      std::uint32_t dlen = 0;
      if (!ReadPod(pstr, &p, &value.flags) || !ReadPod(pstr, &p, &value.cas_id) ||
          !ReadPod(pstr, &p, &value.expires_at) || !ReadPod(pstr, &p, &klen) ||
          !ReadPod(pstr, &p, &dlen) ||
          pstr.size() - p != static_cast<std::uint64_t>(klen) + dlen) {
        return Fail(error, "malformed snapshot entry in " + path);
      }
      std::string key = pstr.substr(p, klen);
      max_cas = std::max(max_cas, value.cas_id);
      ++entries;  // counts against the footer even when the insert is skipped
      if (type == internal::kTieredEntryRecord) {
        if (!store::DecodeValueLocation(std::string_view(pstr).substr(p + klen, dlen),
                                        &value.loc)) {
          return Fail(error, "malformed tiered snapshot entry in " + path);
        }
        // The location must still name bytes in the value log. A miss means
        // the record was torn off the log tail before it was ever acked (the
        // snapshot is fuzzy and can run ahead of durability) — skip the
        // entry, keeping only the cas floor.
        store::TieredStore* tier = service->tier();
        if (tier == nullptr || !tier->ValidLocation(value.loc)) {
          service->AdvanceCasFloor(value.cas_id);
          continue;
        }
      } else {
        value.data = pstr.substr(p + klen, dlen);
      }
      if (!service->RestoreEntry(std::move(key), std::move(value))) {
        return Fail(error, "table rejected snapshot entry from " + path);
      }
    } else if (type == internal::kFooterRecord) {
      std::uint64_t footer_count = 0;
      std::uint64_t footer_max_cas = 0;
      if (!ReadPod(pstr, &p, &footer_count) || !ReadPod(pstr, &p, &footer_max_cas) ||
          p != pstr.size()) {
        return Fail(error, "malformed snapshot footer in " + path);
      }
      if (footer_count != entries) {
        return Fail(error, "snapshot footer count mismatch in " + path);
      }
      saw_footer = true;
    } else {
      return Fail(error, "unknown snapshot record type in " + path);
    }
  }
  if (!saw_footer) {
    return Fail(error, "snapshot missing footer (truncated) in " + path);
  }
  if (stats != nullptr) {
    stats->entries = entries;
    stats->wal_lsn = wal_lsn;
    stats->max_cas = max_cas;
  }
  return true;
}

}  // namespace persist
}  // namespace cuckoo
