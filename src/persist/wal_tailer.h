// Sequential reader over a live WAL directory, used by the replication hub
// to stream records to replicas.
//
// A tailer positions itself at an arbitrary start LSN (anchoring at the
// newest segment whose first_lsn <= start, exactly like replay), then pulls
// records one at a time in LSN order, following segment rotations as the
// writer creates new files. Reads are gated on the writer's written-LSN
// watermark (WriteAheadLog::WrittenLsn()): a frame is only decoded once the
// write() covering it has returned, so the tailer never observes a partial
// frame on a healthy log — page-cache coherence makes the appended bytes
// immediately visible on this separate read fd.
//
// Single-threaded: each replica sender owns one tailer. Open() fails when
// the log no longer holds the requested LSN (segment GC'd) — the caller
// falls back to a full snapshot resync.
#ifndef SRC_PERSIST_WAL_TAILER_H_
#define SRC_PERSIST_WAL_TAILER_H_

#include <cstdint>
#include <string>

#include "src/persist/wal.h"

namespace cuckoo {
namespace persist {

class WalTailer {
 public:
  WalTailer() = default;
  ~WalTailer() { Close(); }

  WalTailer(const WalTailer&) = delete;
  WalTailer& operator=(const WalTailer&) = delete;

  // Position the tailer so the next delivered record has lsn == start_lsn.
  // Returns false (with *error set) when no surviving segment covers
  // start_lsn — the tail was GC'd past it, or the directory is empty.
  bool Open(const std::string& dir, std::uint64_t start_lsn, std::string* error);

  enum class Result : std::uint8_t {
    kRecord,    // *out holds the next record
    kCaughtUp,  // nothing at or below `watermark` yet; retry after the next commit
    kError,     // corruption / I/O failure; the stream cannot continue
  };

  // Non-blocking pull of the next record, bounded by the writer's current
  // written-LSN watermark.
  Result Next(std::uint64_t watermark, WalRecord* out, std::string* error);

  // Next LSN still to be delivered (== the smallest LSN this tailer still
  // needs on disk; feeds WAL-GC holdback).
  std::uint64_t next_lsn() const { return next_lsn_; }

  void Close();

 private:
  // Open dir_/wal-<first_lsn>.log and validate its header. kCaughtUp-style
  // false with empty *error means "header not fully written yet, retry".
  enum class SegOpen : std::uint8_t { kOk, kRetry, kError };
  SegOpen OpenSegment(std::uint64_t first_lsn, std::string* error);
  // Append whatever the segment file holds past our read offset onto buf_.
  // Returns false on I/O error.
  bool ReadMore(std::size_t* got);

  std::string dir_;
  std::uint64_t start_lsn_ = 0;  // records below this are skipped, not delivered
  std::uint64_t next_lsn_ = 0;   // next record to deliver
  std::uint64_t expected_lsn_ = 0;  // next record in the file (continuity check)
  int fd_ = -1;
  std::uint64_t file_offset_ = 0;  // next read position in the current segment
  std::string buf_;
  std::size_t pos_ = 0;  // decode cursor within buf_
};

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_WAL_TAILER_H_
