// DurabilityManager — glues WAL + snapshots + recovery onto a KvService.
//
//   * Start(): recover from disk, open the WAL at the recovered next LSN,
//     install itself as the service's MutationObserver (OnSet/OnDelete
//     assign LSNs inside table critical sections; WaitDurable gates client
//     acks per the fsync policy), install the `bgsave` hook, and register a
//     `stats` hook exposing durability counters.
//   * A background snapshot worker takes online fuzzy snapshots — triggered
//     by WAL growth (snapshot_trigger_bytes) or an explicit bgsave — and
//     garbage-collects WAL segments the published snapshot covers.
//   * Stop(): final WAL flush + fsync (graceful shutdown: every acked AND
//     every applied-but-unacked mutation is on disk), then stop threads.
#ifndef SRC_PERSIST_DURABILITY_H_
#define SRC_PERSIST_DURABILITY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/common/timing.h"
#include "src/kvserver/kv_service.h"
#include "src/obs/histogram.h"
#include "src/persist/recovery.h"
#include "src/persist/repl_bridge.h"
#include "src/persist/wal.h"

namespace cuckoo {
namespace persist {

struct DurabilityOptions {
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kEverySec;
  std::uint64_t segment_bytes = 64u << 20;
  // Take a snapshot once this many WAL bytes accumulate since the last one.
  // 0 disables automatic snapshots (bgsave still works).
  std::uint64_t snapshot_trigger_bytes = 0;
  int snapshot_max_attempts = 8;
  // The larger-than-memory tier, when the service runs one. Must be opened
  // BEFORE Start() — recovery validates tiered locations against the live
  // value log — and must outlive this manager. Under fsync=always,
  // WaitDurable syncs the value log before waiting on the WAL, so an acked
  // tiered write has both its bytes and its index record on disk.
  store::TieredStore* tier = nullptr;
};

class DurabilityManager : public KvService::MutationObserver {
 public:
  explicit DurabilityManager(KvService* service) : service_(service) {}
  ~DurabilityManager() override { Stop(); }

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  // Recover, open the WAL, hook into the service, start the snapshot worker.
  bool Start(DurabilityOptions options, std::string* error);

  // Graceful shutdown: flush + fsync the WAL, stop the workers. Idempotent.
  void Stop();

  // bgsave: returns false if a snapshot is already in flight.
  bool TriggerSnapshot();

  // ----- Replication ---------------------------------------------------------

  // Install BEFORE Start() (primary side). The bridge receives group-commit
  // notifications, gates semi-sync acks, and holds back WAL GC for lagging
  // replicas. Must outlive this manager.
  void SetReplicationBridge(ReplicationBridge* bridge) { bridge_ = bridge; }

  // Replica side: apply one record from the primary's stream — append it to
  // the local WAL (preserving the primary's LSN) and apply it to the table.
  // Returns false on an LSN gap (the caller must resync) or a malformed
  // record. Safe to call concurrently with serving GETs.
  bool ApplyReplicated(const WalRecord& record, std::string* error);

  // Replica bootstrap: replace ALL local state with the primary's snapshot
  // (already downloaded to `snapshot_path`, values inlined) and restart the
  // local WAL at snapshot_lsn + 1 so the live stream appends contiguously.
  // Blocks out the snapshot worker for the duration.
  bool ResyncFromSnapshot(const std::string& snapshot_path, std::uint64_t snapshot_lsn,
                          std::string* error);

  std::uint64_t ReplicaAppliedRecords() const noexcept {
    return replica_applied_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t ReplicaResyncs() const noexcept {
    return replica_resyncs_.load(std::memory_order_relaxed);
  }

  // Block until the currently pending/running snapshot round completes
  // (test support). Returns false if that round failed.
  bool WaitForSnapshot();

  const RecoveryStats& recovery() const noexcept { return recovery_; }
  const WriteAheadLog& wal() const noexcept { return wal_; }
  // Test-only mutable access (fault injection).
  WriteAheadLog& wal_for_testing() noexcept { return wal_; }
  std::uint64_t SnapshotsCompleted() const noexcept {
    return snapshots_completed_.load(std::memory_order_relaxed);
  }

  // KvService::MutationObserver — called inside bucket critical sections.
  // Each hook stamps the thread's append time; the same connection thread
  // calls WaitDurable before acking, closing the append->durable interval
  // (the client-visible durability cost under the configured fsync policy).
  std::uint64_t OnSet(std::string_view key, const KvService::StoredValue& stored) override {
    append_start_ns() = NowNanos();
    if (stored.Tiered()) {
      // The WAL carries the 16-byte location record, never the value bytes
      // (those are already in the value log) — tiered writes cost the WAL a
      // fixed-size entry regardless of value size.
      std::string loc;
      store::EncodeValueLocation(stored.loc, &loc);
      return wal_.Append(WalRecord::Type::kSetTiered, key, loc, stored.flags,
                         stored.expires_at, stored.cas_id);
    }
    return wal_.Append(WalRecord::Type::kSet, key, stored.data, stored.flags,
                       stored.expires_at, stored.cas_id);
  }
  std::uint64_t OnDelete(std::string_view key) override {
    append_start_ns() = NowNanos();
    return wal_.Append(WalRecord::Type::kDelete, key, {}, 0, 0, 0);
  }
  bool WaitDurable(std::uint64_t lsn) override {
    // Value bytes before index record: under fsync=always an acked tiered
    // write must survive with BOTH pieces, and recovery treats a WAL record
    // whose log bytes are missing as never-acked. EnsureDurable is a no-op
    // when nothing was appended since the last sync.
    if (options_.tier != nullptr && options_.fsync_policy == FsyncPolicy::kAlways &&
        !options_.tier->SyncLog()) {
      return false;
    }
    const bool ok = wal_.WaitDurable(lsn);
    std::uint64_t& start = append_start_ns();
    if (start != 0) {
      append_durable_ns_.Record(NowNanos() - start);
      start = 0;
    }
    if (!ok) {
      // Sticky local WAL error. Return BEFORE consulting replication: a
      // replica ack must never resurrect an ack the local log already
      // refused — the replica may hold the record, but this node would lose
      // it on restart and then serve reads that contradict its own ack.
      return false;
    }
    if (bridge_ != nullptr && !bridge_->WaitReplicated(lsn)) {
      return false;  // semi-sync: no replica confirmed within the timeout
    }
    return true;
  }

  // GC persist barrier (TieredStore::PersistBarrierFn): every relocation's
  // new value bytes and WAL records become durable before the old segment
  // may be unlinked.
  bool PersistBarrier() {
    if (options_.tier != nullptr && !options_.tier->SyncLog()) {
      return false;
    }
    return wal_.Flush();
  }

  // Append "STAT wal_*/snapshot_*/recovery_*" lines (stats hook body).
  void AppendStats(std::string* out) const;

  // `stats detail` additions: latency percentiles (append->durable under the
  // active fsync policy, snapshot walk) and the group-commit batch-size
  // distribution.
  void AppendDetailStats(std::string* out) const;

  // Prometheus text exposition for the same series (metrics endpoint).
  void AppendMetricsText(std::string* out) const;

  obs::HistogramSnapshot AppendDurableSnapshot() const {
    return append_durable_ns_.Snapshot();
  }
  obs::HistogramSnapshot SnapshotWalkSnapshot() const {
    return snapshot_walk_ns_.Snapshot();
  }

 private:
  void SnapshotWorker();
  bool RunSnapshot();

  // Per-thread append timestamp consumed by WaitDurable on the same thread
  // (the service calls observer hooks and WaitDurable sequentially per op).
  static std::uint64_t& append_start_ns() noexcept {
    thread_local std::uint64_t start = 0;
    return start;
  }

  KvService* service_;
  DurabilityOptions options_;
  WriteAheadLog wal_;
  RecoveryStats recovery_;
  ReplicationBridge* bridge_ = nullptr;  // set before Start(), then read-only

  Mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  bool snapshot_requested_ GUARDED_BY(mutex_) = false;
  bool snapshot_running_ GUARDED_BY(mutex_) = false;
  // Replica bootstrap in progress: the snapshot worker must not touch the
  // WAL (it is closed and the directory is being rewritten).
  bool resync_in_progress_ GUARDED_BY(mutex_) = false;
  bool stop_ GUARDED_BY(mutex_) = false;
  std::uint64_t rounds_done_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rounds_started_ GUARDED_BY(mutex_) = 0;
  bool last_round_ok_ GUARDED_BY(mutex_) = true;
  std::thread snapshot_thread_;
  bool started_ GUARDED_BY(mutex_) = false;

  std::uint64_t bytes_at_last_snapshot_ GUARDED_BY(mutex_) = 0;
  std::uint64_t last_vlog_sync_ms_ GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> snapshots_completed_{0};
  std::atomic<std::uint64_t> snapshot_failures_{0};
  std::atomic<std::uint64_t> last_snapshot_lsn_{0};
  std::atomic<std::uint64_t> last_snapshot_entries_{0};
  std::atomic<std::uint64_t> snapshot_walk_lock_fallbacks_{0};
  std::atomic<std::uint64_t> snapshot_displaced_entries_{0};
  std::atomic<std::uint64_t> replica_applied_records_{0};
  // Replicated kSetTiered records whose location did not validate against
  // the local value log (expected on a replica — the stream normally
  // rewrites them to inline sets; counted so silent skips are visible).
  std::atomic<std::uint64_t> replica_skipped_tiered_{0};
  std::atomic<std::uint64_t> replica_resyncs_{0};

  // Latency distributions (nanoseconds). Append->durable is recorded on
  // every acked mutation; snapshot walks are rare and recorded per round.
  obs::Histogram append_durable_ns_;
  obs::Histogram snapshot_walk_ns_;
};

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_DURABILITY_H_
