// cuckoo_kv_server — the durable KV server binary: SocketServer front end,
// KvService store, DurabilityManager (WAL + snapshots + recovery) underneath.
//
//   cuckoo_kv_server --wal-dir=/var/lib/ckv [--fsync-policy=everysec]
//                    [--unix=/tmp/ckv.sock] [--tcp-port=0] [--event-threads=4]
//                    [--segment-bytes=N] [--snapshot-trigger-bytes=N]
//                    [--max-connections=N] [--metrics-port=N]
//                    [--slowlog-threshold-us=N] [--slowlog-capacity=N]
//                    [--vlog-dir=/var/lib/ckv/vlog] [--vlog-threshold-bytes=4096]
//                    [--vlog-segment-bytes=N] [--vlog-gc-trigger=0.5]
//                    [--vlog-cache-mb=64] [--vlog-reader=auto]
//                    [--vlog-read-threads=4]
//                    [--replicaof=host:port] [--ack=none|async|semi-sync]
//                    [--semi-sync-timeout-ms=1000] [--repl-heartbeat-ms=200]
//
// Without --wal-dir the server runs purely in memory (no durability).
// With --vlog-dir the larger-than-memory tier is enabled: values of at least
// --vlog-threshold-bytes live in an append-only value log under that
// directory, the cuckoo table holds 16-byte location records, and GETs that
// miss the hot cache are served through the async read layer
// (--vlog-reader=auto|uring|threads) without blocking the event loops.
// --vlog-gc-trigger > 0 starts the background compactor at that dead-byte
// ratio. The tier composes with --wal-dir: snapshots/WAL persist the
// location records and restart rebuilds the index without reading value
// bytes.
// After startup it prints a READY line to stdout:
//   READY <tcp_port> <unix_path>
// (test harnesses block on this). With --metrics-port a Prometheus text
// endpoint is served on 127.0.0.1 (0 = kernel-assigned) and a second line
//   METRICS <port>
// follows READY; with --vlog-dir a line
//   VLOG <dir> threshold=<bytes> reader=<backend>
// is announced as well. With --wal-dir a replication line
//   REPL <role> ack=<level>
// follows, too: the server accepts `replicate <lsn>` upgrades (WAL-shipping
// primary), and with --replicaof=host:port it starts as a read-only replica
// of that primary (writes answer SERVER_ERROR with a redirect; `replicaof
// none` promotes it to a writable primary at runtime).
// SIGTERM/SIGINT trigger a graceful stop: drain
// connections (in-flight parked disk reads finish first), flush + fsync the
// value log and the WAL, then exit 0 — an acked write can never be lost by a
// clean shutdown, under any fsync policy.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "src/benchkit/flags.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/persist/durability.h"
#include "src/repl/replica_client.h"
#include "src/repl/replication_hub.h"
#include "src/store/tiered_store.h"

int main(int argc, char** argv) {
  using namespace cuckoo;

  Flags flags(argc, argv);
  const std::string wal_dir = flags.GetString("wal-dir", "");
  const std::string policy_name = flags.GetString("fsync-policy", "everysec");
  const std::string unix_path = flags.GetString("unix", "");
  const bool want_tcp = flags.Has("tcp-port") || unix_path.empty();

  persist::FsyncPolicy policy;
  if (!persist::ParseFsyncPolicy(policy_name, &policy)) {
    std::fprintf(stderr, "unknown --fsync-policy=%s (always|everysec|none)\n",
                 policy_name.c_str());
    return 2;
  }

  const std::string replicaof = flags.GetString("replicaof", "");
  std::string repl_host;
  std::uint16_t repl_port = 0;
  if (!replicaof.empty()) {
    const std::size_t colon = replicaof.rfind(':');
    const long port = colon == std::string::npos || colon + 1 >= replicaof.size()
                          ? 0
                          : std::atol(replicaof.c_str() + colon + 1);
    if (colon == 0 || port <= 0 || port > 65535) {
      std::fprintf(stderr, "bad --replicaof=%s (want host:port)\n", replicaof.c_str());
      return 2;
    }
    repl_host = replicaof.substr(0, colon);
    repl_port = static_cast<std::uint16_t>(port);
    if (wal_dir.empty()) {
      std::fprintf(stderr, "--replicaof requires --wal-dir (the stream is WAL-shipped)\n");
      return 2;
    }
  }
  const std::string ack_name = flags.GetString("ack", "async");
  repl::AckLevel ack_level;
  if (!repl::ParseAckLevel(ack_name, &ack_level)) {
    std::fprintf(stderr, "unknown --ack=%s (none|async|semi-sync)\n", ack_name.c_str());
    return 2;
  }

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait below is the single delivery point.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  // The larger-than-memory tier opens before the service (the service and
  // recovery both hold raw pointers into it) and closes after everything
  // that might still touch it has stopped.
  const std::string vlog_dir = flags.GetString("vlog-dir", "");
  store::TieredStore tier;
  if (!vlog_dir.empty()) {
    store::TieredStoreOptions t;
    t.dir = vlog_dir;
    t.threshold_bytes =
        static_cast<std::size_t>(flags.GetInt("vlog-threshold-bytes", 4096));
    t.segment_bytes =
        static_cast<std::uint64_t>(flags.GetInt("vlog-segment-bytes", 64 << 20));
    t.gc_trigger = flags.GetDouble("vlog-gc-trigger", 0.0);
    t.cache_capacity_bytes =
        static_cast<std::size_t>(flags.GetInt("vlog-cache-mb", 64)) << 20;
    t.reader_backend = flags.GetString("vlog-reader", "auto");
    t.reader_threads = static_cast<int>(flags.GetInt("vlog-read-threads", 4));
    std::string error;
    if (!tier.Open(t, &error)) {
      std::fprintf(stderr, "cannot open value log: %s\n", error.c_str());
      return 1;
    }
  }

  KvService::Options service_options;
  service_options.initial_bucket_count_log2 =
      static_cast<std::size_t>(flags.GetInt("bucket-count-log2", 12));
  service_options.slowlog_threshold_ns =
      static_cast<std::uint64_t>(flags.GetInt("slowlog-threshold-us", 0)) * 1000;
  service_options.slowlog_capacity =
      static_cast<std::size_t>(flags.GetInt("slowlog-capacity", 128));
  if (!vlog_dir.empty()) {
    service_options.tier = &tier;
  }
  KvService service(service_options);

  persist::DurabilityManager durability(&service);
  // The hub exists on every durable server (any of them can be a primary);
  // it doubles as the durability layer's replication bridge, so it must be
  // installed before Start() opens the WAL. Declared after `durability` so
  // its destructor — which joins the sender threads — runs first.
  std::unique_ptr<repl::ReplicationHub> hub;
  std::unique_ptr<repl::ReplicaClient> replica;
  if (!wal_dir.empty()) {
    repl::ReplicationHubOptions h;
    h.service = &service;
    h.durability = &durability;
    h.tier = vlog_dir.empty() ? nullptr : &tier;
    h.wal_dir = wal_dir;
    h.ack = ack_level;
    h.semi_sync_timeout_ms =
        static_cast<std::uint64_t>(flags.GetInt("semi-sync-timeout-ms", 1000));
    h.heartbeat_ms = static_cast<std::uint64_t>(flags.GetInt("repl-heartbeat-ms", 200));
    hub = std::make_unique<repl::ReplicationHub>(h);
    durability.SetReplicationBridge(hub.get());
  }
  if (!wal_dir.empty()) {
    persist::DurabilityOptions d;
    d.dir = wal_dir;
    d.fsync_policy = policy;
    d.segment_bytes = static_cast<std::uint64_t>(flags.GetInt("segment-bytes", 64 << 20));
    d.snapshot_trigger_bytes =
        static_cast<std::uint64_t>(flags.GetInt("snapshot-trigger-bytes", 0));
    if (!vlog_dir.empty()) {
      d.tier = &tier;
    }
    std::string error;
    if (!durability.Start(d, &error)) {
      std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
      return 1;
    }
    const persist::RecoveryStats& r = durability.recovery();
    std::fprintf(stderr,
                 "recovered: snapshot=%s entries=%llu wal_records=%llu torn_tail=%d "
                 "next_lsn=%llu\n",
                 r.loaded_snapshot ? r.snapshot_path.c_str() : "(none)",
                 static_cast<unsigned long long>(r.snapshot_entries),
                 static_cast<unsigned long long>(r.wal_records_applied),
                 r.truncated_tail ? 1 : 0, static_cast<unsigned long long>(r.next_lsn));
  }

  // GC re-inserts live records through the normal map path (liveness is
  // re-checked under the bucket locks) and only unlinks a compacted segment
  // after the relocations are durable. Without a WAL the barrier is just the
  // value log's own fsync.
  if (!vlog_dir.empty()) {
    tier.SetGcHooks(
        [&service](const std::string& key, const store::ValueLocation& old_loc,
                   std::string_view data) {
          return service.RelocateTiered(key, old_loc, data);
        },
        [&durability, &tier, &wal_dir] {
          return wal_dir.empty() ? tier.SyncLog() : durability.PersistBarrier();
        });
    tier.StartGc();
  }

  if (hub != nullptr) {
    service.SetReplicationUpgradeEnabled(true);
    service.AddExtraStatsHook([&hub](std::string* out) { hub->AppendStats(out); });
    service.AddDetailStatsHook([&hub](std::string* out) { hub->AppendDetailStats(out); });
    if (!replicaof.empty()) {
      // Read-only BEFORE the listeners open: no write can sneak in between
      // bind and the client thread establishing the stream.
      service.SetReadOnly(true, replicaof);
      hub->SetRole("replica");
      repl::ReplicaClientOptions c;
      c.host = repl_host;
      c.port = repl_port;
      c.durability = &durability;
      c.wal_dir = wal_dir;
      replica = std::make_unique<repl::ReplicaClient>(c);
      service.AddExtraStatsHook([&replica](std::string* out) { replica->AppendStats(out); });
    }
    service.SetReplicaofHandler([&service, &hub, &replica](const Request& request) {
      if (!request.repl_host.empty()) {
        return std::string(
            "SERVER_ERROR replicaof: only 'replicaof none' (promotion) is supported at "
            "runtime\r\n");
      }
      // Promotion, idempotent: stop following, accept writes, keep serving
      // the `replicate` upgrades we may already be feeding.
      if (replica != nullptr) {
        replica->Stop();
      }
      service.SetReadOnly(false, "");
      hub->SetRole("primary");
      return std::string("OK\r\n");
    });
  }

  SocketServer::Options server_options;
  server_options.unix_path = unix_path;
  server_options.enable_tcp = want_tcp;
  server_options.tcp_port = static_cast<std::uint16_t>(flags.GetInt("tcp-port", 0));
  server_options.event_threads = static_cast<int>(flags.GetInt("event-threads", 4));
  server_options.max_connections =
      static_cast<std::size_t>(flags.GetInt("max-connections", 1024));
  if (hub != nullptr) {
    repl::ReplicationHub* hub_ptr = hub.get();
    server_options.replication_handoff = [hub_ptr](int fd, std::uint64_t start_lsn,
                                                   std::string leftover) {
      hub_ptr->Adopt(fd, start_lsn, std::move(leftover));
    };
  }
  // The follower thread starts before the listeners open: a `replicaof
  // none` promotion can only arrive through a listener, so it can never
  // race — or be overridden by — this Start.
  if (replica != nullptr) {
    replica->Start();
  }
  SocketServer server(&service, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot bind listeners (unix=%s tcp=%d)\n", unix_path.c_str(),
                 want_tcp ? 1 : 0);
    return 1;
  }

  // Prometheus endpoint, localhost-only. --metrics-port=0 asks the kernel
  // for a port; the chosen one is announced on the METRICS line.
  obs::MetricsRegistry metrics;
  obs::MetricsHttpServer metrics_server(&metrics);
  const bool want_metrics = flags.Has("metrics-port");
  if (want_metrics) {
    metrics.AddSource([&service](std::string* out) { service.AppendMetricsText(out); });
    if (!wal_dir.empty()) {
      metrics.AddSource(
          [&durability](std::string* out) { durability.AppendMetricsText(out); });
    }
    if (hub != nullptr) {
      metrics.AddSource([&hub](std::string* out) { hub->AppendMetricsText(out); });
    }
    if (replica != nullptr) {
      metrics.AddSource([&replica](std::string* out) { replica->AppendMetricsText(out); });
    }
    if (!metrics_server.Start(static_cast<std::uint16_t>(flags.GetInt("metrics-port", 0)))) {
      std::fprintf(stderr, "cannot bind metrics endpoint\n");
      return 1;
    }
  }

  std::printf("READY %u %s\n", static_cast<unsigned>(server.tcp_port()),
              unix_path.empty() ? "-" : unix_path.c_str());
  if (want_metrics) {
    std::printf("METRICS %u\n", static_cast<unsigned>(metrics_server.port()));
  }
  if (!vlog_dir.empty()) {
    std::printf("VLOG %s threshold=%llu reader=%s\n", vlog_dir.c_str(),
                static_cast<unsigned long long>(tier.threshold_bytes()),
                tier.reader_backend());
  }
  if (hub != nullptr) {
    std::printf("REPL %s ack=%s\n", replicaof.empty() ? "primary" : "replica",
                repl::AckLevelName(ack_level));
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining connections and flushing WAL\n", sig);

  // Order matters: stop serving first (no new mutations; parked disk reads
  // drain), stop the compactor, then flush + fsync the value log and the WAL
  // so every applied mutation is on disk before exit. The tier itself closes
  // last (by destruction order) — everything above holds pointers into it.
  metrics_server.Stop();
  server.Stop();
  // Replication threads go down before the WAL they read/write: the client
  // first (it appends), then the hub's senders (they tail the segments).
  if (replica != nullptr) {
    replica->Stop();
  }
  if (hub != nullptr) {
    hub->Stop();
  }
  if (!vlog_dir.empty()) {
    tier.StopGc();
  }
  if (!wal_dir.empty()) {
    durability.Stop();
  } else if (!vlog_dir.empty()) {
    tier.SyncLog();
  }
  return 0;
}
