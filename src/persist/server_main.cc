// cuckoo_kv_server — the durable KV server binary: SocketServer front end,
// KvService store, DurabilityManager (WAL + snapshots + recovery) underneath.
//
//   cuckoo_kv_server --wal-dir=/var/lib/ckv [--fsync-policy=everysec]
//                    [--unix=/tmp/ckv.sock] [--tcp-port=0] [--event-threads=4]
//                    [--segment-bytes=N] [--snapshot-trigger-bytes=N]
//                    [--max-connections=N] [--metrics-port=N]
//                    [--slowlog-threshold-us=N] [--slowlog-capacity=N]
//
// Without --wal-dir the server runs purely in memory (no durability).
// After startup it prints a READY line to stdout:
//   READY <tcp_port> <unix_path>
// (test harnesses block on this). With --metrics-port a Prometheus text
// endpoint is served on 127.0.0.1 (0 = kernel-assigned) and a second line
//   METRICS <port>
// follows READY. SIGTERM/SIGINT trigger a graceful stop: drain connections,
// flush + fsync the WAL, then exit 0 — an acked write can never be lost by a
// clean shutdown, under any fsync policy.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/benchkit/flags.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/persist/durability.h"

int main(int argc, char** argv) {
  using namespace cuckoo;

  Flags flags(argc, argv);
  const std::string wal_dir = flags.GetString("wal-dir", "");
  const std::string policy_name = flags.GetString("fsync-policy", "everysec");
  const std::string unix_path = flags.GetString("unix", "");
  const bool want_tcp = flags.Has("tcp-port") || unix_path.empty();

  persist::FsyncPolicy policy;
  if (!persist::ParseFsyncPolicy(policy_name, &policy)) {
    std::fprintf(stderr, "unknown --fsync-policy=%s (always|everysec|none)\n",
                 policy_name.c_str());
    return 2;
  }

  // Block the shutdown signals before any thread spawns so every thread
  // inherits the mask and sigwait below is the single delivery point.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  KvService::Options service_options;
  service_options.initial_bucket_count_log2 =
      static_cast<std::size_t>(flags.GetInt("bucket-count-log2", 12));
  service_options.slowlog_threshold_ns =
      static_cast<std::uint64_t>(flags.GetInt("slowlog-threshold-us", 0)) * 1000;
  service_options.slowlog_capacity =
      static_cast<std::size_t>(flags.GetInt("slowlog-capacity", 128));
  KvService service(service_options);

  persist::DurabilityManager durability(&service);
  if (!wal_dir.empty()) {
    persist::DurabilityOptions d;
    d.dir = wal_dir;
    d.fsync_policy = policy;
    d.segment_bytes = static_cast<std::uint64_t>(flags.GetInt("segment-bytes", 64 << 20));
    d.snapshot_trigger_bytes =
        static_cast<std::uint64_t>(flags.GetInt("snapshot-trigger-bytes", 0));
    std::string error;
    if (!durability.Start(d, &error)) {
      std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
      return 1;
    }
    const persist::RecoveryStats& r = durability.recovery();
    std::fprintf(stderr,
                 "recovered: snapshot=%s entries=%llu wal_records=%llu torn_tail=%d "
                 "next_lsn=%llu\n",
                 r.loaded_snapshot ? r.snapshot_path.c_str() : "(none)",
                 static_cast<unsigned long long>(r.snapshot_entries),
                 static_cast<unsigned long long>(r.wal_records_applied),
                 r.truncated_tail ? 1 : 0, static_cast<unsigned long long>(r.next_lsn));
  }

  SocketServer::Options server_options;
  server_options.unix_path = unix_path;
  server_options.enable_tcp = want_tcp;
  server_options.tcp_port = static_cast<std::uint16_t>(flags.GetInt("tcp-port", 0));
  server_options.event_threads = static_cast<int>(flags.GetInt("event-threads", 4));
  server_options.max_connections =
      static_cast<std::size_t>(flags.GetInt("max-connections", 1024));
  SocketServer server(&service, server_options);
  if (!server.Start()) {
    std::fprintf(stderr, "cannot bind listeners (unix=%s tcp=%d)\n", unix_path.c_str(),
                 want_tcp ? 1 : 0);
    return 1;
  }

  // Prometheus endpoint, localhost-only. --metrics-port=0 asks the kernel
  // for a port; the chosen one is announced on the METRICS line.
  obs::MetricsRegistry metrics;
  obs::MetricsHttpServer metrics_server(&metrics);
  const bool want_metrics = flags.Has("metrics-port");
  if (want_metrics) {
    metrics.AddSource([&service](std::string* out) { service.AppendMetricsText(out); });
    if (!wal_dir.empty()) {
      metrics.AddSource(
          [&durability](std::string* out) { durability.AppendMetricsText(out); });
    }
    if (!metrics_server.Start(static_cast<std::uint16_t>(flags.GetInt("metrics-port", 0)))) {
      std::fprintf(stderr, "cannot bind metrics endpoint\n");
      return 1;
    }
  }

  std::printf("READY %u %s\n", static_cast<unsigned>(server.tcp_port()),
              unix_path.empty() ? "-" : unix_path.c_str());
  if (want_metrics) {
    std::printf("METRICS %u\n", static_cast<unsigned>(metrics_server.port()));
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "signal %d: draining connections and flushing WAL\n", sig);

  // Order matters: stop serving first (no new mutations), then flush +
  // fsync the log so every applied mutation is on disk before exit.
  metrics_server.Stop();
  server.Stop();
  if (!wal_dir.empty()) {
    durability.Stop();
  }
  return 0;
}
