#include "src/persist/recovery.h"

#include <utility>
#include <vector>

#include "src/common/file_util.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/store/value_log.h"

namespace cuckoo {
namespace persist {

bool RecoverKvService(const std::string& dir, KvService* service, RecoveryStats* stats,
                      std::string* error) {
  if (!EnsureDir(dir)) {
    if (error != nullptr) {
      *error = "cannot create durability dir " + dir;
    }
    return false;
  }

  // 1. Newest snapshot that validates end-to-end.
  std::vector<std::pair<std::uint64_t, std::string>> snapshots = ListSnapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const std::string path = dir + "/" + it->second;
    SnapshotLoadStats load;
    std::string load_error;
    if (LoadKvSnapshot(path, service, &load, &load_error)) {
      stats->loaded_snapshot = true;
      stats->snapshot_path = path;
      stats->snapshot_entries = load.entries;
      stats->snapshot_lsn = load.wal_lsn;
      break;
    }
    // Corrupt/truncated snapshot: drop whatever partially loaded and fall
    // back to the next older image (the WAL still covers the gap unless it
    // was GC'd, which step 2 detects).
    service->RestoreClear();
    ++stats->snapshots_skipped;
  }

  // 2. Replay the log past the snapshot.
  WalReplayStats replay;
  const std::uint64_t start_lsn = stats->snapshot_lsn + 1;
  const bool ok = ReplayWal(
      dir, start_lsn, /*truncate_torn_tail=*/true,
      [&](const WalRecord& record) {
        if (record.type == WalRecord::Type::kSet) {
          KvService::StoredValue value;
          value.data = record.data;
          value.flags = record.flags;
          value.cas_id = record.cas_id;
          value.expires_at = record.expires_at;
          service->RestoreEntry(record.key, std::move(value));
        } else if (record.type == WalRecord::Type::kSetTiered) {
          KvService::StoredValue value;
          value.flags = record.flags;
          value.cas_id = record.cas_id;
          value.expires_at = record.expires_at;
          store::TieredStore* tier = service->tier();
          if (!store::DecodeValueLocation(record.data, &value.loc) || tier == nullptr ||
              !tier->ValidLocation(value.loc)) {
            // The value bytes never made it to the log (torn off its tail, a
            // crash between the vlog append fsync and the WAL fsync) — this
            // write was never acked, so keeping the PRIOR state of the key is
            // correct. Only the cas floor advances past the lost record.
            service->AdvanceCasFloor(record.cas_id);
            ++stats->tiered_records_skipped;
            return;
          }
          service->RestoreEntry(record.key, std::move(value));
        } else {
          service->RestoreErase(record.key);
        }
      },
      &replay, error);
  if (!ok) {
    return false;
  }
  // GC gap check: if segments survive but the oldest starts after the first
  // LSN we need, mutations in between are gone — refuse to serve the hole.
  if (replay.anchor_lsn != 0 && replay.anchor_lsn > start_lsn) {
    if (error != nullptr) {
      *error = "WAL gap: oldest segment starts at lsn " +
               std::to_string(replay.anchor_lsn) + " but recovery needs " +
               std::to_string(start_lsn);
    }
    return false;
  }

  stats->wal_segments = replay.segments;
  stats->wal_records_applied = replay.records_applied;
  stats->wal_records_skipped = replay.records_skipped;
  stats->truncated_tail = replay.truncated_tail;
  stats->torn_tail_bytes = replay.torn_tail_bytes;
  stats->next_lsn = replay.next_lsn > start_lsn ? replay.next_lsn : start_lsn;
  return true;
}

}  // namespace persist
}  // namespace cuckoo
