// Crash-recovery pipeline: newest valid snapshot + WAL replay past its LSN.
//
// Sequence (RecoverKvService):
//   1. List snapshots (snap-<lsn>.ckpt), newest first. Load the first one
//      that validates end-to-end (CRC per record + footer count); a corrupt
//      or truncated snapshot is skipped (the table is cleared) and the next
//      older one is tried.
//   2. Replay every WAL record with lsn > snapshot_lsn in LSN order:
//      set -> RestoreEntry (upsert), delete -> RestoreErase. Replay is
//      idempotent, so records the fuzzy snapshot already reflects are
//      harmlessly re-applied.
//   3. Torn tail: a malformed record at the very end of the final segment is
//      truncated away (a crash mid-write); malformed bytes anywhere else, an
//      LSN discontinuity, or a GC gap between the snapshot and the oldest
//      surviving segment are unrecoverable and fail recovery loudly rather
//      than serving silently wrong data.
// The returned next_lsn seeds WriteAheadLog::Open.
#ifndef SRC_PERSIST_RECOVERY_H_
#define SRC_PERSIST_RECOVERY_H_

#include <cstdint>
#include <string>

#include "src/kvserver/kv_service.h"

namespace cuckoo {
namespace persist {

struct RecoveryStats {
  bool loaded_snapshot = false;
  std::string snapshot_path;
  std::uint64_t snapshot_entries = 0;
  std::uint64_t snapshot_lsn = 0;
  std::uint64_t snapshots_skipped = 0;  // corrupt snapshots passed over
  std::uint64_t wal_segments = 0;
  std::uint64_t wal_records_applied = 0;
  std::uint64_t wal_records_skipped = 0;
  // Tiered set records whose value-log bytes were gone at replay (torn off
  // the log tail before the write was ever acked): the key keeps its prior
  // state, only the cas floor advances.
  std::uint64_t tiered_records_skipped = 0;
  bool truncated_tail = false;
  std::uint64_t torn_tail_bytes = 0;
  std::uint64_t next_lsn = 1;  // seed for WriteAheadLog::Open
};

// Rebuild `service` from the durability files in `dir` (created if missing).
// `service` must be fresh and unserved. Returns false with *error on
// unrecoverable corruption or I/O failure.
bool RecoverKvService(const std::string& dir, KvService* service, RecoveryStats* stats,
                      std::string* error);

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_RECOVERY_H_
