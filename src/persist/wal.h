// Write-ahead log with group commit for the KV server.
//
// Writers (event-loop threads inside table critical sections) call Append(),
// which assigns the next LSN, encodes the record into an in-memory batch
// buffer, and returns immediately — no I/O under the bucket locks. A single
// dedicated log-writer thread drains the batch: one write() for everything
// enqueued since the last drain, then at most one fsync for the whole batch
// (group commit). While the writer thread is inside write()+fsync, new
// appends pile into the next batch, so the commit batch size self-clocks to
// the arrival rate: under N concurrently blocked clients each fsync acks ~N
// records (fsyncs << acks).
//
// Durability policies (Redis-style):
//   kAlways   — WaitDurable(lsn) blocks until an fsync covers lsn; every
//               batch is fsynced. Acked writes survive OS crash/power loss.
//   kEverySec — the writer thread fsyncs at most once per second;
//               WaitDurable returns once the record is written to the OS
//               (survives process crash, may lose <~1s on OS crash).
//   kNone     — never fsync explicitly; the OS flushes on its schedule.
//
// On-disk format (host-endian; machine-local files, not interchange):
//   segment := header record*
//   header  := "CKWALSG1" u32 version=1 u32 flags=0 u64 first_lsn   (24 bytes)
//   record  := u32 masked_crc32c  u32 len  payload[len]
//   payload := u64 lsn  u8 type  u32 flags  u64 expires_at  u64 cas_id
//              u32 klen  u32 dlen  key[klen]  data[dlen]
// The CRC covers len and payload and is stored masked (see crc32c.h).
// Segments are named wal-<first_lsn>.log; LSNs are strictly sequential
// across segment boundaries, which replay verifies. A partially written
// record at the tail of the LAST segment is a torn tail (tolerated,
// truncated); anywhere else it is corruption.
#ifndef SRC_PERSIST_WAL_H_
#define SRC_PERSIST_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "src/common/file_util.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/histogram.h"

namespace cuckoo {
namespace persist {

enum class FsyncPolicy : std::uint8_t { kAlways, kEverySec, kNone };

// "always" / "everysec" / "none".
bool ParseFsyncPolicy(std::string_view name, FsyncPolicy* out);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalRecord {
  // kSetTiered is a set whose value bytes live in the value log: `data`
  // holds the 16-byte encoded ValueLocation (see src/store/value_log.h)
  // instead of the value itself. Replay re-validates the location against
  // the log on disk before trusting it.
  enum class Type : std::uint8_t { kSet = 1, kDelete = 2, kSetTiered = 3 };
  std::uint64_t lsn = 0;
  Type type = Type::kSet;
  std::uint32_t flags = 0;
  std::uint64_t expires_at = 0;
  std::uint64_t cas_id = 0;
  std::string key;
  std::string data;
};

struct WalOptions {
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kEverySec;
  // Rotate to a fresh segment once the current one exceeds this.
  std::uint64_t segment_bytes = 64u << 20;
};

struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t group_commits = 0;  // writer-thread drain batches
  std::uint64_t max_batch_records = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t last_assigned_lsn = 0;
  std::uint64_t durable_lsn = 0;
  bool io_error = false;  // sticky: the log hit an unrecoverable write/fsync failure
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { Shutdown(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Create the directory if needed, start a fresh segment whose first LSN
  // will be `next_lsn` (recovery's next_lsn; 1 on a fresh dir), and start
  // the log-writer thread. Returns false on I/O failure.
  bool Open(WalOptions options, std::uint64_t next_lsn);

  // Assign the next LSN and enqueue the record for the writer thread.
  // Intended to be called inside a table critical section: does no file I/O
  // (only a short queue-mutex hold). Returns the assigned LSN.
  std::uint64_t Append(WalRecord::Type type, std::string_view key, std::string_view data,
                       std::uint32_t flags, std::uint64_t expires_at, std::uint64_t cas_id);

  // Replica-side append: enqueue a record PRESERVING its primary-assigned
  // LSN instead of allocating one. The stream must stay contiguous — returns
  // false (and enqueues nothing) if record.lsn is not exactly the next LSN.
  bool AppendReplicated(const WalRecord& record);

  // Block until `lsn` is durable under the configured policy. kAlways waits
  // for a covering fsync; kEverySec/kNone return once enqueued (the batch
  // write itself is asynchronous by design). Returns false iff the log is in
  // its sticky I/O-error state (a write() or fsync failed — full disk, dead
  // device): the record cannot be promised durable and the caller must NOT
  // ack the write as stored. Every later call keeps returning false, so the
  // service effectively stops accepting writes (Redis AOF-error behavior).
  bool WaitDurable(std::uint64_t lsn);

  // Drain everything enqueued so far to the file and fsync it, regardless of
  // policy. Used by graceful shutdown and before snapshot GC.
  bool Flush();

  // Flush, stop the writer thread, close the segment. Idempotent.
  void Shutdown();

  std::uint64_t LastAssignedLsn() const {
    return next_lsn_.load(std::memory_order_acquire) - 1;
  }
  std::uint64_t DurableLsn() const { return durable_lsn_.load(std::memory_order_acquire); }
  // Highest LSN whose record is fully written into a segment file (not
  // necessarily fsynced). A WAL tailer may decode frames up to and including
  // this watermark: the write() covering them completed before the store, so
  // page-cache reads on another fd see the whole frame.
  std::uint64_t WrittenLsn() const { return written_lsn_.load(std::memory_order_acquire); }
  // Total record bytes appended since Open (snapshot trigger input).
  std::uint64_t BytesAppended() const {
    return bytes_appended_.load(std::memory_order_relaxed);
  }
  // True once any write()/fsync has failed; sticky until the next Open.
  bool InErrorState() const { return io_error_.load(std::memory_order_acquire); }

  // Test-only: make the log-writer thread's next I/O pass fail, driving the
  // log into the sticky error state exactly as a full disk would.
  void InjectIoErrorForTesting() {
    inject_io_error_.store(true, std::memory_order_release);
  }

  // Invoked by the log-writer thread after each group-commit drain that put
  // records into the file, with the new written/durable watermarks. Runs on
  // the writer thread outside both WAL mutexes; must be cheap and must not
  // call back into the log. Install before Open().
  using CommitSink = std::function<void(std::uint64_t written_lsn, std::uint64_t durable_lsn)>;
  void SetCommitSink(CommitSink sink) { commit_sink_ = std::move(sink); }

  WalStats Stats() const;

  // Distribution of records per group-commit drain batch (how well the
  // group commit amortizes: p50 of 1 = no batching, p50 of N = N acks per
  // write/fsync round).
  obs::HistogramSnapshot BatchRecordsSnapshot() const {
    return batch_records_hist_.Snapshot();
  }

  // Delete closed segments every record of which has lsn < `lsn` (i.e. fully
  // covered by a snapshot at `lsn`). The active segment is never removed.
  void RemoveSegmentsBelow(std::uint64_t lsn);

 private:
  void WriterLoop();
  bool RotateLocked(std::uint64_t first_lsn) REQUIRES(io_mutex_);
  bool StartSegment(std::uint64_t first_lsn) REQUIRES(io_mutex_);

  WalOptions options_;
  std::atomic<std::uint64_t> next_lsn_{1};
  std::atomic<std::uint64_t> durable_lsn_{0};
  std::atomic<std::uint64_t> written_lsn_{0};
  std::atomic<std::uint64_t> bytes_appended_{0};
  CommitSink commit_sink_;  // set before Open(), then read-only

  // Batch state (guarded by mutex_): appenders encode into `pending_`, the
  // writer thread swaps it out and writes without holding mutex_.
  Mutex mutex_;
  std::condition_variable work_cv_;     // writer thread: work available
  std::condition_variable durable_cv_;  // appenders: durable_lsn_ advanced
  std::string pending_ GUARDED_BY(mutex_);
  std::uint64_t pending_max_lsn_ GUARDED_BY(mutex_) = 0;
  std::uint64_t pending_records_ GUARDED_BY(mutex_) = 0;
  bool flush_requested_ GUARDED_BY(mutex_) = false;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::uint64_t flush_generation_ GUARDED_BY(mutex_) = 0;  // completed explicit flushes
  std::uint64_t flushes_done_ GUARDED_BY(mutex_) = 0;
  // Sticky: set by the writer thread on any failed write()/fsync, read
  // lock-free by WaitDurable fast paths and InErrorState.
  std::atomic<bool> io_error_{false};
  std::atomic<bool> inject_io_error_{false};

  // File state (writer thread + Flush path; guarded by io_mutex_).
  Mutex io_mutex_;
  AppendFile file_ GUARDED_BY(io_mutex_);
  std::uint64_t segment_first_lsn_ GUARDED_BY(io_mutex_) = 1;
  // First lsn the NEXT segment would get.
  std::uint64_t segment_next_lsn_ GUARDED_BY(io_mutex_) = 1;

  // Counters (writer thread only, read via Stats()).
  std::atomic<std::uint64_t> records_appended_{0};
  obs::Histogram batch_records_hist_;  // records per group-commit drain
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> group_commits_{0};
  std::atomic<std::uint64_t> max_batch_records_{0};
  std::atomic<std::uint64_t> segments_created_{0};
  std::uint64_t last_fsync_ms_ GUARDED_BY(io_mutex_) = 0;

  std::thread writer_;
  bool started_ GUARDED_BY(mutex_) = false;
};

struct WalReplayStats {
  std::uint64_t segments = 0;
  // Segments older than the replay anchor (every record covered by the
  // snapshot) that were skipped without being scanned.
  std::uint64_t segments_ignored = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  // lsn < start_lsn (covered by snapshot)
  std::uint64_t next_lsn = 1;         // 1 + highest lsn seen (>= start_lsn)
  // first_lsn of the oldest surviving segment (0 = no segments). Recovery
  // uses this to detect a GC'd gap between a snapshot and the log.
  std::uint64_t anchor_lsn = 0;
  bool truncated_tail = false;
  std::uint64_t torn_tail_bytes = 0;
};

// Replay every record with lsn >= start_lsn through `apply`, in LSN order.
// Replay anchors at the NEWEST segment whose first_lsn <= start_lsn (older
// segments hold only records the snapshot already covers and are ignored —
// they may legitimately end short of the next segment's first LSN when a
// snapshot published ahead of the durable WAL tail before a crash under
// fsync=everysec/none). A malformed record at the tail of the last segment
// is treated as a torn write: replay stops there and, if
// `truncate_torn_tail`, the file is truncated to the last valid boundary. A
// malformed record anywhere else — or any LSN discontinuity from the anchor
// on — is unrecoverable corruption: returns false with a description in
// *error. An empty directory replays zero records.
bool ReplayWal(const std::string& dir, std::uint64_t start_lsn, bool truncate_torn_tail,
               const std::function<void(const WalRecord&)>& apply, WalReplayStats* stats,
               std::string* error);

namespace internal {

inline constexpr char kWalMagic[8] = {'C', 'K', 'W', 'A', 'L', 'S', 'G', '1'};
inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 8 + 4 + 4 + 8;
inline constexpr std::size_t kRecordFrameSize = 4 + 4;  // crc + len
// Guard against absurd `len` fields from corruption: key <= 250 and
// data <= 1 MiB at the protocol layer, so 8 MiB of payload is impossible.
inline constexpr std::uint32_t kMaxRecordPayload = 8u << 20;

// Encode one record (frame + payload) onto *out.
void EncodeWalRecord(const WalRecord& record, std::string* out);

// Decode the record framed at *pos. Returns +1 on success (record in *out,
// *pos advanced) and 0 on a malformed/truncated frame (*pos untouched — the
// caller decides torn-tail vs corruption vs need-more-bytes).
int DecodeWalRecord(const std::string& bytes, std::size_t* pos, WalRecord* out);

// Segment file name for a given first LSN.
std::string SegmentName(std::uint64_t first_lsn);

// Parse "wal-<lsn>.log"; returns false if the name doesn't match.
bool ParseSegmentName(const std::string& name, std::uint64_t* first_lsn);

}  // namespace internal

}  // namespace persist
}  // namespace cuckoo

#endif  // SRC_PERSIST_WAL_H_
