#include "src/persist/durability.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "src/common/file_util.h"
#include "src/kvserver/protocol.h"
#include "src/obs/metrics.h"
#include "src/persist/snapshot.h"
#include "src/store/tiered_store.h"

namespace cuckoo {
namespace persist {

bool DurabilityManager::Start(DurabilityOptions options, std::string* error) {
  options_ = std::move(options);
  if (!RecoverKvService(options_.dir, service_, &recovery_, error)) {
    return false;
  }
  WalOptions wal_options;
  wal_options.dir = options_.dir;
  wal_options.fsync_policy = options_.fsync_policy;
  wal_options.segment_bytes = options_.segment_bytes;
  if (bridge_ != nullptr) {
    // Fan replication out from the group-commit path: after each drain the
    // log-writer thread tells the hub how far the file (and the fsync
    // watermark) advanced. Installed before Open so no commit is missed.
    wal_.SetCommitSink([this](std::uint64_t written_lsn, std::uint64_t durable_lsn) {
      bridge_->OnWalCommit(written_lsn, durable_lsn);
    });
  }
  if (!wal_.Open(wal_options, recovery_.next_lsn)) {
    if (error != nullptr) {
      *error = "cannot open WAL in " + options_.dir;
    }
    return false;
  }
  service_->SetMutationObserver(this);
  service_->SetBgsaveHook([this] { return TriggerSnapshot(); });
  service_->AddExtraStatsHook([this](std::string* out) { AppendStats(out); });
  service_->AddDetailStatsHook([this](std::string* out) { AppendDetailStats(out); });
  {
    MutexLock lk(mutex_);
    stop_ = false;
    started_ = true;
  }
  snapshot_thread_ = std::thread(&DurabilityManager::SnapshotWorker, this);
  return true;
}

void DurabilityManager::Stop() {
  {
    MutexLock lk(mutex_);
    if (!started_) {
      return;
    }
    started_ = false;
    stop_ = true;
    cv_.notify_all();
  }
  snapshot_thread_.join();
  // Detach from the service FIRST so no new appends race the WAL teardown
  // (the server should already have drained connections by now).
  service_->SetMutationObserver(nullptr);
  // Final barrier: everything applied to the table reaches the disk before
  // exit, regardless of fsync policy — value bytes first, then the WAL.
  if (options_.tier != nullptr) {
    options_.tier->SyncLog();
  }
  wal_.Flush();
  wal_.Shutdown();
}

bool DurabilityManager::TriggerSnapshot() {
  MutexLock lk(mutex_);
  if (!started_ || snapshot_requested_ || snapshot_running_) {
    return false;
  }
  snapshot_requested_ = true;
  cv_.notify_all();
  return true;
}

bool DurabilityManager::WaitForSnapshot() {
  MutexLock lk(mutex_);
  const std::uint64_t target = rounds_started_ + (snapshot_requested_ ? 1 : 0);
  // Explicit loop instead of the predicate overload: the analysis treats the
  // predicate lambda as a lockless reader of the guarded fields.
  while (!(rounds_done_ >= target || stop_)) {
    done_cv_.wait(lk.native_handle());
  }
  return last_round_ok_;
}

bool DurabilityManager::ApplyReplicated(const WalRecord& record, std::string* error) {
  // Log first, table second — the mirror of the primary's ordering. A crash
  // between the two replays the record from the local WAL on restart, and
  // replay is idempotent.
  if (!wal_.AppendReplicated(record)) {
    if (error != nullptr) {
      *error = "replication LSN gap at " + std::to_string(record.lsn) +
               " (local next is " + std::to_string(wal_.LastAssignedLsn() + 1) + ")";
    }
    return false;
  }
  switch (record.type) {
    case WalRecord::Type::kSet: {
      KvService::StoredValue value;
      value.data = record.data;
      value.flags = record.flags;
      value.cas_id = record.cas_id;
      value.expires_at = record.expires_at;
      service_->RestoreEntry(record.key, std::move(value));
      break;
    }
    case WalRecord::Type::kSetTiered: {
      // The primary normally rewrites tiered records to inline sets before
      // streaming; one arriving verbatim means the primary could not read
      // the value back (GC relocated it). The relocation record — at a
      // higher LSN, already behind this one in the stream — re-delivers the
      // value, so skipping here converges. The location itself only makes
      // sense if this replica happens to share a value log (it never does in
      // production, but a local-process test tier can).
      KvService::StoredValue value;
      value.flags = record.flags;
      value.cas_id = record.cas_id;
      value.expires_at = record.expires_at;
      store::TieredStore* tier = service_->tier();
      if (!store::DecodeValueLocation(record.data, &value.loc) || tier == nullptr ||
          !tier->ValidLocation(value.loc)) {
        service_->AdvanceCasFloor(record.cas_id);
        replica_skipped_tiered_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      service_->RestoreEntry(record.key, std::move(value));
      break;
    }
    case WalRecord::Type::kDelete:
      service_->RestoreErase(record.key);
      break;
  }
  replica_applied_records_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DurabilityManager::ResyncFromSnapshot(const std::string& snapshot_path,
                                           std::uint64_t snapshot_lsn, std::string* error) {
  {
    MutexLock lk(mutex_);
    // Wait out any in-flight snapshot round, then fence the worker off: the
    // WAL is about to be closed and the directory rewritten underneath it.
    while (snapshot_running_) {
      done_cv_.wait(lk.native_handle());
    }
    snapshot_requested_ = false;
    resync_in_progress_ = true;
  }
  wal_.Shutdown();
  service_->RestoreClear();
  for (const std::string& name : ListFilesWithPrefix(options_.dir, "wal-")) {
    RemoveFile(options_.dir + "/" + name);
  }
  for (const std::string& name : ListFilesWithPrefix(options_.dir, "snap-")) {
    RemoveFile(options_.dir + "/" + name);
  }
  const std::string published =
      options_.dir + "/" + internal::SnapshotFileName(snapshot_lsn);
  bool ok = std::rename(snapshot_path.c_str(), published.c_str()) == 0 &&
            SyncDir(options_.dir);
  std::uint64_t reopen_lsn = snapshot_lsn + 1;
  SnapshotLoadStats load;
  if (ok) {
    ok = LoadKvSnapshot(published, service_, &load, error);
  } else if (error != nullptr) {
    *error = "cannot publish replica snapshot as " + published;
  }
  if (!ok) {
    // Leave the replica empty but serviceable: a fresh WAL at LSN 1 puts it
    // in the same state as a blank data directory, and the caller retries
    // the bootstrap from scratch.
    service_->RestoreClear();
    RemoveFile(published);
    reopen_lsn = 1;
  }
  WalOptions wal_options;
  wal_options.dir = options_.dir;
  wal_options.fsync_policy = options_.fsync_policy;
  wal_options.segment_bytes = options_.segment_bytes;
  const bool reopened = wal_.Open(wal_options, reopen_lsn);
  if (!reopened && error != nullptr && ok) {
    *error = "cannot reopen WAL after resync in " + options_.dir;
  }
  {
    MutexLock lk(mutex_);
    bytes_at_last_snapshot_ = wal_.BytesAppended();
    resync_in_progress_ = false;
    cv_.notify_all();
  }
  if (ok && reopened) {
    last_snapshot_lsn_.store(snapshot_lsn, std::memory_order_relaxed);
    last_snapshot_entries_.store(load.entries, std::memory_order_relaxed);
    replica_resyncs_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void DurabilityManager::SnapshotWorker() {
  for (;;) {
    bool run = false;
    {
      MutexLock lk(mutex_);
      // Single timed wait; a spurious wakeup falls through with run=false
      // and the outer loop re-enters the wait (see WaitForSnapshot).
      if (!(stop_ || snapshot_requested_)) {
        cv_.wait_for(lk.native_handle(), std::chrono::milliseconds(200));
      }
      if (stop_) {
        return;
      }
      // Value-log counterpart of the WAL's everysec fsync: bound how much
      // tiered value data an OS crash can lose under the weaker policies.
      // EnsureDurable is a no-op when nothing was appended since last time,
      // so this costs one mutex hold per wakeup in the idle case. Under
      // fsync=always WaitDurable syncs inline and this never fires.
      if (options_.tier != nullptr && options_.fsync_policy != FsyncPolicy::kAlways) {
        const std::uint64_t now_ms = static_cast<std::uint64_t>(NowNanos() / 1000000);
        if (now_ms - last_vlog_sync_ms_ >= 1000) {
          options_.tier->SyncLog();
          last_vlog_sync_ms_ = now_ms;
        }
      }
      const bool byte_trigger =
          options_.snapshot_trigger_bytes != 0 &&
          wal_.BytesAppended() - bytes_at_last_snapshot_ >= options_.snapshot_trigger_bytes;
      // Never start a round mid-resync: the WAL is closed and the directory
      // is being rewritten. ResyncFromSnapshot waits out snapshot_running_
      // under this mutex, so the two phases strictly alternate.
      if (!resync_in_progress_ && (snapshot_requested_ || byte_trigger)) {
        snapshot_requested_ = false;
        snapshot_running_ = true;
        ++rounds_started_;
        run = true;
      }
    }
    if (!run) {
      continue;
    }
    const bool ok = RunSnapshot();
    {
      MutexLock lk(mutex_);
      snapshot_running_ = false;
      last_round_ok_ = ok;
      ++rounds_done_;
      done_cv_.notify_all();
    }
  }
}

bool DurabilityManager::RunSnapshot() {
  const std::uint64_t bytes_before = wal_.BytesAppended();
  const std::uint64_t walk_start = NowNanos();
  SnapshotWriteStats stats;
  std::string error;
  if (!WriteKvSnapshot(*service_, options_.dir, [this] { return wal_.LastAssignedLsn(); },
                       options_.snapshot_max_attempts, &stats, &error)) {
    snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Walk + publish duration for the whole successful round (including
  // validation retries); the table was never globally locked during it.
  snapshot_walk_ns_.Record(NowNanos() - walk_start);
  snapshots_completed_.fetch_add(1, std::memory_order_relaxed);
  last_snapshot_lsn_.store(stats.wal_lsn, std::memory_order_relaxed);
  last_snapshot_entries_.store(stats.entries, std::memory_order_relaxed);
  snapshot_walk_lock_fallbacks_.fetch_add(stats.walk.lock_fallbacks,
                                          std::memory_order_relaxed);
  snapshot_displaced_entries_.fetch_add(stats.walk.displaced_entries,
                                        std::memory_order_relaxed);
  {
    MutexLock lk(mutex_);
    bytes_at_last_snapshot_ = bytes_before;
  }
  // The published snapshot covers every LSN <= its wal_lsn; segments fully
  // below that are dead weight. Flush first so the covering guarantee holds
  // even for records that were still only in the batch buffer. A lagging
  // replica holds GC back: removing a segment it still needs would force it
  // into a full resync, so keep everything from its next LSN onward.
  wal_.Flush();
  std::uint64_t gc_below = stats.wal_lsn;
  if (bridge_ != nullptr) {
    const std::uint64_t min_replica = bridge_->MinReplicaLsn();
    if (min_replica != UINT64_MAX) {
      // min_replica is the replica's NEXT lsn; the segment holding it (and
      // everything after) must survive, so only LSNs strictly below may go.
      gc_below = std::min(gc_below, min_replica - 1);
    }
  }
  wal_.RemoveSegmentsBelow(gc_below);
  return true;
}

void DurabilityManager::AppendStats(std::string* out) const {
  const WalStats w = wal_.Stats();
  out->append("STAT fsync_policy ");
  out->append(FsyncPolicyName(options_.fsync_policy));
  out->append("\r\n");
  AppendStat("wal_records_appended", w.records_appended, out);
  AppendStat("wal_bytes_appended", w.bytes_appended, out);
  AppendStat("wal_fsyncs", w.fsyncs, out);
  AppendStat("wal_group_commits", w.group_commits, out);
  AppendStat("wal_max_batch_records", w.max_batch_records, out);
  AppendStat("wal_segments_created", w.segments_created, out);
  AppendStat("wal_last_lsn", w.last_assigned_lsn, out);
  AppendStat("wal_written_lsn", wal_.WrittenLsn(), out);
  AppendStat("wal_durable_lsn", w.durable_lsn, out);
  AppendStat("wal_io_error", w.io_error ? 1 : 0, out);
  AppendStat("snapshots_completed", snapshots_completed_.load(std::memory_order_relaxed),
             out);
  AppendStat("snapshot_failures", snapshot_failures_.load(std::memory_order_relaxed), out);
  AppendStat("last_snapshot_lsn", last_snapshot_lsn_.load(std::memory_order_relaxed), out);
  AppendStat("last_snapshot_entries",
             last_snapshot_entries_.load(std::memory_order_relaxed), out);
  AppendStat("snapshot_lock_fallbacks",
             snapshot_walk_lock_fallbacks_.load(std::memory_order_relaxed), out);
  AppendStat("snapshot_displaced_entries",
             snapshot_displaced_entries_.load(std::memory_order_relaxed), out);
  AppendStat("replica_applied_records",
             replica_applied_records_.load(std::memory_order_relaxed), out);
  AppendStat("replica_skipped_tiered",
             replica_skipped_tiered_.load(std::memory_order_relaxed), out);
  AppendStat("replica_resyncs", replica_resyncs_.load(std::memory_order_relaxed), out);
  AppendStat("recovery_loaded_snapshot", recovery_.loaded_snapshot ? 1 : 0, out);
  AppendStat("recovery_snapshot_entries", recovery_.snapshot_entries, out);
  AppendStat("recovery_wal_records_applied", recovery_.wal_records_applied, out);
  AppendStat("recovery_truncated_tail", recovery_.truncated_tail ? 1 : 0, out);
  AppendStat("recovery_next_lsn", recovery_.next_lsn, out);
}

void DurabilityManager::AppendDetailStats(std::string* out) const {
  const obs::HistogramSnapshot durable = append_durable_ns_.Snapshot();
  AppendStat("wal_append_durable_ns_p50", durable.P50(), out);
  AppendStat("wal_append_durable_ns_p99", durable.P99(), out);
  AppendStat("wal_append_durable_ns_p999", durable.P999(), out);
  AppendStat("wal_append_durable_ns_max", durable.Max(), out);
  AppendStat("wal_append_durable_count", durable.Count(), out);
  const obs::HistogramSnapshot batch = wal_.BatchRecordsSnapshot();
  AppendStat("wal_batch_records_p50", batch.P50(), out);
  AppendStat("wal_batch_records_p99", batch.P99(), out);
  AppendStat("wal_batch_records_max", batch.Max(), out);
  const obs::HistogramSnapshot walk = snapshot_walk_ns_.Snapshot();
  AppendStat("snapshot_walk_ns_p50", walk.P50(), out);
  AppendStat("snapshot_walk_ns_max", walk.Max(), out);
  AppendStat("snapshot_walk_count", walk.Count(), out);
}

void DurabilityManager::AppendMetricsText(std::string* out) const {
  const WalStats w = wal_.Stats();
  obs::AppendCounter("cuckoo_wal_records_appended_total", "WAL records appended",
                     w.records_appended, out);
  obs::AppendCounter("cuckoo_wal_bytes_appended_total", "WAL bytes appended",
                     w.bytes_appended, out);
  obs::AppendCounter("cuckoo_wal_fsyncs_total", "WAL fsync calls", w.fsyncs, out);
  obs::AppendCounter("cuckoo_wal_group_commits_total", "WAL group-commit drain batches",
                     w.group_commits, out);
  obs::AppendGauge("cuckoo_wal_durable_lsn", "highest durable log sequence number",
                   static_cast<double>(w.durable_lsn), out);
  obs::AppendGauge("cuckoo_wal_written_lsn",
                   "highest log sequence number fully written to the segment file",
                   static_cast<double>(wal_.WrittenLsn()), out);
  obs::AppendCounter("cuckoo_replica_applied_records_total",
                     "replicated WAL records applied locally",
                     replica_applied_records_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_replica_resyncs_total",
                     "full snapshot bootstraps performed as a replica",
                     replica_resyncs_.load(std::memory_order_relaxed), out);
  obs::AppendGauge("cuckoo_wal_io_error", "1 if the WAL is in its sticky I/O-error state",
                   w.io_error ? 1.0 : 0.0, out);
  obs::AppendCounter("cuckoo_snapshots_completed_total", "online snapshots completed",
                     snapshots_completed_.load(std::memory_order_relaxed), out);
  obs::AppendCounter("cuckoo_snapshot_failures_total", "online snapshot rounds that failed",
                     snapshot_failures_.load(std::memory_order_relaxed), out);
  // Seconds-scaled summaries, per Prometheus conventions.
  obs::AppendLatencySummary(
      std::string("cuckoo_wal_append_durable_seconds"),
      std::string("append to durable-ack latency (fsync policy: ") +
          FsyncPolicyName(options_.fsync_policy) + ")",
      append_durable_ns_.Snapshot(), 1e-9, out);
  obs::AppendLatencySummary("cuckoo_wal_group_commit_records",
                            "records per group-commit batch",
                            wal_.BatchRecordsSnapshot(), 1.0, out);
  obs::AppendLatencySummary("cuckoo_snapshot_walk_seconds",
                            "fuzzy snapshot walk+publish duration",
                            snapshot_walk_ns_.Snapshot(), 1e-9, out);
}

}  // namespace persist
}  // namespace cuckoo
