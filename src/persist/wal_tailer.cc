#include "src/persist/wal_tailer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/file_util.h"

namespace cuckoo {
namespace persist {
namespace {

constexpr std::size_t kReadChunk = 256u << 10;
// Drop consumed buffer prefix once it grows past this.
constexpr std::size_t kCompactThreshold = 1u << 20;

bool SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

}  // namespace

bool WalTailer::Open(const std::string& dir, std::uint64_t start_lsn, std::string* error) {
  Close();
  dir_ = dir;
  start_lsn_ = start_lsn;
  next_lsn_ = start_lsn;

  std::vector<std::uint64_t> segments;
  for (const std::string& name : ListFilesWithPrefix(dir_, "wal-")) {
    std::uint64_t first = 0;
    if (internal::ParseSegmentName(name, &first)) {
      segments.push_back(first);
    }
  }
  std::sort(segments.begin(), segments.end());
  // Newest segment whose first_lsn <= start_lsn; older ones hold only
  // already-covered records (same anchoring rule as replay).
  std::uint64_t anchor = 0;
  bool found = false;
  for (const std::uint64_t first : segments) {
    if (first <= start_lsn) {
      anchor = first;
      found = true;
    }
  }
  if (!found) {
    return SetError(error, "WAL no longer holds lsn " + std::to_string(start_lsn) +
                               " (GC'd or empty dir); full resync required");
  }
  expected_lsn_ = anchor;
  const SegOpen r = OpenSegment(anchor, error);
  if (r == SegOpen::kError) {
    return false;
  }
  if (r == SegOpen::kRetry) {
    // The anchor is the writer's brand-new segment whose header hasn't
    // landed yet. Extremely narrow window; treat as open-at-EOF — Next()
    // keeps retrying the header via the rotation path.
    fd_ = -1;
  }
  return true;
}

WalTailer::SegOpen WalTailer::OpenSegment(std::uint64_t first_lsn, std::string* error) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  pos_ = 0;
  file_offset_ = 0;
  const std::string path = dir_ + "/" + internal::SegmentName(first_lsn);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "cannot open WAL segment " + path);
    return SegOpen::kError;
  }
  char header[internal::kWalHeaderSize];
  std::size_t off = 0;
  while (off < sizeof(header)) {
    const ssize_t n = ::pread(fd, header + off, sizeof(header) - off, off);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (off < sizeof(header)) {
    // Header not fully written yet (writer mid-StartSegment).
    ::close(fd);
    return SegOpen::kRetry;
  }
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t header_first = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  std::memcpy(&flags, header + 12, sizeof(flags));
  std::memcpy(&header_first, header + 16, sizeof(header_first));
  if (std::memcmp(header, internal::kWalMagic, 8) != 0 ||
      version != internal::kWalVersion || flags != 0 || header_first != first_lsn) {
    ::close(fd);
    SetError(error, "corrupt WAL segment header: " + path);
    return SegOpen::kError;
  }
  fd_ = fd;
  file_offset_ = internal::kWalHeaderSize;
  return SegOpen::kOk;
}

bool WalTailer::ReadMore(std::size_t* got) {
  *got = 0;
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::pread(fd_, chunk, sizeof(chunk), static_cast<off_t>(file_offset_));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return true;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
    file_offset_ += static_cast<std::uint64_t>(n);
    *got += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < sizeof(chunk)) {
      return true;
    }
  }
}

WalTailer::Result WalTailer::Next(std::uint64_t watermark, WalRecord* out,
                                  std::string* error) {
  for (;;) {
    // LSNs are strictly sequential, so the next frame in the file is exactly
    // expected_lsn_; past the watermark it may still be mid-write().
    if (expected_lsn_ > watermark) {
      return Result::kCaughtUp;
    }
    if (fd_ < 0) {
      // Waiting for a new segment's header (see Open / rotation below).
      const SegOpen r = OpenSegment(expected_lsn_, error);
      if (r == SegOpen::kError) {
        return Result::kError;
      }
      if (r == SegOpen::kRetry) {
        return Result::kCaughtUp;
      }
      continue;
    }
    if (pos_ >= kCompactThreshold) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    std::size_t p = pos_;
    WalRecord record;
    if (internal::DecodeWalRecord(buf_, &p, &record) == 1) {
      if (record.lsn != expected_lsn_) {
        SetError(error, "WAL tail LSN discontinuity: expected " +
                            std::to_string(expected_lsn_) + " got " +
                            std::to_string(record.lsn));
        return Result::kError;
      }
      pos_ = p;
      ++expected_lsn_;
      if (record.lsn < start_lsn_) {
        continue;  // anchor-segment prefix the replica already has
      }
      next_lsn_ = record.lsn + 1;
      *out = std::move(record);
      return Result::kRecord;
    }
    // Frame incomplete in buf_: pull more bytes from the file.
    std::size_t got = 0;
    if (!ReadMore(&got)) {
      SetError(error, "WAL tail read error: " + std::string(std::strerror(errno)));
      return Result::kError;
    }
    if (got > 0) {
      continue;
    }
    // At EOF with a record still owed (expected_lsn_ <= watermark). Either
    // the writer rotated — the record lives in the next segment, which
    // always begins at exactly expected_lsn_ — or the file grew between our
    // decode and this check. Rotation leaves no partial frame behind, so
    // leftover bytes here mean corruption.
    const std::string next_path = dir_ + "/" + internal::SegmentName(expected_lsn_);
    if (FileExists(next_path)) {
      if (pos_ != buf_.size()) {
        SetError(error, "trailing garbage before WAL segment rotation at lsn " +
                            std::to_string(expected_lsn_));
        return Result::kError;
      }
      const SegOpen r = OpenSegment(expected_lsn_, error);
      if (r == SegOpen::kError) {
        return Result::kError;
      }
      if (r == SegOpen::kRetry) {
        fd_ = -1;
        return Result::kCaughtUp;
      }
      continue;
    }
    return Result::kCaughtUp;
  }
}

void WalTailer::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  pos_ = 0;
  file_offset_ = 0;
}

}  // namespace persist
}  // namespace cuckoo
