// Operation statistics for the cuckoo maps.
//
// Hot counters are per-thread (principle P1: "disable instant global
// statistics counters in favor of lazily aggregated per-thread counters");
// the path-length histogram uses relaxed atomics because it is only touched
// on the (rare) displacement path.
#ifndef SRC_CUCKOO_STATS_H_
#define SRC_CUCKOO_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/common/per_thread_counter.h"

namespace cuckoo {

// Cuckoo paths from DFS can reach MemC3's cap of 250 hops; one extra bucket
// collects overflow.
inline constexpr std::size_t kPathHistogramBuckets = 257;

struct MapStatsSnapshot {
  std::int64_t inserts = 0;              // successful inserts
  std::int64_t insert_failures = 0;      // kTableFull results
  std::int64_t duplicate_inserts = 0;    // kKeyExists results
  std::int64_t lookups = 0;
  std::int64_t lookup_hits = 0;
  std::int64_t erases = 0;
  std::int64_t displacements = 0;        // individual item moves
  std::int64_t path_searches = 0;        // SEARCH() invocations
  std::int64_t path_invalidations = 0;   // validate-execute failures (Eq. 1)
  std::int64_t read_retries = 0;         // optimistic read version mismatches
  std::int64_t expansions = 0;
  std::array<std::int64_t, kPathHistogramBuckets> path_length_hist{};

  // Mean executed cuckoo-path length (hops per path, excluding zero-hop
  // inserts into a free slot).
  double MeanPathLength() const noexcept {
    std::int64_t paths = 0;
    std::int64_t hops = 0;
    for (std::size_t len = 0; len < kPathHistogramBuckets; ++len) {
      paths += path_length_hist[len];
      hops += path_length_hist[len] * static_cast<std::int64_t>(len);
    }
    return paths == 0 ? 0.0 : static_cast<double>(hops) / static_cast<double>(paths);
  }

  std::int64_t MaxPathLength() const noexcept {
    for (std::size_t len = kPathHistogramBuckets; len-- > 0;) {
      if (path_length_hist[len] != 0) {
        return static_cast<std::int64_t>(len);
      }
    }
    return 0;
  }

  // Fraction of discovered paths invalidated by concurrent writers — the
  // quantity Eq. 1 upper-bounds.
  double PathInvalidationRate() const noexcept {
    std::int64_t total = path_searches;
    return total == 0 ? 0.0
                      : static_cast<double>(path_invalidations) / static_cast<double>(total);
  }
};

class MapStats {
 public:
  void RecordInsert() noexcept { inserts_.Increment(); }
  void RecordInsertFailure() noexcept { insert_failures_.Increment(); }
  void RecordDuplicateInsert() noexcept { duplicate_inserts_.Increment(); }
  void RecordLookup(bool hit) noexcept {
    lookups_.Increment();
    if (hit) {
      lookup_hits_.Increment();
    }
  }
  void RecordErase() noexcept { erases_.Increment(); }
  void RecordDisplacements(std::int64_t n) noexcept { displacements_.Add(n); }
  void RecordPathSearch() noexcept { path_searches_.Increment(); }
  void RecordPathInvalidation() noexcept { path_invalidations_.Increment(); }
  void RecordReadRetry() noexcept { read_retries_.Increment(); }
  void RecordExpansion() noexcept { expansions_.Increment(); }
  void RecordPathLength(std::size_t len) noexcept {
    if (len >= kPathHistogramBuckets) {
      len = kPathHistogramBuckets - 1;
    }
    path_length_hist_[len].fetch_add(1, std::memory_order_relaxed);
  }

  MapStatsSnapshot Read() const noexcept {
    MapStatsSnapshot s;
    s.inserts = inserts_.Sum();
    s.insert_failures = insert_failures_.Sum();
    s.duplicate_inserts = duplicate_inserts_.Sum();
    s.lookups = lookups_.Sum();
    s.lookup_hits = lookup_hits_.Sum();
    s.erases = erases_.Sum();
    s.displacements = displacements_.Sum();
    s.path_searches = path_searches_.Sum();
    s.path_invalidations = path_invalidations_.Sum();
    s.read_retries = read_retries_.Sum();
    s.expansions = expansions_.Sum();
    for (std::size_t i = 0; i < kPathHistogramBuckets; ++i) {
      s.path_length_hist[i] = path_length_hist_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

  void Reset() noexcept {
    inserts_.Reset();
    insert_failures_.Reset();
    duplicate_inserts_.Reset();
    lookups_.Reset();
    lookup_hits_.Reset();
    erases_.Reset();
    displacements_.Reset();
    path_searches_.Reset();
    path_invalidations_.Reset();
    read_retries_.Reset();
    expansions_.Reset();
    for (auto& h : path_length_hist_) {
      h.store(0, std::memory_order_relaxed);
    }
  }

 private:
  PerThreadCounter inserts_;
  PerThreadCounter insert_failures_;
  PerThreadCounter duplicate_inserts_;
  PerThreadCounter lookups_;
  PerThreadCounter lookup_hits_;
  PerThreadCounter erases_;
  PerThreadCounter displacements_;
  PerThreadCounter path_searches_;
  PerThreadCounter path_invalidations_;
  PerThreadCounter read_retries_;
  PerThreadCounter expansions_;
  std::array<std::atomic<std::int64_t>, kPathHistogramBuckets> path_length_hist_{};
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_STATS_H_
