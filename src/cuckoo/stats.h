// Operation statistics for the cuckoo maps.
//
// Hot counters are per-thread (principle P1: "disable instant global
// statistics counters in favor of lazily aggregated per-thread counters");
// the path-length histogram uses relaxed atomics because it is only touched
// on the (rare) displacement path. Latency distributions use the obs
// per-thread histograms, fed by sampled timers (1 op in 64) so the clock
// reads stay off the common case of the nanosecond-scale lookup path.
//
// Consistency contract for Read() (a.k.a. Snapshot) under concurrent
// recording:
//   * Every individual counter is an atomic sum of per-thread slots — never
//     torn, possibly slightly stale.
//   * The paired counters with a subset relationship (lookup_hits <=
//     lookups, path_invalidations <= path_searches) are read dependent-
//     counter-first with acquire ordering, and recorded base-counter-first
//     with a release on the dependent increment; a snapshot therefore never
//     shows more hits than lookups or more invalidations than searches,
//     even mid-flight.
//   * Unrelated counters are mutually unordered: a snapshot taken during an
//     insert may count its displacement but not yet the insert. Exact totals
//     require quiescing writers, as do Reset()'s zeroes (a racing recorder
//     can re-increment a just-cleared slot; the result is a small positive
//     count, never corruption).
#ifndef SRC_CUCKOO_STATS_H_
#define SRC_CUCKOO_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/common/per_thread_counter.h"
#include "src/common/timing.h"
#include "src/obs/histogram.h"

namespace cuckoo {

// Cuckoo paths from DFS can reach MemC3's cap of 250 hops; one extra bucket
// collects overflow.
inline constexpr std::size_t kPathHistogramBuckets = 257;

struct MapStatsSnapshot {
  std::int64_t inserts = 0;              // successful inserts
  std::int64_t insert_failures = 0;      // kTableFull results
  std::int64_t duplicate_inserts = 0;    // kKeyExists results
  std::int64_t lookups = 0;
  std::int64_t lookup_hits = 0;
  std::int64_t erases = 0;
  std::int64_t displacements = 0;        // individual item moves
  std::int64_t path_searches = 0;        // SEARCH() invocations
  std::int64_t path_invalidations = 0;   // validate-execute failures (Eq. 1)
  std::int64_t read_retries = 0;         // optimistic read version mismatches
  std::int64_t expansions = 0;
  std::int64_t lock_contended = 0;       // stripe acquisitions that had to wait
  // Incremental-expansion migration (see GeneralCuckooMap::Expand):
  std::int64_t migrations_started = 0;       // migration windows opened
  std::int64_t migrations_completed = 0;     // windows fully drained
  std::int64_t migrations_force_finished = 0;  // windows closed by bulk drain
  std::int64_t migrated_entries = 0;         // elements moved old core -> live
  std::int64_t migration_buckets_total = 0;  // gauge: old buckets in the window
  std::int64_t migration_buckets_done = 0;   // gauge: old buckets drained
  std::int64_t migration_max_stall_ns = 0;   // worst single writer-side stall
  // Gauge: bytes of table storage granted MADV_HUGEPAGE backing (0 unless
  // Options::hugepages was set and the kernel accepted the advice).
  std::int64_t hugepage_bytes = 0;
  std::array<std::int64_t, kPathHistogramBuckets> path_length_hist{};

  // Latency distributions (nanoseconds, sampled 1-in-64 when profiling is
  // enabled) and event-size distributions (always recorded).
  obs::HistogramSnapshot lookup_ns;           // Find / WithValue latency
  obs::HistogramSnapshot insert_ns;           // Insert/Upsert latency
  obs::HistogramSnapshot expansion_pause_ns;  // full-table lock hold per Expand
  obs::HistogramSnapshot batch_hits;          // hits per batched-lookup call
  obs::HistogramSnapshot migration_stall_ns;  // writer piggyback/help-drain time

  // Mean executed cuckoo-path length (hops per path, excluding zero-hop
  // inserts into a free slot).
  double MeanPathLength() const noexcept {
    std::int64_t paths = 0;
    std::int64_t hops = 0;
    for (std::size_t len = 0; len < kPathHistogramBuckets; ++len) {
      paths += path_length_hist[len];
      hops += path_length_hist[len] * static_cast<std::int64_t>(len);
    }
    return paths == 0 ? 0.0 : static_cast<double>(hops) / static_cast<double>(paths);
  }

  std::int64_t MaxPathLength() const noexcept {
    for (std::size_t len = kPathHistogramBuckets; len-- > 0;) {
      if (path_length_hist[len] != 0) {
        return static_cast<std::int64_t>(len);
      }
    }
    return 0;
  }

  // Fraction of discovered paths invalidated by concurrent writers — the
  // quantity Eq. 1 upper-bounds.
  double PathInvalidationRate() const noexcept {
    std::int64_t total = path_searches;
    return total == 0 ? 0.0
                      : static_cast<double>(path_invalidations) / static_cast<double>(total);
  }

  // Element-wise aggregation, associative and commutative — snapshots from
  // the shards of a ShardedMap (or from several maps) combine into one view.
  void Merge(const MapStatsSnapshot& other) noexcept {
    inserts += other.inserts;
    insert_failures += other.insert_failures;
    duplicate_inserts += other.duplicate_inserts;
    lookups += other.lookups;
    lookup_hits += other.lookup_hits;
    erases += other.erases;
    displacements += other.displacements;
    path_searches += other.path_searches;
    path_invalidations += other.path_invalidations;
    read_retries += other.read_retries;
    expansions += other.expansions;
    lock_contended += other.lock_contended;
    migrations_started += other.migrations_started;
    migrations_completed += other.migrations_completed;
    migrations_force_finished += other.migrations_force_finished;
    migrated_entries += other.migrated_entries;
    migration_buckets_total += other.migration_buckets_total;
    migration_buckets_done += other.migration_buckets_done;
    if (other.migration_max_stall_ns > migration_max_stall_ns) {
      migration_max_stall_ns = other.migration_max_stall_ns;
    }
    hugepage_bytes += other.hugepage_bytes;
    for (std::size_t i = 0; i < kPathHistogramBuckets; ++i) {
      path_length_hist[i] += other.path_length_hist[i];
    }
    lookup_ns.Merge(other.lookup_ns);
    insert_ns.Merge(other.insert_ns);
    expansion_pause_ns.Merge(other.expansion_pause_ns);
    batch_hits.Merge(other.batch_hits);
    migration_stall_ns.Merge(other.migration_stall_ns);
  }
};

class MapStats {
 public:
  // 1 op in 64 pays the two clock reads when latency profiling is on.
  static constexpr int kSampleLog2 = 6;

  void RecordInsert() noexcept { inserts_.Increment(); }
  void RecordInsertFailure() noexcept { insert_failures_.Increment(); }
  void RecordDuplicateInsert() noexcept { duplicate_inserts_.Increment(); }
  void RecordLookup(bool hit) noexcept {
    lookups_.Increment();
    if (hit) {
      // Release pairs with Read()'s acquire: a snapshot that counts this hit
      // also counts the lookup increment above (hits <= lookups invariant).
      lookup_hits_.IncrementRelease();
    }
  }
  void RecordErase() noexcept { erases_.Increment(); }
  void RecordDisplacements(std::int64_t n) noexcept { displacements_.Add(n); }
  void RecordPathSearch() noexcept { path_searches_.Increment(); }
  void RecordPathInvalidation() noexcept {
    // Release for the invalidations <= searches invariant; see RecordLookup.
    path_invalidations_.IncrementRelease();
  }
  void RecordReadRetry() noexcept { read_retries_.Increment(); }
  void RecordExpansion() noexcept { expansions_.Increment(); }
  void RecordPathLength(std::size_t len) noexcept {
    if (len >= kPathHistogramBuckets) {
      len = kPathHistogramBuckets - 1;
    }
    path_length_hist_[len].fetch_add(1, std::memory_order_relaxed);
  }

  // ----- Latency profiling ---------------------------------------------------

  // Runtime switch for the sampled op timers (the counters above are always
  // on). Off: the timer check is one relaxed load + branch per op.
  void SetLatencyProfiling(bool enabled) noexcept {
    profile_latency_.store(enabled, std::memory_order_relaxed);
  }
  bool LatencyProfilingEnabled() const noexcept {
    return profile_latency_.load(std::memory_order_relaxed);
  }

  // Returns a start timestamp for the 1-in-64 sampled ops (never 0), or 0
  // meaning "don't time this op". Pass the result to the matching Finish.
  // Lookup and insert use separate gate counters: a shared counter aliases
  // against alternating insert/lookup workloads (even period, period-2
  // pattern), starving one histogram completely.
  std::uint64_t MaybeStartLookupTimer() noexcept {
    return MaybeStartTimer<obs::SampleGate<kSampleLog2, 0>>();
  }
  std::uint64_t MaybeStartInsertTimer() noexcept {
    return MaybeStartTimer<obs::SampleGate<kSampleLog2, 1>>();
  }
  void FinishLookupTimer(std::uint64_t start) noexcept {
    if (start != 0) {
      lookup_ns_.Record(NowNanos() - start);
    }
  }
  void FinishInsertTimer(std::uint64_t start) noexcept {
    if (start != 0) {
      insert_ns_.Record(NowNanos() - start);
    }
  }

  // Rare events: recorded unconditionally (no sampling).
  void RecordExpansionPauseNanos(std::uint64_t nanos) noexcept {
    expansion_pause_ns_.Record(nanos);
  }
  void RecordBatchHits(std::size_t hits) noexcept { batch_hits_.Record(hits); }

  // ----- Incremental-expansion migration -------------------------------------

  void RecordMigrationStarted(std::size_t buckets) noexcept {
    migrations_started_.Increment();
    migration_buckets_total_.store(static_cast<std::int64_t>(buckets),
                                   std::memory_order_relaxed);
    migration_buckets_done_.store(0, std::memory_order_relaxed);
  }
  void RecordMigrationBucketDone() noexcept {
    migration_buckets_done_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMigrationCompleted() noexcept { migrations_completed_.Increment(); }
  void RecordMigrationForceFinished() noexcept { migrations_force_finished_.Increment(); }
  void RecordMigratedEntry() noexcept { migrated_entries_.Increment(); }
  // Time a writer spent doing migration work inside its own critical section
  // (piggyback moves) or as Expand-time help-draining — the incremental
  // replacement for the stop-the-world pause, so the max is tracked too.
  void RecordMigrationStall(std::uint64_t nanos) noexcept {
    migration_stall_ns_.Record(nanos);
    std::int64_t observed = migration_max_stall_ns_.load(std::memory_order_relaxed);
    while (observed < static_cast<std::int64_t>(nanos) &&
           !migration_max_stall_ns_.compare_exchange_weak(
               observed, static_cast<std::int64_t>(nanos), std::memory_order_relaxed)) {
    }
  }

  // Gauge: huge-page-backed bytes of the live core(s). Maps set this at
  // construction and after every expansion (the retired core's backing is
  // gone once readers drain, so the live total simply replaces the old one).
  void SetHugepageBytes(std::size_t bytes) noexcept {
    hugepage_bytes_.store(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
  }

  // The stripe-lock table increments this on every acquisition that lost its
  // initial try-lock (see LockStripes::SetContentionCounter).
  PerThreadCounter* ContentionCounter() noexcept { return &lock_contended_; }

  MapStatsSnapshot Read() const noexcept {
    MapStatsSnapshot s;
    s.inserts = inserts_.Sum();
    s.insert_failures = insert_failures_.Sum();
    s.duplicate_inserts = duplicate_inserts_.Sum();
    // Dependent counter first, acquire-ordered: any hit it observes had its
    // lookups_ increment published beforehand, so hits <= lookups holds.
    s.lookup_hits = lookup_hits_.SumAcquire();
    s.lookups = lookups_.Sum();
    s.erases = erases_.Sum();
    s.displacements = displacements_.Sum();
    s.path_invalidations = path_invalidations_.SumAcquire();
    s.path_searches = path_searches_.Sum();
    s.read_retries = read_retries_.Sum();
    s.expansions = expansions_.Sum();
    s.lock_contended = lock_contended_.Sum();
    s.migrations_started = migrations_started_.Sum();
    s.migrations_completed = migrations_completed_.Sum();
    s.migrations_force_finished = migrations_force_finished_.Sum();
    s.migrated_entries = migrated_entries_.Sum();
    s.migration_buckets_total = migration_buckets_total_.load(std::memory_order_relaxed);
    s.migration_buckets_done = migration_buckets_done_.load(std::memory_order_relaxed);
    s.migration_max_stall_ns = migration_max_stall_ns_.load(std::memory_order_relaxed);
    s.hugepage_bytes = hugepage_bytes_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kPathHistogramBuckets; ++i) {
      s.path_length_hist[i] = path_length_hist_[i].load(std::memory_order_relaxed);
    }
    s.lookup_ns = lookup_ns_.Snapshot();
    s.insert_ns = insert_ns_.Snapshot();
    s.expansion_pause_ns = expansion_pause_ns_.Snapshot();
    s.batch_hits = batch_hits_.Snapshot();
    s.migration_stall_ns = migration_stall_ns_.Snapshot();
    return s;
  }

  // Not atomic with concurrent recorders (a racing op may survive the wipe
  // or straddle it); callers wanting exact zeroes quiesce writers first.
  void Reset() noexcept {
    inserts_.Reset();
    insert_failures_.Reset();
    duplicate_inserts_.Reset();
    lookups_.Reset();
    lookup_hits_.Reset();
    erases_.Reset();
    displacements_.Reset();
    path_searches_.Reset();
    path_invalidations_.Reset();
    read_retries_.Reset();
    expansions_.Reset();
    lock_contended_.Reset();
    migrations_started_.Reset();
    migrations_completed_.Reset();
    migrations_force_finished_.Reset();
    migrated_entries_.Reset();
    migration_buckets_total_.store(0, std::memory_order_relaxed);
    migration_buckets_done_.store(0, std::memory_order_relaxed);
    migration_max_stall_ns_.store(0, std::memory_order_relaxed);
    for (auto& h : path_length_hist_) {
      h.store(0, std::memory_order_relaxed);
    }
    lookup_ns_.Reset();
    insert_ns_.Reset();
    expansion_pause_ns_.Reset();
    batch_hits_.Reset();
    migration_stall_ns_.Reset();
  }

 private:
  template <typename Gate>
  std::uint64_t MaybeStartTimer() noexcept {
    if (!profile_latency_.load(std::memory_order_relaxed)) {
      return 0;
    }
    if (!Gate::Tick()) {
      return 0;
    }
    const std::uint64_t t = NowNanos();
    return t == 0 ? 1 : t;
  }

  PerThreadCounter inserts_;
  PerThreadCounter insert_failures_;
  PerThreadCounter duplicate_inserts_;
  PerThreadCounter lookups_;
  PerThreadCounter lookup_hits_;
  PerThreadCounter erases_;
  PerThreadCounter displacements_;
  PerThreadCounter path_searches_;
  PerThreadCounter path_invalidations_;
  PerThreadCounter read_retries_;
  PerThreadCounter expansions_;
  PerThreadCounter lock_contended_;
  PerThreadCounter migrations_started_;
  PerThreadCounter migrations_completed_;
  PerThreadCounter migrations_force_finished_;
  PerThreadCounter migrated_entries_;
  // Gauges for the (single) open migration window; plain atomics, not
  // per-thread: written by one starter / few markers, read by Stats().
  std::atomic<std::int64_t> migration_buckets_total_{0};
  std::atomic<std::int64_t> migration_buckets_done_{0};
  std::atomic<std::int64_t> migration_max_stall_ns_{0};
  std::atomic<std::int64_t> hugepage_bytes_{0};
  std::array<std::atomic<std::int64_t>, kPathHistogramBuckets> path_length_hist_{};

  std::atomic<bool> profile_latency_{true};
  obs::Histogram lookup_ns_;
  obs::Histogram insert_ns_;
  obs::Histogram expansion_pause_ns_;
  obs::Histogram batch_hits_;
  obs::Histogram migration_stall_ns_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_STATS_H_
