// Binary snapshot save/load for CuckooMap (trivially copyable key/value
// types): a small versioned header followed by raw (key, value) records.
// Useful for warm restarts of caches and for shipping prebuilt tables into
// benchmarks. Loading inserts through the public API, so snapshots are
// portable across table sizes, associativities, and hash-function choices.
//
// Format v2 ("CKSNAP2"): the header carries an explicit format version and a
// flags word so this helper and the richer src/persist/ snapshot machinery
// can never silently misread each other's files — every durability file in
// this repo now starts with a distinct magic plus a version field. Records
// are raw host-endian structs; the files are machine-local warm-start
// artifacts, not interchange formats (see docs/persistence.md).
#ifndef SRC_CUCKOO_SERIALIZE_H_
#define SRC_CUCKOO_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {

namespace internal {

struct SnapshotHeader {
  char magic[8];           // "CKSNAP2\0"
  std::uint32_t version;   // format version; readers reject what they don't know
  std::uint32_t flags;     // reserved, must be zero in v2
  std::uint32_t key_size;  // sizeof(K) — sanity-checked on load
  std::uint32_t value_size;
  std::uint64_t count;
};

inline constexpr char kSnapshotMagic[8] = {'C', 'K', 'S', 'N', 'A', 'P', '2', '\0'};
inline constexpr std::uint32_t kSnapshotVersion = 2;

}  // namespace internal

// Write every entry of `map` to `os`. Takes the exclusive view for a
// consistent snapshot (concurrent operations block for the duration).
// Returns false on stream failure.
template <typename K, typename V, typename Hash, typename KeyEqual, int B>
bool SaveSnapshot(CuckooMap<K, V, Hash, KeyEqual, B>& map, std::ostream& os) {
  auto view = map.Lock();
  internal::SnapshotHeader header{};
  std::memcpy(header.magic, internal::kSnapshotMagic, sizeof(header.magic));
  header.version = internal::kSnapshotVersion;
  header.flags = 0;
  header.key_size = sizeof(K);
  header.value_size = sizeof(V);
  header.count = view.Size();
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (auto [key, value] : view) {
    os.write(reinterpret_cast<const char*>(&key), sizeof(K));
    os.write(reinterpret_cast<const char*>(&value), sizeof(V));
  }
  return static_cast<bool>(os);
}

// Load a snapshot into `map` via Upsert (pre-existing keys are overwritten).
// Returns the number of records loaded, or -1 on a malformed stream, a
// key/value-size mismatch, an unknown format version, or a header count that
// cannot fit in the remaining stream (a forged/corrupt count must not drive
// Reserve into a huge allocation before a single record is read).
template <typename K, typename V, typename Hash, typename KeyEqual, int B>
std::int64_t LoadSnapshot(CuckooMap<K, V, Hash, KeyEqual, B>& map, std::istream& is) {
  internal::SnapshotHeader header{};
  is.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!is || std::memcmp(header.magic, internal::kSnapshotMagic, sizeof(header.magic)) != 0 ||
      header.version != internal::kSnapshotVersion || header.flags != 0 ||
      header.key_size != sizeof(K) || header.value_size != sizeof(V)) {
    return -1;
  }
  // Bound `count` by the bytes actually present: a corrupt or malicious
  // header must fail cleanly instead of reserving multi-GB tables.
  constexpr std::uint64_t kRecordSize = sizeof(K) + sizeof(V);
  const std::istream::pos_type here = is.tellg();
  if (here != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (!is || end < here ||
        header.count > static_cast<std::uint64_t>(end - here) / kRecordSize) {
      return -1;
    }
    map.Reserve(map.Size() + header.count);
  }
  // Non-seekable streams cannot validate `count` up front; skip the bulk
  // Reserve and let auto-expansion grow the table as records actually arrive.
  std::int64_t loaded = 0;
  for (std::uint64_t i = 0; i < header.count; ++i) {
    K key;
    V value;
    is.read(reinterpret_cast<char*>(&key), sizeof(K));
    is.read(reinterpret_cast<char*>(&value), sizeof(V));
    if (!is) {
      return -1;  // truncated record
    }
    if (map.Upsert(key, value) == InsertResult::kTableFull) {
      return -1;
    }
    ++loaded;
  }
  return loaded;
}

}  // namespace cuckoo

#endif  // SRC_CUCKOO_SERIALIZE_H_
