// Binary snapshot save/load for CuckooMap (trivially copyable key/value
// types): a small versioned header followed by raw (key, value) records.
// Useful for warm restarts of caches and for shipping prebuilt tables into
// benchmarks. Loading inserts through the public API, so snapshots are
// portable across table sizes, associativities, and hash-function choices.
#ifndef SRC_CUCKOO_SERIALIZE_H_
#define SRC_CUCKOO_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>

#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {

namespace internal {

struct SnapshotHeader {
  char magic[8];           // "CKSNAP1\0"
  std::uint32_t key_size;  // sizeof(K) — sanity-checked on load
  std::uint32_t value_size;
  std::uint64_t count;
};

inline constexpr char kSnapshotMagic[8] = {'C', 'K', 'S', 'N', 'A', 'P', '1', '\0'};

}  // namespace internal

// Write every entry of `map` to `os`. Takes the exclusive view for a
// consistent snapshot (concurrent operations block for the duration).
// Returns false on stream failure.
template <typename K, typename V, typename Hash, typename KeyEqual, int B>
bool SaveSnapshot(CuckooMap<K, V, Hash, KeyEqual, B>& map, std::ostream& os) {
  auto view = map.Lock();
  internal::SnapshotHeader header{};
  std::memcpy(header.magic, internal::kSnapshotMagic, sizeof(header.magic));
  header.key_size = sizeof(K);
  header.value_size = sizeof(V);
  header.count = view.Size();
  os.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (auto [key, value] : view) {
    os.write(reinterpret_cast<const char*>(&key), sizeof(K));
    os.write(reinterpret_cast<const char*>(&value), sizeof(V));
  }
  return static_cast<bool>(os);
}

// Load a snapshot into `map` via Upsert (pre-existing keys are overwritten).
// Returns the number of records loaded, or -1 on a malformed stream or a
// key/value-size mismatch.
template <typename K, typename V, typename Hash, typename KeyEqual, int B>
std::int64_t LoadSnapshot(CuckooMap<K, V, Hash, KeyEqual, B>& map, std::istream& is) {
  internal::SnapshotHeader header{};
  is.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!is || std::memcmp(header.magic, internal::kSnapshotMagic, sizeof(header.magic)) != 0 ||
      header.key_size != sizeof(K) || header.value_size != sizeof(V)) {
    return -1;
  }
  map.Reserve(map.Size() + header.count);
  std::int64_t loaded = 0;
  for (std::uint64_t i = 0; i < header.count; ++i) {
    K key;
    V value;
    is.read(reinterpret_cast<char*>(&key), sizeof(K));
    is.read(reinterpret_cast<char*>(&value), sizeof(V));
    if (!is) {
      return -1;  // truncated record
    }
    if (map.Upsert(key, value) == InsertResult::kTableFull) {
      return -1;
    }
    ++loaded;
  }
  return loaded;
}

}  // namespace cuckoo

#endif  // SRC_CUCKOO_SERIALIZE_H_
