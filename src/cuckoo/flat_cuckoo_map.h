// FlatCuckooMap — the optimistic concurrent cuckoo table of MemC3 [8], plus
// the paper's incremental optimizations exposed as knobs so the §6.1 factor
// analysis can be reproduced variant by variant:
//
//   knob                        paper label
//   ------------------------    --------------------------------------------
//   (all knobs off, kDfs)       "cuckoo" — multi-reader/single-writer MemC3
//   lock_after_discovery        "+lock later" (Algorithm 2 vs Algorithm 1)
//   search_mode = kBfs          "+BFS"
//   prefetch                    "+prefetch"
//   GlobalLock = glibc elision  "+TSX-glibc"
//   GlobalLock = tuned elision  "+TSX*"
//
// The table is fixed-size (like MemC3; inserts return kTableFull when no path
// exists), B-way set-associative, and uses striped version counters so reads
// never take the global lock. All writes serialize through one GlobalLock —
// the template parameter that the elision wrappers plug into.
#ifndef SRC_CUCKOO_FLAT_CUCKOO_MAP_H_
#define SRC_CUCKOO_FLAT_CUCKOO_MAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "src/common/cpu.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/common/per_thread_counter.h"
#include "src/common/random.h"
#include "src/common/spinlock.h"
#include "src/common/striped_locks.h"
#include "src/common/test_points.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/path_search.h"
#include "src/cuckoo/simd_probe.h"
#include "src/cuckoo/stats.h"
#include "src/cuckoo/table_core.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

// No-op lock for the single-thread "all locks disabled" rows of Figure 5a.
// Still a capability so ScopedLock<NullLock> instantiations type-check under
// thread-safety analysis; "acquiring" it costs nothing.
struct CAPABILITY("null_lock") NullLock {
  void lock() noexcept ACQUIRE() {}
  void unlock() noexcept RELEASE() {}
  bool try_lock() noexcept TRY_ACQUIRE(true) { return true; }
  bool is_locked() const noexcept { return false; }
};

struct FlatOptions {
  std::size_t bucket_count_log2 = 16;
  // Version-counter stripes for optimistic reads (MemC3 used 1K-8K entries).
  std::size_t version_stripe_count = LockStripes::kDefaultStripeCount;
  std::size_t max_search_slots = 2000;  // M, for BFS
  int dfs_max_path_len = 250;           // MemC3's cap
  SearchMode search_mode = SearchMode::kDfs;
  // false = Algorithm 1 (search inside the critical section);
  // true  = Algorithm 2 ("lock after discovering a cuckoo path").
  bool lock_after_discovery = false;
  bool prefetch = false;
  // Request 2 MB huge-page backing for the table arrays (advisory; large
  // cores only — see src/common/page_alloc.h).
  bool hugepages = false;
};

template <typename K, typename V, typename GlobalLock = SpinLock,
          typename Hash = DefaultHash<K>, typename KeyEqual = std::equal_to<K>, int B = 4>
class FlatCuckooMap {
 public:
  using KeyType = K;
  using ValueType = V;
  using Core = TableCore<K, V, B>;
  static constexpr int kSlotsPerBucket = B;

  explicit FlatCuckooMap(FlatOptions opts = FlatOptions{}, Hash hasher = Hash{},
                         KeyEqual eq = KeyEqual{})
      : opts_(opts),
        hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        versions_(opts.version_stripe_count),
        core_(opts.bucket_count_log2, opts.hugepages) {
    stats_.SetHugepageBytes(core_.hugepage_bytes());
  }

  FlatCuckooMap(const FlatCuckooMap&) = delete;
  FlatCuckooMap& operator=(const FlatCuckooMap&) = delete;

  // ----- Lookup (optimistic, never takes the global lock) -------------------

  bool Find(const K& key, V* out) const {
    const std::uint64_t t0 = stats_.MaybeStartLookupTimer();
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    const std::size_t s1 = versions_.StripeFor(b1);
    const std::size_t s2 = versions_.StripeFor(b2);
    for (;;) {
      const std::uint64_t v1 = versions_.Stripe(s1).AwaitVersion();
      const std::uint64_t v2 = (s2 == s1) ? v1 : versions_.Stripe(s2).AwaitVersion();
      CUCKOO_TEST_POINT(TestPoint::kReadAfterVersionSnapshot);

      bool found = false;
      V value{};
      // One vectorized probe answers both buckets: candidate bits [0, B) are
      // b1's tag matches, [B, 2B) are b2's, walked in probe order. The tag
      // snapshots are tear-tolerant like every other load in this window —
      // the version validation below rejects any torn read.
      std::uint32_t cand = simd::MatchTagMask2<B>(core_.LoadTagsVector(b1),
                                                  core_.LoadTagsVector(b2), h.tag);
      while (cand != 0) {
        const int bit = simd::NextCandidate(&cand);
        const std::size_t bucket = bit < B ? b1 : b2;
        const int s = bit < B ? bit : bit - B;
        if (eq_(core_.LoadKey(bucket, s), key)) {
          value = core_.LoadValue(bucket, s);
          found = true;
          break;
        }
      }

      CUCKOO_TEST_POINT(TestPoint::kReadBeforeValidate);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (versions_.Stripe(s1).LoadRaw() == v1 && versions_.Stripe(s2).LoadRaw() == v2) {
        stats_.RecordLookup(found);
        stats_.FinishLookupTimer(t0);
        if (found) {
          *out = value;
        }
        return found;
      }
      stats_.RecordReadRetry();
    }
  }

  bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  // ----- Insert --------------------------------------------------------------

  InsertResult Insert(const K& key, const V& value) {
    const std::uint64_t t0 = stats_.MaybeStartInsertTimer();
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    const InsertResult r = opts_.lock_after_discovery
                               ? InsertLockLater(h, b1, b2, key, value)
                               : InsertLockFirst(h, b1, b2, key, value);
    stats_.FinishInsertTimer(t0);
    return r;
  }

  bool Update(const K& key, const V& value) {
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    ScopedLock<GlobalLock> g(lock_);
    std::size_t bucket;
    int slot;
    if (!FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
      return false;
    }
    BumpGuard bump(versions_, bucket);
    core_.WriteValue(bucket, slot, value);
    return true;
  }

  // Insert or overwrite: kOk if inserted, kKeyExists if overwritten,
  // kTableFull on failure.
  InsertResult Upsert(const K& key, const V& value) {
    if (Update(key, value)) {
      return InsertResult::kKeyExists;
    }
    for (;;) {
      InsertResult r = Insert(key, value);
      if (r != InsertResult::kKeyExists) {
        return r;
      }
      // Raced with another inserter of the same key; overwrite its value.
      if (Update(key, value)) {
        return InsertResult::kKeyExists;
      }
      // ... unless an eraser removed it again: retry the insert.
    }
  }

  bool Erase(const K& key) {
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    ScopedLock<GlobalLock> g(lock_);
    std::size_t bucket;
    int slot;
    if (!FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
      return false;
    }
    BumpGuard bump(versions_, bucket);
    core_.ClearSlot(bucket, slot);
    size_.Decrement();
    stats_.RecordErase();
    return true;
  }

  // Remove all items (capacity retained). Serializes against writers via the
  // global lock; each bucket's version bump makes optimistic readers retry.
  void Clear() {
    ScopedLock<GlobalLock> g(lock_);
    for (std::size_t bucket = 0; bucket < core_.bucket_count(); ++bucket) {
      BumpGuard bump(versions_, bucket);
      for (int s = 0; s < B; ++s) {
        if (core_.Tag(bucket, s) != 0) {
          core_.ClearSlot(bucket, s);
        }
      }
    }
    size_.Reset();
  }

  // ----- Capacity / introspection --------------------------------------------

  std::size_t Size() const noexcept {
    std::int64_t n = size_.Sum();
    return n < 0 ? 0 : static_cast<std::size_t>(n);
  }
  std::size_t SlotCount() const noexcept { return core_.slot_count(); }
  double LoadFactor() const noexcept {
    return static_cast<double>(Size()) / static_cast<double>(SlotCount());
  }
  std::size_t HeapBytes() const noexcept {
    return core_.HeapBytes() + versions_.stripe_count() * sizeof(PaddedVersionLock);
  }

  MapStatsSnapshot Stats() const { return stats_.Read(); }
  void ResetStats() { stats_.Reset(); }
  // Toggle the sampled lookup/insert latency timers (counters stay on).
  void SetLatencyProfiling(bool enabled) { stats_.SetLatencyProfiling(enabled); }
  const FlatOptions& options() const noexcept { return opts_; }

  // The global write lock, exposed so benches can read elision statistics off
  // an ElidedLock instantiation.
  GlobalLock& global_lock() noexcept { return lock_; }
  const GlobalLock& global_lock() const noexcept { return lock_; }

 private:
  // Bumps a bucket's version stripe around a write so optimistic readers
  // retry. The writer already holds the global lock, so the stripe CAS is
  // uncontended. Ctor/dtor bodies are excluded from thread-safety analysis:
  // the stripe is resolved through a member alias of the constructor
  // parameter, which the analysis cannot connect to the scoped capability.
  class SCOPED_CAPABILITY BumpGuard {
   public:
    BumpGuard(LockStripes& stripes, std::size_t bucket) noexcept
        ACQUIRE(stripes) NO_THREAD_SAFETY_ANALYSIS
        : stripe_(stripes.Stripe(stripes.StripeFor(bucket))) {
      stripe_.Lock();
    }
    ~BumpGuard() RELEASE() NO_THREAD_SAFETY_ANALYSIS { stripe_.Unlock(); }
    BumpGuard(const BumpGuard&) = delete;
    BumpGuard& operator=(const BumpGuard&) = delete;

   private:
    VersionLock& stripe_;
  };

  bool FindSlotExclusive(std::size_t b1, std::size_t b2, std::uint8_t tag, const K& key,
                         std::size_t* bucket, int* slot) const REQUIRES(lock_) {
    std::uint32_t cand =
        simd::MatchTagMask2<B>(core_.LoadTagsVector(b1), core_.LoadTagsVector(b2), tag);
    while (cand != 0) {
      const int bit = simd::NextCandidate(&cand);
      const std::size_t b = bit < B ? b1 : b2;
      const int s = bit < B ? bit : bit - B;
      if (eq_(core_.KeyRef(b, s), key)) {
        *bucket = b;
        *slot = s;
        return true;
      }
    }
    return false;
  }

  // Try to place into an empty slot of b1/b2; caller holds the global lock.
  bool AddIfRoom(std::size_t b1, std::size_t b2, std::uint8_t tag, const K& key,
                 const V& value) REQUIRES(lock_) {
    for (std::size_t b : {b1, b2}) {
      int s = core_.FindEmptySlot(b);
      if (s >= 0) {
        BumpGuard bump(versions_, b);
        core_.WriteSlot(b, s, tag, key, value);
        return true;
      }
    }
    return false;
  }

  bool SearchPath(std::size_t b1, std::size_t b2, CuckooPath* path) {
    stats_.RecordPathSearch();
    if (opts_.search_mode == SearchMode::kBfs) {
      return BfsSearch(core_, b1, b2, opts_.max_search_slots, opts_.prefetch, path);
    }
    return DfsSearch(core_, b1, b2, opts_.dfs_max_path_len, ThreadRng(), path);
  }

  // Execute `path` while holding the global lock, validating every hop before
  // moving it. Validation is needed even in lock-first mode: a random-walk
  // (or cyclic BFS) path can reference the same slot twice, and an earlier
  // executed hop then invalidates a later one. Hops executed before a failed
  // validation are individually correct displacements, so the table stays
  // consistent and the caller simply searches again.
  bool ExecutePathLocked(const CuckooPath& path) REQUIRES(lock_) {
    if (path.hops.empty()) {
      // A path that was never found moves nothing; without this guard the
      // countdown below would start at SIZE_MAX and walk out of bounds.
      return false;
    }
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      const PathHop& from = path.hops[i];
      const PathHop& to = path.hops[i + 1];
      if (from.tag == 0 || core_.Tag(from.bucket, from.slot) != from.tag ||
          core_.Tag(to.bucket, to.slot) != 0) {
        return false;
      }
      BumpGuard bump_to(versions_, to.bucket);
      BumpGuard bump_from(versions_, from.bucket);
      core_.MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      stats_.RecordDisplacements(1);
    }
    return true;
  }

  // Algorithm 1: the whole Insert (duplicate check, path search, execution)
  // is one critical section.
  InsertResult InsertLockFirst(const HashedKey& h, std::size_t b1, std::size_t b2,
                               const K& key, const V& value) {
    ScopedLock<GlobalLock> g(lock_);
    std::size_t bucket;
    int slot;
    if (FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
      stats_.RecordDuplicateInsert();
      return InsertResult::kKeyExists;
    }
    if (AddIfRoom(b1, b2, h.tag, key, value)) {
      size_.Increment();
      stats_.RecordInsert();
      stats_.RecordPathLength(0);
      return InsertResult::kOk;
    }
    std::size_t executed_path_len = 0;
    for (;;) {
      CuckooPath path;
      if (!SearchPath(b1, b2, &path)) {
        stats_.RecordInsertFailure();
        return InsertResult::kTableFull;
      }
      if (!ExecutePathLocked(path)) {
        // Only possible via a self-overlapping path (no concurrent writers
        // under the global lock); the partial execution perturbed the table,
        // so the next search finds a different path.
        stats_.RecordPathInvalidation();
        continue;
      }
      const PathHop& hole = path.hops.front();
      if (core_.Tag(hole.bucket, hole.slot) != 0) {
        stats_.RecordPathInvalidation();
        continue;
      }
      executed_path_len += path.Displacements();
      BumpGuard bump(versions_, hole.bucket);
      core_.WriteSlot(hole.bucket, hole.slot, h.tag, key, value);
      size_.Increment();
      stats_.RecordInsert();
      stats_.RecordPathLength(executed_path_len);
      return InsertResult::kOk;
    }
  }

  // Algorithm 2: search for the cuckoo path outside the critical section, then
  // validate-and-execute under the lock, restarting if the path went stale.
  InsertResult InsertLockLater(const HashedKey& h, std::size_t b1, std::size_t b2,
                               const K& key, const V& value) {
    std::size_t executed_path_len = 0;
    for (;;) {
      // Unlocked availability probe (Algorithm 2 lines 3-8).
      if (core_.FindEmptySlot(b1) >= 0 || core_.FindEmptySlot(b2) >= 0) {
        ScopedLock<GlobalLock> g(lock_);
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
          stats_.RecordDuplicateInsert();
          return InsertResult::kKeyExists;
        }
        if (AddIfRoom(b1, b2, h.tag, key, value)) {
          size_.Increment();
          stats_.RecordInsert();
          stats_.RecordPathLength(executed_path_len);
          return InsertResult::kOk;
        }
        // Probe raced with another writer filling the bucket; fall through.
      }

      CuckooPath path;
      if (!SearchPath(b1, b2, &path)) {
        // Confirm fullness (and absence) under the lock before giving up.
        ScopedLock<GlobalLock> g(lock_);
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
          stats_.RecordDuplicateInsert();
          return InsertResult::kKeyExists;
        }
        if (AddIfRoom(b1, b2, h.tag, key, value)) {
          size_.Increment();
          stats_.RecordInsert();
          stats_.RecordPathLength(executed_path_len);
          return InsertResult::kOk;
        }
        stats_.RecordInsertFailure();
        return InsertResult::kTableFull;
      }

      // Window between discovery and taking the lock (Algorithm 2): the path
      // may be invalidated by writers that slip in here.
      CUCKOO_TEST_POINT(TestPoint::kInsertAfterPathDiscovery);
      {
        ScopedLock<GlobalLock> g(lock_);
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
          stats_.RecordDuplicateInsert();
          return InsertResult::kKeyExists;
        }
        if (!ExecutePathLocked(path)) {
          stats_.RecordPathInvalidation();
          continue;  // rediscover (Algorithm 2's while loop)
        }
        const PathHop& hole = path.hops.front();
        if (path.hops.size() == 1 && core_.Tag(hole.bucket, hole.slot) != 0) {
          // Zero-hop path whose free slot was stolen before we locked.
          stats_.RecordPathInvalidation();
          continue;
        }
        executed_path_len += path.Displacements();
        BumpGuard bump(versions_, hole.bucket);
        core_.WriteSlot(hole.bucket, hole.slot, h.tag, key, value);
        size_.Increment();
        stats_.RecordInsert();
        stats_.RecordPathLength(executed_path_len);
        return InsertResult::kOk;
      }
    }
  }

  static Xorshift128Plus& ThreadRng() {
    thread_local Xorshift128Plus rng(Mix64(0xf1a7ull + CurrentThreadId()));
    return rng;
  }

  FlatOptions opts_;
  Hash hasher_;
  KeyEqual eq_;
  mutable LockStripes versions_;
  Core core_;
  mutable GlobalLock lock_;
  PerThreadCounter size_;
  mutable MapStats stats_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_FLAT_CUCKOO_MAP_H_
