// CuckooMap — the paper's "cuckoo+" table (§4): a multi-reader/multi-writer
// B-way set-associative cuckoo hash table with
//
//   * optimistic lock-free reads validated by striped version counters,
//   * BFS cuckoo-path discovery performed entirely outside critical sections,
//   * per-displacement validate-and-execute under fine-grained bucket-pair
//     locks (at most L_BFS = 5 short critical sections per insert at the
//     default M = 2000, B = 8),
//   * striped spinlocks whose high-order bit doubles as the lock (§4.4),
//   * optional whole-table expansion (the §7 libcuckoo extension), and
//   * a LockedView exclusive iteration facility (also §7).
//
// Thread safety: all public member functions are safe to call concurrently
// except construction, destruction, and Clear()/Rehash() racing with reads
// that began before the call (see the retired-core note below).
#ifndef SRC_CUCKOO_CUCKOO_MAP_H_
#define SRC_CUCKOO_CUCKOO_MAP_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/debug_checks.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/common/random.h"
#include "src/common/striped_locks.h"
#include "src/common/test_points.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/path_search.h"
#include "src/cuckoo/simd_probe.h"
#include "src/cuckoo/stats.h"
#include "src/cuckoo/table_core.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>, int B = 8>
class CuckooMap {
 public:
  using KeyType = K;
  using ValueType = V;
  using Core = TableCore<K, V, B>;
  static constexpr int kSlotsPerBucket = B;

  struct Options {
    // log2 of the initial bucket count; slots = buckets * B.
    std::size_t initial_bucket_count_log2 = 16;
    // Lock-stripe table size (the paper's default is 2048).
    std::size_t stripe_count = LockStripes::kDefaultStripeCount;
    // M: maximum slots examined per path search before declaring "too full".
    std::size_t max_search_slots = 2000;
    // Per-walk hop cap for the DFS ablation mode (MemC3 used 250).
    int dfs_max_path_len = 250;
    SearchMode search_mode = SearchMode::kBfs;
    ReadMode read_mode = ReadMode::kOptimistic;
    bool prefetch = true;
    // Grow (×2 rehash) instead of returning kTableFull when a path search
    // fails. MemC3/the paper's eval table is fixed-size; libcuckoo grows.
    bool auto_expand = true;
    // Request 2 MB huge-page backing for the table arrays (advisory; large
    // cores only — see src/common/page_alloc.h).
    bool hugepages = false;
  };

  explicit CuckooMap(Options opts = Options{}, Hash hasher = Hash{}, KeyEqual eq = KeyEqual{})
      : opts_(opts),
        hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        stripes_(opts.stripe_count),
        core_(new Core(opts.initial_bucket_count_log2, opts.hugepages)) {
    stripes_.SetContentionCounter(stats_.ContentionCounter());
    stats_.SetHugepageBytes(core_.load(std::memory_order_relaxed)->hugepage_bytes());
  }

  CuckooMap(const CuckooMap&) = delete;
  CuckooMap& operator=(const CuckooMap&) = delete;

  ~CuckooMap() { delete core_.load(std::memory_order_relaxed); }

  // ----- Lookup ------------------------------------------------------------

  // Copy the value for `key` into *out. Returns false if absent.
  bool Find(const K& key, V* out) const {
    const std::uint64_t t0 = stats_.MaybeStartLookupTimer();
    const HashedKey h = HashedKey::From(hasher_(key));
    bool hit = (opts_.read_mode == ReadMode::kOptimistic) ? FindOptimistic(h, key, out)
                                                          : FindLocked(h, key, out);
    stats_.RecordLookup(hit);
    stats_.FinishLookupTimer(t0);
    return hit;
  }

  bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  // Batched lookup with software pipelining (MemC3-style): hashes and bucket
  // prefetches for key i+D are issued while key i is probed, hiding DRAM
  // latency on out-of-cache tables. Writes per-key results into values[] and
  // found[]; returns the hit count. Concurrency-safe like Find.
  std::size_t FindBatch(const K* keys, std::size_t count, V* values, bool* found) const {
    // Three-stage pipeline, retuned for the vector probe kernel. D ops ahead,
    // hash and pull only the two tag lines; P ops ahead (when the tag lines
    // have likely arrived), racily movemask them and prefetch key/value lines
    // for candidate slots only — most misses match no tag, so this skips
    // their bucket lines entirely instead of blindly dragging in four lines
    // per key. The peek is a pure prefetch hint: it may race with writers or
    // an expansion swap (it recomputes buckets against the core it loads, so
    // indices stay in range), and the head-of-pipe probe re-reads everything
    // under version validation.
    constexpr std::size_t kDepth = 8;  // hash + tag-line prefetch distance
    constexpr std::size_t kPeek = 4;   // candidate key/value prefetch distance
    HashedKey ring[kDepth];

    auto stage = [&](std::size_t i) {
      ring[i % kDepth] = HashedKey::From(hasher_(keys[i]));
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = ring[i % kDepth].Bucket1(core->mask);
      core->PrefetchTags(b1);
      core->PrefetchTags(core->AltBucket(b1, ring[i % kDepth].tag));
    };
    auto peek = [&](std::size_t i) {
      const HashedKey& h = ring[i % kDepth];
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      std::uint32_t cand =
          simd::MatchTagMask2<B>(core->LoadTagsVector(b1), core->LoadTagsVector(b2), h.tag);
      while (cand != 0) {
        const int bit = simd::NextCandidate(&cand);
        core->PrefetchCandidate(bit < B ? b1 : b2, bit < B ? bit : bit - B);
      }
    };

    const std::size_t lead = count < kDepth ? count : kDepth;
    for (std::size_t i = 0; i < lead; ++i) {
      stage(i);
    }
    for (std::size_t i = 0; i < (count < kPeek ? count : kPeek); ++i) {
      peek(i);
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < count; ++i) {
      // Probe before staging: ring[i % kDepth] is the slot stage(i + kDepth)
      // would overwrite. peek(i + kPeek) reads an entry staged kDepth - kPeek
      // iterations ago, untouched until stage(i + kDepth + kPeek).
      bool hit = (opts_.read_mode == ReadMode::kOptimistic)
                     ? FindOptimistic(ring[i % kDepth], keys[i], &values[i])
                     : FindLocked(ring[i % kDepth], keys[i], &values[i]);
      if (i + kDepth < count) {
        stage(i + kDepth);
      }
      if (i + kPeek < count) {
        peek(i + kPeek);
      }
      found[i] = hit;
      hits += hit ? 1 : 0;
      stats_.RecordLookup(hit);
    }
    // Distribution of hits per batched (prefetch-pipelined) lookup call.
    stats_.RecordBatchHits(hits);
    return hits;
  }

  // ----- Mutation ----------------------------------------------------------

  // Insert key -> value. kKeyExists leaves the existing mapping untouched.
  InsertResult Insert(const K& key, const V& value) {
    return DoInsert(key, value, /*overwrite_existing=*/false);
  }

  // Insert or overwrite. Returns kOk (inserted), kKeyExists (overwritten), or
  // kTableFull.
  InsertResult Upsert(const K& key, const V& value) {
    return DoInsert(key, value, /*overwrite_existing=*/true);
  }

  // Atomically modify the value of `key` in place with `fn(V&)` while holding
  // its bucket locks, or insert `initial` if absent (libcuckoo's upsert).
  // Returns kOk if inserted, kKeyExists if modified, kTableFull on failure.
  template <typename Fn>
  InsertResult UpsertWith(const K& key, Fn&& fn, const V& initial) {
    const HashedKey h = HashedKey::From(hasher_(key));
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      {
        PairGuard guard(stripes_, b1, b2);
        if (core_.load(std::memory_order_relaxed) != core) {
          guard.ReleaseNoModify();
          continue;
        }
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(*core, b1, b2, h.tag, key, &bucket, &slot)) {
          // Load/modify/store through the relaxed accessors rather than
          // handing `fn` a reference: a concurrent optimistic reader may be
          // copying these bytes, and the mutation must stay tear-tolerant.
          V v = core->LoadValue(bucket, slot);
          fn(v);
          core->WriteValue(bucket, slot, v);
          return InsertResult::kKeyExists;
        }
      }
      // Absent: fall through to a normal insert; on a kKeyExists race the
      // loop re-runs and modifies the now-present value.
      InsertResult r = DoInsert(key, initial, /*overwrite_existing=*/false);
      if (r != InsertResult::kKeyExists) {
        return r;
      }
    }
  }

  // Overwrite the value of an existing key. Returns false if absent.
  bool Update(const K& key, const V& value) {
    const HashedKey h = HashedKey::From(hasher_(key));
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      PairGuard guard(stripes_, b1, b2);
      if (core_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        continue;
      }
      std::size_t bucket;
      int slot;
      if (!FindSlotExclusive(*core, b1, b2, h.tag, key, &bucket, &slot)) {
        guard.ReleaseNoModify();
        return false;
      }
      core->WriteValue(bucket, slot, value);
      return true;
    }
  }

  // Remove `key`. Returns true if it was present.
  bool Erase(const K& key) {
    const HashedKey h = HashedKey::From(hasher_(key));
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      PairGuard guard(stripes_, b1, b2);
      if (core_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        continue;
      }
      std::size_t bucket;
      int slot;
      if (!FindSlotExclusive(*core, b1, b2, h.tag, key, &bucket, &slot)) {
        guard.ReleaseNoModify();
        return false;
      }
      core->ClearSlot(bucket, slot);
      size_.Decrement();
      stats_.RecordErase();
      return true;
    }
  }

  // ----- Capacity ----------------------------------------------------------

  std::size_t Size() const noexcept {
    std::int64_t n = size_.Sum();
    return n < 0 ? 0 : static_cast<std::size_t>(n);
  }

  std::size_t SlotCount() const noexcept {
    return core_.load(std::memory_order_acquire)->slot_count();
  }

  std::size_t BucketCount() const noexcept {
    return core_.load(std::memory_order_acquire)->bucket_count();
  }

  double LoadFactor() const noexcept {
    return static_cast<double>(Size()) / static_cast<double>(SlotCount());
  }

  // Grow until at least `n` items fit below ~95% occupancy.
  void Reserve(std::size_t n) {
    std::size_t needed_slots =
        static_cast<std::size_t>(static_cast<double>(n) / 0.95) + B;
    while (SlotCount() < needed_slots) {
      Expand(core_.load(std::memory_order_acquire));
    }
  }

  // Remove all items (buckets and capacity retained).
  void Clear() {
    MutexLock maintenance(maintenance_mutex_);
    AllGuard all(stripes_);
    Core* core = core_.load(std::memory_order_relaxed);
    for (std::size_t bkt = 0; bkt < core->bucket_count(); ++bkt) {
      for (int s = 0; s < B; ++s) {
        core->ClearSlot(bkt, s);
      }
    }
    size_.Reset();
  }

  // Approximate heap usage: live core + stripes + retired cores kept for
  // reader safety (see class comment).
  std::size_t HeapBytes() const noexcept {
    std::size_t bytes = core_.load(std::memory_order_acquire)->HeapBytes() +
                        stripes_.stripe_count() * sizeof(PaddedVersionLock);
    return bytes + retired_bytes_.load(std::memory_order_relaxed);
  }

  // ----- Introspection -----------------------------------------------------

  MapStatsSnapshot Stats() const { return stats_.Read(); }
  void ResetStats() { stats_.Reset(); }
  // Toggle the sampled lookup/insert latency timers (counters stay on).
  void SetLatencyProfiling(bool enabled) { stats_.SetLatencyProfiling(enabled); }
  const Options& options() const noexcept { return opts_; }

  // Maximum cuckoo-path length the BFS can produce at the configured M (Eq. 2).
  std::size_t MaxBfsDepth() const noexcept {
    return MaxBfsPathLength(B, opts_.max_search_slots);
  }

  // Full-table invariant check for tests: acquires every stripe, then
  // verifies per-slot key/tag/bucket consistency and the size counter.
  // Aborts with a diagnostic on violation (active in all build types).
  void AssertInvariants() {
    MutexLock maintenance(maintenance_mutex_);
    AllGuard all(stripes_);
    Core* core = core_.load(std::memory_order_relaxed);
    core->AssertInvariants(static_cast<std::int64_t>(Size()));
    for (std::size_t bkt = 0; bkt < core->bucket_count(); ++bkt) {
      for (int s = 0; s < B; ++s) {
        const std::uint8_t tag = core->Tag(bkt, s);
        if (tag == 0) {
          continue;
        }
        const HashedKey h = HashedKey::From(hasher_(core->KeyRef(bkt, s)));
        CUCKOO_CHECK(h.tag == tag, "stored tag must be the key's partial key");
        const std::size_t b1 = h.Bucket1(core->mask);
        CUCKOO_CHECK(bkt == b1 || bkt == core->AltBucket(b1, h.tag),
                     "item must reside in one of its two candidate buckets");
      }
    }
  }

  // ----- Exclusive view (§7 libcuckoo-style iteration) ----------------------

  // Holds every lock stripe for its lifetime: all concurrent operations block.
  //
  // Thread-safety analysis cannot track scoped capabilities stored as
  // members (it models them as function-local only), so the constructor and
  // the lock-requiring methods are excluded from analysis; the guard members
  // still provide the actual exclusion for the view's whole lifetime.
  class LockedView {
   public:
    explicit LockedView(CuckooMap& map) NO_THREAD_SAFETY_ANALYSIS
        : map_(map), maintenance_(map.maintenance_mutex_), all_(map.stripes_) {
      core_ = map_.core_.load(std::memory_order_relaxed);
    }
    LockedView(const LockedView&) = delete;
    LockedView& operator=(const LockedView&) = delete;

    class Iterator {
     public:
      using value_type = std::pair<const K&, V&>;

      Iterator(Core* core, std::size_t bucket, int slot) noexcept
          : core_(core), bucket_(bucket), slot_(slot) {
        SkipToOccupied();
      }

      value_type operator*() const noexcept {
        return {core_->KeyRef(bucket_, slot_), core_->MutableValueRef(bucket_, slot_)};
      }

      Iterator& operator++() noexcept {
        ++slot_;
        SkipToOccupied();
        return *this;
      }

      bool operator==(const Iterator& other) const noexcept {
        return bucket_ == other.bucket_ && slot_ == other.slot_;
      }
      bool operator!=(const Iterator& other) const noexcept { return !(*this == other); }

     private:
      void SkipToOccupied() noexcept {
        while (bucket_ < core_->bucket_count()) {
          if (slot_ >= B) {
            slot_ = 0;
            ++bucket_;
            continue;
          }
          if (core_->Tag(bucket_, slot_) != 0) {
            return;
          }
          ++slot_;
        }
        slot_ = 0;  // canonical end() state
      }

      Core* core_;
      std::size_t bucket_;
      int slot_;
    };

    Iterator begin() noexcept { return Iterator(core_, 0, 0); }
    Iterator end() noexcept { return Iterator(core_, core_->bucket_count(), 0); }

    std::size_t Size() const noexcept { return map_.Size(); }

    bool Find(const K& key, V* out) const NO_THREAD_SAFETY_ANALYSIS {
      const HashedKey h = HashedKey::From(map_.hasher_(key));
      const std::size_t b1 = h.Bucket1(core_->mask);
      const std::size_t b2 = core_->AltBucket(b1, h.tag);
      std::size_t bucket;
      int slot;
      if (!map_.FindSlotExclusive(*core_, b1, b2, h.tag, key, &bucket, &slot)) {
        return false;
      }
      *out = core_->ValueRef(bucket, slot);
      return true;
    }

    // Exclusive insert; never expands (the view pins the core). Returns
    // kTableFull if no path exists.
    InsertResult Insert(const K& key, const V& value) NO_THREAD_SAFETY_ANALYSIS {
      const HashedKey h = HashedKey::From(map_.hasher_(key));
      const std::size_t b1 = h.Bucket1(core_->mask);
      const std::size_t b2 = core_->AltBucket(b1, h.tag);
      std::size_t bucket;
      int slot;
      if (map_.FindSlotExclusive(*core_, b1, b2, h.tag, key, &bucket, &slot)) {
        return InsertResult::kKeyExists;
      }
      if (!map_.ExclusiveInsert(*core_, h, key, value)) {
        return InsertResult::kTableFull;
      }
      map_.size_.Increment();
      return InsertResult::kOk;
    }

    bool Erase(const K& key) NO_THREAD_SAFETY_ANALYSIS {
      const HashedKey h = HashedKey::From(map_.hasher_(key));
      const std::size_t b1 = h.Bucket1(core_->mask);
      const std::size_t b2 = core_->AltBucket(b1, h.tag);
      std::size_t bucket;
      int slot;
      if (!map_.FindSlotExclusive(*core_, b1, b2, h.tag, key, &bucket, &slot)) {
        return false;
      }
      core_->ClearSlot(bucket, slot);
      map_.size_.Decrement();
      return true;
    }

   private:
    CuckooMap& map_;
    MutexLock maintenance_;
    AllGuard all_;
    Core* core_;
  };

  LockedView Lock() { return LockedView(*this); }

 private:
  // ----- Read paths ---------------------------------------------------------

  bool FindOptimistic(const HashedKey& h, const K& key, V* out) const {
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      const std::size_t s1 = stripes_.StripeFor(b1);
      const std::size_t s2 = stripes_.StripeFor(b2);

      const std::uint64_t v1 = stripes_.Stripe(s1).AwaitVersion();
      const std::uint64_t v2 = (s2 == s1) ? v1 : stripes_.Stripe(s2).AwaitVersion();
      // Window: a writer committing here must make the validation below fail.
      CUCKOO_TEST_POINT(TestPoint::kReadAfterVersionSnapshot);

      if (opts_.prefetch) {
        core->PrefetchBucket(b2);
      }
      bool found = false;
      V value{};
      // One vectorized probe answers both buckets: candidate bits [0, B) are
      // b1's tag matches, [B, 2B) are b2's, walked in probe order. The tag
      // snapshots are tear-tolerant like every other load in this window —
      // the version validation below rejects any torn read.
      std::uint32_t cand =
          simd::MatchTagMask2<B>(core->LoadTagsVector(b1), core->LoadTagsVector(b2), h.tag);
      while (cand != 0) {
        const int bit = simd::NextCandidate(&cand);
        const std::size_t bucket = bit < B ? b1 : b2;
        const int s = bit < B ? bit : bit - B;
        if (eq_(core->LoadKey(bucket, s), key)) {
          value = core->LoadValue(bucket, s);
          found = true;
          break;
        }
      }

      CUCKOO_TEST_POINT(TestPoint::kReadBeforeValidate);
      std::atomic_thread_fence(std::memory_order_acquire);
      const bool valid = core_.load(std::memory_order_relaxed) == core &&
                         stripes_.Stripe(s1).LoadRaw() == v1 &&
                         stripes_.Stripe(s2).LoadRaw() == v2;
      if (valid) {
        if (found) {
          *out = value;
        }
        return found;
      }
      stats_.RecordReadRetry();
    }
  }

  bool FindLocked(const HashedKey& h, const K& key, V* out) const {
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      PairGuard guard(stripes_, b1, b2);
      if (core_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        continue;
      }
      std::size_t bucket;
      int slot;
      bool found = FindSlotExclusive(*core, b1, b2, h.tag, key, &bucket, &slot);
      if (found) {
        *out = core->ValueRef(bucket, slot);
      }
      guard.ReleaseNoModify();
      return found;
    }
  }

  // Locate `key` in b1/b2 while holding their locks (or any exclusive view).
  bool FindSlotExclusive(const Core& core, std::size_t b1, std::size_t b2, std::uint8_t tag,
                         const K& key, std::size_t* bucket, int* slot) const
      REQUIRES(stripes_) {
    std::uint32_t cand =
        simd::MatchTagMask2<B>(core.LoadTagsVector(b1), core.LoadTagsVector(b2), tag);
    while (cand != 0) {
      const int bit = simd::NextCandidate(&cand);
      const std::size_t b = bit < B ? b1 : b2;
      const int s = bit < B ? bit : bit - B;
      if (eq_(core.KeyRef(b, s), key)) {
        *bucket = b;
        *slot = s;
        return true;
      }
    }
    return false;
  }

  // ----- Insert machinery ----------------------------------------------------

  InsertResult DoInsert(const K& key, const V& value, bool overwrite_existing) {
    const std::uint64_t t0 = stats_.MaybeStartInsertTimer();
    const InsertResult r = DoInsertLoop(key, value, overwrite_existing);
    stats_.FinishInsertTimer(t0);
    return r;
  }

  InsertResult DoInsertLoop(const K& key, const V& value, bool overwrite_existing) {
    const HashedKey h = HashedKey::From(hasher_(key));
    std::size_t executed_path_len = 0;  // displacements performed for this insert
    CuckooPath path;  // reused across retries to avoid reallocation
    for (;;) {
      Core* core = core_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);

      {
        PairGuard guard(stripes_, b1, b2);
        if (core_.load(std::memory_order_relaxed) != core) {
          guard.ReleaseNoModify();
          continue;
        }
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(*core, b1, b2, h.tag, key, &bucket, &slot)) {
          if (overwrite_existing) {
            core->WriteValue(bucket, slot, value);
            stats_.RecordDuplicateInsert();
            return InsertResult::kKeyExists;
          }
          guard.ReleaseNoModify();
          stats_.RecordDuplicateInsert();
          return InsertResult::kKeyExists;
        }
        for (std::size_t b : {b1, b2}) {
          int s = core->FindEmptySlot(b);
          if (s >= 0) {
            core->WriteSlot(b, s, h.tag, key, value);
            size_.Increment();
            stats_.RecordInsert();
            stats_.RecordPathLength(executed_path_len);
            return InsertResult::kOk;
          }
        }
        guard.ReleaseNoModify();
      }

      // Both buckets full: discover a cuckoo path with no lock held (§4.3.1).
      stats_.RecordPathSearch();
      path.Clear();
      bool found;
      if (opts_.search_mode == SearchMode::kBfs) {
        found = BfsSearch(*core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path);
      } else {
        found = DfsSearch(*core, b1, b2, opts_.dfs_max_path_len, ThreadRng(), &path);
      }

      if (!found) {
        if (!opts_.auto_expand) {
          stats_.RecordInsertFailure();
          return InsertResult::kTableFull;
        }
        Expand(core);
        continue;
      }

      // Window between discovery and the first displacement lock: concurrent
      // writers may consume the hole or move path items; ExecutePath's
      // per-hop validation must then fail (Appendix B).
      CUCKOO_TEST_POINT(TestPoint::kInsertAfterPathDiscovery);
      if (ExecutePath(core, path)) {
        executed_path_len += path.Displacements();
        // A slot is now free in b1 or b2 (unless stolen); retry the fast path.
      } else {
        stats_.RecordPathInvalidation();
      }
    }
  }

  // Validate-and-execute each displacement of `path` from the hole backwards,
  // locking one bucket pair at a time (Algorithm 2's VALIDATE_EXECUTE,
  // decomposed per §4.4). Returns false as soon as any hop fails validation.
  bool ExecutePath(Core* core, const CuckooPath& path) {
    if (path.hops.empty()) {
      // A path that was never found moves nothing; without this guard the
      // countdown below would start at SIZE_MAX and walk out of bounds.
      return false;
    }
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      const PathHop& from = path.hops[i];
      const PathHop& to = path.hops[i + 1];
      PairGuard guard(stripes_, from.bucket, to.bucket);
      if (core_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        return false;
      }
      // The source slot must still hold an item with the discovered tag (the
      // tag alone determines the alternate bucket, so a tag match guarantees
      // the move remains correct), and the destination must still be free.
      if (from.tag == 0 || core->Tag(from.bucket, from.slot) != from.tag ||
          core->Tag(to.bucket, to.slot) != 0) {
        guard.ReleaseNoModify();
        return false;
      }
      core->MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      stats_.RecordDisplacements(1);
    }
    return true;
  }

  // ----- Expansion -----------------------------------------------------------

  // Exclusive greedy insert used while holding every stripe (expansion,
  // LockedView). No locking needed, but hop validation still is: a BFS path
  // can revisit the same slot via a cycle in the cuckoo graph, in which case
  // an earlier executed hop invalidates a later one. Executed hops are
  // individually correct displacements, so on failure we just search again
  // over the (now perturbed) table.
  bool ExclusiveInsert(Core& core, const HashedKey& h, const K& key, const V& value)
      REQUIRES(stripes_) {
    for (;;) {
      const std::size_t b1 = h.Bucket1(core.mask);
      const std::size_t b2 = core.AltBucket(b1, h.tag);
      for (std::size_t b : {b1, b2}) {
        int s = core.FindEmptySlot(b);
        if (s >= 0) {
          core.WriteSlot(b, s, h.tag, key, value);
          return true;
        }
      }
      CuckooPath path;
      if (!BfsSearch(core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path)) {
        return false;
      }
      const PathHop& hole = path.hops.front();
      if (!ExecutePathExclusive(core, path) || core.Tag(hole.bucket, hole.slot) != 0) {
        continue;  // self-overlapping path; table perturbed, search again
      }
      core.WriteSlot(hole.bucket, hole.slot, h.tag, key, value);
      return true;
    }
  }

  // Double the table (re-doubling if the rehash itself fails). No-op if
  // another thread already replaced `expected_core`.
  void Expand(Core* expected_core) {
    MutexLock maintenance(maintenance_mutex_);
    if (core_.load(std::memory_order_acquire) != expected_core) {
      return;  // somebody else expanded while we waited
    }
    std::size_t new_log2 = 1;
    while ((std::size_t{1} << new_log2) <= expected_core->mask) {
      ++new_log2;
    }
    ++new_log2;
    // First-attempt core allocated (and zeroed) before the stripes are
    // taken: the multi-MB clear is the bulk of a large expansion's wall time
    // and must not extend the writer-visible pause. (Retry allocations after
    // a failed rehash are rare enough to stay inside.)
    auto fresh = std::make_unique<Core>(new_log2, opts_.hugepages);
    CUCKOO_TEST_POINT(TestPoint::kExpansionCoreAllocated);
    // Expansion pause = the full-table lock hold: every writer (and locked
    // reader) is stalled from here until the stripes release.
    const std::uint64_t pause_start = NowNanos();
    AllGuard all(stripes_);
    Core* old_core = core_.load(std::memory_order_relaxed);

    for (;;) {
      if (RehashInto(*old_core, *fresh)) {
        retired_bytes_.fetch_add(old_core->HeapBytes(), std::memory_order_relaxed);
        retired_.emplace_back(old_core);
        stats_.SetHugepageBytes(fresh->hugepage_bytes());
        core_.store(fresh.release(), std::memory_order_release);
        stats_.RecordExpansion();
        stats_.RecordExpansionPauseNanos(NowNanos() - pause_start);
        return;
      }
      // Rehash failed (pathological collisions): the partially filled core
      // holds copies, so just drop it and retry one size larger.
      fresh = std::make_unique<Core>(++new_log2, opts_.hugepages);
    }
  }

  bool RehashInto(const Core& from, Core& to) REQUIRES(stripes_) {
    for (std::size_t bkt = 0; bkt < from.bucket_count(); ++bkt) {
      for (int s = 0; s < B; ++s) {
        if (from.Tag(bkt, s) == 0) {
          continue;
        }
        const K& key = from.KeyRef(bkt, s);
        const HashedKey h = HashedKey::From(hasher_(key));
        if (!ExclusiveInsert(to, h, key, from.ValueRef(bkt, s))) {
          return false;
        }
      }
    }
    return true;
  }

  static Xorshift128Plus& ThreadRng() {
    thread_local Xorshift128Plus rng(Mix64(0xc0ffeeull + CurrentThreadId()));
    return rng;
  }

  Options opts_;
  Hash hasher_;
  KeyEqual eq_;
  mutable LockStripes stripes_;
  std::atomic<Core*> core_;
  // Serializes expansion / Clear / LockedView creation against each other.
  Mutex maintenance_mutex_;
  // Old cores are kept until destruction: an optimistic reader may still be
  // dereferencing one (its version validation will fail and it will retry,
  // but the bytes must remain mapped). Bounded by a geometric series — total
  // retired bytes are at most the live core's size.
  std::vector<std::unique_ptr<Core>> retired_ GUARDED_BY(maintenance_mutex_);
  std::atomic<std::size_t> retired_bytes_{0};
  PerThreadCounter size_;
  mutable MapStats stats_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_CUCKOO_MAP_H_
