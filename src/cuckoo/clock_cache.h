// ClockCache — a MemC3-style bounded cache on top of the cuckoo table: the
// system the paper's base design (optimistic concurrent cuckoo hashing) was
// built for. Instead of expanding when full, it evicts using CLOCK:
//
//   * every slot has a reference bit, set (relaxed) on lookup hit;
//   * when an insert cannot find room, the clock hand sweeps slots, clearing
//     set bits and evicting the first unreferenced victim under its bucket
//     lock, then the insert retries;
//   * recently-read entries therefore survive, one-touch entries cycle out —
//     the classic second-chance approximation of LRU that MemC3 pairs with
//     cuckoo hashing ("MemC3: Compact and Concurrent MemCache with Dumber
//     Caching and Smarter Hashing" [8]).
//
// Concurrency model matches CuckooMap: striped bucket locks for writers,
// optimistic version-validated reads; the reference bitmap is deliberately
// outside the validated region (a racy ref-bit costs at most one eviction
// decision, never correctness).
#ifndef SRC_CUCKOO_CLOCK_CACHE_H_
#define SRC_CUCKOO_CLOCK_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "src/common/hash.h"
#include "src/common/per_thread_counter.h"
#include "src/common/striped_locks.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/path_search.h"
#include "src/cuckoo/table_core.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>, int B = 8>
class ClockCache {
 public:
  using KeyType = K;
  using ValueType = V;
  using Core = TableCore<K, V, B>;
  static constexpr int kSlotsPerBucket = B;

  struct Options {
    // Fixed capacity: 2^log2 buckets x B slots. Never grows.
    std::size_t bucket_count_log2 = 12;
    std::size_t stripe_count = LockStripes::kDefaultStripeCount;
    std::size_t max_search_slots = 2000;
    bool prefetch = true;
    // Max slots one CLOCK sweep may visit before giving up (>= one full lap).
    std::size_t max_sweep_factor = 2;
    // Byte budget across all cached entries, measured by the per-entry
    // charge passed to Set/GetOrAdmit. 0 keeps the legacy entry-count-only
    // bound — with values spanning 16 B to 1 MB a slot count alone says
    // nothing about memory, so byte-tier users must set this.
    std::size_t capacity_bytes = 0;
    // Invoked when an entry leaves the cache involuntarily (CLOCK eviction
    // or Delete), under the victim's bucket lock — keep it brief and never
    // call back into this cache. Set() overwrites of an existing key do NOT
    // fire it: the writer is replacing the entry itself and sees the old
    // value race-free if it needs it. Users keeping out-of-band state per
    // entry (e.g. heap bytes behind a trivially-copyable handle) hook
    // reclamation here.
    std::function<void(const K& key, const V& value)> on_evict;
  };

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t sets = 0;
    std::uint64_t bytes = 0;           // sum of live entry charges
    std::uint64_t capacity_bytes = 0;  // 0 = unbounded (count mode)
    double HitRate() const noexcept {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit ClockCache(Options opts = Options{}, Hash hasher = Hash{}, KeyEqual eq = KeyEqual{})
      : opts_(opts),
        hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        stripes_(opts.stripe_count),
        core_(opts.bucket_count_log2),
        ref_bits_(new std::atomic<std::uint8_t>[core_.slot_count()]),
        charges_(new std::atomic<std::uint32_t>[core_.slot_count()]) {
    for (std::size_t i = 0; i < core_.slot_count(); ++i) {
      ref_bits_[i].store(0, std::memory_order_relaxed);
      charges_[i].store(0, std::memory_order_relaxed);
    }
  }

  ClockCache(const ClockCache&) = delete;
  ClockCache& operator=(const ClockCache&) = delete;

  // ----- Read path -----------------------------------------------------------

  // Optimistic lookup; a hit marks the slot referenced for CLOCK.
  bool Get(const K& key, V* out) {
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    const std::size_t s1 = stripes_.StripeFor(b1);
    const std::size_t s2 = stripes_.StripeFor(b2);
    for (;;) {
      const std::uint64_t v1 = stripes_.Stripe(s1).AwaitVersion();
      const std::uint64_t v2 = (s2 == s1) ? v1 : stripes_.Stripe(s2).AwaitVersion();
      bool found = false;
      std::size_t hit_bucket = 0;
      int hit_slot = 0;
      V value{};
      for (std::size_t bucket : {b1, b2}) {
        for (int s = 0; s < B; ++s) {
          if (core_.Tag(bucket, s) == h.tag && eq_(core_.LoadKey(bucket, s), key)) {
            value = core_.LoadValue(bucket, s);
            hit_bucket = bucket;
            hit_slot = s;
            found = true;
            break;
          }
        }
        if (found) {
          break;
        }
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (stripes_.Stripe(s1).LoadRaw() == v1 && stripes_.Stripe(s2).LoadRaw() == v2) {
        if (found) {
          // Second-chance mark. Outside the validated region on purpose.
          ref_bits_[hit_bucket * B + static_cast<std::size_t>(hit_slot)].store(
              1, std::memory_order_relaxed);
          hits_.Increment();
          *out = value;
        } else {
          misses_.Increment();
        }
        return found;
      }
    }
  }

  bool Contains(const K& key) {
    V ignored;
    return Get(key, &ignored);
  }

  // ----- Write path ----------------------------------------------------------

  // Insert or overwrite, evicting as needed. `charge` is the entry's byte
  // cost against Options::capacity_bytes (ignored in count mode). Returns
  // false if the entry can never fit (charge > capacity) or if even a full
  // CLOCK sweep could not free a usable slot (pathological hash).
  bool Set(const K& key, const V& value, std::size_t charge = 1) {
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    sets_.Increment();
    const std::uint32_t charge32 = charge > UINT32_MAX
                                       ? UINT32_MAX
                                       : static_cast<std::uint32_t>(charge);
    if (opts_.capacity_bytes != 0) {
      if (charge > opts_.capacity_bytes) {
        return false;  // would evict everything and still not fit
      }
      // Make room by bytes first; the slot-level paths below handle the rest.
      // Approximate on purpose: a concurrent overwrite's refund may land
      // after our check, costing at most one extra eviction.
      std::size_t freed_attempts = 0;
      while (CurrentBytes() + charge > opts_.capacity_bytes) {
        if (!EvictOne() || ++freed_attempts > core_.slot_count()) {
          if (CurrentBytes() + charge > opts_.capacity_bytes) {
            return false;
          }
          break;
        }
      }
    }
    CuckooPath path;
    for (std::size_t attempt = 0;
         attempt < opts_.max_sweep_factor * core_.slot_count(); ++attempt) {
      {
        PairGuard guard(stripes_, b1, b2);
        std::size_t bucket;
        int slot;
        if (FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
          core_.WriteValue(bucket, slot, value);
          const std::size_t idx = bucket * B + static_cast<std::size_t>(slot);
          ref_bits_[idx].store(1, std::memory_order_relaxed);
          const std::uint32_t old = charges_[idx].exchange(charge32, std::memory_order_relaxed);
          bytes_.fetch_add(static_cast<std::int64_t>(charge32) - old,
                           std::memory_order_relaxed);
          return true;
        }
        for (std::size_t b : {b1, b2}) {
          int s = core_.FindEmptySlot(b);
          if (s >= 0) {
            core_.WriteSlot(b, s, h.tag, key, value);
            const std::size_t idx = b * B + static_cast<std::size_t>(s);
            ref_bits_[idx].store(1, std::memory_order_relaxed);
            charges_[idx].store(charge32, std::memory_order_relaxed);
            bytes_.fetch_add(charge32, std::memory_order_relaxed);
            size_.Increment();
            return true;
          }
        }
        guard.ReleaseNoModify();
      }

      // Try to open a slot in b1/b2 by cuckoo displacement first (keeps
      // occupancy high before resorting to eviction).
      path.Clear();
      if (BfsSearch(core_, b1, b2, opts_.max_search_slots, opts_.prefetch, &path) &&
          ExecutePath(path)) {
        continue;  // a slot should now be free in b1/b2
      }

      // Table-full for this key: evict one victim somewhere, which frees a
      // slot reachable on the next displacement search.
      if (!EvictOne()) {
        return false;
      }
    }
    return false;
  }

  bool Delete(const K& key) {
    const HashedKey h = HashedKey::From(hasher_(key));
    const std::size_t b1 = h.Bucket1(core_.mask);
    const std::size_t b2 = core_.AltBucket(b1, h.tag);
    PairGuard guard(stripes_, b1, b2);
    std::size_t bucket;
    int slot;
    if (!FindSlotExclusive(b1, b2, h.tag, key, &bucket, &slot)) {
      guard.ReleaseNoModify();
      return false;
    }
    if (opts_.on_evict) {
      opts_.on_evict(core_.KeyRef(bucket, slot), core_.ValueRef(bucket, slot));
    }
    core_.ClearSlot(bucket, slot);
    ReleaseCharge(bucket * B + static_cast<std::size_t>(slot));
    size_.Decrement();
    return true;
  }

  // Lookup, or produce-and-insert on miss: `fetch(V* value, std::size_t*
  // charge)` fills the value and its byte charge, returning false when the
  // backing tier could not produce it (the miss is then reported to the
  // caller). The fetch runs outside all cache locks, so concurrent
  // GetOrAdmit calls for one key may fetch twice — last insert wins, which
  // is fine for an idempotent backing read.
  template <typename Fetch>
  bool GetOrAdmit(const K& key, V* out, Fetch&& fetch) {
    if (Get(key, out)) {
      return true;
    }
    std::size_t charge = 1;
    if (!fetch(out, &charge)) {
      return false;
    }
    Set(key, *out, charge);  // best-effort admission; a full cache is not an error
    return true;
  }

  // ----- Introspection --------------------------------------------------------

  std::size_t Size() const noexcept {
    std::int64_t n = size_.Sum();
    return n < 0 ? 0 : static_cast<std::size_t>(n);
  }
  std::size_t Capacity() const noexcept { return core_.slot_count(); }
  double LoadFactor() const noexcept {
    return static_cast<double>(Size()) / static_cast<double>(Capacity());
  }
  std::size_t HeapBytes() const noexcept {
    return core_.HeapBytes() + core_.slot_count() +
           stripes_.stripe_count() * sizeof(PaddedVersionLock);
  }

  // Live byte footprint (sum of charges). Meaningful in byte mode; stays 0
  // only if every charge is 0.
  std::uint64_t Bytes() const noexcept { return CurrentBytes(); }

  CacheStats Stats() const noexcept {
    CacheStats s;
    s.hits = static_cast<std::uint64_t>(hits_.Sum());
    s.misses = static_cast<std::uint64_t>(misses_.Sum());
    s.evictions = static_cast<std::uint64_t>(evictions_.Sum());
    s.sets = static_cast<std::uint64_t>(sets_.Sum());
    s.bytes = CurrentBytes();
    s.capacity_bytes = opts_.capacity_bytes;
    return s;
  }

 private:
  bool FindSlotExclusive(std::size_t b1, std::size_t b2, std::uint8_t tag, const K& key,
                         std::size_t* bucket, int* slot) const REQUIRES(stripes_) {
    for (std::size_t b : {b1, b2}) {
      for (int s = 0; s < B; ++s) {
        if (core_.Tag(b, s) == tag && eq_(core_.KeyRef(b, s), key)) {
          *bucket = b;
          *slot = s;
          return true;
        }
      }
    }
    return false;
  }

  bool ExecutePath(const CuckooPath& path) {
    if (path.hops.empty()) {
      // A path that was never found moves nothing; without this guard the
      // countdown below would start at SIZE_MAX and walk out of bounds.
      return false;
    }
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      const PathHop& from = path.hops[i];
      const PathHop& to = path.hops[i + 1];
      PairGuard guard(stripes_, from.bucket, to.bucket);
      if (from.tag == 0 || core_.Tag(from.bucket, from.slot) != from.tag ||
          core_.Tag(to.bucket, to.slot) != 0) {
        guard.ReleaseNoModify();
        return false;
      }
      core_.MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      // The item carries its reference bit and byte charge along.
      const std::size_t from_idx = from.bucket * B + static_cast<std::size_t>(from.slot);
      const std::size_t to_idx = to.bucket * B + static_cast<std::size_t>(to.slot);
      std::uint8_t ref = ref_bits_[from_idx].load(std::memory_order_relaxed);
      ref_bits_[to_idx].store(ref, std::memory_order_relaxed);
      charges_[to_idx].store(charges_[from_idx].exchange(0, std::memory_order_relaxed),
                             std::memory_order_relaxed);
    }
    return true;
  }

  // Advance the clock hand until an unreferenced occupied slot is found;
  // clear reference bits along the way; evict the victim. One full lap plus
  // slack bounds the sweep (after a lap, every bit has been cleared, so an
  // occupied slot must qualify unless erasers empty the table under us).
  bool EvictOne() {
    const std::size_t slots = core_.slot_count();
    for (std::size_t step = 0; step < 2 * slots; ++step) {
      const std::size_t idx = hand_.fetch_add(1, std::memory_order_relaxed) % slots;
      const std::size_t bucket = idx / B;
      const int slot = static_cast<int>(idx % B);
      if (core_.Tag(bucket, slot) == 0) {
        continue;
      }
      if (ref_bits_[idx].exchange(0, std::memory_order_relaxed) != 0) {
        continue;  // second chance
      }
      PairGuard guard(stripes_, bucket, bucket);
      if (core_.Tag(bucket, slot) == 0) {
        guard.ReleaseNoModify();
        continue;  // raced with an eraser
      }
      if (opts_.on_evict) {
        opts_.on_evict(core_.KeyRef(bucket, slot), core_.ValueRef(bucket, slot));
      }
      core_.ClearSlot(bucket, slot);
      ReleaseCharge(idx);
      size_.Decrement();
      evictions_.Increment();
      return true;
    }
    return false;
  }

  void ReleaseCharge(std::size_t idx) {
    const std::uint32_t old = charges_[idx].exchange(0, std::memory_order_relaxed);
    if (old != 0) {
      bytes_.fetch_sub(old, std::memory_order_relaxed);
    }
  }

  std::uint64_t CurrentBytes() const noexcept {
    const std::int64_t b = bytes_.load(std::memory_order_relaxed);
    return b < 0 ? 0 : static_cast<std::uint64_t>(b);
  }

  Options opts_;
  Hash hasher_;
  KeyEqual eq_;
  mutable LockStripes stripes_;
  Core core_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> ref_bits_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> charges_;
  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::size_t> hand_{0};
  PerThreadCounter size_;
  mutable PerThreadCounter hits_;
  mutable PerThreadCounter misses_;
  PerThreadCounter evictions_;
  PerThreadCounter sets_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_CLOCK_CACHE_H_
