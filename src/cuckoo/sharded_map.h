// ShardedMap — the "other" classical route to concurrent hash maps: S
// independent single-lock shards selected by hash. Included as an ablation
// target against cuckoo+'s striped-lock single-table design (sharding
// partitions both the locks AND the storage, so it loses cuckoo hashing's
// global load balancing: each shard must individually stay below its
// occupancy ceiling, and a hot shard serializes).
#ifndef SRC_CUCKOO_SHARDED_MAP_H_
#define SRC_CUCKOO_SHARDED_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/spinlock.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>, int B = 8>
class ShardedMap {
 public:
  using KeyType = K;
  using ValueType = V;
  // Each shard is a single-lock cuckoo table; the shard lock serializes its
  // writers while reads stay optimistic within the shard.
  using Shard = FlatCuckooMap<K, V, SpinLock, Hash, KeyEqual, B>;

  struct Options {
    std::size_t shard_count_log2 = 4;       // 16 shards
    std::size_t slots_per_shard_log2 = 12;  // buckets_log2 derived from B
  };

  explicit ShardedMap(Options opts = Options{}, Hash hasher = Hash{})
      : hasher_(std::move(hasher)), shard_mask_((std::size_t{1} << opts.shard_count_log2) - 1) {
    FlatOptions shard_opts;
    std::size_t bucket_log2 = 0;
    while ((std::size_t{1} << (bucket_log2 + 1)) * static_cast<std::size_t>(B) <=
           (std::size_t{1} << opts.slots_per_shard_log2)) {
      ++bucket_log2;
    }
    shard_opts.bucket_count_log2 = bucket_log2 + 1;
    shard_opts.search_mode = SearchMode::kBfs;
    shard_opts.lock_after_discovery = true;
    shard_opts.prefetch = true;
    shards_.reserve(shard_mask_ + 1);
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      shards_.push_back(std::make_unique<Shard>(shard_opts));
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  bool Find(const K& key, V* out) const { return ShardFor(key).Find(key, out); }
  bool Contains(const K& key) const { return ShardFor(key).Contains(key); }
  InsertResult Insert(const K& key, const V& value) { return ShardFor(key).Insert(key, value); }
  InsertResult Upsert(const K& key, const V& value) { return ShardFor(key).Upsert(key, value); }
  bool Update(const K& key, const V& value) { return ShardFor(key).Update(key, value); }
  bool Erase(const K& key) { return ShardFor(key).Erase(key); }

  std::size_t Size() const noexcept {
    std::size_t n = 0;
    for (const auto& shard : shards_) {
      n += shard->Size();
    }
    return n;
  }

  std::size_t SlotCount() const noexcept {
    return shards_[0]->SlotCount() * shards_.size();
  }

  double LoadFactor() const noexcept {
    return static_cast<double>(Size()) / static_cast<double>(SlotCount());
  }

  std::size_t HeapBytes() const noexcept {
    std::size_t bytes = 0;
    for (const auto& shard : shards_) {
      bytes += shard->HeapBytes();
    }
    return bytes;
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  // Remove all items, one shard at a time. Not an atomic point-in-time wipe:
  // keys inserted into already-cleared shards concurrently with Clear()
  // survive (same contract as clearing any sharded store shard-by-shard).
  void Clear() {
    for (auto& shard : shards_) {
      shard->Clear();
    }
  }

  // Merged statistics across shards (MapStatsSnapshot::Merge is associative,
  // so per-shard histograms sum into one distribution).
  MapStatsSnapshot Stats() const {
    MapStatsSnapshot merged;
    for (const auto& shard : shards_) {
      merged.Merge(shard->Stats());
    }
    return merged;
  }

  void ResetStats() {
    for (auto& shard : shards_) {
      shard->ResetStats();
    }
  }

  void SetLatencyProfiling(bool enabled) {
    for (auto& shard : shards_) {
      shard->SetLatencyProfiling(enabled);
    }
  }

  // Occupancy imbalance: max shard load factor over mean (1.0 = perfectly
  // balanced). Shows the load-balancing cost sharding pays vs one table.
  double ShardImbalance() const noexcept {
    double mean = LoadFactor();
    if (mean == 0.0) {
      return 1.0;
    }
    double max_load = 0.0;
    for (const auto& shard : shards_) {
      max_load = std::max(max_load, shard->LoadFactor());
    }
    return max_load / mean;
  }

 private:
  Shard& ShardFor(const K& key) const {
    // Shard selection uses the upper bits of a re-mixed hash; the shard's
    // internal bucket derivation uses the lower raw bits, so the two are
    // effectively independent. The mix matters: Hash is a template parameter,
    // and a user-supplied 32-bit hash would zero `h >> 48` and funnel every
    // key into shard 0. Mix64 is a bijection, so no entropy is lost.
    return *shards_[(Mix64(hasher_(key)) >> 48) & shard_mask_];
  }

  Hash hasher_;
  std::size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_SHARDED_MAP_H_
