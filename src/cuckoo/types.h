// Shared enums and small result types for the cuckoo hash tables.
#ifndef SRC_CUCKOO_TYPES_H_
#define SRC_CUCKOO_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace cuckoo {

// Outcome of an Insert (§2.1: "On Insert, the hash table returns success, or
// an error code to indicate whether the hash table is too full or the key
// already exists").
enum class InsertResult : std::uint8_t {
  kOk = 0,
  kKeyExists = 1,
  kTableFull = 2,
};

// How Insert looks for an empty slot (§4.3.2).
enum class SearchMode : std::uint8_t {
  kBfs = 0,  // breadth-first search over the cuckoo graph (the paper's design)
  kDfs = 1,  // MemC3's greedy random-walk (two parallel paths)
};

// How Lookup synchronizes with writers.
enum class ReadMode : std::uint8_t {
  // Lock-free reads validated by stripe version counters (§4.2's optimistic
  // scheme). Requires trivially copyable key/value types.
  kOptimistic = 0,
  // Take the bucket-pair lock for reads too (what the libcuckoo release does
  // for generality, at "a 5-20% slowdown" per §7).
  kLocked = 1,
};

constexpr const char* ToString(InsertResult r) noexcept {
  switch (r) {
    case InsertResult::kOk:
      return "ok";
    case InsertResult::kKeyExists:
      return "key_exists";
    case InsertResult::kTableFull:
      return "table_full";
  }
  return "?";
}

constexpr const char* ToString(SearchMode m) noexcept {
  return m == SearchMode::kBfs ? "bfs" : "dfs";
}

constexpr const char* ToString(ReadMode m) noexcept {
  return m == ReadMode::kOptimistic ? "optimistic" : "locked";
}

}  // namespace cuckoo

#endif  // SRC_CUCKOO_TYPES_H_
