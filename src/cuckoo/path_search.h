// Cuckoo-path discovery: the paper's breadth-first search (§4.3.2) and the
// MemC3-style greedy random-walk DFS it replaces.
//
// Both searchers run *without any lock held* (§4.3.1's "lock after discovering
// a cuckoo path"): they read tags racily and produce a path that the caller
// must validate hop-by-hop under bucket locks before executing.
#ifndef SRC_CUCKOO_PATH_SEARCH_H_
#define SRC_CUCKOO_PATH_SEARCH_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/cuckoo/simd_probe.h"

namespace cuckoo {

// One hop of a cuckoo path: the item in `bucket`/`slot` (whose partial key was
// `tag` at discovery time) will be displaced to the next hop's bucket/slot.
// The final hop of a path is the empty slot (its tag field is 0).
struct PathHop {
  std::size_t bucket;
  int slot;
  std::uint8_t tag;
};

struct CuckooPath {
  // hops.size() == displacements + 1; hops.back() is the empty slot.
  std::vector<PathHop> hops;

  std::size_t Displacements() const noexcept { return hops.empty() ? 0 : hops.size() - 1; }
  void Clear() noexcept { hops.clear(); }
};

// Eq. 2: maximum BFS path length for a B-way table when up to M slots may be
// examined: L_BFS = ceil(log_B(M/2 - M/(2B) + 1)).
constexpr std::size_t MaxBfsPathLength(int b, std::size_t max_slots_examined) noexcept {
  // Evaluate B + B^2 + ... + B^L >= M/2 without floating point.
  double m = static_cast<double>(max_slots_examined);
  double target = m / 2.0 - m / (2.0 * b) + 1.0;
  std::size_t len = 0;
  double power = 1.0;
  while (power < target) {
    power *= b;
    ++len;
  }
  return len == 0 ? 1 : len;
}

// Breadth-first search for an empty slot reachable from `b1` or `b2`,
// examining at most `max_slots` slots. Returns false if the table is too full
// (no empty slot within budget). With `prefetch`, each discovered frontier
// bucket's tag line is prefetched as soon as its parent slot is scanned —
// possible only under BFS because "the schedule of buckets to visit is
// predictable".
template <typename Core>
bool BfsSearch(const Core& core, std::size_t b1, std::size_t b2, std::size_t max_slots,
               bool prefetch, CuckooPath* out) {
  constexpr int kB = Core::kSlotsPerBucket;
  struct Node {
    std::size_t bucket;
    std::int32_t parent;  // index into arena, or -1 for a root
    std::int8_t slot_from_parent;
    // Tag observed when this edge was explored. The path must carry THIS tag,
    // not a re-read: this node's bucket is AltBucket(parent, tag_from_parent),
    // and if the slot's occupant changes concurrently, execute-time validation
    // must fail rather than move the new occupant to a stale destination.
    std::uint8_t tag_from_parent;
  };

  // The arena doubles as the FIFO queue. Capacity bounds total buckets
  // enqueued; each popped bucket examines kB slots against the budget.
  // Thread-local so the hot insert path performs no allocation once warm.
  static thread_local std::vector<Node> arena;
  arena.clear();
  arena.reserve(max_slots / static_cast<std::size_t>(kB) + 2 * static_cast<std::size_t>(kB) + 4);
  arena.push_back(Node{b1, -1, 0, 0});
  arena.push_back(Node{b2, -1, 0, 0});

  std::size_t slots_examined = 0;
  for (std::size_t head = 0; head < arena.size(); ++head) {
    const Node node = arena[head];
    if (slots_examined + static_cast<std::size_t>(kB) > max_slots) {
      return false;
    }
    slots_examined += static_cast<std::size_t>(kB);

    // One snapshot + vectorized hole scan per frontier bucket. The edge
    // expansion below reuses the same snapshot, so a bucket judged full is
    // expanded with exactly the tags that judgment saw — a concurrent erase
    // can't yield a frontier edge with tag 0 (whose AltBucket would be
    // nonsense). Races are otherwise fine: the path is validated hop-by-hop
    // under locks before execution.
    const simd::TagGroup<kB> tags = core.LoadTagsVector(node.bucket);
    const int hole = simd::FirstSlot(simd::EmptySlotMask<kB>(tags));
    if (hole >= 0) {
      // Found a hole: reconstruct the path root -> ... -> hole.
      out->Clear();
      out->hops.push_back(PathHop{node.bucket, hole, 0});
      std::int32_t cur = static_cast<std::int32_t>(head);
      while (arena[cur].parent >= 0) {
        const Node& child = arena[cur];
        const Node& parent = arena[child.parent];
        out->hops.push_back(
            PathHop{parent.bucket, child.slot_from_parent, child.tag_from_parent});
        cur = child.parent;
      }
      // Hops were collected hole-first; reverse into execution order.
      std::reverse(out->hops.begin(), out->hops.end());
      return true;
    }

    // Bucket full: each slot's item leads to its alternate bucket.
    for (int s = 0; s < kB; ++s) {
      const std::uint8_t tag = tags.bytes[s];
      std::size_t next = core.AltBucket(node.bucket, tag);
      if (prefetch) {
        core.PrefetchTags(next);
      }
      arena.push_back(
          Node{next, static_cast<std::int32_t>(head), static_cast<std::int8_t>(s), tag});
    }
  }
  return false;
}

// Validate-and-execute every displacement of `path` against `core`, for
// callers that hold exclusive access to the whole table (expansion rehash,
// LockedView inserts). No locking, but hop validation is still required: a
// BFS path can revisit the same slot via a cycle in the cuckoo graph, in
// which case an earlier executed hop invalidates a later one. Executed hops
// are individually correct displacements, so on failure the caller simply
// searches again over the (now perturbed) table.
//
// An empty path moves nothing and reports failure — the hop loop counts down
// from hops.size() - 1, which would otherwise underflow to SIZE_MAX and walk
// out of bounds.
template <typename Core>
bool ExecutePathExclusive(Core& core, const CuckooPath& path) {
  if (path.hops.empty()) {
    return false;
  }
  for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
    const PathHop& from = path.hops[i];
    const PathHop& to = path.hops[i + 1];
    if (from.tag == 0 || core.Tag(from.bucket, from.slot) != from.tag ||
        core.Tag(to.bucket, to.slot) != 0) {
      return false;
    }
    core.MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
  }
  return true;
}

// MemC3's search: greedy random displacement, tracking two paths in parallel
// (one rooted at each candidate bucket) and completing when either finds an
// empty slot. Caps each path at `max_path_len` hops.
template <typename Core>
bool DfsSearch(const Core& core, std::size_t b1, std::size_t b2, int max_path_len,
               Xorshift128Plus& rng, CuckooPath* out) {
  constexpr int kB = Core::kSlotsPerBucket;
  struct Walk {
    CuckooPath path;
    std::size_t bucket;
    bool dead = false;
  };
  Walk walks[2];
  walks[0].bucket = b1;
  walks[1].bucket = b2;
  walks[0].path.hops.reserve(16);
  walks[1].path.hops.reserve(16);

  for (;;) {
    bool all_dead = true;
    for (Walk& w : walks) {
      if (w.dead) {
        continue;
      }
      all_dead = false;

      // Empty slot in the current bucket completes this walk.
      int empty = core.FindEmptySlot(w.bucket);
      if (empty >= 0) {
        w.path.hops.push_back(PathHop{w.bucket, empty, 0});
        *out = std::move(w.path);
        return true;
      }
      if (static_cast<int>(w.path.hops.size()) >= max_path_len) {
        w.dead = true;
        continue;
      }
      // Kick a random victim toward its alternate bucket.
      int victim = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(kB)));
      std::uint8_t tag = core.Tag(w.bucket, victim);
      if (tag == 0) {
        // Raced with a concurrent erase: the slot is empty now. Take it.
        w.path.hops.push_back(PathHop{w.bucket, victim, 0});
        *out = std::move(w.path);
        return true;
      }
      w.path.hops.push_back(PathHop{w.bucket, victim, tag});
      w.bucket = core.AltBucket(w.bucket, tag);
    }
    if (all_dead) {
      return false;
    }
  }
}

}  // namespace cuckoo

#endif  // SRC_CUCKOO_PATH_SEARCH_H_
