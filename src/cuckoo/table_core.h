// Raw storage for a set-associative cuckoo table: a flat array of B-way
// buckets plus a parallel array of 1-byte partial-key tags.
//
// Layout follows §6 ("Each bucket has all the keys come first and then the
// values, and fits exactly two cache lines: one for 8 keys and another for 8
// values" for 8-byte pairs at B=8). Tags live in their own dense array so the
// BFS path search touches one byte per slot instead of a whole bucket, and a
// tag of zero marks an empty slot (HashedKey never produces tag 0). The tag
// array is cache-line aligned, so with B in {4, 8, 16} a bucket's tag group
// never straddles a line and a single vector load (see LoadTagsVector / the
// kernels in simd_probe.h) covers the whole bucket. Both arrays sit in
// PageBlocks, which optionally back large cores with 2 MB transparent huge
// pages (one lookup = 1-2 random lines; on 4 KB pages that is also 1-2 dTLB
// misses per probe for GB-scale tables).
//
// Access discipline (statically enforced): the key/value arrays may be read
// by optimistic readers while a writer is storing, so every touch of bucket
// bytes must go through the accessors below — RelaxedLoad/RelaxedStore for
// tear-tolerant paths, KeyRef/ValueRef for exclusive or validated access.
// tools/analysis/check_seqlock.py (rule raw-bucket-access) rejects any
// `.keys[...]` / `.values[...]` member access outside this file's accessor
// allowlist, and (rule raw-vector-load) rejects vector-load intrinsics
// outside simd_probe.h, so a new code path cannot quietly reintroduce an
// unchecked plain read of live bucket bytes.
#ifndef SRC_CUCKOO_TABLE_CORE_H_
#define SRC_CUCKOO_TABLE_CORE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "src/common/atomic_util.h"
#include "src/common/cpu.h"
#include "src/common/debug_checks.h"
#include "src/common/hash.h"
#include "src/common/page_alloc.h"
#include "src/cuckoo/simd_probe.h"

namespace cuckoo {

template <typename K, typename V, int B>
struct TableCore {
  static_assert(B > 0 && B <= 16, "set-associativity must be in [1, 16]");
  static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>,
                "optimistic cuckoo tables require trivially copyable key/value types; "
                "wrap variable-length data in fixed arrays or indirection");

  static constexpr int kSlotsPerBucket = B;

  struct Bucket {
    K keys[B];
    V values[B];
  };
  // PageBlock hands back zero bytes without running constructors; both the
  // tag array (where all-zero IS the all-empty state) and the bucket array
  // (whose elements are only read after their tag goes non-zero, i.e. after
  // WriteSlot stored a full object representation) rely on Bucket being an
  // implicit-lifetime type. It is: an aggregate of trivially copyable
  // members, so it has a trivial copy constructor and trivial destructor —
  // the trivially_copyable assert above already pins that down (K and V may
  // still have user-provided default constructors; those never run here).
  static_assert(std::is_trivially_copyable_v<Bucket>);
  static_assert(std::atomic_ref<std::uint8_t>::required_alignment == 1);

  explicit TableCore(std::size_t bucket_count_log2, bool want_hugepages = false)
      : mask((std::size_t{1} << bucket_count_log2) - 1),
        tag_block_((mask + 1) * B, want_hugepages),
        bucket_block_((mask + 1) * sizeof(Bucket), want_hugepages),
        tags(static_cast<std::uint8_t*>(tag_block_.data())),
        buckets(static_cast<Bucket*>(bucket_block_.data())) {
    assert(bucket_count_log2 < 57);
  }

  std::size_t bucket_count() const noexcept { return mask + 1; }
  std::size_t slot_count() const noexcept { return bucket_count() * B; }

  // Heap bytes this core occupies (for the memory-efficiency comparison).
  std::size_t HeapBytes() const noexcept {
    return bucket_count() * sizeof(Bucket) + slot_count() * sizeof(std::uint8_t);
  }

  // Bytes granted MADV_HUGEPAGE backing (0 unless requested and honored).
  std::size_t hugepage_bytes() const noexcept {
    return tag_block_.hugepage_bytes() + bucket_block_.hugepage_bytes();
  }

  std::uint8_t Tag(std::size_t bucket, int slot) const noexcept {
    return std::atomic_ref<std::uint8_t>(tags[bucket * B + static_cast<std::size_t>(slot)])
        .load(std::memory_order_relaxed);
  }

  void SetTag(std::size_t bucket, int slot, std::uint8_t tag) noexcept {
    std::atomic_ref<std::uint8_t>(tags[bucket * B + static_cast<std::size_t>(slot)])
        .store(tag, std::memory_order_relaxed);
  }

  bool SlotOccupied(std::size_t bucket, int slot) const noexcept {
    return Tag(bucket, slot) != 0;
  }

  // Snapshot of one bucket's B tags for the vectorized probe kernels
  // (simd_probe.h). This is the sanctioned tear-tolerant load: the copy may
  // interleave with concurrent SetTag stores, exactly like individual Tag()
  // loads would, and callers on optimistic paths still validate the version
  // counter afterwards. Under TSan the copy is element-wise relaxed atomic
  // so the intentional race stays annotated; the plain-memcpy fast path is
  // what the vector kernels want (the group is then reloaded from the
  // private copy, never from the live array).
  simd::TagGroup<B> LoadTagsVector(std::size_t bucket) const noexcept {
    simd::TagGroup<B> g;
#if CUCKOO_TSAN_ENABLED
    for (int s = 0; s < B; ++s) {
      g.bytes[s] = Tag(bucket, s);
    }
#else
    std::memcpy(g.bytes, &tags[bucket * B], B);
#endif
    return g;
  }

  // First free slot in `bucket`, or -1.
  int FindEmptySlot(std::size_t bucket) const noexcept {
    return simd::FirstSlot(simd::EmptySlotMask<B>(LoadTagsVector(bucket)));
  }

  // Direct (exclusive or validated-optimistic) accessors.
  const K& KeyRef(std::size_t bucket, int slot) const noexcept {
    return buckets[bucket].keys[slot];
  }
  const V& ValueRef(std::size_t bucket, int slot) const noexcept {
    return buckets[bucket].values[slot];
  }
  // Mutable variant for exclusive (all-stripes-held) views, e.g. the
  // LockedView iterator handing out in-place value references.
  V& MutableValueRef(std::size_t bucket, int slot) noexcept {
    return buckets[bucket].values[slot];
  }

  // Tear-tolerant loads for the optimistic read path: the bytes read may be
  // concurrently overwritten; callers must validate a version counter before
  // trusting the result. Relaxed atomic word accesses keep the (intentional)
  // race defined and TSan-visible; see src/common/atomic_util.h.
  K LoadKey(std::size_t bucket, int slot) const noexcept {
    return RelaxedLoad(buckets[bucket].keys[slot]);
  }
  V LoadValue(std::size_t bucket, int slot) const noexcept {
    return RelaxedLoad(buckets[bucket].values[slot]);
  }

  // Write a full slot. Caller must hold the bucket's stripe lock. Key/value
  // bytes go through RelaxedStore because an optimistic reader may be copying
  // them concurrently (it will discard the torn copy at validation).
  void WriteSlot(std::size_t bucket, int slot, std::uint8_t tag, const K& key,
                 const V& value) noexcept {
    RelaxedStore(buckets[bucket].keys[slot], key);
    RelaxedStore(buckets[bucket].values[slot], value);
    SetTag(bucket, slot, tag);
  }

  void WriteValue(std::size_t bucket, int slot, const V& value) noexcept {
    RelaxedStore(buckets[bucket].values[slot], value);
  }

  void ClearSlot(std::size_t bucket, int slot) noexcept { SetTag(bucket, slot, 0); }

  // Move the item in (from, from_slot) into (to, to_slot): the "move holes
  // backwards" displacement. Destination is written before the source tag is
  // cleared so the item is never missing from the table (§4.2).
  void MoveSlot(std::size_t from, int from_slot, std::size_t to, int to_slot) noexcept {
    RelaxedStore(buckets[to].keys[to_slot], buckets[from].keys[from_slot]);
    RelaxedStore(buckets[to].values[to_slot], buckets[from].values[from_slot]);
    SetTag(to, to_slot, Tag(from, from_slot));
    ClearSlot(from, from_slot);
  }

  // Alternate bucket of a slot, derived from the tag alone (partial-key
  // cuckoo hashing, as in MemC3): involutive, so displaced items can always
  // be bounced back.
  std::size_t AltBucket(std::size_t bucket, std::uint8_t tag) const noexcept {
    return (bucket ^ (static_cast<std::size_t>(Mix64(tag)) | 1u)) & mask;
  }

  std::size_t CountOccupied() const noexcept {
    std::size_t n = 0;
    for (std::size_t bkt = 0; bkt <= mask; ++bkt) {
      for (int s = 0; s < B; ++s) {
        n += Tag(bkt, s) != 0 ? 1 : 0;
      }
    }
    return n;
  }

  // Structural invariant check, callable from tests. The caller must hold
  // every stripe lock (or otherwise have exclusive access). Verifies
  //   * tag/slot consistency: AltBucket is involutive for every stored tag,
  //     so every occupant can be displaced back to where it came from;
  //   * occupancy: if `expected_size` >= 0, the number of non-zero tags
  //     matches it, and it never exceeds the slot count (load factor <= 1).
  // Aborts with a diagnostic on violation (CUCKOO_CHECK is active in every
  // build type). Key->tag consistency needs the hasher and lives one layer
  // up, in CuckooMap::AssertInvariants.
  void AssertInvariants(std::int64_t expected_size = -1) const {
    std::size_t occupied = 0;
    for (std::size_t bkt = 0; bkt <= mask; ++bkt) {
      for (int s = 0; s < B; ++s) {
        const std::uint8_t tag = Tag(bkt, s);
        if (tag == 0) {
          continue;
        }
        ++occupied;
        CUCKOO_CHECK(AltBucket(AltBucket(bkt, tag), tag) == bkt,
                     "AltBucket must be involutive for every stored tag");
      }
    }
    CUCKOO_CHECK(occupied <= slot_count(), "occupancy exceeds slot count");
    if (expected_size >= 0) {
      CUCKOO_CHECK(occupied == static_cast<std::size_t>(expected_size),
                   "occupied slot count disagrees with the size counter");
    }
  }

  void PrefetchTags(std::size_t bucket) const noexcept {
    PrefetchRead(&tags[bucket * B]);
  }
  // Pull both halves of the bucket: the key line and (when the values start
  // on a later line, as with the two-line §6 layout) the first value line.
  void PrefetchBucket(std::size_t bucket) const noexcept {
    PrefetchRead(&buckets[bucket]);
    if constexpr (sizeof(K) * B >= kCacheLineSize) {
      PrefetchRead(&buckets[bucket].values[0]);
    }
  }
  // Targeted prefetch for one movemask candidate: the key and value lines of
  // a specific slot, instead of the whole bucket. The batch pipelines call
  // this only for slots whose tag already matched, so cold-miss bandwidth is
  // spent on lines the probe will actually read.
  void PrefetchCandidate(std::size_t bucket, int slot) const noexcept {
    PrefetchRead(&buckets[bucket].keys[slot]);
    PrefetchRead(&buckets[bucket].values[slot]);
  }

  std::size_t mask;
  PageBlock tag_block_;
  PageBlock bucket_block_;
  std::uint8_t* tags;
  Bucket* buckets;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_TABLE_CORE_H_
