// Raw storage for a set-associative cuckoo table: a flat array of B-way
// buckets plus a parallel array of 1-byte partial-key tags.
//
// Layout follows §6 ("Each bucket has all the keys come first and then the
// values, and fits exactly two cache lines: one for 8 keys and another for 8
// values" for 8-byte pairs at B=8). Tags live in their own dense array so the
// BFS path search touches one byte per slot instead of a whole bucket, and a
// tag of zero marks an empty slot (HashedKey never produces tag 0).
//
// Access discipline (statically enforced): the key/value arrays may be read
// by optimistic readers while a writer is storing, so every touch of bucket
// bytes must go through the accessors below — RelaxedLoad/RelaxedStore for
// tear-tolerant paths, KeyRef/ValueRef for exclusive or validated access.
// tools/analysis/check_seqlock.py (rule raw-bucket-access) rejects any
// `.keys[...]` / `.values[...]` member access outside this file's accessor
// allowlist, so a new code path cannot quietly reintroduce an unchecked
// plain read.
#ifndef SRC_CUCKOO_TABLE_CORE_H_
#define SRC_CUCKOO_TABLE_CORE_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "src/common/atomic_util.h"
#include "src/common/cpu.h"
#include "src/common/debug_checks.h"
#include "src/common/hash.h"

namespace cuckoo {

template <typename K, typename V, int B>
struct TableCore {
  static_assert(B > 0 && B <= 16, "set-associativity must be in [1, 16]");
  static_assert(std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>,
                "optimistic cuckoo tables require trivially copyable key/value types; "
                "wrap variable-length data in fixed arrays or indirection");

  static constexpr int kSlotsPerBucket = B;

  struct Bucket {
    K keys[B];
    V values[B];
  };

  explicit TableCore(std::size_t bucket_count_log2)
      : mask((std::size_t{1} << bucket_count_log2) - 1),
        tags(new std::atomic<std::uint8_t>[(mask + 1) * B]),
        buckets(std::make_unique_for_overwrite<Bucket[]>(mask + 1)) {
    assert(bucket_count_log2 < 57);
    std::memset(static_cast<void*>(tags.get()), 0, (mask + 1) * B);
  }

  std::size_t bucket_count() const noexcept { return mask + 1; }
  std::size_t slot_count() const noexcept { return bucket_count() * B; }

  // Heap bytes this core occupies (for the memory-efficiency comparison).
  std::size_t HeapBytes() const noexcept {
    return bucket_count() * sizeof(Bucket) + slot_count() * sizeof(std::uint8_t);
  }

  std::uint8_t Tag(std::size_t bucket, int slot) const noexcept {
    return tags[bucket * B + static_cast<std::size_t>(slot)].load(std::memory_order_relaxed);
  }

  void SetTag(std::size_t bucket, int slot, std::uint8_t tag) noexcept {
    tags[bucket * B + static_cast<std::size_t>(slot)].store(tag, std::memory_order_relaxed);
  }

  bool SlotOccupied(std::size_t bucket, int slot) const noexcept {
    return Tag(bucket, slot) != 0;
  }

  // First free slot in `bucket`, or -1.
  int FindEmptySlot(std::size_t bucket) const noexcept {
    for (int s = 0; s < B; ++s) {
      if (Tag(bucket, s) == 0) {
        return s;
      }
    }
    return -1;
  }

  // Direct (exclusive or validated-optimistic) accessors.
  const K& KeyRef(std::size_t bucket, int slot) const noexcept {
    return buckets[bucket].keys[slot];
  }
  const V& ValueRef(std::size_t bucket, int slot) const noexcept {
    return buckets[bucket].values[slot];
  }
  // Mutable variant for exclusive (all-stripes-held) views, e.g. the
  // LockedView iterator handing out in-place value references.
  V& MutableValueRef(std::size_t bucket, int slot) noexcept {
    return buckets[bucket].values[slot];
  }

  // Tear-tolerant loads for the optimistic read path: the bytes read may be
  // concurrently overwritten; callers must validate a version counter before
  // trusting the result. Relaxed atomic word accesses keep the (intentional)
  // race defined and TSan-visible; see src/common/atomic_util.h.
  K LoadKey(std::size_t bucket, int slot) const noexcept {
    return RelaxedLoad(buckets[bucket].keys[slot]);
  }
  V LoadValue(std::size_t bucket, int slot) const noexcept {
    return RelaxedLoad(buckets[bucket].values[slot]);
  }

  // Write a full slot. Caller must hold the bucket's stripe lock. Key/value
  // bytes go through RelaxedStore because an optimistic reader may be copying
  // them concurrently (it will discard the torn copy at validation).
  void WriteSlot(std::size_t bucket, int slot, std::uint8_t tag, const K& key,
                 const V& value) noexcept {
    RelaxedStore(buckets[bucket].keys[slot], key);
    RelaxedStore(buckets[bucket].values[slot], value);
    SetTag(bucket, slot, tag);
  }

  void WriteValue(std::size_t bucket, int slot, const V& value) noexcept {
    RelaxedStore(buckets[bucket].values[slot], value);
  }

  void ClearSlot(std::size_t bucket, int slot) noexcept { SetTag(bucket, slot, 0); }

  // Move the item in (from, from_slot) into (to, to_slot): the "move holes
  // backwards" displacement. Destination is written before the source tag is
  // cleared so the item is never missing from the table (§4.2).
  void MoveSlot(std::size_t from, int from_slot, std::size_t to, int to_slot) noexcept {
    RelaxedStore(buckets[to].keys[to_slot], buckets[from].keys[from_slot]);
    RelaxedStore(buckets[to].values[to_slot], buckets[from].values[from_slot]);
    SetTag(to, to_slot, Tag(from, from_slot));
    ClearSlot(from, from_slot);
  }

  // Alternate bucket of a slot, derived from the tag alone (partial-key
  // cuckoo hashing, as in MemC3): involutive, so displaced items can always
  // be bounced back.
  std::size_t AltBucket(std::size_t bucket, std::uint8_t tag) const noexcept {
    return (bucket ^ (static_cast<std::size_t>(Mix64(tag)) | 1u)) & mask;
  }

  std::size_t CountOccupied() const noexcept {
    std::size_t n = 0;
    for (std::size_t bkt = 0; bkt <= mask; ++bkt) {
      for (int s = 0; s < B; ++s) {
        n += Tag(bkt, s) != 0 ? 1 : 0;
      }
    }
    return n;
  }

  // Structural invariant check, callable from tests. The caller must hold
  // every stripe lock (or otherwise have exclusive access). Verifies
  //   * tag/slot consistency: AltBucket is involutive for every stored tag,
  //     so every occupant can be displaced back to where it came from;
  //   * occupancy: if `expected_size` >= 0, the number of non-zero tags
  //     matches it, and it never exceeds the slot count (load factor <= 1).
  // Aborts with a diagnostic on violation (CUCKOO_CHECK is active in every
  // build type). Key->tag consistency needs the hasher and lives one layer
  // up, in CuckooMap::AssertInvariants.
  void AssertInvariants(std::int64_t expected_size = -1) const {
    std::size_t occupied = 0;
    for (std::size_t bkt = 0; bkt <= mask; ++bkt) {
      for (int s = 0; s < B; ++s) {
        const std::uint8_t tag = Tag(bkt, s);
        if (tag == 0) {
          continue;
        }
        ++occupied;
        CUCKOO_CHECK(AltBucket(AltBucket(bkt, tag), tag) == bkt,
                     "AltBucket must be involutive for every stored tag");
      }
    }
    CUCKOO_CHECK(occupied <= slot_count(), "occupancy exceeds slot count");
    if (expected_size >= 0) {
      CUCKOO_CHECK(occupied == static_cast<std::size_t>(expected_size),
                   "occupied slot count disagrees with the size counter");
    }
  }

  void PrefetchTags(std::size_t bucket) const noexcept {
    PrefetchRead(&tags[bucket * B]);
  }
  void PrefetchBucket(std::size_t bucket) const noexcept {
    PrefetchRead(&buckets[bucket]);
  }

  std::size_t mask;
  std::unique_ptr<std::atomic<std::uint8_t>[]> tags;
  std::unique_ptr<Bucket[]> buckets;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_TABLE_CORE_H_
