// Vectorized tag-probe kernels for the set-associative cuckoo tables.
//
// A bucket probe answers "which of these B one-byte tags equal t?". The
// scalar loop compares and branches per slot; the kernels here load the whole
// tag group into an SSE2/AVX2 register, do ONE compare (`cmpeq_epi8`) and ONE
// `movemask`, and hand back a candidate bitmask the caller walks with
// count-trailing-zeros. A cuckoo lookup always probes two buckets, so the
// dual-bucket form packs both tag groups into one register (128-bit for
// B <= 8, 256-bit for B = 16 under AVX2) and answers both probes with a
// single compare.
//
// Dispatch: ActiveProbeLevel() resolves once per process — best CPUID level
// (AVX2 needs the OSXSAVE/XGETBV YMM check, see cpu.cc), overridable with
// CUCKOO_FORCE_PROBE=scalar|sse2|avx2 — then every probe is a relaxed load
// plus a predictable branch. Tests flip levels at runtime through
// SetProbeLevelForTesting(); all levels are bit-for-bit equivalent (fuzzer-
// enforced, see map_conformance_test.cc).
//
// Seqlock discipline: these kernels NEVER touch shared memory. They operate
// on TagGroup snapshots produced by the sanctioned LoadTagsVector accessors
// of TableCore/GeneralCore, which own the concurrent-load semantics (relaxed
// element loads under TSan, a plain word copy otherwise) — see
// docs/memory_model.md "Vector loads in the optimistic window". The
// raw-vector-load rule of tools/analysis/check_seqlock.py rejects _mm*_load
// intrinsics everywhere outside this file, so a vector load aimed directly
// at a live tag array cannot slip in.
#ifndef SRC_CUCKOO_SIMD_PROBE_H_
#define SRC_CUCKOO_SIMD_PROBE_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>  // SSE2 (baseline on x86-64)
#include <immintrin.h>  // AVX2, used only inside target("avx2") functions
#define CUCKOO_SIMD_X86 1
#else
#define CUCKOO_SIMD_X86 0
#endif

namespace cuckoo {
namespace simd {

enum class ProbeLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

inline const char* ProbeLevelName(ProbeLevel level) noexcept {
  switch (level) {
    case ProbeLevel::kSse2:
      return "sse2";
    case ProbeLevel::kAvx2:
      return "avx2";
    case ProbeLevel::kScalar:
      break;
  }
  return "scalar";
}

// Parse "scalar" / "sse2" / "avx2" (the CUCKOO_FORCE_PROBE vocabulary).
inline bool ProbeLevelFromString(const char* s, ProbeLevel* out) noexcept {
  if (s == nullptr) {
    return false;
  }
  if (std::strcmp(s, "scalar") == 0) {
    *out = ProbeLevel::kScalar;
    return true;
  }
  if (std::strcmp(s, "sse2") == 0) {
    *out = ProbeLevel::kSse2;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = ProbeLevel::kAvx2;
    return true;
  }
  return false;
}

inline bool ProbeLevelSupported(ProbeLevel level) noexcept {
  switch (level) {
    case ProbeLevel::kScalar:
      return true;
    case ProbeLevel::kSse2:
      return CpuSupportsSse2();
    case ProbeLevel::kAvx2:
      return CpuSupportsAvx2();
  }
  return false;
}

inline ProbeLevel BestSupportedProbeLevel() noexcept {
  if (CpuSupportsAvx2()) {
    return ProbeLevel::kAvx2;
  }
  if (CpuSupportsSse2()) {
    return ProbeLevel::kSse2;
  }
  return ProbeLevel::kScalar;
}

namespace internal {

// -1 = unresolved. A function-local atomic avoids global-constructor
// ordering; concurrent first calls may both resolve, idempotently.
inline std::atomic<int>& ProbeLevelCell() noexcept {
  static std::atomic<int> cell{-1};
  return cell;
}

inline ProbeLevel ResolveProbeLevel() noexcept {
  ProbeLevel level = BestSupportedProbeLevel();
  ProbeLevel forced;
  if (ProbeLevelFromString(std::getenv("CUCKOO_FORCE_PROBE"), &forced) &&
      ProbeLevelSupported(forced)) {
    // An unsupported forced level is ignored (CI sets CUCKOO_FORCE_PROBE=avx2
    // on runners that may not have it; degrading beats crashing on #UD).
    level = forced;
  }
  return level;
}

}  // namespace internal

// The dispatch level every probe uses: resolved once from CPUID +
// CUCKOO_FORCE_PROBE, then a relaxed load per call.
inline ProbeLevel ActiveProbeLevel() noexcept {
  int v = internal::ProbeLevelCell().load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(internal::ResolveProbeLevel());
    internal::ProbeLevelCell().store(v, std::memory_order_relaxed);
  }
  return static_cast<ProbeLevel>(v);
}

// Force a dispatch level, clamped to hardware support; returns the previous
// level so tests can restore it. Safe (but perf-ambiguous) to flip while
// probes run concurrently: every level computes identical masks.
inline ProbeLevel SetProbeLevelForTesting(ProbeLevel level) noexcept {
  if (!ProbeLevelSupported(level)) {
    level = BestSupportedProbeLevel();
  }
  const ProbeLevel prev = ActiveProbeLevel();
  internal::ProbeLevelCell().store(static_cast<int>(level), std::memory_order_relaxed);
  return prev;
}

// A thread-private snapshot of one bucket's B tags. Only the sanctioned core
// accessors (TableCore::LoadTagsVector / GeneralCore::LoadTagsVector) produce
// these from live tables; the kernels below never read shared memory.
// Alignment matches the widest vector load each B uses, so the in-register
// reload of the snapshot is a single aligned instruction.
template <int B>
struct TagGroup {
  static_assert(B > 0 && B <= 16, "tag groups cover one bucket of <= 16 slots");
  static constexpr int kAlign = B >= 16 ? 16 : (B >= 8 ? 8 : (B >= 4 ? 4 : 1));
  alignas(kAlign) std::uint8_t bytes[B];
};

namespace internal {

template <int B>
inline constexpr std::uint32_t SlotBits = (B == 32) ? 0xffffffffu : ((1u << B) - 1);

// True when B maps onto a single partial/full XMM lane load.
constexpr bool VectorizableB(int b) noexcept { return b == 4 || b == 8 || b == 16; }

template <int B>
inline std::uint32_t MatchScalar(const TagGroup<B>& g, std::uint8_t tag) noexcept {
  std::uint32_t mask = 0;
  for (int s = 0; s < B; ++s) {
    mask |= (g.bytes[s] == tag ? 1u : 0u) << s;
  }
  return mask;
}

#if CUCKOO_SIMD_X86

// Load a B-byte tag group into the low B bytes of an XMM register (upper
// bytes zero for B < 16 — callers mask the movemask down to B bits, which
// also keeps tag==0 probes from matching the zeroed filler lanes).
template <int B>
inline __m128i LoadGroupSse2(const TagGroup<B>& g) noexcept {
  static_assert(VectorizableB(B));
  if constexpr (B == 16) {
    return _mm_load_si128(reinterpret_cast<const __m128i*>(g.bytes));
  } else if constexpr (B == 8) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(g.bytes));
  } else {
    std::uint32_t w;
    std::memcpy(&w, g.bytes, sizeof(w));
    return _mm_cvtsi32_si128(static_cast<int>(w));
  }
}

template <int B>
inline std::uint32_t MatchSse2(const TagGroup<B>& g, std::uint8_t tag) noexcept {
  const __m128i eq = _mm_cmpeq_epi8(LoadGroupSse2<B>(g), _mm_set1_epi8(static_cast<char>(tag)));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(eq)) & SlotBits<B>;
}

// Both buckets in one 128-bit compare for B <= 8 (two for B = 16): g1 in the
// low lanes, g2 immediately above, so the mask layout is g1 | g2 << B.
template <int B>
inline std::uint32_t Match2Sse2(const TagGroup<B>& g1, const TagGroup<B>& g2,
                                std::uint8_t tag) noexcept {
  static_assert(VectorizableB(B));
  if constexpr (B == 16) {
    return MatchSse2<16>(g1, tag) | (MatchSse2<16>(g2, tag) << 16);
  } else {
    __m128i v;
    if constexpr (B == 8) {
      v = _mm_unpacklo_epi64(LoadGroupSse2<8>(g1), LoadGroupSse2<8>(g2));
    } else {
      v = _mm_unpacklo_epi32(LoadGroupSse2<4>(g1), LoadGroupSse2<4>(g2));
    }
    const __m128i eq = _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(tag)));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(eq)) & SlotBits<2 * B>;
  }
}

// AVX2 dual-bucket probe for B = 16: both tag groups in one YMM register,
// one cmpeq + movemask for all 32 slots. The target attribute scopes the
// VEX codegen to this function; the baseline build stays SSE2-only.
__attribute__((target("avx2"))) inline std::uint32_t Match2Avx2(
    const TagGroup<16>& g1, const TagGroup<16>& g2, std::uint8_t tag) noexcept {
  const __m256i v = _mm256_inserti128_si256(
      _mm256_castsi128_si256(_mm_load_si128(reinterpret_cast<const __m128i*>(g1.bytes))),
      _mm_load_si128(reinterpret_cast<const __m128i*>(g2.bytes)), 1);
  const __m256i eq = _mm256_cmpeq_epi8(v, _mm256_set1_epi8(static_cast<char>(tag)));
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(eq));
}

#endif  // CUCKOO_SIMD_X86

}  // namespace internal

// Bitmask of slots in `g` whose tag equals `tag`; bits >= B are always zero.
// Callers on the lookup path pass tag != 0 (HashedKey never produces 0);
// probing for 0 is exactly EmptySlotMask. A single bucket fits one XMM
// register, so SSE2 and AVX2 share the 128-bit kernel here — AVX2 earns its
// keep on the dual-bucket form below.
template <int B>
inline std::uint32_t MatchTagMask(const TagGroup<B>& g, std::uint8_t tag) noexcept {
#if CUCKOO_SIMD_X86
  if constexpr (internal::VectorizableB(B)) {
    if (ActiveProbeLevel() != ProbeLevel::kScalar) {
      return internal::MatchSse2<B>(g, tag);
    }
  }
#endif
  return internal::MatchScalar<B>(g, tag);
}

// Dual-bucket probe: bits [0, B) are g1's matches, bits [B, 2B) are g2's.
template <int B>
inline std::uint32_t MatchTagMask2(const TagGroup<B>& g1, const TagGroup<B>& g2,
                                   std::uint8_t tag) noexcept {
#if CUCKOO_SIMD_X86
  if constexpr (B == 16) {
    switch (ActiveProbeLevel()) {
      case ProbeLevel::kAvx2:
        return internal::Match2Avx2(g1, g2, tag);
      case ProbeLevel::kSse2:
        return internal::Match2Sse2<16>(g1, g2, tag);
      case ProbeLevel::kScalar:
        break;
    }
  } else if constexpr (internal::VectorizableB(B)) {
    if (ActiveProbeLevel() != ProbeLevel::kScalar) {
      return internal::Match2Sse2<B>(g1, g2, tag);
    }
  }
#endif
  return internal::MatchScalar<B>(g1, tag) | (internal::MatchScalar<B>(g2, tag) << B);
}

// Bitmask of empty slots (tag == 0) in `g`.
template <int B>
inline std::uint32_t EmptySlotMask(const TagGroup<B>& g) noexcept {
  return MatchTagMask<B>(g, 0);
}

// Lowest set slot index of a candidate mask, or -1 when empty.
inline int FirstSlot(std::uint32_t mask) noexcept {
  return mask == 0 ? -1 : std::countr_zero(mask);
}

// Pop the lowest candidate: returns its slot index and clears it from *mask.
// Caller guarantees *mask != 0.
inline int NextCandidate(std::uint32_t* mask) noexcept {
  const int slot = std::countr_zero(*mask);
  *mask &= *mask - 1;
  return slot;
}

}  // namespace simd
}  // namespace cuckoo

#endif  // SRC_CUCKOO_SIMD_PROBE_H_
