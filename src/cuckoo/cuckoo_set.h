// CuckooSet — a concurrent set adapter over CuckooMap (empty payload). Keeps
// the pointer-free memory layout: one tag byte plus the key per element.
#ifndef SRC_CUCKOO_CUCKOO_SET_H_
#define SRC_CUCKOO_CUCKOO_SET_H_

#include <cstddef>
#include <functional>

#include "src/cuckoo/cuckoo_map.h"

namespace cuckoo {

namespace internal {
// Zero-size-ish payload (empty structs still occupy one byte in arrays).
struct Unit {};
}  // namespace internal

template <typename K, typename Hash = DefaultHash<K>, typename KeyEqual = std::equal_to<K>,
          int B = 8>
class CuckooSet {
 public:
  using KeyType = K;
  using Map = CuckooMap<K, internal::Unit, Hash, KeyEqual, B>;
  using Options = typename Map::Options;

  explicit CuckooSet(Options opts = Options{}, Hash hasher = Hash{}, KeyEqual eq = KeyEqual{})
      : map_(opts, std::move(hasher), std::move(eq)) {}

  // Returns true if `key` was newly added; false if it was already present
  // (the atomic membership test the dedup example relies on).
  bool Add(const K& key) { return map_.Insert(key, internal::Unit{}) == InsertResult::kOk; }

  // Like Add but reports table-full via InsertResult.
  InsertResult TryAdd(const K& key) { return map_.Insert(key, internal::Unit{}); }

  bool Contains(const K& key) const { return map_.Contains(key); }

  bool Remove(const K& key) { return map_.Erase(key); }

  std::size_t Size() const noexcept { return map_.Size(); }
  std::size_t SlotCount() const noexcept { return map_.SlotCount(); }
  double LoadFactor() const noexcept { return map_.LoadFactor(); }
  std::size_t HeapBytes() const noexcept { return map_.HeapBytes(); }
  void Clear() { map_.Clear(); }
  void Reserve(std::size_t n) { map_.Reserve(n); }
  MapStatsSnapshot Stats() const { return map_.Stats(); }

  // Exclusive iteration over members.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    auto view = map_.Lock();
    for (auto [key, unit] : view) {
      (void)unit;
      fn(key);
    }
  }

 private:
  Map map_;
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_CUCKOO_SET_H_
