// GeneralCuckooMap — the §7 "libcuckoo release" generality extension:
//
//   "The libcuckoo library offers an easy-to-use interface that supports
//    variable length key value pairs of arbitrary types, including those with
//    pointers or strings, provides iterators, and dynamically resizes itself
//    as it fills. The price of this generality is that it uses locks for
//    reads as well as writes ... at the cost of a 5-20% slowdown."
//
// Compared with CuckooMap:
//   * keys/values may be any movable types (std::string, std::vector,
//     std::unique_ptr, ...) — elements live in aligned raw storage and are
//     placement-constructed / destroyed per slot;
//   * every operation (including Find) takes the bucket-pair lock, so there
//     is no optimistic read protocol and no trivially-copyable requirement;
//   * displacements move-construct elements bucket-to-bucket;
//   * old cores are retired (kept allocated but empty) after expansion: the
//     unlocked BFS path search may still be scanning one; retired cores hold
//     no live elements (moved out during rehash) and their total size is
//     bounded by the live core's;
//   * expansion is incremental when the table is large enough (see Expand):
//     the doubled core is published lock-free, a background migrator drains
//     the old core bucket-by-bucket under the ordinary stripe locks, writers
//     piggyback-migrate the buckets they touch, and operations consult both
//     cores (live first, then the draining one) until a per-bucket migrated
//     bitmap says the old bucket is permanently empty. The protocol relies on
//     a stripe-alignment invariant: when old_bucket_count is a multiple of
//     the stripe count, an old bucket b and both of its images in the doubled
//     core (b and b + old_bucket_count) share one stripe, and the alternate
//     buckets of any element with a given tag are pairwise stripe-equal too —
//     so the ordinary pair lock for a key covers that key's buckets in BOTH
//     cores at once. Small tables fall back to the stop-the-world rehash.
//
// The cuckoo algorithm itself is identical: tag-directed BFS path discovery
// outside the critical section, per-displacement validate-and-execute under
// striped bucket-pair locks.
#ifndef SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_
#define SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/atomic_util.h"
#include "src/common/cpu.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/common/page_alloc.h"
#include "src/common/striped_locks.h"
#include "src/common/test_points.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/path_search.h"
#include "src/cuckoo/simd_probe.h"
#include "src/cuckoo/stats.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

namespace internal {

// B-way bucket storage for non-trivial types: a tag array (0 = empty) plus
// uninitialized aligned storage for keys and values. Lifetime is managed
// per-slot with placement new; the owner must destroy occupied slots before
// the core is released (the destructor asserts nothing is leaked in debug).
//
// Storage is a PageBlock (anonymous mmap for large cores, optionally with
// 2 MB huge-page backing) on purpose: the kernel's zero pages ARE the
// "every slot empty" state, so a doubled core materializes in O(1) work and
// each page is faulted in by the first operation that touches it — not by
// the one writer whose insert happened to trigger the expansion. (With
// value-initialized storage, zeroing the x2 array was the dominant term of
// the expansion stall.) Tags are plain bytes read/written through
// std::atomic_ref; Bucket stays an implicit-lifetime type, so the zeroed
// block itself starts the array's lifetime.
template <typename K, typename V, int B>
struct GeneralCore {
  static constexpr int kSlotsPerBucket = B;

  struct Bucket {
    // Accessed only via TagRef: the unlocked BFS path search reads tags
    // concurrently with writers (relaxed; staleness is handled by
    // execute-time validation).
    std::uint8_t tags[B];
    alignas(K) unsigned char key_storage[B][sizeof(K)];
    alignas(V) unsigned char value_storage[B][sizeof(V)];
  };
  static_assert(std::is_trivially_copyable_v<Bucket> &&
                    std::is_trivially_default_constructible_v<Bucket>,
                "zeroed storage must be able to start the bucket array's lifetime");
  static_assert(std::atomic_ref<std::uint8_t>::required_alignment == 1);

  explicit GeneralCore(std::size_t bucket_count_log2, bool want_hugepages = false)
      : mask((std::size_t{1} << bucket_count_log2) - 1),
        block_((mask + 1) * sizeof(Bucket), want_hugepages),
        buckets(static_cast<Bucket*>(block_.data())) {}

  GeneralCore(const GeneralCore&) = delete;
  GeneralCore& operator=(const GeneralCore&) = delete;

  ~GeneralCore() {
    // Trivially destructible slots need no per-slot teardown, and skipping
    // the walk means a never-touched (calloc-lazy) region is never faulted
    // in just to be freed.
    if constexpr (!(std::is_trivially_destructible_v<K> &&
                    std::is_trivially_destructible_v<V>)) {
      DestroyAll();
    }
  }

  std::size_t bucket_count() const noexcept { return mask + 1; }
  std::size_t slot_count() const noexcept { return bucket_count() * B; }

  std::size_t HeapBytes() const noexcept { return bucket_count() * sizeof(Bucket); }

  // Bytes granted MADV_HUGEPAGE backing (0 unless requested and honored).
  std::size_t hugepage_bytes() const noexcept { return block_.hugepage_bytes(); }

  std::atomic_ref<std::uint8_t> TagRef(std::size_t bucket, int slot) const noexcept {
    return std::atomic_ref<std::uint8_t>(buckets[bucket].tags[slot]);
  }

  std::uint8_t Tag(std::size_t bucket, int slot) const noexcept {
    return TagRef(bucket, slot).load(std::memory_order_relaxed);
  }

  K& Key(std::size_t bucket, int slot) noexcept {
    return *std::launder(reinterpret_cast<K*>(buckets[bucket].key_storage[slot]));
  }
  const K& Key(std::size_t bucket, int slot) const noexcept {
    return *std::launder(reinterpret_cast<const K*>(buckets[bucket].key_storage[slot]));
  }
  V& Value(std::size_t bucket, int slot) noexcept {
    return *std::launder(reinterpret_cast<V*>(buckets[bucket].value_storage[slot]));
  }
  const V& Value(std::size_t bucket, int slot) const noexcept {
    return *std::launder(reinterpret_cast<const V*>(buckets[bucket].value_storage[slot]));
  }

  // Snapshot of one bucket's B tags for the vectorized probe kernels
  // (simd_probe.h) — the sanctioned tear-tolerant load. Element-wise relaxed
  // atomic under TSan so the intentional race with unlocked BFS/peek readers
  // stays annotated; a plain byte copy otherwise (the kernels reload from the
  // private copy, never from the live array).
  simd::TagGroup<B> LoadTagsVector(std::size_t bucket) const noexcept {
    simd::TagGroup<B> g;
#if CUCKOO_TSAN_ENABLED
    for (int s = 0; s < B; ++s) {
      g.bytes[s] = Tag(bucket, s);
    }
#else
    std::memcpy(g.bytes, buckets[bucket].tags, B);
#endif
    return g;
  }

  int FindEmptySlot(std::size_t bucket) const noexcept {
    return simd::FirstSlot(simd::EmptySlotMask<B>(LoadTagsVector(bucket)));
  }

  template <typename KArg, typename VArg>
  void ConstructSlot(std::size_t bucket, int slot, std::uint8_t tag, KArg&& key, VArg&& value) {
    ::new (static_cast<void*>(buckets[bucket].key_storage[slot])) K(std::forward<KArg>(key));
    ::new (static_cast<void*>(buckets[bucket].value_storage[slot])) V(std::forward<VArg>(value));
    TagRef(bucket, slot).store(tag, std::memory_order_relaxed);
  }

  void DestroySlot(std::size_t bucket, int slot) noexcept {
    Key(bucket, slot).~K();
    Value(bucket, slot).~V();
    TagRef(bucket, slot).store(0, std::memory_order_relaxed);
  }

  // Move the element in (from, from_slot) to the empty (to, to_slot).
  void MoveSlot(std::size_t from, int from_slot, std::size_t to, int to_slot) {
    ConstructSlot(to, to_slot, Tag(from, from_slot), std::move(Key(from, from_slot)),
                  std::move(Value(from, from_slot)));
    DestroySlot(from, from_slot);
  }

  std::size_t AltBucket(std::size_t bucket, std::uint8_t tag) const noexcept {
    return (bucket ^ (static_cast<std::size_t>(Mix64(tag)) | 1u)) & mask;
  }

  void PrefetchTags(std::size_t bucket) const noexcept { PrefetchRead(&buckets[bucket]); }

  // Targeted prefetch for one movemask candidate: the key and value storage
  // lines of a specific slot (the batch pipeline calls this only for slots
  // whose tag already matched).
  void PrefetchSlot(std::size_t bucket, int slot) const noexcept {
    PrefetchRead(&buckets[bucket].key_storage[slot]);
    PrefetchRead(&buckets[bucket].value_storage[slot]);
  }

  // Empties every slot (destroy + tag = 0). Callers that only need the
  // memory released use the destructor, which skips the walk for trivially
  // destructible types; Clear() and canceled migrations need the tags
  // actually zeroed and must use this.
  void DestroyAll() noexcept {
    for (std::size_t b = 0; b <= mask; ++b) {
      for (int s = 0; s < B; ++s) {
        if (Tag(b, s) != 0) {
          DestroySlot(b, s);
        }
      }
    }
  }

  std::size_t mask;
  PageBlock block_;
  Bucket* buckets;
};

}  // namespace internal

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>, int B = 4>
class GeneralCuckooMap {
 public:
  using KeyType = K;
  using ValueType = V;
  using Core = internal::GeneralCore<K, V, B>;
  static constexpr int kSlotsPerBucket = B;

  struct Options {
    std::size_t initial_bucket_count_log2 = 8;
    std::size_t stripe_count = LockStripes::kDefaultStripeCount;
    std::size_t max_search_slots = 2000;
    bool prefetch = true;
    bool auto_expand = true;
    // Expand online (two-core migration window) whenever the stripe-alignment
    // invariant holds: old_bucket_count % stripe_count == 0. Tables smaller
    // than one bucket per stripe — and this flag off — use the stop-the-world
    // rehash instead.
    bool incremental_expand = true;
    // Old-core buckets a writer drains inline when its insert needs more room
    // while a migration window is still open (backpressure on the window).
    std::size_t help_drain_buckets = 64;
    // Request 2 MB huge-page backing for the bucket array (advisory; large
    // cores only — see src/common/page_alloc.h).
    bool hugepages = false;
  };

  explicit GeneralCuckooMap(Options opts = Options{}, Hash hasher = Hash{},
                            KeyEqual eq = KeyEqual{})
      : opts_(opts),
        hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        stripes_(opts.stripe_count),
        core_(std::make_unique<Core>(opts.initial_bucket_count_log2, opts.hugepages)) {
    stripes_.SetContentionCounter(stats_.ContentionCounter());
    stats_.SetHugepageBytes(core_->hugepage_bytes());
    core_snapshot_.store(core_.get(), std::memory_order_release);
  }

  GeneralCuckooMap(const GeneralCuckooMap&) = delete;
  GeneralCuckooMap& operator=(const GeneralCuckooMap&) = delete;

  ~GeneralCuckooMap() {
    MutexLock maintenance(maintenance_mutex_);
    StopMigratorLocked();
    // Elements still split across the live and draining cores are destroyed
    // by the cores' own destructors.
  }

  // ----- Lookup (locked) -----------------------------------------------------

  // Copy the value out. Requires V copyable; use WithValue for move-only V.
  bool Find(const K& key, V* out) const {
    static_assert(std::is_copy_assignable_v<V>,
                  "Find copies the value; use WithValue() for move-only types");
    bool hit = WithValue(key, [out](const V& v) { *out = v; });
    return hit;
  }

  bool Contains(const K& key) const {
    return WithValue(key, [](const V&) {});
  }

  // Apply `fn(const V&)` to the mapped value under the bucket locks.
  // Returns false (fn not called) if the key is absent.
  template <typename Fn>
  bool WithValue(const K& key, Fn&& fn) const {
    const std::uint64_t t0 = stats_.MaybeStartLookupTimer();
    const HashedKey h = HashedKey::From(hasher_(key));
    bool found = WithPair(h, [&](const PairView& v, PairGuard& guard) {
      Locator loc;
      Core* where = nullptr;
      bool hit = FindInView(v, h.tag, key, &where, &loc);
      if (hit) {
        fn(const_cast<const Core&>(*where).Value(loc.bucket, loc.slot));
      }
      guard.ReleaseNoModify();
      return hit;
    });
    stats_.RecordLookup(found);
    stats_.FinishLookupTimer(t0);
    return found;
  }

  // Batched lookup with software pipelining (the §4.3.2 prefetch insight
  // applied to the locked read path): hashes and bucket prefetches for key
  // i+D are issued while key i is probed, so the bucket pair is already in
  // cache when its pair lock is taken. `fn(i, const V&)` is called under the
  // bucket locks for every key that is present; returns the hit count.
  // Concurrency-safe like WithValue; each probe is individually atomic (the
  // batch as a whole is not a snapshot).
  template <typename Fn>
  std::size_t WithValueBatch(const K* keys, std::size_t count, Fn&& fn) const {
    // Three-stage pipeline, retuned for the vector probe kernel: hash + tag
    // lines at distance kDepth, then at distance kPeek a racy movemask of the
    // (likely now cached) tags prefetches key/value storage only for
    // candidate slots. The peek is a pure prefetch hint — the locked probe at
    // the pipeline head re-reads everything under the pair lock.
    constexpr std::size_t kDepth = 8;  // hash + tag-line prefetch distance
    constexpr std::size_t kPeek = 4;   // candidate key/value prefetch distance
    HashedKey ring[kDepth];

    auto stage = [&](std::size_t i) {
      ring[i % kDepth] = HashedKey::From(hasher_(keys[i]));
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      const std::size_t b1 = ring[i % kDepth].Bucket1(core->mask);
      core->PrefetchTags(b1);
      core->PrefetchTags(core->AltBucket(b1, ring[i % kDepth].tag));
    };
    auto peek = [&](std::size_t i) {
      const HashedKey& h = ring[i % kDepth];
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      std::uint32_t cand =
          simd::MatchTagMask2<B>(core->LoadTagsVector(b1), core->LoadTagsVector(b2), h.tag);
      while (cand != 0) {
        const int bit = simd::NextCandidate(&cand);
        core->PrefetchSlot(bit < B ? b1 : b2, bit < B ? bit : bit - B);
      }
    };

    const std::size_t lead = count < kDepth ? count : kDepth;
    for (std::size_t i = 0; i < lead; ++i) {
      stage(i);
    }
    for (std::size_t i = 0; i < (count < kPeek ? count : kPeek); ++i) {
      peek(i);
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < count; ++i) {
      // Probe before staging: ring[i % kDepth] is the slot stage(i + kDepth)
      // would overwrite. peek(i + kPeek) reads an entry staged kDepth - kPeek
      // iterations ago, untouched until stage(i + kDepth + kPeek).
      const HashedKey& h = ring[i % kDepth];
      bool hit = WithPair(h, [&](const PairView& v, PairGuard& guard) {
        Locator loc;
        Core* where = nullptr;
        bool found = FindInView(v, h.tag, keys[i], &where, &loc);
        if (found) {
          fn(i, const_cast<const Core&>(*where).Value(loc.bucket, loc.slot));
        }
        guard.ReleaseNoModify();
        return found;
      });
      if (i + kDepth < count) {
        stage(i + kDepth);
      }
      if (i + kPeek < count) {
        peek(i + kPeek);
      }
      hits += hit ? 1 : 0;
      stats_.RecordLookup(hit);
    }
    // Distribution of hits per batched (prefetch-pipelined) lookup call.
    stats_.RecordBatchHits(hits);
    return hits;
  }

  // Apply `fn(V&)` to the mapped value (mutable) under the bucket locks.
  template <typename Fn>
  bool WithValueMut(const K& key, Fn&& fn) {
    const HashedKey h = HashedKey::From(hasher_(key));
    return WithPair(h, [&](const PairView& v, PairGuard& guard) {
      Locator loc;
      Core* where = nullptr;
      if (!FindInView(v, h.tag, key, &where, &loc)) {
        guard.ReleaseNoModify();
        return false;
      }
      fn(where->Value(loc.bucket, loc.slot));
      return true;  // guard bumps versions on destruction
    });
  }

  // ----- Mutation ------------------------------------------------------------

  template <typename KArg, typename VArg>
  InsertResult Insert(KArg&& key, VArg&& value) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/false, [](const V&) {}, [](const V&) {});
  }

  template <typename KArg, typename VArg>
  InsertResult Upsert(KArg&& key, VArg&& value) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/true, [](const V&) {}, [](const V&) {});
  }

  // Upsert, invoking `then(const V& stored)` while the bucket-pair lock is
  // still held whenever the table was actually modified (fresh insert or
  // overwrite). Durability layers use this to assign a WAL sequence number
  // inside the critical section, so log order matches per-key table order
  // (two racing SETs on one key serialize identically in both).
  template <typename KArg, typename VArg, typename Then>
  InsertResult UpsertThen(KArg&& key, VArg&& value, Then&& then) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/true, [](const V&) {},
                    std::forward<Then>(then));
  }

  // UpsertThen that also exposes the value being replaced: on an overwrite,
  // `on_old(const V& old)` runs under the pair guard immediately before the
  // old value is destroyed (never on a fresh insert). Tiered stores use this
  // to release external resources (e.g. value-log space) the old value
  // referenced — reading it after the upsert would be too late, the slot
  // has already been reassigned.
  template <typename KArg, typename VArg, typename OnOld, typename Then>
  InsertResult UpsertReplaceThen(KArg&& key, VArg&& value, OnOld&& on_old, Then&& then) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/true, std::forward<OnOld>(on_old),
                    std::forward<Then>(then));
  }

  bool Update(const K& key, V value) {
    return WithValueMut(key, [&value](V& v) { v = std::move(value); });
  }

  bool Erase(const K& key) {
    return EraseIf(key, [](const V&) { return true; });
  }

  // Remove `key` only if `pred(const V&)` holds, atomically under the bucket
  // locks (e.g. erase-if-still-expired for TTL caches). Returns true iff the
  // entry was removed.
  template <typename Pred>
  bool EraseIf(const K& key, Pred&& pred) {
    return EraseIfThen(key, std::forward<Pred>(pred), [] {});
  }

  // EraseIf, invoking `after()` under the bucket-pair lock right after the
  // slot is destroyed (same WAL-ordering rationale as UpsertThen).
  template <typename Pred, typename After>
  bool EraseIfThen(const K& key, Pred&& pred, After&& after) {
    const HashedKey h = HashedKey::From(hasher_(key));
    return WithPair(h, [&](const PairView& v, PairGuard& guard) {
      Locator loc;
      Core* where = nullptr;
      if (!FindInView(v, h.tag, key, &where, &loc) ||
          !pred(const_cast<const Core&>(*where).Value(loc.bucket, loc.slot))) {
        guard.ReleaseNoModify();
        return false;
      }
      where->DestroySlot(loc.bucket, loc.slot);
      size_.fetch_sub(1, std::memory_order_relaxed);
      stats_.RecordErase();
      after();
      return true;
    });
  }

  // ----- Capacity ------------------------------------------------------------

  std::size_t Size() const noexcept { return size_.load(std::memory_order_relaxed); }
  std::size_t SlotCount() const noexcept {
    MutexLock g(maintenance_mutex_);
    return core_->slot_count();
  }
  double LoadFactor() const noexcept {
    MutexLock g(maintenance_mutex_);
    return static_cast<double>(Size()) / static_cast<double>(core_->slot_count());
  }
  std::size_t HeapBytes() const noexcept {
    MutexLock g(maintenance_mutex_);
    return core_->HeapBytes() +
           (draining_core_ != nullptr ? draining_core_->HeapBytes() : 0) +
           stripes_.stripe_count() * sizeof(PaddedVersionLock);
  }

  void Reserve(std::size_t n) {
    while (true) {
      {
        MutexLock g(maintenance_mutex_);
        if (static_cast<double>(core_->slot_count()) * 0.95 >= static_cast<double>(n) + B) {
          return;
        }
      }
      Expand(nullptr);
    }
  }

  void Clear() {
    MutexLock maintenance(maintenance_mutex_);
    StopMigratorLocked();
    AllGuard all(stripes_);
    if (draining_core_ != nullptr) {
      // A canceled migration leaves elements split across both cores; empty
      // and retire the old one (stale readers may still probe it — they find
      // only zero tags).
      draining_core_->DestroyAll();
      retired_.push_back(std::move(draining_core_));
      retired_migrations_.push_back(std::move(migration_state_));
    }
    core_->DestroyAll();
    size_.store(0, std::memory_order_relaxed);
  }

  MapStatsSnapshot Stats() const { return stats_.Read(); }
  void ResetStats() { stats_.Reset(); }
  // Toggle the sampled lookup/insert latency timers (counters stay on).
  void SetLatencyProfiling(bool enabled) { stats_.SetLatencyProfiling(enabled); }
  const Options& options() const noexcept { return opts_; }

  // ----- Online (fuzzy) snapshot walk ---------------------------------------

  // Counters describing one TrySnapshotBuckets walk (for durability stats).
  struct SnapshotWalkStats {
    std::uint64_t buckets = 0;
    std::uint64_t entries = 0;
    std::uint64_t empty_skips = 0;      // buckets skipped by version validation
    std::uint64_t lock_fallbacks = 0;   // blocking Lock() after K failed tries
    std::uint64_t displaced_entries = 0;  // entries re-emitted from the move log
  };

  // Visit a fuzzy snapshot of the table while writers keep running. Unlike
  // ForEach, no global lock is ever taken: the walk holds at most one stripe
  // lock at a time, so a writer contends only on the single stripe currently
  // being copied. Per bucket:
  //
  //   * Empty buckets are skipped optimistically: tag bytes are read lock-free
  //     and validated against the stripe's §4.4 version counter (the same
  //     snapshot/validate discipline the optimistic read path uses). No lock.
  //   * Occupied buckets fall back to the stripe lock — keys and values here
  //     own heap memory (std::string, ...), so copying them outside the lock
  //     would race with a concurrent DestroySlot (the very race the locked
  //     read protocol of this §7 generality layer exists to prevent). The
  //     acquisition itself is optimistic: TryLock up to `lock_retries` times,
  //     then a blocking Lock() as the fallback.
  //
  // Cuckoo displacements can move an element from a not-yet-visited bucket
  // into an already-visited one, which would make the walk miss it entirely;
  // while a walk is active, ExecutePath records every moved element into a
  // side log that is drained (re-emitted through `fn`) after the last bucket.
  // Duplicate emissions are possible and expected — consumers load snapshots
  // with upsert semantics and WAL replay fixes up any stale copy.
  //
  // `fn(const K&, const V&)` is invoked on copies, outside any lock. Returns
  // false (walk must be retried by the caller, e.g. after rewinding its
  // output file) if an expansion swapped the core mid-walk; bucket indices
  // are not comparable across cores.
  //
  // Constrained (not just asserted) to copy-constructible K/V: the
  // displacement side log holds copies, and a map of move-only elements
  // would silently drop every displaced element from the snapshot if this
  // overload existed for it. The requires-clause makes "this map cannot be
  // snapshotted" detectable (`requires { m.TrySnapshotBuckets(...) }` is
  // false) rather than a hard error inside the body.
  template <typename Fn>
  bool TrySnapshotBuckets(Fn&& fn, int lock_retries = 8,
                          SnapshotWalkStats* stats_out = nullptr) const
    requires(std::is_copy_constructible_v<K> && std::is_copy_constructible_v<V>)
  {
    MutexLock one_walk(snapshot_walk_mutex_);
    {
      MutexLock g(displaced_mutex_);
      displaced_log_.clear();
    }
    snapshot_active_.store(true, std::memory_order_release);
    SnapshotWalkStats stats;
    const bool ok = WalkBuckets(fn, lock_retries, &stats);
    snapshot_active_.store(false, std::memory_order_release);
    if (ok) {
      // Drain the displacement log: anything cuckooed across the walk
      // frontier is emitted here (possibly a second time — harmless).
      std::vector<std::pair<K, V>> moved;
      {
        MutexLock g(displaced_mutex_);
        moved.swap(displaced_log_);
      }
      for (const auto& [key, value] : moved) {
        fn(key, value);
      }
      stats.displaced_entries = moved.size();
      stats.entries += moved.size();
    }
    if (stats_out != nullptr) {
      *stats_out = stats;
    }
    return ok;
  }

  // Visit every element exclusively (all stripes held). During a migration
  // window elements are split across the live and draining cores; both are
  // visited (a key lives in exactly one of them).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    MutexLock maintenance(maintenance_mutex_);
    AllGuard all(stripes_);
    for (Core* core : {core_.get(), draining_core_.get()}) {
      if (core == nullptr) {
        continue;
      }
      for (std::size_t b = 0; b < core->bucket_count(); ++b) {
        for (int s = 0; s < B; ++s) {
          if (core->Tag(b, s) != 0) {
            fn(const_cast<const K&>(core->Key(b, s)), core->Value(b, s));
          }
        }
      }
    }
  }

 private:
  struct Locator {
    std::size_t bucket;
    int slot;
  };

  // State of one incremental expansion: the old core being drained, the live
  // core that replaced it, and a bitmap recording which old buckets are
  // permanently empty. Retired (kept allocated) after the window closes, like
  // retired_ cores: a stale reader may still hold the pointer it loaded from
  // migration_ and probe the bitmap or the old core's tags.
  struct MigrationState {
    Core* old_core;
    Core* new_core;
    std::size_t old_bucket_count;
    // One bit per old-core bucket, set once the bucket is permanently empty.
    // All transitions (and the tag stores they summarize) happen under the
    // bucket's stripe lock, so relaxed accesses are ordered by the lock;
    // bits are monotone 0 -> 1, so a stale unlocked read only costs a
    // redundant probe of an empty bucket.
    std::unique_ptr<std::atomic<std::uint64_t>[]> migrated_words;
    std::atomic<std::size_t> buckets_done{0};
    // Round-robin cursor handing out help-drain chunks to writers.
    std::atomic<std::size_t> help_cursor{0};
    std::atomic<bool> cancel{false};
    std::atomic<bool> complete{false};

    MigrationState(Core* old_c, Core* new_c)
        : old_core(old_c),
          new_core(new_c),
          old_bucket_count(old_c->bucket_count()),
          migrated_words(new std::atomic<std::uint64_t>[(old_bucket_count + 63) / 64]) {
      for (std::size_t w = 0; w < (old_bucket_count + 63) / 64; ++w) {
        migrated_words[w].store(0, std::memory_order_relaxed);
      }
    }

    bool BucketMigrated(std::size_t b) const noexcept {
      return ((migrated_words[b >> 6].load(std::memory_order_relaxed) >> (b & 63)) & 1u) != 0;
    }
    // Returns true if this call set the bit (exactly one marker wins).
    bool MarkMigrated(std::size_t b) noexcept {
      const std::uint64_t bit = std::uint64_t{1} << (b & 63);
      return (migrated_words[b >> 6].fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
    }
  };

  // Everything an operation needs inside one bucket-pair critical section.
  // During a migration window `ms` is non-null and (ob1, ob2) are the key's
  // buckets in the draining core; the stripe pair locked for (b1, b2) covers
  // them too — the window only opens when old_bucket_count is a multiple of
  // the stripe count, so b and b & old_mask share a stripe, and the two
  // cores' alternate buckets (bucket ^ f(tag), masked) are stripe-equal as
  // well.
  struct PairView {
    Core* core;
    std::size_t b1, b2;
    MigrationState* ms;
    std::size_t ob1, ob2;

    // False once both old buckets are drained: the old core can no longer
    // hold this key and operations skip probing it.
    bool OldMayHold() const noexcept {
      return ms != nullptr && !(ms->BucketMigrated(ob1) && ms->BucketMigrated(ob2));
    }
  };

  // Run `fn(view, guard)` with the key's bucket pair locked, re-resolving
  // buckets if an expansion swapped the core while we waited. `fn` may
  // release the guard early; otherwise its destructor bumps the stripe
  // versions (treated as a modification).
  template <typename Fn>
  decltype(auto) WithPair(const HashedKey& h, Fn&& fn) const {
    for (;;) {
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      std::size_t b1 = h.Bucket1(core->mask);
      std::size_t b2 = core->AltBucket(b1, h.tag);
      PairGuard guard(stripes_, b1, b2);
      if (core_snapshot_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        continue;
      }
      PairView view{core, b1, b2, nullptr, 0, 0};
      MigrationState* ms = migration_.load(std::memory_order_acquire);
      // Honor the window only when the loaded state matches the loaded core:
      // a mismatched (stale) pairing would resolve old-core buckets against
      // the wrong mask. Ignoring a mismatch is always safe — a state whose
      // new_core is not the validated core is either already fully drained
      // (its old core holds only zero tags) or belongs to a core this
      // operation can no longer be running against (the switch publishes
      // migration_ before core_snapshot_, and the validation above pins the
      // core for the whole critical section).
      if (ms != nullptr && ms->new_core == core) {
        view.ms = ms;
        view.ob1 = b1 & ms->old_core->mask;
        view.ob2 = b2 & ms->old_core->mask;
      }
      return fn(view, guard);
    }
  }

  bool FindSlotLocked(Core* core, std::size_t b1, std::size_t b2, std::uint8_t tag,
                      const K& key, Locator* loc) const {
    // One vectorized probe answers both buckets: candidate bits [0, B) are
    // b1's tag matches, [B, 2B) are b2's, walked in probe order.
    std::uint32_t cand =
        simd::MatchTagMask2<B>(core->LoadTagsVector(b1), core->LoadTagsVector(b2), tag);
    while (cand != 0) {
      const int bit = simd::NextCandidate(&cand);
      const std::size_t b = bit < B ? b1 : b2;
      const int s = bit < B ? bit : bit - B;
      if (eq_(const_cast<const Core&>(*core).Key(b, s), key)) {
        loc->bucket = b;
        loc->slot = s;
        return true;
      }
    }
    return false;
  }

  // Two-core probe: live core first, then the draining core unless its
  // bitmap says this key's old buckets are empty. A key lives in at most one
  // core (fresh inserts go live-only; migration moves, never copies).
  bool FindInView(const PairView& v, std::uint8_t tag, const K& key, Core** where,
                  Locator* loc) const {
    if (FindSlotLocked(v.core, v.b1, v.b2, tag, key, loc)) {
      *where = v.core;
      return true;
    }
    if (v.OldMayHold() && FindSlotLocked(v.ms->old_core, v.ob1, v.ob2, tag, key, loc)) {
      *where = v.ms->old_core;
      return true;
    }
    return false;
  }

  // `after(const V& stored)` runs under the pair guard at every point where
  // the table was modified (overwrite or fresh construct) — see UpsertThen.
  // `on_old(const V& old)` runs just before an overwrite destroys the
  // previous value — see UpsertReplaceThen.
  template <typename KArg, typename VArg, typename OnOld, typename After>
  InsertResult DoInsert(KArg&& key, VArg&& value, bool overwrite_existing, OnOld&& on_old,
                        After&& after) {
    const std::uint64_t t0 = stats_.MaybeStartInsertTimer();
    const InsertResult r = DoInsertLoop(std::forward<KArg>(key), std::forward<VArg>(value),
                                        overwrite_existing, std::forward<OnOld>(on_old),
                                        std::forward<After>(after));
    stats_.FinishInsertTimer(t0);
    return r;
  }

  template <typename KArg, typename VArg, typename OnOld, typename After>
  InsertResult DoInsertLoop(KArg&& key, VArg&& value, bool overwrite_existing, OnOld&& on_old,
                            After&& after) {
    const HashedKey h = HashedKey::From(hasher_(key));
    for (;;) {
      std::optional<InsertResult> fast = WithPair(
          h, [&](const PairView& v, PairGuard& guard) -> std::optional<InsertResult> {
            Locator loc;
            Core* where = nullptr;
            if (FindInView(v, h.tag, key, &where, &loc)) {
              if (overwrite_existing) {
                // Overwrite in place, even when the slot still lives in the
                // draining core — the migrator will carry the new value over.
                on_old(const_cast<const Core&>(*where).Value(loc.bucket, loc.slot));
                where->Value(loc.bucket, loc.slot) = V(std::forward<VArg>(value));
                stats_.RecordDuplicateInsert();
                after(const_cast<const Core&>(*where).Value(loc.bucket, loc.slot));
                return InsertResult::kKeyExists;
              }
              guard.ReleaseNoModify();
              stats_.RecordDuplicateInsert();
              return InsertResult::kKeyExists;
            }
            // Piggyback-migrate: while the stripes are held anyway, drain the
            // same-tag residents of the touched old buckets (bounded work, no
            // path search — their candidate buckets are under these stripes).
            std::size_t moved = 0;
            if (v.OldMayHold()) {
              moved = PiggybackMigrateLocked(v, h.tag);
            }
            for (std::size_t b : {v.b1, v.b2}) {
              int s = v.core->FindEmptySlot(b);
              if (s >= 0) {
                v.core->ConstructSlot(b, s, h.tag, std::forward<KArg>(key),
                                      std::forward<VArg>(value));
                size_.fetch_add(1, std::memory_order_relaxed);
                stats_.RecordInsert();
                after(const_cast<const Core&>(*v.core).Value(b, s));
                return InsertResult::kOk;
              }
            }
            if (moved == 0) {
              guard.ReleaseNoModify();
            }
            return std::nullopt;
          });
      if (fast.has_value()) {
        return *fast;
      }

      // Both buckets full: BFS outside any lock, then validated execution.
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      stats_.RecordPathSearch();
      CuckooPath path;
      if (!BfsSearch(*core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path)) {
        if (!opts_.auto_expand) {
          stats_.RecordInsertFailure();
          return InsertResult::kTableFull;
        }
        Expand(core);
        continue;
      }
      if (ExecutePath(core, path)) {
        stats_.RecordPathLength(path.Displacements());
      } else {
        stats_.RecordPathInvalidation();
      }
    }
  }

  bool ExecutePath(Core* core, const CuckooPath& path) {
    if (path.hops.empty()) {
      // A path that was never found moves nothing; without this guard the
      // countdown below would start at SIZE_MAX and walk out of bounds.
      return false;
    }
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      const PathHop& from = path.hops[i];
      const PathHop& to = path.hops[i + 1];
      PairGuard guard(stripes_, from.bucket, to.bucket);
      if (core_snapshot_.load(std::memory_order_relaxed) != core || from.tag == 0 ||
          core->Tag(from.bucket, from.slot) != from.tag ||
          core->Tag(to.bucket, to.slot) != 0) {
        guard.ReleaseNoModify();
        return false;
      }
      core->MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      stats_.RecordDisplacements(1);
      if (snapshot_active_.load(std::memory_order_acquire)) {
        // A displacement can move an element from a bucket the snapshot walk
        // has not reached yet into one it already visited, hiding it from the
        // walk; log a copy so TrySnapshotBuckets can re-emit it. We hold the
        // pair lock on both buckets, so the copy is race-free.
        LogDisplaced(*core, to.bucket, to.slot);
      }
    }
    return true;
  }

  // Record a copy of the element now at (bucket, slot) into the displacement
  // side log for an active snapshot walk. Caller holds a lock covering the
  // bucket.
  void LogDisplaced(const Core& core, std::size_t bucket, int slot) const {
    if constexpr (std::is_copy_constructible_v<K> && std::is_copy_constructible_v<V>) {
      MutexLock g(displaced_mutex_);
      displaced_log_.emplace_back(core.Key(bucket, slot), core.Value(bucket, slot));
    } else {
      // TrySnapshotBuckets is constrained to copyable K/V, so no walk can be
      // active on a map whose elements cannot be logged.
      assert(!"snapshot walk active on a map with non-copyable elements");
    }
  }

  // One pass over every bucket for TrySnapshotBuckets: the live core, then —
  // if a migration window is open — the draining core, whose unmigrated
  // buckets still hold elements. Holds at most one stripe lock at a time;
  // returns false if an expansion swapped the core mid-walk (the caller
  // retries the whole snapshot). Elements migrated across the walk frontier
  // are re-emitted from the displacement log, like any other displacement.
  template <typename Fn>
  bool WalkBuckets(Fn& fn, int lock_retries, SnapshotWalkStats* stats) const {
    Core* core = core_snapshot_.load(std::memory_order_acquire);
    MigrationState* ms = migration_.load(std::memory_order_acquire);
    if (ms != nullptr && ms->new_core != core) {
      // Mid-switch or stale pairing; if the switch lands mid-walk the
      // per-bucket core validation below forces a retry, and a completed
      // stale window has nothing left to walk.
      ms = nullptr;
    }
    const std::uint64_t epoch = force_finish_epoch_.load(std::memory_order_acquire);
    // Prologue: acquire+release every stripe once (one at a time, no version
    // bump). The lock-free empty-skip below means a writer might otherwise
    // displace elements without ever observing snapshot_active_ == true: the
    // flag store alone has no release/acquire edge to a writer that takes no
    // lock we hold. After this round, any writer critical section that starts
    // later acquires a stripe whose lock word we released after setting the
    // flag, so it observes the flag and logs its displacements.
    for (std::size_t s = 0; s < stripes_.stripe_count(); ++s) {
      stripes_.LockStripe(s);
      stripes_.UnlockStripeNoModify(s);
    }
    if (!WalkCoreBuckets(core, core, epoch, fn, lock_retries, stats)) {
      return false;
    }
    if (ms != nullptr &&
        !WalkCoreBuckets(ms->old_core, core, epoch, fn, lock_retries, stats)) {
      return false;
    }
    return true;
  }

  // Walk every bucket of `target` (which is either the live core or the
  // draining core; either way each bucket shares a stripe with its live-core
  // images, so the per-stripe discipline covers both). `live` anchors the
  // validity checks: if core_snapshot_ moves off it, or a force-finished
  // migration bumps the epoch (bulk moves that bypass the displacement log),
  // the walk aborts and the snapshot retries.
  // Excluded from thread-safety analysis: the single-stripe walk (TryLock
  // retry loop with a blocking-Lock fallback, then an early-return unlock
  // path) is exactly the conditional-acquisition control flow the analysis
  // cannot join; the stripe-order runtime checks cover it instead.
  template <typename Fn>
  bool WalkCoreBuckets(Core* target, Core* live, std::uint64_t epoch, Fn& fn,
                       int lock_retries, SnapshotWalkStats* stats) const
      NO_THREAD_SAFETY_ANALYSIS {
    std::vector<std::pair<K, V>> copies;
    for (std::size_t b = 0; b < target->bucket_count(); ++b) {
      ++stats->buckets;
      const std::size_t stripe = stripes_.StripeFor(b);
      // Optimistic empty check: tag bytes are atomics, readable lock-free;
      // the stripe version validates that no writer touched the stripe while
      // we looked (same seqlock discipline as the optimistic read path).
      const std::uint64_t v1 = stripes_.Stripe(stripe).AwaitVersion();
      bool empty = true;
      for (int s = 0; s < B && empty; ++s) {
        empty = target->Tag(b, s) == 0;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (empty && stripes_.Stripe(stripe).LoadRaw() == v1) {
        if (core_snapshot_.load(std::memory_order_acquire) != live ||
            force_finish_epoch_.load(std::memory_order_acquire) != epoch) {
          return false;
        }
        ++stats->empty_skips;
        continue;
      }
      // Occupied (or contended): copy under the stripe lock — K/V may own
      // heap memory, so an unlocked copy would race with DestroySlot.
      bool locked = false;
      for (int attempt = 0; attempt < lock_retries && !locked; ++attempt) {
        locked = stripes_.TryLockStripe(stripe);
        if (!locked) {
          CpuRelax();
        }
      }
      if (!locked) {
        stripes_.LockStripe(stripe);
        ++stats->lock_fallbacks;
      }
      if (core_snapshot_.load(std::memory_order_relaxed) != live ||
          force_finish_epoch_.load(std::memory_order_relaxed) != epoch) {
        stripes_.UnlockStripeNoModify(stripe);
        return false;
      }
      copies.clear();
      for (int s = 0; s < B; ++s) {
        if (target->Tag(b, s) != 0) {
          copies.emplace_back(const_cast<const Core&>(*target).Key(b, s),
                              const_cast<const Core&>(*target).Value(b, s));
        }
      }
      stripes_.UnlockStripeNoModify(stripe);
      for (const auto& [key, value] : copies) {
        fn(key, value);
      }
      stats->entries += copies.size();
    }
    return true;
  }

  // Grow the table. When the stripe-alignment invariant holds (and
  // incremental_expand is on) the expansion is online: the doubled core and
  // a MigrationState are published without taking a single stripe — the
  // writer-visible pause is just that publication — and the old core drains
  // through the background migrator plus writer piggybacking. Otherwise the
  // stop-the-world rehash runs (with the first-attempt allocation hoisted
  // out of the pause).
  void Expand(Core* expected_core) {
    if (migration_.load(std::memory_order_acquire) != nullptr) {
      // A window is already open; the table has already doubled. Contribute a
      // bounded chunk of drain work as backpressure, then let the caller
      // retry against the live core.
      HelpDrain();
      return;
    }
    {
      MutexLock maintenance(maintenance_mutex_);
      if (expected_core != nullptr &&
          core_snapshot_.load(std::memory_order_acquire) != expected_core) {
        return;  // somebody else already expanded
      }
      ReapMigrationLocked();
      if (migration_state_ == nullptr) {
        if (IncrementalEligibleLocked()) {
          StartIncrementalLocked();
        } else {
          StopTheWorldExpandLocked();
        }
        return;
      }
      // A window opened while we waited for the mutex; fall through to help.
    }
    HelpDrain();
  }

  bool IncrementalEligibleLocked() const REQUIRES(maintenance_mutex_) {
    return opts_.incremental_expand &&
           core_->bucket_count() % stripes_.stripe_count() == 0;
  }

  static std::size_t CoreLog2(const Core& core) noexcept {
    std::size_t log2 = 0;
    while ((std::size_t{1} << log2) <= core.mask) {
      ++log2;
    }
    return log2;
  }

  // Open an incremental window: publish the doubled core and the migration
  // state, then hand the drain to a background thread. No stripe is taken —
  // writers run through the switch; the recorded "pause" is the publication
  // itself.
  void StartIncrementalLocked() REQUIRES(maintenance_mutex_) {
    assert(!migrator_.joinable());
    // The fresh core (the expensive multi-MB zeroing) is allocated before
    // anything is published.
    auto fresh = std::make_unique<Core>(CoreLog2(*core_) + 1, opts_.hugepages);
    CUCKOO_TEST_POINT(TestPoint::kExpansionCoreAllocated);
    const std::uint64_t pause_start = NowNanos();
    migration_state_ = std::make_unique<MigrationState>(core_.get(), fresh.get());
    draining_core_ = std::move(core_);
    core_ = std::move(fresh);
    stats_.SetHugepageBytes(core_->hugepage_bytes());
    // Publication order matters: the state must be visible before any
    // operation can observe the new core (WithPair acquire-loads the core
    // first, then the state; seeing the new core without the state would
    // skip the old-core probe and miss every unmigrated resident).
    migration_.store(migration_state_.get(), std::memory_order_release);
    core_snapshot_.store(core_.get(), std::memory_order_release);
    stats_.RecordExpansion();
    stats_.RecordMigrationStarted(migration_state_->old_bucket_count);
    stats_.RecordExpansionPauseNanos(NowNanos() - pause_start);
    migrator_ = std::thread(&GeneralCuckooMap::MigratorMain, this, migration_state_.get());
  }

  void StopTheWorldExpandLocked() REQUIRES(maintenance_mutex_) {
    // First-attempt core allocated (and zeroed) before the stripes are
    // taken: the multi-MB clear is the bulk of a large expansion's wall time
    // and must not extend the writer-visible pause.
    std::size_t new_log2 = CoreLog2(*core_) + 1;
    auto fresh = std::make_unique<Core>(new_log2, opts_.hugepages);
    CUCKOO_TEST_POINT(TestPoint::kExpansionCoreAllocated);
    // Expansion pause = the full-table lock hold: every writer (and locked
    // reader) is stalled from here until the stripes release.
    const std::uint64_t pause_start = NowNanos();
    AllGuard all(stripes_);
    for (;;) {
      if (RehashInto(*core_, *fresh)) {
        // The old core must stay mapped: an in-flight (unlocked) BFS search
        // may still be reading its tag bytes. It holds no live elements
        // (RehashInto destroyed each source slot after moving it), so
        // retiring it costs only its bucket array.
        retired_.push_back(std::move(core_));
        core_ = std::move(fresh);
        stats_.SetHugepageBytes(core_->hugepage_bytes());
        core_snapshot_.store(core_.get(), std::memory_order_release);
        stats_.RecordExpansion();
        stats_.RecordExpansionPauseNanos(NowNanos() - pause_start);
        return;
      }
      // Rehash failed (pathological collisions): recover the moved elements
      // and retry one size larger. The retry allocation happens inside the
      // pause — rare enough that correctness beats accounting here.
      RecoverFrom(*core_, *fresh);
      fresh = std::make_unique<Core>(++new_log2, opts_.hugepages);
    }
  }

  // ----- Incremental migration ----------------------------------------------
  //
  // Lifecycle: StartIncrementalLocked publishes the window and spawns
  // MigratorMain, which drains old buckets through the ordinary stripe
  // locks and finally clears migration_ and sets complete. The next
  // maintenance operation (Expand, Clear, destruction) joins the thread and
  // retires the state. The migrator NEVER blocks on maintenance_mutex_
  // (Clear/destructor join it while holding that mutex) — its one
  // maintenance-side need, the force-finish fallback, uses TryLock and
  // honors cancel.

  // Join a finished migrator and retire its state. No-op while the window is
  // still draining.
  void ReapMigrationLocked() REQUIRES(maintenance_mutex_) {
    if (migration_state_ == nullptr ||
        !migration_state_->complete.load(std::memory_order_acquire)) {
      return;
    }
    if (migrator_.joinable()) {
      migrator_.join();
    }
    retired_.push_back(std::move(draining_core_));
    retired_migrations_.push_back(std::move(migration_state_));
  }

  // Cancel an active window and join the migrator (for Clear/destruction).
  // The caller owns what happens to the half-drained cores afterwards.
  void StopMigratorLocked() REQUIRES(maintenance_mutex_) {
    if (migration_state_ != nullptr) {
      migration_state_->cancel.store(true, std::memory_order_release);
    }
    if (migrator_.joinable()) {
      migrator_.join();
    }
    migration_.store(nullptr, std::memory_order_release);
  }

  // Background drain: walk every old-core bucket and migrate its residents
  // into the live core under the ordinary bucket-pair locks.
  void MigratorMain(MigrationState* ms) {
    for (std::size_t b = 0; b < ms->old_bucket_count; ++b) {
      if (!DrainOldBucket(ms, b)) {
        return;  // canceled (Clear/destructor owns cleanup)
      }
      // Background politeness: hand the CPU back every few buckets so a
      // runnable writer on an oversubscribed host waits one drain slice, not
      // a whole scheduler timeslice. Near-free when cores are idle.
      if ((b & 0xF) == 0xF) {
        std::this_thread::yield();
      }
    }
    // Clear the lock-free pointer before announcing completion:
    // ReapMigrationLocked trusts complete => no operation can still need the
    // window honored (stale loads of the state remain harmless — the old
    // core is empty and stays mapped).
    migration_.store(nullptr, std::memory_order_release);
    ms->complete.store(true, std::memory_order_release);
    stats_.RecordMigrationCompleted();
  }

  // Drain one old bucket to empty. Returns false only if canceled (or the
  // window was force-finished out from under us).
  bool DrainOldBucket(MigrationState* ms, std::size_t b) {
    if (ms->BucketMigrated(b)) {
      return true;  // a writer piggybacked it
    }
    for (;;) {
      if (ms->cancel.load(std::memory_order_acquire)) {
        return false;
      }
      // Peek one occupant under the bucket's own stripe; migrating it needs
      // the pair lock, which only its hash determines.
      HashedKey h{};
      bool occupied = false;
      const std::size_t stripe = stripes_.StripeFor(b);
      stripes_.LockStripe(stripe);
      for (int s = 0; s < B; ++s) {
        if (ms->old_core->Tag(b, s) != 0) {
          h = HashedKey::From(hasher_(ms->old_core->Key(b, s)));
          occupied = true;
          break;
        }
      }
      if (!occupied) {
        // Mark inside the critical section: the bit's meaning ("permanently
        // empty") is ordered by this stripe lock.
        if (ms->MarkMigrated(b)) {
          ms->buckets_done.fetch_add(1, std::memory_order_relaxed);
          stats_.RecordMigrationBucketDone();
        }
        stripes_.UnlockStripeNoModify(stripe);
        return true;
      }
      stripes_.UnlockStripeNoModify(stripe);
      if (!MigrateByHash(ms, h)) {
        return false;
      }
    }
  }

  // Migrate every old-core resident whose tag matches h.tag out of h's old
  // bucket pair, opening room in the live core by BFS displacement when both
  // candidate buckets are full. Returns false only if canceled.
  // Consecutive BFS failures in MigrateByHash before the migrator gives up
  // on displacement and finishes the window stop-the-world.
  static constexpr int kMigratorMaxBfsFailures = 8;

  bool MigrateByHash(MigrationState* ms, const HashedKey& h) {
    int bfs_failures = 0;
    for (;;) {
      if (ms->cancel.load(std::memory_order_acquire)) {
        return false;
      }
      Core* core = ms->new_core;
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      HashedKey blocked{};
      bool need_room = false;
      {
        PairGuard guard(stripes_, b1, b2);
        if (core_snapshot_.load(std::memory_order_relaxed) != core) {
          // A force-finish replaced the live core — the old core is already
          // fully drained.
          guard.ReleaseNoModify();
          return true;
        }
        const std::size_t old_mask = ms->old_core->mask;
        std::size_t moved = 0;
        for (std::size_t ob : {b1 & old_mask, b2 & old_mask}) {
          if (ms->BucketMigrated(ob)) {
            continue;
          }
          for (int s = 0; s < B; ++s) {
            if (ms->old_core->Tag(ob, s) != h.tag) {
              continue;
            }
            const HashedKey eh = HashedKey::From(hasher_(ms->old_core->Key(ob, s)));
            if (TryMoveAcrossLocked(ms, ob, s, eh)) {
              ++moved;
            } else {
              blocked = eh;
              need_room = true;
            }
          }
          MaybeMarkDrainedLocked(ms, ob);
        }
        if (moved == 0) {
          guard.ReleaseNoModify();
        }
      }
      if (!need_room) {
        return true;
      }
      // Open a hole next to the blocked element's live candidates, exactly
      // like a regular insert would.
      stats_.RecordPathSearch();
      const std::size_t c1 = blocked.Bucket1(core->mask);
      const std::size_t c2 = core->AltBucket(c1, blocked.tag);
      CuckooPath path;
      if (!BfsSearch(*core, c1, c2, opts_.max_search_slots, opts_.prefetch, &path)) {
        // The live core (2x the draining one) cannot absorb the leftovers:
        // writers outran the drain. After a few attempts, finish the window
        // stop-the-world rather than livelock.
        if (++bfs_failures >= kMigratorMaxBfsFailures) {
          return TryForceFinish(ms);
        }
        std::this_thread::yield();
        continue;
      }
      bfs_failures = 0;
      if (ExecutePath(core, path)) {
        stats_.RecordPathLength(path.Displacements());
      } else {
        stats_.RecordPathInvalidation();
      }
    }
  }

  // Move old(ob, s) into the live core if one of its candidate buckets has a
  // free slot; the caller holds the stripe pair covering ob and (by the
  // alignment invariant) both live candidates. Returns false if both are
  // full.
  bool TryMoveAcrossLocked(MigrationState* ms, std::size_t ob, int s,
                           const HashedKey& eh) NO_THREAD_SAFETY_ANALYSIS {
    Core* to = ms->new_core;
    const std::size_t c1 = eh.Bucket1(to->mask);
    const std::size_t c2 = to->AltBucket(c1, eh.tag);
    for (std::size_t c : {c1, c2}) {
      const int cs = to->FindEmptySlot(c);
      if (cs < 0) {
        continue;
      }
      to->ConstructSlot(c, cs, eh.tag, std::move(ms->old_core->Key(ob, s)),
                        std::move(ms->old_core->Value(ob, s)));
      ms->old_core->DestroySlot(ob, s);
      stats_.RecordMigratedEntry();
      if (snapshot_active_.load(std::memory_order_acquire)) {
        // A migration move can cross the snapshot walk frontier in either
        // core; log it like any displacement.
        LogDisplaced(*to, c, cs);
      }
      return true;
    }
    return false;
  }

  // Set the migrated bit if the old bucket is now empty. Caller holds the
  // bucket's stripe.
  void MaybeMarkDrainedLocked(MigrationState* ms, std::size_t ob) NO_THREAD_SAFETY_ANALYSIS {
    for (int s = 0; s < B; ++s) {
      if (ms->old_core->Tag(ob, s) != 0) {
        return;
      }
    }
    if (ms->MarkMigrated(ob)) {
      ms->buckets_done.fetch_add(1, std::memory_order_relaxed);
      stats_.RecordMigrationBucketDone();
    }
  }

  // Writer-side help inside its own critical section: move the same-tag
  // residents of the two touched old buckets across (their live candidates
  // are under the held stripes — no path search, bounded by 2B probes).
  // Returns moves performed; the caller must version-bump on release if > 0.
  std::size_t PiggybackMigrateLocked(const PairView& v, std::uint8_t tag) {
    const std::uint64_t t0 = NowNanos();
    std::size_t moved = 0;
    for (std::size_t ob : {v.ob1, v.ob2}) {
      if (v.ms->BucketMigrated(ob)) {
        continue;
      }
      for (int s = 0; s < B; ++s) {
        if (v.ms->old_core->Tag(ob, s) != tag) {
          continue;
        }
        const HashedKey eh = HashedKey::From(hasher_(v.ms->old_core->Key(ob, s)));
        if (TryMoveAcrossLocked(v.ms, ob, s, eh)) {
          ++moved;
        }
      }
      MaybeMarkDrainedLocked(v.ms, ob);
    }
    if (moved > 0) {
      stats_.RecordMigrationStall(NowNanos() - t0);
    }
    return moved;
  }

  // Expand-time writer backpressure: drain a bounded chunk of old buckets on
  // the calling thread while the window is open.
  void HelpDrain() {
    MigrationState* ms = migration_.load(std::memory_order_acquire);
    if (ms == nullptr) {
      return;
    }
    const std::uint64_t t0 = NowNanos();
    for (std::size_t i = 0;
         i < opts_.help_drain_buckets && migration_.load(std::memory_order_acquire) == ms;
         ++i) {
      const std::size_t b =
          ms->help_cursor.fetch_add(1, std::memory_order_relaxed) % ms->old_bucket_count;
      if (!DrainOldBucket(ms, b)) {
        break;
      }
    }
    stats_.RecordMigrationStall(NowNanos() - t0);
  }

  // Last resort when the live core cannot absorb the remaining old residents
  // by displacement (writers filled it mid-window): finish the drain
  // stop-the-world, growing the live core if even exclusive inserts fail.
  // Returns false if canceled before the drain could run.
  // TryLock instead of Lock: Clear()/~GeneralCuckooMap hold
  // maintenance_mutex_ while joining this thread; blocking here would
  // deadlock, so back off and honor cancel instead. Excluded from analysis
  // for the same conditional-acquisition reason as the snapshot walk.
  bool TryForceFinish(MigrationState* ms) NO_THREAD_SAFETY_ANALYSIS {
    for (;;) {
      if (ms->cancel.load(std::memory_order_acquire)) {
        return false;
      }
      if (maintenance_mutex_.TryLock()) {
        break;
      }
      std::this_thread::yield();
    }
    if (ms->cancel.load(std::memory_order_acquire) || migration_state_.get() != ms) {
      maintenance_mutex_.Unlock();
      return false;
    }
    {
      AllGuard all(stripes_);
      // Snapshot walks cannot tell these bulk moves apart from untouched
      // buckets (no per-move displacement log entries when the live core
      // must grow); bump the epoch so an in-flight walk retries.
      force_finish_epoch_.fetch_add(1, std::memory_order_release);
      for (std::size_t b = 0; b < ms->old_bucket_count; ++b) {
        for (int s = 0; s < B; ++s) {
          if (ms->old_core->Tag(b, s) == 0) {
            continue;
          }
          const HashedKey h = HashedKey::From(hasher_(ms->old_core->Key(b, s)));
          if (snapshot_active_.load(std::memory_order_acquire)) {
            LogDisplaced(*ms->old_core, b, s);
          }
          while (!ExclusiveInsert(*core_, h, std::move(ms->old_core->Key(b, s)),
                                  std::move(ms->old_core->Value(b, s)))) {
            GrowLiveLocked();
          }
          ms->old_core->DestroySlot(b, s);
        }
        if (ms->MarkMigrated(b)) {
          ms->buckets_done.fetch_add(1, std::memory_order_relaxed);
          stats_.RecordMigrationBucketDone();
        }
      }
    }
    stats_.RecordMigrationForceFinished();
    maintenance_mutex_.Unlock();
    return true;
  }

  // Replace the live core with a double-size rehash, exclusively (AllGuard
  // held by the caller). Readers holding a stale MigrationState see its
  // new_core mismatch the published core afterwards and ignore the window —
  // correct, because by the time the stripes release every element lives in
  // the published core.
  void GrowLiveLocked() REQUIRES(maintenance_mutex_) REQUIRES(stripes_) {
    std::size_t new_log2 = CoreLog2(*core_) + 1;
    for (;; ++new_log2) {
      auto fresh = std::make_unique<Core>(new_log2, opts_.hugepages);
      if (RehashInto(*core_, *fresh)) {
        retired_.push_back(std::move(core_));
        core_ = std::move(fresh);
        stats_.SetHugepageBytes(core_->hugepage_bytes());
        core_snapshot_.store(core_.get(), std::memory_order_release);
        stats_.RecordExpansion();
        return;
      }
      RecoverFrom(*core_, *fresh);
    }
  }

  // Move every element of `from` into `to` using exclusive greedy inserts.
  // On failure, elements already moved stay in `to` until RecoverFrom.
  bool RehashInto(Core& from, Core& to) REQUIRES(stripes_) {
    for (std::size_t b = 0; b < from.bucket_count(); ++b) {
      for (int s = 0; s < B; ++s) {
        if (from.Tag(b, s) == 0) {
          continue;
        }
        const HashedKey h = HashedKey::From(hasher_(from.Key(b, s)));
        if (!ExclusiveInsert(to, h, std::move(from.Key(b, s)), std::move(from.Value(b, s)))) {
          return false;
        }
        from.DestroySlot(b, s);
      }
    }
    return true;
  }

  // Undo a failed RehashInto: move elements parked in `to` back into `from`'s
  // empty slots (there is always room — they came from there).
  void RecoverFrom(Core& from, Core& to) REQUIRES(stripes_) {
    for (std::size_t b = 0; b < to.bucket_count(); ++b) {
      for (int s = 0; s < B; ++s) {
        if (to.Tag(b, s) == 0) {
          continue;
        }
        const HashedKey h = HashedKey::From(hasher_(to.Key(b, s)));
        bool ok = ExclusiveInsert(from, h, std::move(to.Key(b, s)), std::move(to.Value(b, s)));
        assert(ok && "recovery insert cannot fail: the slot was previously occupied");
        (void)ok;
        to.DestroySlot(b, s);
      }
    }
  }

  template <typename KArg, typename VArg>
  bool ExclusiveInsert(Core& core, const HashedKey& h, KArg&& key, VArg&& value)
      REQUIRES(stripes_) {
    for (;;) {
      const std::size_t b1 = h.Bucket1(core.mask);
      const std::size_t b2 = core.AltBucket(b1, h.tag);
      for (std::size_t b : {b1, b2}) {
        int s = core.FindEmptySlot(b);
        if (s >= 0) {
          core.ConstructSlot(b, s, h.tag, std::forward<KArg>(key), std::forward<VArg>(value));
          return true;
        }
      }
      CuckooPath path;
      if (!BfsSearch(core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path)) {
        return false;
      }
      const PathHop& hole = path.hops.front();
      if (!ExecutePathExclusive(core, path) || core.Tag(hole.bucket, hole.slot) != 0) {
        continue;  // self-overlapping path; table perturbed, search again
      }
      core.ConstructSlot(hole.bucket, hole.slot, h.tag, std::forward<KArg>(key),
                         std::forward<VArg>(value));
      return true;
    }
  }

  Options opts_;
  Hash hasher_;
  KeyEqual eq_;
  mutable LockStripes stripes_;
  mutable Mutex maintenance_mutex_;
  // Owned core (replacement serialized by maintenance_mutex_) plus a lock-
  // free snapshot pointer operations resolve buckets against.
  std::unique_ptr<Core> core_ GUARDED_BY(maintenance_mutex_);
  // Superseded cores, kept until destruction (see Expand).
  std::vector<std::unique_ptr<Core>> retired_ GUARDED_BY(maintenance_mutex_);
  // Incremental-expansion window: while open, draining_core_ is the old
  // (shrinking) table and migration_state_ tracks per-bucket drain progress.
  // Like retired_ cores, completed states are kept mapped (a stale reader may
  // still hold the pointer it loaded from migration_).
  std::unique_ptr<Core> draining_core_ GUARDED_BY(maintenance_mutex_);
  std::unique_ptr<MigrationState> migration_state_ GUARDED_BY(maintenance_mutex_);
  std::vector<std::unique_ptr<MigrationState>> retired_migrations_
      GUARDED_BY(maintenance_mutex_);
  std::thread migrator_ GUARDED_BY(maintenance_mutex_);
  // Lock-free view of the open window (nullptr when none); published after
  // the state is fully constructed, cleared before completion is announced.
  mutable std::atomic<MigrationState*> migration_{nullptr};
  // Bumped (under AllGuard) by TryForceFinish before its bulk drain; snapshot
  // walks validate it per-bucket and retry on change.
  mutable std::atomic<std::uint64_t> force_finish_epoch_{0};
  mutable std::atomic<Core*> core_snapshot_{nullptr};
  std::atomic<std::size_t> size_{0};
  mutable MapStats stats_;
  // Fuzzy-snapshot state (see TrySnapshotBuckets). Mutable: the walk is
  // logically const, and ExecutePath (non-const) shares the displacement log.
  mutable Mutex snapshot_walk_mutex_;
  mutable Mutex displaced_mutex_;
  mutable std::vector<std::pair<K, V>> displaced_log_ GUARDED_BY(displaced_mutex_);
  mutable std::atomic<bool> snapshot_active_{false};
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_
