// GeneralCuckooMap — the §7 "libcuckoo release" generality extension:
//
//   "The libcuckoo library offers an easy-to-use interface that supports
//    variable length key value pairs of arbitrary types, including those with
//    pointers or strings, provides iterators, and dynamically resizes itself
//    as it fills. The price of this generality is that it uses locks for
//    reads as well as writes ... at the cost of a 5-20% slowdown."
//
// Compared with CuckooMap:
//   * keys/values may be any movable types (std::string, std::vector,
//     std::unique_ptr, ...) — elements live in aligned raw storage and are
//     placement-constructed / destroyed per slot;
//   * every operation (including Find) takes the bucket-pair lock, so there
//     is no optimistic read protocol and no trivially-copyable requirement;
//   * displacements move-construct elements bucket-to-bucket;
//   * old cores are retired (kept allocated but empty) after expansion: the
//     unlocked BFS path search may still be scanning one; retired cores hold
//     no live elements (moved out during rehash) and their total size is
//     bounded by the live core's.
//
// The cuckoo algorithm itself is identical: tag-directed BFS path discovery
// outside the critical section, per-displacement validate-and-execute under
// striped bucket-pair locks.
#ifndef SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_
#define SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/cpu.h"
#include "src/common/hash.h"
#include "src/common/mutex.h"
#include "src/common/striped_locks.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/path_search.h"
#include "src/cuckoo/stats.h"
#include "src/cuckoo/types.h"

namespace cuckoo {

namespace internal {

// B-way bucket storage for non-trivial types: a tag array (0 = empty) plus
// uninitialized aligned storage for keys and values. Lifetime is managed
// per-slot with placement new; the owner must destroy occupied slots before
// the core is released (the destructor asserts nothing is leaked in debug).
template <typename K, typename V, int B>
struct GeneralCore {
  static constexpr int kSlotsPerBucket = B;

  struct Bucket {
    // Atomic: the unlocked BFS path search reads tags concurrently with
    // writers (relaxed; staleness is handled by execute-time validation).
    std::atomic<std::uint8_t> tags[B] = {};
    alignas(K) unsigned char key_storage[B][sizeof(K)];
    alignas(V) unsigned char value_storage[B][sizeof(V)];
  };

  explicit GeneralCore(std::size_t bucket_count_log2)
      : mask((std::size_t{1} << bucket_count_log2) - 1),
        buckets(std::make_unique<Bucket[]>(mask + 1)) {}

  GeneralCore(const GeneralCore&) = delete;
  GeneralCore& operator=(const GeneralCore&) = delete;

  ~GeneralCore() { DestroyAll(); }

  std::size_t bucket_count() const noexcept { return mask + 1; }
  std::size_t slot_count() const noexcept { return bucket_count() * B; }

  std::size_t HeapBytes() const noexcept { return bucket_count() * sizeof(Bucket); }

  std::uint8_t Tag(std::size_t bucket, int slot) const noexcept {
    return buckets[bucket].tags[slot].load(std::memory_order_relaxed);
  }

  K& Key(std::size_t bucket, int slot) noexcept {
    return *std::launder(reinterpret_cast<K*>(buckets[bucket].key_storage[slot]));
  }
  const K& Key(std::size_t bucket, int slot) const noexcept {
    return *std::launder(reinterpret_cast<const K*>(buckets[bucket].key_storage[slot]));
  }
  V& Value(std::size_t bucket, int slot) noexcept {
    return *std::launder(reinterpret_cast<V*>(buckets[bucket].value_storage[slot]));
  }
  const V& Value(std::size_t bucket, int slot) const noexcept {
    return *std::launder(reinterpret_cast<const V*>(buckets[bucket].value_storage[slot]));
  }

  int FindEmptySlot(std::size_t bucket) const noexcept {
    for (int s = 0; s < B; ++s) {
      if (Tag(bucket, s) == 0) {
        return s;
      }
    }
    return -1;
  }

  template <typename KArg, typename VArg>
  void ConstructSlot(std::size_t bucket, int slot, std::uint8_t tag, KArg&& key, VArg&& value) {
    ::new (static_cast<void*>(buckets[bucket].key_storage[slot])) K(std::forward<KArg>(key));
    ::new (static_cast<void*>(buckets[bucket].value_storage[slot])) V(std::forward<VArg>(value));
    buckets[bucket].tags[slot].store(tag, std::memory_order_relaxed);
  }

  void DestroySlot(std::size_t bucket, int slot) noexcept {
    Key(bucket, slot).~K();
    Value(bucket, slot).~V();
    buckets[bucket].tags[slot].store(0, std::memory_order_relaxed);
  }

  // Move the element in (from, from_slot) to the empty (to, to_slot).
  void MoveSlot(std::size_t from, int from_slot, std::size_t to, int to_slot) {
    ConstructSlot(to, to_slot, Tag(from, from_slot), std::move(Key(from, from_slot)),
                  std::move(Value(from, from_slot)));
    DestroySlot(from, from_slot);
  }

  std::size_t AltBucket(std::size_t bucket, std::uint8_t tag) const noexcept {
    return (bucket ^ (static_cast<std::size_t>(Mix64(tag)) | 1u)) & mask;
  }

  void PrefetchTags(std::size_t bucket) const noexcept { PrefetchRead(&buckets[bucket]); }

  void DestroyAll() noexcept {
    for (std::size_t b = 0; b <= mask; ++b) {
      for (int s = 0; s < B; ++s) {
        if (Tag(b, s) != 0) {
          DestroySlot(b, s);
        }
      }
    }
  }

  std::size_t mask;
  std::unique_ptr<Bucket[]> buckets;
};

}  // namespace internal

template <typename K, typename V, typename Hash = DefaultHash<K>,
          typename KeyEqual = std::equal_to<K>, int B = 4>
class GeneralCuckooMap {
 public:
  using KeyType = K;
  using ValueType = V;
  using Core = internal::GeneralCore<K, V, B>;
  static constexpr int kSlotsPerBucket = B;

  struct Options {
    std::size_t initial_bucket_count_log2 = 8;
    std::size_t stripe_count = LockStripes::kDefaultStripeCount;
    std::size_t max_search_slots = 2000;
    bool prefetch = true;
    bool auto_expand = true;
  };

  explicit GeneralCuckooMap(Options opts = Options{}, Hash hasher = Hash{},
                            KeyEqual eq = KeyEqual{})
      : opts_(opts),
        hasher_(std::move(hasher)),
        eq_(std::move(eq)),
        stripes_(opts.stripe_count),
        core_(std::make_unique<Core>(opts.initial_bucket_count_log2)) {
    stripes_.SetContentionCounter(stats_.ContentionCounter());
    core_snapshot_.store(core_.get(), std::memory_order_release);
  }

  GeneralCuckooMap(const GeneralCuckooMap&) = delete;
  GeneralCuckooMap& operator=(const GeneralCuckooMap&) = delete;

  // ----- Lookup (locked) -----------------------------------------------------

  // Copy the value out. Requires V copyable; use WithValue for move-only V.
  bool Find(const K& key, V* out) const {
    static_assert(std::is_copy_assignable_v<V>,
                  "Find copies the value; use WithValue() for move-only types");
    bool hit = WithValue(key, [out](const V& v) { *out = v; });
    return hit;
  }

  bool Contains(const K& key) const {
    return WithValue(key, [](const V&) {});
  }

  // Apply `fn(const V&)` to the mapped value under the bucket locks.
  // Returns false (fn not called) if the key is absent.
  template <typename Fn>
  bool WithValue(const K& key, Fn&& fn) const {
    const std::uint64_t t0 = stats_.MaybeStartLookupTimer();
    const HashedKey h = HashedKey::From(hasher_(key));
    bool found = WithPair(h, [&](Core* core, std::size_t b1, std::size_t b2, PairGuard& guard) {
      Locator loc;
      bool hit = FindSlotLocked(core, b1, b2, h.tag, key, &loc);
      if (hit) {
        fn(const_cast<const Core&>(*core).Value(loc.bucket, loc.slot));
      }
      guard.ReleaseNoModify();
      return hit;
    });
    stats_.RecordLookup(found);
    stats_.FinishLookupTimer(t0);
    return found;
  }

  // Batched lookup with software pipelining (the §4.3.2 prefetch insight
  // applied to the locked read path): hashes and bucket prefetches for key
  // i+D are issued while key i is probed, so the bucket pair is already in
  // cache when its pair lock is taken. `fn(i, const V&)` is called under the
  // bucket locks for every key that is present; returns the hit count.
  // Concurrency-safe like WithValue; each probe is individually atomic (the
  // batch as a whole is not a snapshot).
  template <typename Fn>
  std::size_t WithValueBatch(const K* keys, std::size_t count, Fn&& fn) const {
    constexpr std::size_t kDepth = 8;
    HashedKey ring[kDepth];

    auto stage = [&](std::size_t i) {
      ring[i % kDepth] = HashedKey::From(hasher_(keys[i]));
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      const std::size_t b1 = ring[i % kDepth].Bucket1(core->mask);
      core->PrefetchTags(b1);
      core->PrefetchTags(core->AltBucket(b1, ring[i % kDepth].tag));
    };

    const std::size_t lead = count < kDepth ? count : kDepth;
    for (std::size_t i = 0; i < lead; ++i) {
      stage(i);
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < count; ++i) {
      // Probe before staging: ring[i % kDepth] is the slot stage(i + kDepth)
      // would overwrite.
      const HashedKey& h = ring[i % kDepth];
      bool hit = WithPair(h, [&](Core* core, std::size_t b1, std::size_t b2, PairGuard& guard) {
        Locator loc;
        bool found = FindSlotLocked(core, b1, b2, h.tag, keys[i], &loc);
        if (found) {
          fn(i, const_cast<const Core&>(*core).Value(loc.bucket, loc.slot));
        }
        guard.ReleaseNoModify();
        return found;
      });
      if (i + kDepth < count) {
        stage(i + kDepth);
      }
      hits += hit ? 1 : 0;
      stats_.RecordLookup(hit);
    }
    // Distribution of hits per batched (prefetch-pipelined) lookup call.
    stats_.RecordBatchHits(hits);
    return hits;
  }

  // Apply `fn(V&)` to the mapped value (mutable) under the bucket locks.
  template <typename Fn>
  bool WithValueMut(const K& key, Fn&& fn) {
    const HashedKey h = HashedKey::From(hasher_(key));
    return WithPair(h, [&](Core* core, std::size_t b1, std::size_t b2, PairGuard& guard) {
      Locator loc;
      if (!FindSlotLocked(core, b1, b2, h.tag, key, &loc)) {
        guard.ReleaseNoModify();
        return false;
      }
      fn(core->Value(loc.bucket, loc.slot));
      return true;  // guard bumps versions on destruction
    });
  }

  // ----- Mutation ------------------------------------------------------------

  template <typename KArg, typename VArg>
  InsertResult Insert(KArg&& key, VArg&& value) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/false, [](const V&) {});
  }

  template <typename KArg, typename VArg>
  InsertResult Upsert(KArg&& key, VArg&& value) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/true, [](const V&) {});
  }

  // Upsert, invoking `then(const V& stored)` while the bucket-pair lock is
  // still held whenever the table was actually modified (fresh insert or
  // overwrite). Durability layers use this to assign a WAL sequence number
  // inside the critical section, so log order matches per-key table order
  // (two racing SETs on one key serialize identically in both).
  template <typename KArg, typename VArg, typename Then>
  InsertResult UpsertThen(KArg&& key, VArg&& value, Then&& then) {
    return DoInsert(std::forward<KArg>(key), std::forward<VArg>(value),
                    /*overwrite_existing=*/true, std::forward<Then>(then));
  }

  bool Update(const K& key, V value) {
    return WithValueMut(key, [&value](V& v) { v = std::move(value); });
  }

  bool Erase(const K& key) {
    return EraseIf(key, [](const V&) { return true; });
  }

  // Remove `key` only if `pred(const V&)` holds, atomically under the bucket
  // locks (e.g. erase-if-still-expired for TTL caches). Returns true iff the
  // entry was removed.
  template <typename Pred>
  bool EraseIf(const K& key, Pred&& pred) {
    return EraseIfThen(key, std::forward<Pred>(pred), [] {});
  }

  // EraseIf, invoking `after()` under the bucket-pair lock right after the
  // slot is destroyed (same WAL-ordering rationale as UpsertThen).
  template <typename Pred, typename After>
  bool EraseIfThen(const K& key, Pred&& pred, After&& after) {
    const HashedKey h = HashedKey::From(hasher_(key));
    return WithPair(h, [&](Core* core, std::size_t b1, std::size_t b2, PairGuard& guard) {
      Locator loc;
      if (!FindSlotLocked(core, b1, b2, h.tag, key, &loc) ||
          !pred(const_cast<const Core&>(*core).Value(loc.bucket, loc.slot))) {
        guard.ReleaseNoModify();
        return false;
      }
      core->DestroySlot(loc.bucket, loc.slot);
      size_.fetch_sub(1, std::memory_order_relaxed);
      stats_.RecordErase();
      after();
      return true;
    });
  }

  // ----- Capacity ------------------------------------------------------------

  std::size_t Size() const noexcept { return size_.load(std::memory_order_relaxed); }
  std::size_t SlotCount() const noexcept {
    MutexLock g(maintenance_mutex_);
    return core_->slot_count();
  }
  double LoadFactor() const noexcept {
    MutexLock g(maintenance_mutex_);
    return static_cast<double>(Size()) / static_cast<double>(core_->slot_count());
  }
  std::size_t HeapBytes() const noexcept {
    MutexLock g(maintenance_mutex_);
    return core_->HeapBytes() + stripes_.stripe_count() * sizeof(PaddedVersionLock);
  }

  void Reserve(std::size_t n) {
    while (true) {
      {
        MutexLock g(maintenance_mutex_);
        if (static_cast<double>(core_->slot_count()) * 0.95 >= static_cast<double>(n) + B) {
          return;
        }
      }
      Expand(nullptr);
    }
  }

  void Clear() {
    MutexLock maintenance(maintenance_mutex_);
    AllGuard all(stripes_);
    core_->DestroyAll();
    size_.store(0, std::memory_order_relaxed);
  }

  MapStatsSnapshot Stats() const { return stats_.Read(); }
  void ResetStats() { stats_.Reset(); }
  // Toggle the sampled lookup/insert latency timers (counters stay on).
  void SetLatencyProfiling(bool enabled) { stats_.SetLatencyProfiling(enabled); }
  const Options& options() const noexcept { return opts_; }

  // ----- Online (fuzzy) snapshot walk ---------------------------------------

  // Counters describing one TrySnapshotBuckets walk (for durability stats).
  struct SnapshotWalkStats {
    std::uint64_t buckets = 0;
    std::uint64_t entries = 0;
    std::uint64_t empty_skips = 0;      // buckets skipped by version validation
    std::uint64_t lock_fallbacks = 0;   // blocking Lock() after K failed tries
    std::uint64_t displaced_entries = 0;  // entries re-emitted from the move log
  };

  // Visit a fuzzy snapshot of the table while writers keep running. Unlike
  // ForEach, no global lock is ever taken: the walk holds at most one stripe
  // lock at a time, so a writer contends only on the single stripe currently
  // being copied. Per bucket:
  //
  //   * Empty buckets are skipped optimistically: tag bytes are read lock-free
  //     and validated against the stripe's §4.4 version counter (the same
  //     snapshot/validate discipline the optimistic read path uses). No lock.
  //   * Occupied buckets fall back to the stripe lock — keys and values here
  //     own heap memory (std::string, ...), so copying them outside the lock
  //     would race with a concurrent DestroySlot (the very race the locked
  //     read protocol of this §7 generality layer exists to prevent). The
  //     acquisition itself is optimistic: TryLock up to `lock_retries` times,
  //     then a blocking Lock() as the fallback.
  //
  // Cuckoo displacements can move an element from a not-yet-visited bucket
  // into an already-visited one, which would make the walk miss it entirely;
  // while a walk is active, ExecutePath records every moved element into a
  // side log that is drained (re-emitted through `fn`) after the last bucket.
  // Duplicate emissions are possible and expected — consumers load snapshots
  // with upsert semantics and WAL replay fixes up any stale copy.
  //
  // `fn(const K&, const V&)` is invoked on copies, outside any lock. Returns
  // false (walk must be retried by the caller, e.g. after rewinding its
  // output file) if an expansion swapped the core mid-walk; bucket indices
  // are not comparable across cores. Requires copyable K and V.
  template <typename Fn>
  bool TrySnapshotBuckets(Fn&& fn, int lock_retries = 8,
                          SnapshotWalkStats* stats_out = nullptr) const {
    static_assert(std::is_copy_constructible_v<K> && std::is_copy_constructible_v<V>,
                  "TrySnapshotBuckets copies elements out of the table");
    MutexLock one_walk(snapshot_walk_mutex_);
    {
      MutexLock g(displaced_mutex_);
      displaced_log_.clear();
    }
    snapshot_active_.store(true, std::memory_order_release);
    SnapshotWalkStats stats;
    const bool ok = WalkBuckets(fn, lock_retries, &stats);
    snapshot_active_.store(false, std::memory_order_release);
    if (ok) {
      // Drain the displacement log: anything cuckooed across the walk
      // frontier is emitted here (possibly a second time — harmless).
      std::vector<std::pair<K, V>> moved;
      {
        MutexLock g(displaced_mutex_);
        moved.swap(displaced_log_);
      }
      for (const auto& [key, value] : moved) {
        fn(key, value);
      }
      stats.displaced_entries = moved.size();
      stats.entries += moved.size();
    }
    if (stats_out != nullptr) {
      *stats_out = stats;
    }
    return ok;
  }

  // Visit every element exclusively (all stripes held).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    MutexLock maintenance(maintenance_mutex_);
    AllGuard all(stripes_);
    for (std::size_t b = 0; b < core_->bucket_count(); ++b) {
      for (int s = 0; s < B; ++s) {
        if (core_->Tag(b, s) != 0) {
          fn(const_cast<const K&>(core_->Key(b, s)), core_->Value(b, s));
        }
      }
    }
  }

 private:
  struct Locator {
    std::size_t bucket;
    int slot;
  };

  // Run `fn(core, b1, b2, guard)` with the key's bucket pair locked,
  // re-resolving buckets if an expansion swapped the core while we waited.
  // `fn` may release the guard early; otherwise its destructor bumps the
  // stripe versions (treated as a modification).
  template <typename Fn>
  decltype(auto) WithPair(const HashedKey& h, Fn&& fn) const {
    for (;;) {
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      std::size_t b1 = h.Bucket1(core->mask);
      std::size_t b2 = core->AltBucket(b1, h.tag);
      PairGuard guard(stripes_, b1, b2);
      if (core_snapshot_.load(std::memory_order_relaxed) != core) {
        guard.ReleaseNoModify();
        continue;
      }
      return fn(core, b1, b2, guard);
    }
  }

  bool FindSlotLocked(Core* core, std::size_t b1, std::size_t b2, std::uint8_t tag,
                      const K& key, Locator* loc) const {
    for (std::size_t b : {b1, b2}) {
      for (int s = 0; s < B; ++s) {
        if (core->Tag(b, s) == tag && eq_(const_cast<const Core&>(*core).Key(b, s), key)) {
          loc->bucket = b;
          loc->slot = s;
          return true;
        }
      }
    }
    return false;
  }

  // `after(const V& stored)` runs under the pair guard at every point where
  // the table was modified (overwrite or fresh construct) — see UpsertThen.
  template <typename KArg, typename VArg, typename After>
  InsertResult DoInsert(KArg&& key, VArg&& value, bool overwrite_existing, After&& after) {
    const std::uint64_t t0 = stats_.MaybeStartInsertTimer();
    const InsertResult r = DoInsertLoop(std::forward<KArg>(key), std::forward<VArg>(value),
                                        overwrite_existing, std::forward<After>(after));
    stats_.FinishInsertTimer(t0);
    return r;
  }

  template <typename KArg, typename VArg, typename After>
  InsertResult DoInsertLoop(KArg&& key, VArg&& value, bool overwrite_existing, After&& after) {
    const HashedKey h = HashedKey::From(hasher_(key));
    for (;;) {
      std::optional<InsertResult> fast = WithPair(
          h, [&](Core* core, std::size_t b1, std::size_t b2,
                 PairGuard& guard) -> std::optional<InsertResult> {
            Locator loc;
            if (FindSlotLocked(core, b1, b2, h.tag, key, &loc)) {
              if (overwrite_existing) {
                core->Value(loc.bucket, loc.slot) = V(std::forward<VArg>(value));
                stats_.RecordDuplicateInsert();
                after(const_cast<const Core&>(*core).Value(loc.bucket, loc.slot));
                return InsertResult::kKeyExists;
              }
              guard.ReleaseNoModify();
              stats_.RecordDuplicateInsert();
              return InsertResult::kKeyExists;
            }
            for (std::size_t b : {b1, b2}) {
              int s = core->FindEmptySlot(b);
              if (s >= 0) {
                core->ConstructSlot(b, s, h.tag, std::forward<KArg>(key),
                                    std::forward<VArg>(value));
                size_.fetch_add(1, std::memory_order_relaxed);
                stats_.RecordInsert();
                after(const_cast<const Core&>(*core).Value(b, s));
                return InsertResult::kOk;
              }
            }
            guard.ReleaseNoModify();
            return std::nullopt;
          });
      if (fast.has_value()) {
        return *fast;
      }

      // Both buckets full: BFS outside any lock, then validated execution.
      Core* core = core_snapshot_.load(std::memory_order_acquire);
      const std::size_t b1 = h.Bucket1(core->mask);
      const std::size_t b2 = core->AltBucket(b1, h.tag);
      stats_.RecordPathSearch();
      CuckooPath path;
      if (!BfsSearch(*core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path)) {
        if (!opts_.auto_expand) {
          stats_.RecordInsertFailure();
          return InsertResult::kTableFull;
        }
        Expand(core);
        continue;
      }
      if (ExecutePath(core, path)) {
        stats_.RecordPathLength(path.Displacements());
      } else {
        stats_.RecordPathInvalidation();
      }
    }
  }

  bool ExecutePath(Core* core, const CuckooPath& path) {
    for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
      const PathHop& from = path.hops[i];
      const PathHop& to = path.hops[i + 1];
      PairGuard guard(stripes_, from.bucket, to.bucket);
      if (core_snapshot_.load(std::memory_order_relaxed) != core || from.tag == 0 ||
          core->Tag(from.bucket, from.slot) != from.tag ||
          core->Tag(to.bucket, to.slot) != 0) {
        guard.ReleaseNoModify();
        return false;
      }
      core->MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      stats_.RecordDisplacements(1);
      if (snapshot_active_.load(std::memory_order_acquire)) {
        // A displacement can move an element from a bucket the snapshot walk
        // has not reached yet into one it already visited, hiding it from the
        // walk; log a copy so TrySnapshotBuckets can re-emit it. We hold the
        // pair lock on both buckets, so the copy is race-free.
        if constexpr (std::is_copy_constructible_v<K> && std::is_copy_constructible_v<V>) {
          MutexLock g(displaced_mutex_);
          displaced_log_.emplace_back(const_cast<const Core&>(*core).Key(to.bucket, to.slot),
                                      const_cast<const Core&>(*core).Value(to.bucket, to.slot));
        }
      }
    }
    return true;
  }

  // One pass over every bucket of the current core for TrySnapshotBuckets.
  // Holds at most one stripe lock at a time; returns false if an expansion
  // swapped the core mid-walk (the caller retries the whole snapshot).
  // Excluded from thread-safety analysis: the single-stripe walk (TryLock
  // retry loop with a blocking-Lock fallback, then an early-return unlock
  // path) is exactly the conditional-acquisition control flow the analysis
  // cannot join; the stripe-order runtime checks cover it instead.
  template <typename Fn>
  bool WalkBuckets(Fn& fn, int lock_retries, SnapshotWalkStats* stats) const
      NO_THREAD_SAFETY_ANALYSIS {
    Core* core = core_snapshot_.load(std::memory_order_acquire);
    // Prologue: acquire+release every stripe once (one at a time, no version
    // bump). The lock-free empty-skip below means a writer might otherwise
    // displace elements without ever observing snapshot_active_ == true: the
    // flag store alone has no release/acquire edge to a writer that takes no
    // lock we hold. After this round, any writer critical section that starts
    // later acquires a stripe whose lock word we released after setting the
    // flag, so it observes the flag and logs its displacements.
    for (std::size_t s = 0; s < stripes_.stripe_count(); ++s) {
      stripes_.LockStripe(s);
      stripes_.UnlockStripeNoModify(s);
    }
    std::vector<std::pair<K, V>> copies;
    for (std::size_t b = 0; b < core->bucket_count(); ++b) {
      ++stats->buckets;
      const std::size_t stripe = stripes_.StripeFor(b);
      // Optimistic empty check: tag bytes are atomics, readable lock-free;
      // the stripe version validates that no writer touched the stripe while
      // we looked (same seqlock discipline as the optimistic read path).
      const std::uint64_t v1 = stripes_.Stripe(stripe).AwaitVersion();
      bool empty = true;
      for (int s = 0; s < B && empty; ++s) {
        empty = core->Tag(b, s) == 0;
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (empty && stripes_.Stripe(stripe).LoadRaw() == v1) {
        if (core_snapshot_.load(std::memory_order_acquire) != core) {
          return false;
        }
        ++stats->empty_skips;
        continue;
      }
      // Occupied (or contended): copy under the stripe lock — K/V may own
      // heap memory, so an unlocked copy would race with DestroySlot.
      bool locked = false;
      for (int attempt = 0; attempt < lock_retries && !locked; ++attempt) {
        locked = stripes_.TryLockStripe(stripe);
        if (!locked) {
          CpuRelax();
        }
      }
      if (!locked) {
        stripes_.LockStripe(stripe);
        ++stats->lock_fallbacks;
      }
      if (core_snapshot_.load(std::memory_order_relaxed) != core) {
        stripes_.UnlockStripeNoModify(stripe);
        return false;
      }
      copies.clear();
      for (int s = 0; s < B; ++s) {
        if (core->Tag(b, s) != 0) {
          copies.emplace_back(const_cast<const Core&>(*core).Key(b, s),
                              const_cast<const Core&>(*core).Value(b, s));
        }
      }
      stripes_.UnlockStripeNoModify(stripe);
      for (const auto& [key, value] : copies) {
        fn(key, value);
      }
      stats->entries += copies.size();
    }
    return true;
  }

  void Expand(Core* expected_core) {
    MutexLock maintenance(maintenance_mutex_);
    if (expected_core != nullptr &&
        core_snapshot_.load(std::memory_order_acquire) != expected_core) {
      return;
    }
    // Expansion pause = the full-table lock hold: every writer (and locked
    // reader) is stalled from here until the stripes release.
    const std::uint64_t pause_start = NowNanos();
    AllGuard all(stripes_);
    std::size_t new_log2 = 1;
    while ((std::size_t{1} << new_log2) <= core_->mask) {
      ++new_log2;
    }
    ++new_log2;
    for (;; ++new_log2) {
      auto fresh = std::make_unique<Core>(new_log2);
      if (RehashInto(*core_, *fresh)) {
        // The old core must stay mapped: an in-flight (unlocked) BFS search
        // may still be reading its tag bytes. It holds no live elements
        // (RehashInto destroyed each source slot after moving it), so
        // retiring it costs only its bucket array.
        retired_.push_back(std::move(core_));
        core_ = std::move(fresh);
        core_snapshot_.store(core_.get(), std::memory_order_release);
        stats_.RecordExpansion();
        stats_.RecordExpansionPauseNanos(NowNanos() - pause_start);
        return;
      }
      // Retry one size larger; `fresh` (with moved-in elements) is destroyed,
      // but RehashInto only destroys source slots after a successful move, so
      // elements still in the old core are intact and the ones moved into
      // `fresh` are recovered by moving them back.
      RecoverFrom(*core_, *fresh);
    }
  }

  // Move every element of `from` into `to` using exclusive greedy inserts.
  // On failure, elements already moved stay in `to` until RecoverFrom.
  bool RehashInto(Core& from, Core& to) REQUIRES(stripes_) {
    for (std::size_t b = 0; b < from.bucket_count(); ++b) {
      for (int s = 0; s < B; ++s) {
        if (from.Tag(b, s) == 0) {
          continue;
        }
        const HashedKey h = HashedKey::From(hasher_(from.Key(b, s)));
        if (!ExclusiveInsert(to, h, std::move(from.Key(b, s)), std::move(from.Value(b, s)))) {
          return false;
        }
        from.DestroySlot(b, s);
      }
    }
    return true;
  }

  // Undo a failed RehashInto: move elements parked in `to` back into `from`'s
  // empty slots (there is always room — they came from there).
  void RecoverFrom(Core& from, Core& to) REQUIRES(stripes_) {
    for (std::size_t b = 0; b < to.bucket_count(); ++b) {
      for (int s = 0; s < B; ++s) {
        if (to.Tag(b, s) == 0) {
          continue;
        }
        const HashedKey h = HashedKey::From(hasher_(to.Key(b, s)));
        bool ok = ExclusiveInsert(from, h, std::move(to.Key(b, s)), std::move(to.Value(b, s)));
        assert(ok && "recovery insert cannot fail: the slot was previously occupied");
        (void)ok;
        to.DestroySlot(b, s);
      }
    }
  }

  template <typename KArg, typename VArg>
  bool ExclusiveInsert(Core& core, const HashedKey& h, KArg&& key, VArg&& value)
      REQUIRES(stripes_) {
    for (;;) {
      const std::size_t b1 = h.Bucket1(core.mask);
      const std::size_t b2 = core.AltBucket(b1, h.tag);
      for (std::size_t b : {b1, b2}) {
        int s = core.FindEmptySlot(b);
        if (s >= 0) {
          core.ConstructSlot(b, s, h.tag, std::forward<KArg>(key), std::forward<VArg>(value));
          return true;
        }
      }
      CuckooPath path;
      if (!BfsSearch(core, b1, b2, opts_.max_search_slots, opts_.prefetch, &path)) {
        return false;
      }
      bool valid = true;
      for (std::size_t i = path.hops.size() - 1; i-- > 0;) {
        const PathHop& from = path.hops[i];
        const PathHop& to = path.hops[i + 1];
        if (from.tag == 0 || core.Tag(from.bucket, from.slot) != from.tag ||
            core.Tag(to.bucket, to.slot) != 0) {
          valid = false;
          break;
        }
        core.MoveSlot(from.bucket, from.slot, to.bucket, to.slot);
      }
      const PathHop& hole = path.hops.front();
      if (!valid || core.Tag(hole.bucket, hole.slot) != 0) {
        continue;  // self-overlapping path; table perturbed, search again
      }
      core.ConstructSlot(hole.bucket, hole.slot, h.tag, std::forward<KArg>(key),
                         std::forward<VArg>(value));
      return true;
    }
  }

  Options opts_;
  Hash hasher_;
  KeyEqual eq_;
  mutable LockStripes stripes_;
  mutable Mutex maintenance_mutex_;
  // Owned core (replacement serialized by maintenance_mutex_) plus a lock-
  // free snapshot pointer operations resolve buckets against.
  std::unique_ptr<Core> core_ GUARDED_BY(maintenance_mutex_);
  // Superseded cores, kept until destruction (see Expand).
  std::vector<std::unique_ptr<Core>> retired_ GUARDED_BY(maintenance_mutex_);
  mutable std::atomic<Core*> core_snapshot_{nullptr};
  std::atomic<std::size_t> size_{0};
  mutable MapStats stats_;
  // Fuzzy-snapshot state (see TrySnapshotBuckets). Mutable: the walk is
  // logically const, and ExecutePath (non-const) shares the displacement log.
  mutable Mutex snapshot_walk_mutex_;
  mutable Mutex displaced_mutex_;
  mutable std::vector<std::pair<K, V>> displaced_log_ GUARDED_BY(displaced_mutex_);
  mutable std::atomic<bool> snapshot_active_{false};
};

}  // namespace cuckoo

#endif  // SRC_CUCKOO_GENERAL_CUCKOO_MAP_H_
