#include "src/common/file_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace cuckoo {

bool AppendFile::Open(const std::string& path, bool truncate) {
  Close();
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) {
    flags |= O_TRUNC;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return false;
  }
  path_ = path;
  if (truncate) {
    size_ = 0;
  } else {
    struct stat st;
    size_ = (::fstat(fd_, &st) == 0) ? static_cast<std::uint64_t>(st.st_size) : 0;
  }
  return true;
}

bool AppendFile::Append(std::string_view bytes) {
  if (fd_ < 0) {
    return false;
  }
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  size_ += bytes.size();
  return true;
}

bool AppendFile::Sync() {
  if (fd_ < 0) {
    return false;
  }
#if defined(__linux__)
  return ::fdatasync(fd_) == 0;
#else
  return ::fsync(fd_) == 0;
#endif
}

bool AppendFile::Close() {
  if (fd_ < 0) {
    return true;
  }
  const bool ok = ::close(fd_) == 0;
  fd_ = -1;
  return ok;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      out->clear();
      return false;
    }
    if (n == 0) {
      break;
    }
    out->append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    AppendFile file;
    if (!file.Open(tmp, /*truncate=*/true) || !file.Append(contents) || !file.Sync() ||
        !file.Close()) {
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? std::string(".") : path.substr(0, slash));
}

bool SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0) {
    return true;
  }
  if (errno != EEXIST) {
    return false;
  }
  struct stat st;
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> ListFilesWithPrefix(const std::string& dir,
                                             const std::string& prefix) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    struct stat st;
    if (::stat((dir + "/" + name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool TruncateFile(const std::string& path, std::uint64_t size) {
  return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool RemoveFile(const std::string& path) { return ::unlink(path.c_str()) == 0; }

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

}  // namespace cuckoo
