// Lazily-aggregated per-thread counters (principle P1 from §3): "disable
// instant global statistics counters in favor of lazily aggregated per-thread
// counters". Each thread increments its own cache-line-private slot; readers
// sum all slots on demand.
#ifndef SRC_COMMON_PER_THREAD_COUNTER_H_
#define SRC_COMMON_PER_THREAD_COUNTER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/cpu.h"

namespace cuckoo {

class PerThreadCounter {
 public:
  PerThreadCounter() : slots_(new Slot[kMaxThreads]) {}
  PerThreadCounter(const PerThreadCounter&) = delete;
  PerThreadCounter& operator=(const PerThreadCounter&) = delete;

  // Add `delta` to the calling thread's slot. Signed so decrements work.
  void Add(std::int64_t delta) noexcept {
    slots_[CurrentThreadId()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  void Increment() noexcept { Add(1); }
  void Decrement() noexcept { Add(-1); }

  // Release-ordered increment, pairing with SumAcquire(): a reader whose
  // SumAcquire() observes this increment also observes every write the
  // incrementing thread made before it. Used to keep cross-counter
  // invariants (e.g. hits <= lookups) true under concurrent snapshots.
  void IncrementRelease() noexcept {
    slots_[CurrentThreadId()].value.fetch_add(1, std::memory_order_release);
  }

  // Aggregate across all thread slots. Not linearizable with concurrent
  // updates; exact once writers quiesce.
  std::int64_t Sum() const noexcept {
    std::int64_t total = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
      total += slots_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Acquire-ordered aggregate; see IncrementRelease().
  std::int64_t SumAcquire() const noexcept {
    std::int64_t total = 0;
    for (int i = 0; i < kMaxThreads; ++i) {
      total += slots_[i].value.load(std::memory_order_acquire);
    }
    return total;
  }

  // Reset all slots to zero. Callers must ensure no concurrent updates.
  void Reset() noexcept {
    for (int i = 0; i < kMaxThreads; ++i) {
      slots_[i].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::int64_t> value{0};
  };
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace cuckoo

#endif  // SRC_COMMON_PER_THREAD_COUNTER_H_
