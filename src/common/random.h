// Fast PRNGs and workload-distribution generators for tests and benchmarks.
// Deliberately not <random>-based in hot paths: xorshift128+ is a few cycles
// per draw and deterministic across platforms.
#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace cuckoo {

// xorshift128+ seeded through splitmix64, as recommended by Vigna.
class Xorshift128Plus {
 public:
  explicit Xorshift128Plus(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    s0_ = Mix64(seed);
    s1_ = Mix64(s0_);
    if ((s0_ | s1_) == 0) {
      s1_ = 1;
    }
  }

  std::uint64_t Next() noexcept {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick (no modulo bias
  // worth caring about for benchmark workloads).
  std::uint64_t NextBelow(std::uint64_t bound) noexcept {
    assert(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

// Zipf-distributed generator over [0, n) with parameter `theta` (0 = uniform,
// ~0.99 = YCSB-style skew). Uses the Gray/Jim-Gray "quick zipf" method with
// precomputed constants, O(1) per draw.
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    assert(theta >= 0.0 && theta < 1.0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t Next() noexcept {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    double v = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t k = static_cast<std::uint64_t>(v);
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double Zeta(std::uint64_t n, double theta) {
    // Exact sum for small n; Euler-Maclaurin style approximation for large n
    // keeps construction O(1e6) at worst.
    double sum = 0.0;
    std::uint64_t limit = n < 1000000 ? n : 1000000;
    for (std::uint64_t i = 1; i <= limit; ++i) {
      sum += std::pow(1.0 / static_cast<double>(i), theta);
    }
    if (n > limit) {
      // Integral tail: sum_{i=limit+1}^{n} i^-theta ~= (n^(1-t) - limit^(1-t)) / (1-t).
      double t1 = 1.0 - theta;
      sum += (std::pow(static_cast<double>(n), t1) -
              std::pow(static_cast<double>(limit), t1)) /
             t1;
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  Xorshift128Plus rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace cuckoo

#endif  // SRC_COMMON_RANDOM_H_
