#include "src/common/crc32c.h"

#include <bit>
#include <cstring>

// The slicing loop folds the running CRC into the low bytes of a raw 64-bit
// load, which is only correct on little-endian hosts (every target this repo
// builds for). Fail loudly rather than silently mis-checksum elsewhere.
static_assert(std::endian::native == std::endian::little,
              "Crc32c slicing-by-8 assumes a little-endian host");

namespace cuckoo {
namespace {

// 8 slicing tables, 256 entries each, generated at startup from the reflected
// Castagnoli polynomial. Table 0 is the classic byte-at-a-time table;
// table k advances a byte through k additional zero bytes.
struct Crc32cTables {
  std::uint32_t t[8][256];

  Crc32cTables() noexcept {
    constexpr std::uint32_t kPoly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
      }
    }
  }
};

const Crc32cTables& Tables() noexcept {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data, std::size_t len) noexcept {
  const auto& tab = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until 8-byte aligned (keeps the 64-bit loads natural).
  while (len > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xffu];
    --len;
  }
  while (len >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tab.t[7][word & 0xffu] ^ tab.t[6][(word >> 8) & 0xffu] ^
          tab.t[5][(word >> 16) & 0xffu] ^ tab.t[4][(word >> 24) & 0xffu] ^
          tab.t[3][(word >> 32) & 0xffu] ^ tab.t[2][(word >> 40) & 0xffu] ^
          tab.t[1][(word >> 48) & 0xffu] ^ tab.t[0][(word >> 56) & 0xffu];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xffu];
    --len;
  }
  return ~crc;
}

std::uint32_t Crc32c(const void* data, std::size_t len) noexcept {
  return Crc32cExtend(0, data, len);
}

}  // namespace cuckoo
