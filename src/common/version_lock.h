// A combined spinlock + optimistic version counter in one 64-bit word.
//
// This is the lock-stripe entry from §4.4 of the paper: "we go back to the
// basic design of lock-striped cuckoo hashing and maintain an actual lock in
// the stripe in addition to the version counter (our lock uses the high-order
// bit of the counter)".
//
// Writers take the lock (set the high bit with CAS); every Unlock() increments
// the version so optimistic readers observe that the protected region changed.
// Readers never write the word: they snapshot the version (spinning past any
// in-flight writer), read the protected data, and re-validate.
//
// Under CUCKOO_DEBUG_CHECKS the lock additionally tracks its owner thread and
// aborts on recursive locking and unlock-by-non-owner.
#ifndef SRC_COMMON_VERSION_LOCK_H_
#define SRC_COMMON_VERSION_LOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/cpu.h"
#include "src/common/debug_checks.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {

class CAPABILITY("version_lock") VersionLock {
 public:
  static constexpr std::uint64_t kLockBit = 1ull << 63;
  // The version occupies the low 63 bits and wraps to 0 past kVersionMask.
  static constexpr std::uint64_t kVersionMask = kLockBit - 1;

  VersionLock() noexcept = default;
  // Start at a chosen version (< kLockBit). Tests use this to exercise
  // wrap-around; the table constructors always start at 0.
  explicit VersionLock(std::uint64_t initial_version) noexcept : word_(initial_version) {
    CUCKOO_DCHECK((initial_version & kLockBit) == 0,
                  "initial version must fit in the low 63 bits");
  }
  VersionLock(const VersionLock&) = delete;
  VersionLock& operator=(const VersionLock&) = delete;

  // Acquire the lock, spinning (with bounded PAUSE then yield) until free.
  // (The CAS loop body is invisible to thread-safety analysis — the ACQUIRE
  // postcondition is what call sites are checked against.)
  void Lock() noexcept ACQUIRE() {
    DebugCheckNotHeldByThisThread();
    int spins = 0;
    for (;;) {
      std::uint64_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockBit) == 0 &&
          word_.compare_exchange_weak(v, v | kLockBit, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        DebugSetOwner();
        return;
      }
      if (++spins < kSpinLimit) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  // One-shot acquisition attempt. Unlike Lock(), calling this while already
  // holding the lock is well-defined (it returns false), so no owner
  // assertion: only the blocking path turns self-acquisition into deadlock.
  bool TryLock() noexcept TRY_ACQUIRE(true) {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    if ((v & kLockBit) == 0 &&
        word_.compare_exchange_strong(v, v | kLockBit, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      DebugSetOwner();
      return true;
    }
    return false;
  }

  // Release the lock and advance the version, invalidating concurrent
  // optimistic readers. Must only be called by the lock holder.
  //
  // A single CAS RMW clears the bit and bumps the (wrapping, 63-bit) version
  // together. The loop body never actually retries: while the lock bit is set
  // no other thread modifies the word — writers' acquisition CASes fail and
  // readers never write — so the holder's CAS succeeds on the first attempt;
  // the RMW form exists so the release can never clobber a word it did not
  // read (and so the previous value is available to assert on).
  void Unlock() noexcept RELEASE() {
    DebugCheckHeldByThisThread();
    DebugClearOwner();
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    CUCKOO_DCHECK((v & kLockBit) != 0, "Unlock of a VersionLock that is not locked");
    while (!word_.compare_exchange_weak(v, (v + 1) & kVersionMask,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  // Release without bumping the version: the holder certifies it made no
  // modification to the protected region, so concurrent optimistic readers
  // stay valid. Same single-RMW structure as Unlock.
  void UnlockNoModify() noexcept RELEASE() {
    DebugCheckHeldByThisThread();
    DebugClearOwner();
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    CUCKOO_DCHECK((v & kLockBit) != 0,
                  "UnlockNoModify of a VersionLock that is not locked");
    while (!word_.compare_exchange_weak(v, v & kVersionMask, std::memory_order_release,
                                        std::memory_order_relaxed)) {
    }
  }

  // Spin until the lock bit is clear and return the (stable) version.
  std::uint64_t AwaitVersion() const noexcept {
    int spins = 0;
    for (;;) {
      std::uint64_t v = word_.load(std::memory_order_acquire);
      if ((v & kLockBit) == 0) {
        return v;
      }
      if (++spins < kSpinLimit) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  // Raw load; may have the lock bit set.
  std::uint64_t LoadRaw() const noexcept { return word_.load(std::memory_order_acquire); }

  bool IsLocked() const noexcept {
    return (word_.load(std::memory_order_relaxed) & kLockBit) != 0;
  }

  static bool VersionChanged(std::uint64_t before, std::uint64_t now) noexcept {
    return before != now;
  }

 private:
#if CUCKOO_DEBUG_CHECKS
  static constexpr int kNoOwner = -1;

  void DebugSetOwner() noexcept {
    owner_.store(CurrentThreadId(), std::memory_order_relaxed);
  }
  void DebugClearOwner() noexcept { owner_.store(kNoOwner, std::memory_order_relaxed); }
  void DebugCheckNotHeldByThisThread() const noexcept {
    CUCKOO_DCHECK(owner_.load(std::memory_order_relaxed) != CurrentThreadId(),
                  "recursive VersionLock acquisition (already held by this thread)");
  }
  void DebugCheckHeldByThisThread() const noexcept {
    CUCKOO_DCHECK(owner_.load(std::memory_order_relaxed) == CurrentThreadId(),
                  "VersionLock released by a thread that does not hold it");
  }
#else
  void DebugSetOwner() noexcept {}
  void DebugClearOwner() noexcept {}
  void DebugCheckNotHeldByThisThread() const noexcept {}
  void DebugCheckHeldByThisThread() const noexcept {}
#endif

  static constexpr int kSpinLimit = 128;
  std::atomic<std::uint64_t> word_{0};
#if CUCKOO_DEBUG_CHECKS
  std::atomic<int> owner_{kNoOwner};
#endif
};

// VersionLock padded to a cache line for use in stripe arrays.
struct alignas(kCacheLineSize) PaddedVersionLock : VersionLock {};

static_assert(sizeof(PaddedVersionLock) == kCacheLineSize);

}  // namespace cuckoo

#endif  // SRC_COMMON_VERSION_LOCK_H_
