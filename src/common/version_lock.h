// A combined spinlock + optimistic version counter in one 64-bit word.
//
// This is the lock-stripe entry from §4.4 of the paper: "we go back to the
// basic design of lock-striped cuckoo hashing and maintain an actual lock in
// the stripe in addition to the version counter (our lock uses the high-order
// bit of the counter)".
//
// Writers take the lock (set the high bit with CAS); every Unlock() increments
// the version so optimistic readers observe that the protected region changed.
// Readers never write the word: they snapshot the version (spinning past any
// in-flight writer), read the protected data, and re-validate.
#ifndef SRC_COMMON_VERSION_LOCK_H_
#define SRC_COMMON_VERSION_LOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/cpu.h"

namespace cuckoo {

class VersionLock {
 public:
  static constexpr std::uint64_t kLockBit = 1ull << 63;

  VersionLock() noexcept = default;
  VersionLock(const VersionLock&) = delete;
  VersionLock& operator=(const VersionLock&) = delete;

  // Acquire the lock, spinning (with bounded PAUSE then yield) until free.
  void Lock() noexcept {
    int spins = 0;
    for (;;) {
      std::uint64_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockBit) == 0 &&
          word_.compare_exchange_weak(v, v | kLockBit, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      if (++spins < kSpinLimit) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  // One-shot acquisition attempt.
  bool TryLock() noexcept {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & kLockBit) == 0 &&
           word_.compare_exchange_strong(v, v | kLockBit, std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  // Release the lock and advance the version, invalidating concurrent
  // optimistic readers. Must only be called by the lock holder.
  void Unlock() noexcept {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    word_.store((v + 1) & ~kLockBit, std::memory_order_release);
  }

  // Release without bumping the version: the holder certifies it made no
  // modification to the protected region, so readers need not be invalidated.
  void UnlockNoModify() noexcept {
    std::uint64_t v = word_.load(std::memory_order_relaxed);
    word_.store(v & ~kLockBit, std::memory_order_release);
  }

  // Spin until the lock bit is clear and return the (stable) version.
  std::uint64_t AwaitVersion() const noexcept {
    int spins = 0;
    for (;;) {
      std::uint64_t v = word_.load(std::memory_order_acquire);
      if ((v & kLockBit) == 0) {
        return v;
      }
      if (++spins < kSpinLimit) {
        CpuRelax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

  // Raw load; may have the lock bit set.
  std::uint64_t LoadRaw() const noexcept { return word_.load(std::memory_order_acquire); }

  bool IsLocked() const noexcept {
    return (word_.load(std::memory_order_relaxed) & kLockBit) != 0;
  }

  static bool VersionChanged(std::uint64_t before, std::uint64_t now) noexcept {
    return before != now;
  }

 private:
  static constexpr int kSpinLimit = 128;
  std::atomic<std::uint64_t> word_{0};
};

// VersionLock padded to a cache line for use in stripe arrays.
struct alignas(kCacheLineSize) PaddedVersionLock : VersionLock {};

static_assert(sizeof(PaddedVersionLock) == kCacheLineSize);

}  // namespace cuckoo

#endif  // SRC_COMMON_VERSION_LOCK_H_
