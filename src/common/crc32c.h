// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the durability subsystem frames every WAL and snapshot record
// with. Software slicing-by-8 implementation: no SSE4.2 dependency, ~1 B/cycle,
// bit-identical to the hardware `crc32` instruction family used by RocksDB,
// LevelDB, and iSCSI.
#ifndef SRC_COMMON_CRC32C_H_
#define SRC_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cuckoo {

// One-shot CRC32C of `len` bytes. Equals Crc32cExtend(0, data, len).
std::uint32_t Crc32c(const void* data, std::size_t len) noexcept;

inline std::uint32_t Crc32c(std::string_view bytes) noexcept {
  return Crc32c(bytes.data(), bytes.size());
}

// Incrementally extend a running CRC: Crc32cExtend(Crc32c(a), b) ==
// Crc32c(a || b). `crc` is the plain (already finalized) CRC of the prefix.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data, std::size_t len) noexcept;

// Masked form (the LevelDB/RocksDB trick): storing a CRC of data that itself
// contains CRCs makes accidental collisions likelier, so persisted checksums
// are rotated and offset. Verify with Crc32cUnmask(stored) == computed.
inline std::uint32_t Crc32cMask(std::uint32_t crc) noexcept {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline std::uint32_t Crc32cUnmask(std::uint32_t masked) noexcept {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace cuckoo

#endif  // SRC_COMMON_CRC32C_H_
