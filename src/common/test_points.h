// Schedule-perturbation hooks ("test points") for deterministic race testing.
//
// The §4.3.1/§4.4 protocols have three narrow windows where a concurrent
// writer changes the outcome:
//
//   * between cuckoo-path discovery and the first displacement lock
//     (kInsertAfterPathDiscovery) — forces Appendix B path invalidation;
//   * between the two bucket-lock acquisitions of a stripe pair
//     (kPairLockBetweenAcquires) — exercises the ordered-locking discipline;
//   * between the version snapshot and the data read of an optimistic lookup
//     (kReadAfterVersionSnapshot), and between the data read and validation
//     (kReadBeforeValidate) — forces reader validation failure mid-read.
//
// A stress test hits these windows probabilistically; a test point hits them
// on demand: tests arm a callback that runs *on the thread inside the window*,
// and use it to perform a conflicting operation or rendezvous with another
// thread. Instrumented code marks the windows with CUCKOO_TEST_POINT(p),
// which compiles to nothing unless CUCKOO_ENABLE_TEST_POINTS is defined
// non-zero (the sanitizer/debug CMake presets enable it; release builds do
// not).
//
// Handlers run with whatever locks the window holds — kPairLockBetweenAcquires
// fires while the lower stripe is held, the other points fire lock-free. A
// handler must not re-enter an operation that takes the held stripe.
#ifndef SRC_COMMON_TEST_POINTS_H_
#define SRC_COMMON_TEST_POINTS_H_

#if !defined(CUCKOO_ENABLE_TEST_POINTS)
#define CUCKOO_ENABLE_TEST_POINTS 0
#endif

namespace cuckoo {

enum class TestPoint : int {
  kInsertAfterPathDiscovery = 0,
  kPairLockBetweenAcquires,
  kReadAfterVersionSnapshot,
  kReadBeforeValidate,
  // Fires in Expand() after the first-attempt fresh core is allocated but
  // before any stripe is taken: the handler can run a table operation to
  // prove the multi-MB allocation happens outside the writer-visible pause
  // (it would self-deadlock if the allocation regressed to inside AllGuard).
  kExpansionCoreAllocated,
  kCount,
};

}  // namespace cuckoo

#if CUCKOO_ENABLE_TEST_POINTS

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

namespace cuckoo {
namespace testpoints {

using Handler = std::function<void()>;

namespace internal {

struct Registry {
  // Fast-path gate per point: a relaxed load when nothing is armed.
  std::array<std::atomic<bool>, static_cast<int>(TestPoint::kCount)> armed{};
  std::mutex mu;
  std::array<std::shared_ptr<const Handler>, static_cast<int>(TestPoint::kCount)> handlers;
};

inline Registry& GetRegistry() noexcept {
  static Registry registry;
  return registry;
}

}  // namespace internal

// Arm `handler` at `point`, replacing any previous handler. `max_fires`
// bounds how many times it runs (0 = unlimited) — one-shot handlers are the
// common case because retry loops revisit the same window.
inline void Arm(TestPoint point, Handler handler, int max_fires = 1) {
  auto& reg = internal::GetRegistry();
  const int i = static_cast<int>(point);
  std::shared_ptr<const Handler> wrapped;
  if (max_fires == 0) {
    wrapped = std::make_shared<const Handler>(std::move(handler));
  } else {
    auto budget = std::make_shared<std::atomic<int>>(max_fires);
    wrapped = std::make_shared<const Handler>([fn = std::move(handler), budget]() {
      // fetch_sub decides winner-takes-a-slot even if two threads race here.
      if (budget->fetch_sub(1, std::memory_order_relaxed) > 0) {
        fn();
      }
    });
  }
  std::lock_guard<std::mutex> g(reg.mu);
  reg.handlers[i] = std::move(wrapped);
  reg.armed[i].store(true, std::memory_order_release);
}

inline void Disarm(TestPoint point) {
  auto& reg = internal::GetRegistry();
  const int i = static_cast<int>(point);
  std::lock_guard<std::mutex> g(reg.mu);
  reg.armed[i].store(false, std::memory_order_release);
  reg.handlers[i].reset();
}

inline void DisarmAll() {
  for (int i = 0; i < static_cast<int>(TestPoint::kCount); ++i) {
    Disarm(static_cast<TestPoint>(i));
  }
}

// Called by instrumented code at the window.
inline void Hit(TestPoint point) {
  auto& reg = internal::GetRegistry();
  const int i = static_cast<int>(point);
  if (!reg.armed[i].load(std::memory_order_acquire)) {
    return;
  }
  std::shared_ptr<const Handler> handler;
  {
    std::lock_guard<std::mutex> g(reg.mu);
    handler = reg.handlers[i];
  }
  if (handler && *handler) {
    (*handler)();
  }
}

// RAII arming for tests: disarms its point (and by default every point) on
// scope exit so a failing test cannot leak a handler into the next one.
class ScopedHandler {
 public:
  ScopedHandler(TestPoint point, Handler handler, int max_fires = 1) : point_(point) {
    Arm(point, std::move(handler), max_fires);
  }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;
  ~ScopedHandler() { Disarm(point_); }

 private:
  TestPoint point_;
};

}  // namespace testpoints
}  // namespace cuckoo

#define CUCKOO_TEST_POINT(point) ::cuckoo::testpoints::Hit(point)

#else

#define CUCKOO_TEST_POINT(point) static_cast<void>(0)

#endif  // CUCKOO_ENABLE_TEST_POINTS

#endif  // SRC_COMMON_TEST_POINTS_H_
