// CPU and platform helpers: cache-line geometry, pause/prefetch hints,
// RTM feature detection, and thread pinning.
#ifndef SRC_COMMON_CPU_H_
#define SRC_COMMON_CPU_H_

#include <cstddef>
#include <cstdint>

namespace cuckoo {

// Size every contended object is padded to. 64 bytes on all x86 parts we
// target; hardcoded (rather than std::hardware_destructive_interference_size)
// so layouts are stable across compilers.
inline constexpr std::size_t kCacheLineSize = 64;

// Hint to the CPU that we are in a spin-wait loop (PAUSE on x86).
void CpuRelax() noexcept;

// Prefetch the cache line containing `addr` for a read (NTA-free, T0 hint).
void PrefetchRead(const void* addr) noexcept;

// Prefetch the cache line containing `addr` for a write.
void PrefetchWrite(const void* addr) noexcept;

// True if CPUID reports Restricted Transactional Memory (TSX RTM) support.
// This is a static capability bit; microcode may still force-abort all
// transactions, so callers should also run RtmProbe() (see src/htm/rtm.h)
// before trusting the result.
bool CpuSupportsRtm() noexcept;

// True if SSE2 is executable on this CPU (always on x86-64; checked via
// CPUID on 32-bit x86; false elsewhere). Gates the 128-bit tag-probe kernel.
bool CpuSupportsSse2() noexcept;

// True if AVX2 is both reported by CPUID and usable: the OS must have
// enabled YMM state saving (OSXSAVE + XGETBV), otherwise executing a VEX-256
// instruction faults even on AVX2 silicon. Gates the 256-bit dual-bucket
// tag-probe kernel.
bool CpuSupportsAvx2() noexcept;

// Number of CPUs available to this process.
int NumOnlineCpus() noexcept;

// Pin the calling thread to `cpu` (modulo the online-CPU count).
// Returns false if the affinity call failed.
bool PinThreadToCpu(int cpu) noexcept;

// A small dense id for the calling thread, assigned on first use.
// Ids start at 0 and never exceed kMaxThreads - 1 (they wrap by then).
inline constexpr int kMaxThreads = 256;
int CurrentThreadId() noexcept;

}  // namespace cuckoo

#endif  // SRC_COMMON_CPU_H_
