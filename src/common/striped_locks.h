// Lock striping (§4.2/§4.4): a small power-of-two table of VersionLocks that
// each protect the set of buckets hashing to that stripe. "By using reasonable
// size lock tables, such as 1K-8K entries, the locking can be both very
// fine-grained and low-overhead." The paper's default is 2048 stripes.
#ifndef SRC_COMMON_STRIPED_LOCKS_H_
#define SRC_COMMON_STRIPED_LOCKS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/debug_checks.h"
#include "src/common/per_thread_counter.h"
#include "src/common/test_points.h"
#include "src/common/thread_annotations.h"
#include "src/common/version_lock.h"

namespace cuckoo {

// Thread-safety-analysis note: the analysis has no notion of "stripe i of
// N", so LockStripes is modeled as ONE coarse capability meaning "this
// thread holds some stripes of this table". The per-method ACQUIRE/RELEASE
// contracts below are what call sites are checked against (a path touching a
// REQUIRES(stripes_) helper without a guard, or a double-release, still
// fails to compile); the bodies — which manipulate the individual annotated
// VersionLocks — are excluded from analysis, and their actual discipline is
// enforced at runtime by CUCKOO_DEBUG_CHECKS stripe-order tracking.
class CAPABILITY("lock_stripes") LockStripes {
 public:
  static constexpr std::size_t kDefaultStripeCount = 2048;

  explicit LockStripes(std::size_t stripe_count = kDefaultStripeCount)
      : mask_(stripe_count - 1), stripes_(new PaddedVersionLock[stripe_count]) {
    assert(stripe_count > 0 && (stripe_count & (stripe_count - 1)) == 0 &&
           "stripe count must be a power of two");
  }

  std::size_t stripe_count() const noexcept { return mask_ + 1; }

  // Contention profiling hook: when set, every pair/single-stripe
  // acquisition that fails its initial TryLock (i.e. actually contended)
  // bumps the counter before falling back to the blocking acquire. LockAll
  // is exempt — whole-table operations expect to plow through held stripes.
  // The counter must outlive the stripes; install before concurrent use.
  void SetContentionCounter(PerThreadCounter* counter) noexcept {
    contended_ = counter;
  }

  // Stripe index that guards bucket `bucket_index`.
  std::size_t StripeFor(std::size_t bucket_index) const noexcept {
    return bucket_index & mask_;
  }

  VersionLock& Stripe(std::size_t stripe_index) noexcept { return stripes_[stripe_index]; }
  const VersionLock& Stripe(std::size_t stripe_index) const noexcept {
    return stripes_[stripe_index];
  }

  // Lock the stripes of two buckets in canonical (ascending stripe) order to
  // avoid deadlock; if both buckets share a stripe only one lock is taken
  // (§4.4: "Locks of the pair of buckets are ordered by the bucket id to avoid
  // deadlock. If two buckets share the same lock, then only one lock is
  // acquired and released").
  void LockPair(std::size_t b1, std::size_t b2) noexcept ACQUIRE()
      NO_THREAD_SAFETY_ANALYSIS {
    std::size_t s1 = StripeFor(b1);
    std::size_t s2 = StripeFor(b2);
    if (s1 > s2) {
      std::swap(s1, s2);
    }
    CUCKOO_DEBUG_STRIPE_ACQUIRE(this, s1);
    LockCounted(s1);
    if (s2 != s1) {
      // Window between the two acquisitions: a peer locking an overlapping
      // pair is ordered against us by the canonical (ascending) order above.
      CUCKOO_TEST_POINT(TestPoint::kPairLockBetweenAcquires);
      CUCKOO_DEBUG_STRIPE_ACQUIRE(this, s2);
      LockCounted(s2);
    }
  }

  void UnlockPair(std::size_t b1, std::size_t b2) noexcept RELEASE()
      NO_THREAD_SAFETY_ANALYSIS {
    std::size_t s1 = StripeFor(b1);
    std::size_t s2 = StripeFor(b2);
    CUCKOO_DEBUG_STRIPE_RELEASE(this, s1);
    stripes_[s1].Unlock();
    if (s2 != s1) {
      CUCKOO_DEBUG_STRIPE_RELEASE(this, s2);
      stripes_[s2].Unlock();
    }
  }

  // Release a pair without bumping versions (no modification happened).
  void UnlockPairNoModify(std::size_t b1, std::size_t b2) noexcept RELEASE()
      NO_THREAD_SAFETY_ANALYSIS {
    std::size_t s1 = StripeFor(b1);
    std::size_t s2 = StripeFor(b2);
    CUCKOO_DEBUG_STRIPE_RELEASE(this, s1);
    stripes_[s1].UnlockNoModify();
    if (s2 != s1) {
      CUCKOO_DEBUG_STRIPE_RELEASE(this, s2);
      stripes_[s2].UnlockNoModify();
    }
  }

  // Single-stripe acquisition for walkers that hold at most one stripe at a
  // time (the fuzzy-snapshot scan). Same debug bookkeeping as LockPair;
  // holding exactly one stripe trivially satisfies the ordering discipline.
  void LockStripe(std::size_t stripe_index) noexcept ACQUIRE()
      NO_THREAD_SAFETY_ANALYSIS {
    CUCKOO_DEBUG_STRIPE_ACQUIRE(this, stripe_index);
    LockCounted(stripe_index);
  }

  bool TryLockStripe(std::size_t stripe_index) noexcept TRY_ACQUIRE(true)
      NO_THREAD_SAFETY_ANALYSIS {
    if (!stripes_[stripe_index].TryLock()) {
      return false;
    }
    CUCKOO_DEBUG_STRIPE_ACQUIRE(this, stripe_index);
    return true;
  }

  void UnlockStripeNoModify(std::size_t stripe_index) noexcept RELEASE()
      NO_THREAD_SAFETY_ANALYSIS {
    CUCKOO_DEBUG_STRIPE_RELEASE(this, stripe_index);
    stripes_[stripe_index].UnlockNoModify();
  }

  // Acquire every stripe in ascending order. Used for whole-table operations
  // (expansion, clear, exclusive LockedTable views). The paper notes a writer
  // "could pessimistically acquire a full-table lock by acquiring each of the
  // 2048 locks in the lock-striped table". Ascending order obeys the same
  // discipline LockPair uses, so whole-table and pair acquisitions never
  // deadlock against each other.
  void LockAll() noexcept ACQUIRE() NO_THREAD_SAFETY_ANALYSIS {
    for (std::size_t i = 0; i <= mask_; ++i) {
      CUCKOO_DEBUG_STRIPE_ACQUIRE(this, i);
      stripes_[i].Lock();
    }
  }

  void UnlockAll() noexcept RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    for (std::size_t i = 0; i <= mask_; ++i) {
      CUCKOO_DEBUG_STRIPE_RELEASE(this, i);
      stripes_[i].Unlock();
    }
  }

 private:
  // Uncontended path: one CAS, same as a direct Lock(). Contended path:
  // count, then spin in the blocking acquire we would have entered anyway.
  void LockCounted(std::size_t stripe_index) noexcept NO_THREAD_SAFETY_ANALYSIS {
    if (stripes_[stripe_index].TryLock()) {
      return;
    }
    if (contended_ != nullptr) {
      contended_->Increment();
    }
    stripes_[stripe_index].Lock();
  }

  std::size_t mask_;
  std::unique_ptr<PaddedVersionLock[]> stripes_;
  PerThreadCounter* contended_ = nullptr;
};

// RAII guard over LockStripes::LockPair.
//
// Release()/ReleaseNoModify() are deliberately NOT annotated as releases:
// several call sites invoke them on a guard reference passed into a lambda
// (GeneralCuckooMap::WithPair), and the analysis treats every lambda as an
// unrelated function with an empty capability set, so an annotated release
// there would be a guaranteed false positive. The destructor stays the
// analysis-visible release; its body (and the ctor's, which acquires via a
// member alias of the parameter) is excluded because conditional release
// and parameter/member aliasing are both outside what the analysis tracks.
class SCOPED_CAPABILITY PairGuard {
 public:
  PairGuard(LockStripes& stripes, std::size_t b1, std::size_t b2) noexcept
      ACQUIRE(stripes) NO_THREAD_SAFETY_ANALYSIS : stripes_(stripes), b1_(b1), b2_(b2) {
    stripes_.LockPair(b1_, b2_);
  }
  PairGuard(const PairGuard&) = delete;
  PairGuard& operator=(const PairGuard&) = delete;
  ~PairGuard() RELEASE() NO_THREAD_SAFETY_ANALYSIS {
    if (!released_) {
      stripes_.UnlockPair(b1_, b2_);
    }
  }

  // Release early, indicating no modification was made under the lock.
  void ReleaseNoModify() noexcept NO_THREAD_SAFETY_ANALYSIS {
    stripes_.UnlockPairNoModify(b1_, b2_);
    released_ = true;
  }

  // Release early after a modification (bumps versions).
  void Release() noexcept NO_THREAD_SAFETY_ANALYSIS {
    stripes_.UnlockPair(b1_, b2_);
    released_ = true;
  }

 private:
  LockStripes& stripes_;
  std::size_t b1_;
  std::size_t b2_;
  bool released_ = false;
};

// RAII guard over LockStripes::LockAll.
class SCOPED_CAPABILITY AllGuard {
 public:
  explicit AllGuard(LockStripes& stripes) noexcept ACQUIRE(stripes)
      NO_THREAD_SAFETY_ANALYSIS : stripes_(stripes) {
    stripes_.LockAll();
  }
  AllGuard(const AllGuard&) = delete;
  AllGuard& operator=(const AllGuard&) = delete;
  ~AllGuard() RELEASE() NO_THREAD_SAFETY_ANALYSIS { stripes_.UnlockAll(); }

 private:
  LockStripes& stripes_;
};

}  // namespace cuckoo

#endif  // SRC_COMMON_STRIPED_LOCKS_H_
