#include "src/common/page_alloc.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>

#include "src/common/cpu.h"

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace cuckoo {
namespace {

std::size_t RoundUp(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

// Zeroed aligned heap block (the non-huge fallback path).
void* AlignedZeroed(std::size_t bytes) {
  const std::size_t padded = RoundUp(bytes, kCacheLineSize);
  void* p = std::aligned_alloc(kCacheLineSize, padded);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  std::memset(p, 0, padded);
  return p;
}

}  // namespace

PageBlock::PageBlock(std::size_t bytes, bool want_hugepages) {
  if (bytes == 0) {
    return;
  }
  bytes_ = bytes;
#if defined(__linux__)
  if (want_hugepages && bytes >= kHugePageSize) {
    // Map with 2 MB of slack, then trim both ends so the kept region is
    // 2 MB-aligned: MADV_HUGEPAGE only fills PMD entries for fully-aligned
    // 2 MB extents, and mmap alone guarantees just 4 KB alignment.
    const std::size_t len = RoundUp(bytes, kHugePageSize);
    void* raw = ::mmap(nullptr, len + kHugePageSize, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (raw != MAP_FAILED) {
      auto addr = reinterpret_cast<std::uintptr_t>(raw);
      const std::uintptr_t aligned = RoundUp(addr, kHugePageSize);
      if (const std::size_t head = aligned - addr; head != 0) {
        ::munmap(raw, head);
      }
      if (const std::size_t tail = kHugePageSize - (aligned - addr); tail != 0) {
        ::munmap(reinterpret_cast<void*>(aligned + len), tail);
      }
      ptr_ = reinterpret_cast<void*>(aligned);
      map_bytes_ = len;
      // Advisory: EINVAL when THP is compiled out or set to "never". The
      // plain mapping (already zero-filled by the kernel) stays usable.
      if (::madvise(ptr_, len, MADV_HUGEPAGE) == 0) {
        hugepage_bytes_ = len;
      }
      return;
    }
    // mmap exhausted (address space / overcommit limits): fall through to
    // the heap path, which throws only if that fails too.
  }
#else
  (void)want_hugepages;
#endif
  ptr_ = AlignedZeroed(bytes);
}

void PageBlock::Release() noexcept {
  if (ptr_ == nullptr) {
    return;
  }
#if defined(__linux__)
  if (map_bytes_ != 0) {
    ::munmap(ptr_, map_bytes_);
    ptr_ = nullptr;
    return;
  }
#endif
  std::free(ptr_);
  ptr_ = nullptr;
}

}  // namespace cuckoo
