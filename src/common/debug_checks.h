// Debug invariant checking for the concurrency substrate.
//
// Two tiers:
//
//   * CUCKOO_CHECK(cond, msg) — always compiled. Used by the explicit
//     invariant walkers (TableCore::AssertInvariants, CuckooMap::
//     AssertInvariants) that tests call deliberately; those must fail loudly
//     in every build type, including the tier-1 release run.
//
//   * CUCKOO_DCHECK(cond, msg) — compiled only when CUCKOO_DEBUG_CHECKS is
//     defined non-zero (the tsan/asan/ubsan/debug CMake presets set it
//     globally). Guards the *automatic* checks that sit on hot paths:
//     VersionLock owner tracking (unlock-by-non-owner, recursive lock) and
//     the stripe-ordering discipline below. Zero cost when disabled.
//
// Stripe-ordering discipline (§4.4): bucket-pair lock acquisition must take
// the lower stripe index first, and whole-table acquisition must proceed in
// ascending index order. Any acquisition ordered that way is deadlock-free;
// any acquisition that grabs a stripe <= one already held (or the same stripe
// twice) can deadlock against a peer. LockStripes records every stripe the
// current thread holds in a thread-local set and asserts the discipline on
// each acquisition, turning a potential deadlock into a deterministic abort
// with a message naming both stripes.
#ifndef SRC_COMMON_DEBUG_CHECKS_H_
#define SRC_COMMON_DEBUG_CHECKS_H_

#include <cstdio>
#include <cstdlib>

#if !defined(CUCKOO_DEBUG_CHECKS)
#define CUCKOO_DEBUG_CHECKS 0
#endif

#if CUCKOO_DEBUG_CHECKS
#include <cstddef>
#include <vector>
#endif

namespace cuckoo {
namespace debug {

[[noreturn]] inline void CheckFailed(const char* expr, const char* msg, const char* file,
                                     int line) noexcept {
  std::fprintf(stderr, "CUCKOO_CHECK failed: %s — %s (%s:%d)\n", expr, msg, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace debug
}  // namespace cuckoo

#define CUCKOO_CHECK(cond, msg)                                            \
  ((cond) ? static_cast<void>(0)                                           \
          : ::cuckoo::debug::CheckFailed(#cond, (msg), __FILE__, __LINE__))

#if CUCKOO_DEBUG_CHECKS
#define CUCKOO_DCHECK(cond, msg) CUCKOO_CHECK(cond, msg)
#else
#define CUCKOO_DCHECK(cond, msg) static_cast<void>(0)
#endif

#if CUCKOO_DEBUG_CHECKS

namespace cuckoo {
namespace debug {

// One stripe held by the current thread. `table` disambiguates stripes of
// unrelated LockStripes instances (two maps may legitimately interleave).
struct HeldStripe {
  const void* table;
  std::size_t index;
};

inline std::vector<HeldStripe>& HeldStripes() noexcept {
  static thread_local std::vector<HeldStripe> held;
  return held;
}

// Assert the ascending-order discipline for `index` against every stripe of
// `table` this thread already holds, then record the acquisition. Called
// immediately BEFORE blocking on the stripe lock, so a would-be deadlock
// aborts instead of hanging.
inline void OnStripeAcquire(const void* table, std::size_t index) noexcept {
  for (const HeldStripe& h : HeldStripes()) {
    if (h.table != table) {
      continue;
    }
    CUCKOO_DCHECK(h.index != index,
                  "stripe lock acquired twice by one thread (self-deadlock)");
    CUCKOO_DCHECK(h.index < index,
                  "stripe-order violation: acquiring a lower-indexed stripe while "
                  "holding a higher one can deadlock (§4.4 requires lower first)");
  }
  HeldStripes().push_back(HeldStripe{table, index});
}

// Record the release of `index`; asserts the thread actually held it.
inline void OnStripeRelease(const void* table, std::size_t index) noexcept {
  auto& held = HeldStripes();
  for (auto it = held.end(); it != held.begin();) {
    --it;
    if (it->table == table && it->index == index) {
      held.erase(it);
      return;
    }
  }
  CUCKOO_DCHECK(false, "stripe lock released by a thread that does not hold it");
}

// Number of stripes of `table` held by the current thread (test aid).
inline std::size_t HeldStripeCount(const void* table) noexcept {
  std::size_t n = 0;
  for (const HeldStripe& h : HeldStripes()) {
    n += h.table == table ? 1 : 0;
  }
  return n;
}

}  // namespace debug
}  // namespace cuckoo

#define CUCKOO_DEBUG_STRIPE_ACQUIRE(table, index) \
  ::cuckoo::debug::OnStripeAcquire((table), (index))
#define CUCKOO_DEBUG_STRIPE_RELEASE(table, index) \
  ::cuckoo::debug::OnStripeRelease((table), (index))

#else

#define CUCKOO_DEBUG_STRIPE_ACQUIRE(table, index) static_cast<void>(0)
#define CUCKOO_DEBUG_STRIPE_RELEASE(table, index) static_cast<void>(0)

#endif  // CUCKOO_DEBUG_CHECKS

#endif  // SRC_COMMON_DEBUG_CHECKS_H_
