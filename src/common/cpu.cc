#include "src/common/cpu.h"

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace cuckoo {

void CpuRelax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

void PrefetchRead(const void* addr) noexcept {
#if defined(__GNUC__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

void PrefetchWrite(const void* addr) noexcept {
#if defined(__GNUC__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

bool CpuSupportsRtm() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  // Leaf 7, subleaf 0: EBX bit 11 = RTM.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  return (ebx & (1u << 11)) != 0;
#else
  return false;
#endif
}

bool CpuSupportsSse2() noexcept {
#if defined(__x86_64__)
  return true;  // architectural baseline
#elif defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  return (edx & (1u << 26)) != 0;
#else
  return false;
#endif
}

bool CpuSupportsAvx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  // Leaf 1 ECX: bit 27 = OSXSAVE (XGETBV executable), bit 28 = AVX.
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  if ((ecx & (1u << 27)) == 0 || (ecx & (1u << 28)) == 0) {
    return false;
  }
  // XGETBV(XCR0): bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled,
  // or any VEX-256 instruction #UDs. Encoded as raw bytes so no -mxsave
  // compile flag is needed for the baseline build.
  unsigned xcr0_lo = 0;
  unsigned xcr0_hi = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6u) != 0x6u) {
    return false;
  }
  // Leaf 7 subleaf 0 EBX bit 5 = AVX2.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return false;
  }
  return (ebx & (1u << 5)) != 0;
#else
  return false;
#endif
}

int NumOnlineCpus() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool PinThreadToCpu(int cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % NumOnlineCpus()), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int CurrentThreadId() noexcept {
  static std::atomic<int> next_id{0};
  thread_local int id = next_id.fetch_add(1, std::memory_order_relaxed) % kMaxThreads;
  return id;
}

}  // namespace cuckoo
