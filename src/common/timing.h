// Wall-clock timing helpers for the benchmark harness.
#ifndef SRC_COMMON_TIMING_H_
#define SRC_COMMON_TIMING_H_

#include <chrono>
#include <cstdint>

namespace cuckoo {

// Monotonic nanoseconds since an arbitrary epoch.
inline std::uint64_t NowNanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Simple restartable stopwatch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(NowNanos()) {}

  void Restart() noexcept { start_ = NowNanos(); }

  std::uint64_t ElapsedNanos() const noexcept { return NowNanos() - start_; }

  double ElapsedSeconds() const noexcept {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

// Throughput in million operations per second, the unit every figure in the
// paper reports.
inline double Mops(std::uint64_t ops, std::uint64_t nanos) noexcept {
  if (nanos == 0) {
    return 0.0;
  }
  return static_cast<double>(ops) * 1e3 / static_cast<double>(nanos);
}

}  // namespace cuckoo

#endif  // SRC_COMMON_TIMING_H_
