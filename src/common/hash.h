// 64-bit hash functions implemented from scratch: an xxHash64-style byte-string
// hash and a splitmix64 integer finalizer, plus the DefaultHash<K> adapter used
// throughout the hash tables in this repo.
//
// Cuckoo hashing needs two independent bucket choices per key; we derive both
// from a single 64-bit hash (high/low halves) like MemC3 does, so each key
// costs one hash computation.
#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace cuckoo {

// xxHash64 over an arbitrary byte range.
std::uint64_t XxHash64(const void* data, std::size_t len, std::uint64_t seed = 0) noexcept;

// splitmix64 finalizer: a fast, well-mixed bijection on 64-bit integers.
constexpr std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Murmur3-style 64-bit finalizer; used where a second independent integer
// mix is wanted (e.g. tests that cross-check distributions).
constexpr std::uint64_t Fmix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Default hasher: integral keys go through Mix64; string-like keys through
// XxHash64; anything else must provide std::hash and gets re-mixed (std::hash
// for integers is often the identity, which is fatal for cuckoo bucket
// derivation).
template <typename K>
struct DefaultHash {
  std::uint64_t operator()(const K& key) const noexcept {
    if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
      return Mix64(static_cast<std::uint64_t>(key));
    } else if constexpr (std::is_convertible_v<const K&, std::string_view>) {
      std::string_view sv(key);
      return XxHash64(sv.data(), sv.size());
    } else {
      return Mix64(static_cast<std::uint64_t>(std::hash<K>{}(key)));
    }
  }
};

// Splits one 64-bit hash into the quantities a cuckoo table needs: a primary
// bucket index, a 1-byte partial-key tag (never zero so it can double as an
// occupancy filter), and the alternate bucket derived from (index, tag) the
// way MemC3 does — so the alternate of the alternate is the original bucket.
struct HashedKey {
  std::uint64_t hash;
  std::uint8_t tag;

  static HashedKey From(std::uint64_t h) noexcept {
    std::uint8_t t = static_cast<std::uint8_t>(h >> 56);
    if (t == 0) {
      t = 1;
    }
    return HashedKey{h, t};
  }

  // Primary bucket in a table of `mask + 1` buckets (mask = 2^n - 1).
  std::size_t Bucket1(std::size_t mask) const noexcept {
    return static_cast<std::size_t>(hash) & mask;
  }

  // Alternate bucket: XOR-displacement by a tag-derived value. Involutive:
  // AltBucket(AltBucket(b)) == b, which is what path execution relies on.
  std::size_t AltBucket(std::size_t bucket, std::size_t mask) const noexcept {
    return (bucket ^ (static_cast<std::size_t>(Mix64(tag)) | 1u)) & mask;
  }

  std::size_t Bucket2(std::size_t mask) const noexcept {
    return AltBucket(Bucket1(mask), mask);
  }
};

}  // namespace cuckoo

#endif  // SRC_COMMON_HASH_H_
