// Annotated mutex wrapper. libstdc++'s std::mutex carries no thread-safety
// attributes, so code locking it is invisible to Clang Thread Safety
// Analysis. cuckoo::Mutex is a zero-cost wrapper that gives the analysis a
// capability to track, and MutexLock is the matching scoped guard.
//
// Condition variables stay std::condition_variable: MutexLock exposes its
// underlying std::unique_lock for cv.wait(). The analysis does not see the
// unlock/relock inside wait — that is fine (and is how absl::Mutex-style
// annotated wrappers behave too): the capability is held at every point the
// guarded fields are actually read, because wait() returns with the lock
// re-acquired. Predicate lambdas, however, are analyzed as separate
// functions with no capabilities, so guarded fields must be tested in
// explicit `while (!pred) cv.wait(...)` loops, not in `cv.wait(lk, pred)`.
#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <mutex>

#include "src/common/thread_annotations.h"

namespace cuckoo {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For std::unique_lock / condition_variable interop (MutexLock below).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// Scoped lock over cuckoo::Mutex. Also usable where a condition variable
// needs a std::unique_lock: `cv.wait(lk.native_handle())`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.native_handle()) {}
  ~MutexLock() RELEASE() {}  // lk_'s destructor performs the unlock

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native_handle() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

// Generic scoped lock for any annotated capability type exposing
// lock()/unlock() (SpinLock, ElidedLock<L>, NullLock). std::lock_guard
// works functionally but, like std::mutex, is unannotated — the analysis
// would flag the guarded accesses as unprotected.
template <typename LockT>
class SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(LockT& lock) ACQUIRE(lock) : lock_(lock) { lock_.lock(); }
  ~ScopedLock() RELEASE() { lock_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  LockT& lock_;
};

}  // namespace cuckoo

#endif  // SRC_COMMON_MUTEX_H_
