// Zero-initialized, cache-line-aligned storage blocks for table cores, with
// opt-in 2 MB huge-page backing.
//
// Large set-associative tables (2^27 slots ≈ 2 GB of buckets) touch one or
// two random cache lines per lookup, so on 4 KB pages nearly every probe also
// pays a dTLB miss. Backing the bucket and tag arrays with transparent huge
// pages cuts the TLB working set by 512x. The mapping is advisory
// (madvise(MADV_HUGEPAGE)): if the kernel has THP disabled, or the region is
// too small, the block silently degrades to normal pages — allocation never
// fails because of huge-page unavailability.
//
// Small blocks (below kHugePageSize) and non-Linux builds use aligned heap
// memory; either way the block is zero-filled, which the table cores rely on
// (a zeroed tag array IS the "every slot empty" state, so a fresh core
// materializes without a multi-MB memset — pages fault in on first touch).
#ifndef SRC_COMMON_PAGE_ALLOC_H_
#define SRC_COMMON_PAGE_ALLOC_H_

#include <cstddef>
#include <utility>

namespace cuckoo {

// x86-64 / aarch64 PMD-level huge page. Blocks at least this large are
// eligible for MADV_HUGEPAGE when requested.
inline constexpr std::size_t kHugePageSize = std::size_t{2} << 20;

// Move-only RAII owner of one zeroed storage block.
class PageBlock {
 public:
  PageBlock() = default;

  // Allocates `bytes` of zeroed memory aligned to at least a cache line.
  // With `want_hugepages` and bytes >= kHugePageSize, maps a 2 MB-aligned
  // anonymous region and requests huge-page backing; hugepage_bytes() then
  // reports the advised length (0 when the advice was refused or never
  // applicable). Throws std::bad_alloc only if memory itself is exhausted.
  PageBlock(std::size_t bytes, bool want_hugepages);

  ~PageBlock() { Release(); }

  PageBlock(PageBlock&& other) noexcept { *this = std::move(other); }
  PageBlock& operator=(PageBlock&& other) noexcept {
    if (this != &other) {
      Release();
      ptr_ = std::exchange(other.ptr_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
      map_bytes_ = std::exchange(other.map_bytes_, 0);
      hugepage_bytes_ = std::exchange(other.hugepage_bytes_, 0);
    }
    return *this;
  }
  PageBlock(const PageBlock&) = delete;
  PageBlock& operator=(const PageBlock&) = delete;

  void* data() const noexcept { return ptr_; }
  std::size_t size() const noexcept { return bytes_; }

  // Bytes covered by a successful MADV_HUGEPAGE request. Advisory: the kernel
  // promotes the region opportunistically, so this reports intent ("the table
  // asked for and was granted huge-page eligibility"), not residency.
  std::size_t hugepage_bytes() const noexcept { return hugepage_bytes_; }

 private:
  void Release() noexcept;

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;      // requested size
  std::size_t map_bytes_ = 0;  // mmap length (0 = aligned heap allocation)
  std::size_t hugepage_bytes_ = 0;
};

}  // namespace cuckoo

#endif  // SRC_COMMON_PAGE_ALLOC_H_
