// Small POSIX file helpers for the durability subsystem: fsync-aware append
// files, directory fsync (persist a create/rename), atomic replace-by-rename,
// and directory listing. All functions report failure by return value and
// leave errno intact for the caller's diagnostics.
#ifndef SRC_COMMON_FILE_UTIL_H_
#define SRC_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cuckoo {

// An append-only file descriptor wrapper. Not thread-safe; the WAL serializes
// access through its log-writer thread.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile() { Close(); }

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  // Open (creating if needed). `truncate` discards existing contents;
  // otherwise the write position is the current end of file.
  bool Open(const std::string& path, bool truncate);

  bool IsOpen() const noexcept { return fd_ >= 0; }
  const std::string& path() const noexcept { return path_; }

  // Write every byte (restarting on EINTR / short writes).
  bool Append(std::string_view bytes);

  bool Sync();   // fdatasync (falls back to fsync)
  bool Close();  // idempotent

  // Bytes written through this handle plus the pre-existing size at Open.
  std::uint64_t Size() const noexcept { return size_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t size_ = 0;
};

// Read a whole file into *out. Returns false (and clears *out) on error.
bool ReadFileToString(const std::string& path, std::string* out);

// Write `contents` to `path` atomically: write to `path + ".tmp"`, fsync,
// rename over `path`, fsync the parent directory.
bool WriteFileAtomic(const std::string& path, std::string_view contents);

// fsync the directory itself so a freshly created/renamed entry is durable.
bool SyncDir(const std::string& dir);

// mkdir -p for one level (parent must exist). Succeeds if already a directory.
bool EnsureDir(const std::string& dir);

// Names (not paths) of regular files in `dir` starting with `prefix`, sorted.
std::vector<std::string> ListFilesWithPrefix(const std::string& dir,
                                             const std::string& prefix);

// Truncate `path` to `size` bytes. Used to drop a torn WAL tail.
bool TruncateFile(const std::string& path, std::uint64_t size);

bool RemoveFile(const std::string& path);

bool FileExists(const std::string& path);

std::uint64_t FileSize(const std::string& path);  // 0 if missing

}  // namespace cuckoo

#endif  // SRC_COMMON_FILE_UTIL_H_
