#include "src/common/hash.h"

#include <cstring>

namespace cuckoo {
namespace {

constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ull;
constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4full;
constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ull;
constexpr std::uint64_t kPrime4 = 0x85ebca77c2b2ae63ull;
constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ull;

inline std::uint64_t Rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t Read64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t Read32(const unsigned char* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Round(std::uint64_t acc, std::uint64_t input) noexcept {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline std::uint64_t MergeRound(std::uint64_t acc, std::uint64_t val) noexcept {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t XxHash64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* const end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    const unsigned char* const limit = end - 32;
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace cuckoo
