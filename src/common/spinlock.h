// A tiny test-and-test-and-set spinlock with bounded spinning.
//
// The paper (§4.4) favours "lightweight spinlocks using compare-and-swap over
// more general purpose mutexes" because all critical sections in the optimized
// table are very short. On an oversubscribed host (more runnable threads than
// cores — including this repo's single-core reproduction host) pure spinning
// is pathological, so after a bounded number of PAUSE iterations the lock
// yields the CPU.
#ifndef SRC_COMMON_SPINLOCK_H_
#define SRC_COMMON_SPINLOCK_H_

#include <atomic>
#include <thread>

#include "src/common/cpu.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {

class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept ACQUIRE() {
    int spins = 0;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      // Test-and-test-and-set: spin on the (shared) cached value to avoid
      // hammering the line with RFO traffic.
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinLimit) {
          CpuRelax();
        } else {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept RELEASE() { locked_.store(false, std::memory_order_release); }

  bool is_locked() const noexcept { return locked_.load(std::memory_order_relaxed); }

 private:
  static constexpr int kSpinLimit = 128;
  std::atomic<bool> locked_{false};
};

// SpinLock padded out to a full cache line so adjacent locks in an array do
// not false-share.
struct alignas(kCacheLineSize) PaddedSpinLock : SpinLock {};

}  // namespace cuckoo

#endif  // SRC_COMMON_SPINLOCK_H_
