// Clang Thread Safety Analysis macros — the compile-time half of the
// concurrency contracts (the runtime half is CUCKOO_DEBUG_CHECKS).
//
// Under clang with -Wthread-safety these expand to the capability attributes
// the analysis consumes; under every other compiler (g++ in particular) they
// expand to nothing, so annotated headers stay portable. The vocabulary
// follows the upstream documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   CAPABILITY(x)        — this type is a lock ("capability") named x
//   SCOPED_CAPABILITY    — RAII type that acquires in its ctor, releases in
//                          its dtor (lock_guard shape)
//   GUARDED_BY(mu)       — reads/writes of this field require holding mu
//   PT_GUARDED_BY(mu)    — same, for the pointee of a pointer field
//   REQUIRES(mu)         — caller must already hold mu (checked at call sites)
//   ACQUIRE(mu)/RELEASE(mu) — this function takes/drops mu (postconditions
//                          checked against the body)
//   TRY_ACQUIRE(b, mu)   — takes mu iff the return value equals b
//   EXCLUDES(mu)         — caller must NOT hold mu (deadlock guard)
//   RETURN_CAPABILITY(mu)— function returns a reference to mu
//   ASSERT_CAPABILITY(mu)— runtime assertion that mu is held
//   NO_THREAD_SAFETY_ANALYSIS — escape hatch for functions whose locking is
//                          correct but outside what TSA can model (try-lock
//                          retry loops, lock managers over lock arrays,
//                          scoped capabilities stored as members). Every use
//                          in this codebase carries a comment saying which
//                          limitation it works around.
//
// Design notes for this codebase:
//   * Striped lock arrays (LockStripes) cannot be modeled per-index — TSA has
//     no notion of "stripe i of N". The manager is annotated as ONE coarse
//     capability ("some stripes are held"), which still catches the
//     interesting bugs: paths that touch exclusive-access helpers without
//     going through a guard, and double-release shapes.
//   * Lambdas are analyzed as independent functions with empty capability
//     sets, so functions invoked from lambdas while a lock is held must not
//     declare REQUIRES on it, and guard methods invoked from lambdas
//     (PairGuard::Release*) stay unannotated.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CUCKOO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CUCKOO_THREAD_ANNOTATION
#define CUCKOO_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) CUCKOO_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY CUCKOO_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) CUCKOO_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) CUCKOO_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) CUCKOO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) CUCKOO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) CUCKOO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CUCKOO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) CUCKOO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) CUCKOO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) CUCKOO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) CUCKOO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) CUCKOO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) CUCKOO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CUCKOO_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) CUCKOO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) CUCKOO_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) CUCKOO_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) CUCKOO_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS CUCKOO_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
