// Relaxed-atomic memory copies for the seqlock (optimistic-read) protocol.
//
// Readers on the §4.4 optimistic path copy key/value bytes *while a writer may
// be storing to them*, and only trust the copy after version validation.
// Expressed as plain loads that is a data race — undefined behaviour under the
// ISO memory model, and exactly what ThreadSanitizer reports (or, if the
// accesses stay invisible to it, silently misses). These helpers perform the
// same copies as relaxed atomic accesses so that
//
//   * the racy accesses have defined behaviour: each word is an atomic load,
//     and a copy torn *between* words is discarded by the seqlock validation;
//   * TSan sees the intentional race as atomic and stays quiet, while still
//     catching any unintended plain-access race in the protocol; and
//   * the acquire/release anchoring lives where it belongs — at the version
//     snapshot / validate points (VersionLock) — not on the data itself.
//
// On x86-64 a relaxed atomic load/store of an aligned 8-byte word compiles to
// the same single mov as memcpy, so the hot fixed-size cases (8/16-byte keys
// and values) cost nothing. Larger or unaligned types fall back to a scalar
// word/byte loop; that is measurably slower than a vectorized memcpy only for
// values of ≳64 bytes, which are cold-path by construction in this codebase.
#ifndef SRC_COMMON_ATOMIC_UTIL_H_
#define SRC_COMMON_ATOMIC_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace cuckoo {

// True in builds instrumented by ThreadSanitizer (set by the CMake sanitizer
// matrix as CUCKOO_TSAN, and auto-detected for direct -fsanitize=thread use).
#if defined(CUCKOO_TSAN) || defined(__SANITIZE_THREAD__)
#define CUCKOO_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CUCKOO_TSAN_ENABLED 1
#else
#define CUCKOO_TSAN_ENABLED 0
#endif
#else
#define CUCKOO_TSAN_ENABLED 0
#endif

namespace internal {

#if defined(__GNUC__) || defined(__clang__)
// Reading a key/value's storage through uint64_t* would violate strict
// aliasing; may_alias exempts this typedef.
using WordAlias = std::uint64_t __attribute__((may_alias));

inline bool WordAligned(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(std::uint64_t) == 0;
}
#endif

}  // namespace internal

// memcpy(dst, src, n) where every load of `src` is a relaxed atomic access.
// `dst` must be thread-private (a local buffer).
inline void RelaxedMemcpyLoad(void* dst, const void* src, std::size_t n) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  if (internal::WordAligned(s)) {
    for (; n >= sizeof(std::uint64_t); n -= sizeof(std::uint64_t)) {
      std::uint64_t w = __atomic_load_n(
          reinterpret_cast<const internal::WordAlias*>(static_cast<const void*>(s)),
          __ATOMIC_RELAXED);
      std::memcpy(d, &w, sizeof(w));
      d += sizeof(w);
      s += sizeof(w);
    }
  }
  for (; n > 0; --n) {
    *d++ = __atomic_load_n(s++, __ATOMIC_RELAXED);
  }
#else
  // Non-GNU toolchains: plain memcpy (the pre-atomic behaviour). All compilers
  // this repo targets take the branch above.
  std::memcpy(dst, src, n);
#endif
}

// memcpy(dst, src, n) where every store to `dst` is a relaxed atomic access.
// `src` must be thread-private.
inline void RelaxedMemcpyStore(void* dst, const void* src, std::size_t n) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  if (internal::WordAligned(d)) {
    for (; n >= sizeof(std::uint64_t); n -= sizeof(std::uint64_t)) {
      std::uint64_t w;
      std::memcpy(&w, s, sizeof(w));
      __atomic_store_n(reinterpret_cast<internal::WordAlias*>(static_cast<void*>(d)), w,
                       __ATOMIC_RELAXED);
      d += sizeof(w);
      s += sizeof(w);
    }
  }
  for (; n > 0; --n) {
    __atomic_store_n(d++, *s++, __ATOMIC_RELAXED);
  }
#else
  std::memcpy(dst, src, n);
#endif
}

// Tear-tolerant load of a trivially copyable object whose bytes may be
// concurrently overwritten. The caller must validate a version counter before
// trusting the result.
template <typename T>
inline T RelaxedLoad(const T& src) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "RelaxedLoad requires a trivially copyable type");
  T out;
  RelaxedMemcpyLoad(&out, &src, sizeof(T));
  return out;
}

// Store that concurrent optimistic readers may observe mid-write. The caller
// must hold the destination's lock (writer-writer exclusion) and bump its
// version on release (reader invalidation).
template <typename T>
inline void RelaxedStore(T& dst, const T& value) noexcept {
  static_assert(std::is_trivially_copyable_v<T>,
                "RelaxedStore requires a trivially copyable type");
  RelaxedMemcpyStore(&dst, &value, sizeof(T));
}

}  // namespace cuckoo

#endif  // SRC_COMMON_ATOMIC_UTIL_H_
