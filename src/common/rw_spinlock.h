// A reader-writer spinlock used by the TBB-style baseline: readers share,
// writers exclude. Writer-preferring to avoid writer starvation under
// read-heavy load.
#ifndef SRC_COMMON_RW_SPINLOCK_H_
#define SRC_COMMON_RW_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/cpu.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {

class CAPABILITY("rw_spinlock") RwSpinLock {
 public:
  RwSpinLock() noexcept = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  void LockShared() noexcept ACQUIRE_SHARED() {
    int spins = 0;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      // Wait out writers (held or pending) so they are not starved.
      if ((s & (kWriterHeld | kWriterPending)) == 0 &&
          state_.compare_exchange_weak(s, s + kReaderUnit, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      Backoff(&spins);
    }
  }

  void UnlockShared() noexcept RELEASE_SHARED() {
    state_.fetch_sub(kReaderUnit, std::memory_order_release);
  }

  void Lock() noexcept ACQUIRE() {
    state_.fetch_or(kWriterPending, std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      std::uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriterHeld) == 0 && (s / kReaderUnit) == 0 &&
          state_.compare_exchange_weak(s, kWriterHeld, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;  // drops kWriterPending together with any stale bits
      }
      if ((s & kWriterPending) == 0) {
        // A competing writer's acquisition cleared our pending bit; restore it
        // so readers keep yielding to us.
        state_.fetch_or(kWriterPending, std::memory_order_relaxed);
      }
      Backoff(&spins);
    }
  }

  void Unlock() noexcept RELEASE() { state_.store(0, std::memory_order_release); }

 private:
  // Layout: bit0 = writer held, bit1 = writer pending, bits 2.. = reader count.
  static constexpr std::uint32_t kWriterHeld = 1u;
  static constexpr std::uint32_t kWriterPending = 2u;
  static constexpr std::uint32_t kReaderUnit = 4u;
  static constexpr int kSpinLimit = 128;

  static void Backoff(int* spins) noexcept {
    if (++*spins < kSpinLimit) {
      CpuRelax();
    } else {
      *spins = 0;
      std::this_thread::yield();
    }
  }

  std::atomic<std::uint32_t> state_{0};
};

struct alignas(kCacheLineSize) PaddedRwSpinLock : RwSpinLock {};

}  // namespace cuckoo

#endif  // SRC_COMMON_RW_SPINLOCK_H_
