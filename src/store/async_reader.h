// AsyncFileReader — one interface over two positioned-read backends:
//
//   * "uring"   — io_uring via raw syscalls (no liburing dependency): a
//                 single submission thread owns the rings and dispatches
//                 completions. Falls back automatically when the kernel or
//                 seccomp policy refuses io_uring_setup.
//   * "threads" — a portable pread worker pool.
//
// Both run the completion callback on a reader-owned thread, never on the
// caller's. Callers (the KV server's event loops) therefore park the request
// and resume via their own wakeup mechanism — the epoll loop itself never
// blocks on disk. Callbacks must be fast and must not call back into Submit's
// caller synchronously-blocking paths.
#ifndef SRC_STORE_ASYNC_READER_H_
#define SRC_STORE_ASYNC_READER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace cuckoo {
namespace store {

class AsyncFileReader {
 public:
  struct ReadOp {
    int fd = -1;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };
  // ok == true iff exactly `length` bytes were read; `bytes` then holds them.
  using Callback = std::function<void(bool ok, std::string bytes)>;

  virtual ~AsyncFileReader() = default;

  // Enqueue one read. Never blocks on disk; may briefly take internal locks.
  // The callback fires exactly once, on a reader thread — including after
  // Shutdown() began (pending ops complete or fail, none are dropped).
  virtual void Submit(const ReadOp& op, Callback cb) = 0;

  // Drain pending ops and join worker threads. Idempotent. Submit after
  // Shutdown fails the callback immediately (on the caller's thread).
  virtual void Shutdown() = 0;

  virtual const char* backend_name() const noexcept = 0;

  // backend: "auto" (try io_uring, else threads), "uring", or "threads".
  // Returns null only for "uring" when io_uring is unavailable.
  static std::unique_ptr<AsyncFileReader> Create(std::string_view backend, int threads);
};

}  // namespace store
}  // namespace cuckoo

#endif  // SRC_STORE_ASYNC_READER_H_
