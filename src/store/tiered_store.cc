#include "src/store/tiered_store.h"

#include <algorithm>
#include "src/common/hash.h"
#include <chrono>
#include <utility>
#include <vector>

namespace cuckoo {
namespace store {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TieredStore::HotKey TieredStore::DigestOf(std::string_view key) noexcept {
  HotKey k;
  k.lo = XxHash64(key.data(), key.size(), 0x74696572ull);       // "tier"
  k.hi = XxHash64(key.data(), key.size(), 0x766c6f6721ull);     // "vlog!"
  return k;
}

bool TieredStore::Open(const TieredStoreOptions& options, std::string* error) {
  opts_ = options;
  ValueLogOptions log_opts;
  log_opts.dir = options.dir;
  log_opts.segment_bytes = options.segment_bytes;
  if (!log_.Open(log_opts, error)) {
    return false;
  }
  registry_ = std::make_unique<RegistryShard[]>(kRegistryShards);
  HotCache::Options cache_opts;
  cache_opts.bucket_count_log2 = options.cache_bucket_count_log2;
  cache_opts.capacity_bytes = options.cache_capacity_bytes;
  // Reclaim the registry bytes when the policy cache drops a digest. Runs
  // under the cache's bucket lock; the shard mutex nests inside it (never
  // the other way around — Admit/TryHot release the shard lock before
  // touching the cache).
  cache_opts.on_evict = [this](const HotKey& k, const std::uint8_t&) {
    RegistryShard& shard = ShardFor(k);
    MutexLock lk(shard.mu);
    shard.map.erase(k);
  };
  hot_ = std::make_unique<HotCache>(cache_opts);
  reader_ = AsyncFileReader::Create(options.reader_backend, options.reader_threads);
  if (!reader_) {
    if (error) *error = "tiered store: async reader backend unavailable: " +
                        options.reader_backend;
    log_.Close();
    return false;
  }
  open_ = true;
  return true;
}

void TieredStore::Close() {
  if (!open_) return;
  StopGc();
  if (reader_) {
    reader_->Shutdown();
    reader_.reset();
  }
  log_.Close();
  hot_.reset();
  registry_.reset();
  open_ = false;
}

bool TieredStore::AppendValue(std::string_view key, std::string_view data,
                              ValueLocation* loc) {
  if (!log_.Append(key, data, loc)) {
    return false;
  }
  tiered_sets_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TieredStore::MarkDead(const ValueLocation& loc) { log_.MarkDead(loc); }

bool TieredStore::TryHot(const std::string& key, std::uint64_t cas_id, std::string* out) {
  const HotKey digest = DigestOf(key);
  std::uint8_t mark = 0;
  if (hot_->Get(digest, &mark)) {  // also sets the CLOCK reference bit
    std::shared_ptr<HotValue> value;
    {
      RegistryShard& shard = ShardFor(digest);
      MutexLock lk(shard.mu);
      auto it = shard.map.find(digest);
      if (it != shard.map.end()) value = it->second;
    }
    if (value && value->cas_id == cas_id) {
      hot_hits_.fetch_add(1, std::memory_order_relaxed);
      *out = value->data;
      return true;
    }
  }
  hot_misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool TieredStore::ReadValue(const std::string& key, const ValueLocation& loc,
                            std::uint64_t cas_id, std::string* out) {
  if (TryHot(key, cas_id, out)) {
    return true;
  }
  const std::uint64_t start = NowNs();
  if (!log_.Read(loc, key, out)) {
    disk_read_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  disk_read_ns_.Record(NowNs() - start);
  disk_reads_.fetch_add(1, std::memory_order_relaxed);
  Admit(key, cas_id, *out);
  return true;
}

void TieredStore::ReadValueAsync(std::string key, const ValueLocation& loc,
                                 std::uint64_t cas_id,
                                 std::function<void(bool, std::string)> cb) {
  ValueLog::SegmentRef seg = log_.Pin(loc.segment);
  if (!seg || loc.offset + loc.length > seg->valid_size.load(std::memory_order_acquire)) {
    disk_read_errors_.fetch_add(1, std::memory_order_relaxed);
    cb(false, std::string());
    return;
  }
  AsyncFileReader::ReadOp op;
  op.fd = seg->read_fd;
  op.offset = loc.offset;
  op.length = loc.length;
  const std::uint64_t start = NowNs();
  // The lambda holds `seg`, keeping the fd (and a retired segment's inode)
  // alive until the read lands.
  reader_->Submit(op, [this, seg, loc, cas_id, start, key = std::move(key),
                       cb = std::move(cb)](bool ok, std::string frame) {
    const std::uint64_t delay = read_delay_ms_.load(std::memory_order_relaxed);
    if (delay != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    std::string data;
    if (!ok || !ValueLog::VerifyRecord(frame, loc, key, &data)) {
      disk_read_errors_.fetch_add(1, std::memory_order_relaxed);
      cb(false, std::string());
      return;
    }
    disk_read_ns_.Record(NowNs() - start);
    disk_reads_.fetch_add(1, std::memory_order_relaxed);
    Admit(key, cas_id, data);
    cb(true, std::move(data));
  });
}

void TieredStore::Admit(const std::string& key, std::uint64_t cas_id, std::string data) {
  const HotKey digest = DigestOf(key);
  const std::size_t charge = key.size() + data.size() + sizeof(HotValue);
  auto value = std::make_shared<HotValue>();
  value->cas_id = cas_id;
  value->data = std::move(data);
  {
    RegistryShard& shard = ShardFor(digest);
    MutexLock lk(shard.mu);
    shard.map[digest] = std::move(value);
  }
  if (!hot_->Set(digest, 1, charge)) {
    // Too big for the budget (or pathological layout): drop the bytes again
    // rather than strand them outside the policy's accounting.
    RegistryShard& shard = ShardFor(digest);
    MutexLock lk(shard.mu);
    shard.map.erase(digest);
  }
}

void TieredStore::SetGcHooks(RelocateFn relocate, PersistBarrierFn barrier) {
  relocate_ = std::move(relocate);
  barrier_ = std::move(barrier);
}

bool TieredStore::RunGcOnce(double trigger_override) {
  if (!relocate_) return false;
  const double trigger = trigger_override >= 0.0 ? trigger_override : opts_.gc_trigger;
  // Pick the sealed segment with the highest dead ratio at/above the trigger.
  std::uint32_t victim = 0;
  double worst = trigger;
  bool found = false;
  for (const ValueLog::SegmentInfo& info : log_.Segments()) {
    if (info.active || info.size == 0) continue;
    const double ratio = static_cast<double>(info.dead_bytes) /
                         static_cast<double>(info.size);
    if (ratio >= worst || (trigger == 0.0 && !found)) {
      if (ratio >= trigger) {
        victim = info.seq;
        worst = std::max(ratio, worst);
        found = true;
      }
    }
  }
  if (!found) return false;

  gc_runs_.fetch_add(1, std::memory_order_relaxed);
  bool clean = true;
  const bool scanned = log_.ForEachRecord(
      victim, [&](std::string_view key, std::string_view data, const ValueLocation& loc) {
        gc_records_scanned_.fetch_add(1, std::memory_order_relaxed);
        switch (relocate_(std::string(key), loc, data)) {
          case RelocateResult::kDead:
            break;
          case RelocateResult::kRelocated:
            gc_records_relocated_.fetch_add(1, std::memory_order_relaxed);
            break;
          case RelocateResult::kFailed:
            clean = false;
            return false;  // abort the walk; segment survives
        }
        return true;
      });
  if (!scanned || !clean) {
    gc_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Every live record now has a home in a newer segment, but the new bytes
  // and the relocation log records may still be buffered. They MUST be
  // durable before the only other copy disappears.
  if (barrier_ && !barrier_()) {
    gc_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!log_.RetireSegment(victim)) {
    gc_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  gc_segments_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TieredStore::StartGc() {
  if (opts_.gc_trigger <= 0.0 || !relocate_ || gc_thread_.joinable()) return;
  {
    MutexLock lk(gc_mu_);
    gc_stop_ = false;
  }
  gc_thread_ = std::thread([this] { GcLoop(); });
}

void TieredStore::StopGc() {
  {
    MutexLock lk(gc_mu_);
    gc_stop_ = true;
    gc_cv_.notify_all();
  }
  if (gc_thread_.joinable()) gc_thread_.join();
}

void TieredStore::GcLoop() {
  for (;;) {
    {
      MutexLock lk(gc_mu_);
      if (!gc_stop_) {
        gc_cv_.wait_for(lk.native_handle(),
                        std::chrono::milliseconds(opts_.gc_interval_ms));
      }
      if (gc_stop_) return;
    }
    // Keep compacting while there is eligible garbage; sleep when idle.
    while (RunGcOnce()) {
      MutexLock lk(gc_mu_);
      if (gc_stop_) return;
    }
  }
}

TieredStoreStats TieredStore::Stats() const {
  TieredStoreStats s;
  s.tiered_sets = tiered_sets_.load(std::memory_order_relaxed);
  s.hot_hits = hot_hits_.load(std::memory_order_relaxed);
  s.hot_misses = hot_misses_.load(std::memory_order_relaxed);
  s.disk_reads = disk_reads_.load(std::memory_order_relaxed);
  s.disk_read_errors = disk_read_errors_.load(std::memory_order_relaxed);
  s.gc_runs = gc_runs_.load(std::memory_order_relaxed);
  s.gc_segments = gc_segments_.load(std::memory_order_relaxed);
  s.gc_records_scanned = gc_records_scanned_.load(std::memory_order_relaxed);
  s.gc_records_relocated = gc_records_relocated_.load(std::memory_order_relaxed);
  s.gc_failures = gc_failures_.load(std::memory_order_relaxed);
  s.log = log_.Stats();
  return s;
}

}  // namespace store
}  // namespace cuckoo
