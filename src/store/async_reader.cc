#include "src/store/async_reader.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define CUCKOO_HAVE_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace cuckoo {
namespace store {
namespace {

// ----- Thread-pool backend --------------------------------------------------

class ThreadPoolReader final : public AsyncFileReader {
 public:
  explicit ThreadPoolReader(int threads) {
    const int n = threads < 1 ? 1 : threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPoolReader() override { Shutdown(); }

  void Submit(const ReadOp& op, Callback cb) override {
    {
      MutexLock lk(mu_);
      if (!stopping_) {
        queue_.emplace_back(op, std::move(cb));
        cv_.notify_one();
        return;
      }
    }
    cb(false, std::string());
  }

  void Shutdown() override {
    {
      MutexLock lk(mu_);
      if (stopping_) return;
      stopping_ = true;
      cv_.notify_all();
    }
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }

  const char* backend_name() const noexcept override { return "threads"; }

 private:
  void WorkerLoop() {
    for (;;) {
      ReadOp op;
      Callback cb;
      {
        MutexLock lk(mu_);
        while (!stopping_ && queue_.empty()) {
          cv_.wait(lk.native_handle());
        }
        if (queue_.empty()) return;  // stopping and fully drained
        op = queue_.front().first;
        cb = std::move(queue_.front().second);
        queue_.pop_front();
      }
      std::string bytes;
      bytes.resize(op.length);
      bool ok = true;
      std::size_t done = 0;
      while (done < op.length) {
        ssize_t n = ::pread(op.fd, bytes.data() + done, op.length - done,
                            static_cast<off_t>(op.offset + done));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          ok = false;
          break;
        }
        done += static_cast<std::size_t>(n);
      }
      cb(ok, ok ? std::move(bytes) : std::string());
    }
  }

  Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<ReadOp, Callback>> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

#if CUCKOO_HAVE_IO_URING

// ----- io_uring backend (raw syscalls; no liburing) -------------------------

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, nullptr, 0));
}

class IoUringReader final : public AsyncFileReader {
 public:
  static std::unique_ptr<IoUringReader> TryCreate(unsigned entries) {
    auto reader = std::unique_ptr<IoUringReader>(new IoUringReader());
    if (!reader->Init(entries)) return nullptr;
    return reader;
  }

  ~IoUringReader() override {
    Shutdown();
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_bytes_);
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  void Submit(const ReadOp& op, Callback cb) override {
    auto pending = std::make_unique<Pending>();
    pending->cb = std::move(cb);
    pending->op = op;
    pending->bytes.resize(op.length);
    Callback failed;
    {
      MutexLock lk(mu_);
      if (!stopping_) {
        const std::uint64_t id = next_id_++;
        Pending* raw = pending.get();
        pending_[id] = std::move(pending);
        // Cap submissions below the CQ capacity so the kernel can never
        // overflow (and drop) a completion; extras wait in the backlog and
        // are drained by the completion thread as results come back.
        if (inflight_ >= max_inflight_) {
          backlog_.push_back(id);
          return;
        }
        if (SubmitLocked(id, raw)) return;
        failed = std::move(pending_[id]->cb);
        pending_.erase(id);
      } else {
        failed = std::move(pending->cb);
      }
    }
    failed(false, std::string());
  }

  void Shutdown() override {
    {
      MutexLock lk(mu_);
      if (stopping_) return;
      stopping_ = true;
      if (!completion_thread_.joinable()) return;  // Init failed before launch
      // Nudge the completion thread out of its GETEVENTS wait with a no-op.
      const unsigned tail = *sq_tail_;
      const unsigned index = tail & *sq_ring_mask_;
      struct io_uring_sqe* sqe = &sqes_[index];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_NOP;
      sqe->user_data = kShutdownToken;
      sq_array_[index] = index;
      __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
      SysIoUringEnter(ring_fd_, 1, 0, 0);
    }
    if (completion_thread_.joinable()) completion_thread_.join();
    // Fail anything not yet delivered: backlogged ops and inflight ops whose
    // completions arrive after the thread exited. Every Submit gets its
    // callback exactly once.
    std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> leftover;
    {
      MutexLock lk(mu_);
      leftover.swap(pending_);
      backlog_.clear();
    }
    for (auto& [id, p] : leftover) {
      (void)id;
      p->cb(false, std::string());
    }
  }

  const char* backend_name() const noexcept override { return "uring"; }

 private:
  struct Pending {
    Callback cb;
    std::string bytes;
    ReadOp op;
  };
  static constexpr std::uint64_t kShutdownToken = ~0ull;

  IoUringReader() = default;

  // Write one sqe and submit it. The sqe slot is free again once
  // io_uring_enter returns (submission is synchronous; only the I/O is
  // asynchronous), so serializing on mu_ means the SQ ring never fills.
  bool SubmitLocked(std::uint64_t id, Pending* p) REQUIRES(mu_) {
    const unsigned tail = *sq_tail_;
    const unsigned index = tail & *sq_ring_mask_;
    struct io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = p->op.fd;
    sqe->off = p->op.offset;
    sqe->addr = reinterpret_cast<std::uint64_t>(p->bytes.data());
    sqe->len = p->op.length;
    sqe->user_data = id;
    sq_array_[index] = index;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    if (SysIoUringEnter(ring_fd_, 1, 0, 0) < 0) return false;
    ++inflight_;
    return true;
  }

  bool Init(unsigned entries) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(entries, &params);
    if (ring_fd_ < 0) return false;  // ENOSYS/EPERM/seccomp → caller falls back
    max_inflight_ = params.cq_entries > 32 ? params.cq_entries - 16 : 16;

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) sq_ring_bytes_ = cq_ring_bytes_;

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_bytes_ = sq_ring_bytes_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return false;
      }
    }
    sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
               ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }

    auto* sq_base = static_cast<char*>(sq_ring_);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_ring_mask_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    auto* cq_base = static_cast<char*>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_ring_mask_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq_base + params.cq_off.cqes);

    completion_thread_ = std::thread([this] { CompletionLoop(); });
    return true;
  }

  void CompletionLoop() {
    for (;;) {
      unsigned head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        if (SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS) < 0 &&
            errno != EINTR && errno != EBUSY) {
          return;
        }
        continue;
      }
      while (head != tail) {
        const struct io_uring_cqe& cqe = cqes_[head & *cq_ring_mask_];
        const std::uint64_t id = cqe.user_data;
        const int res = cqe.res;
        ++head;
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
        if (id == kShutdownToken) return;
        std::unique_ptr<Pending> done;
        std::vector<std::unique_ptr<Pending>> backlog_failures;
        {
          MutexLock lk(mu_);
          auto it = pending_.find(id);
          if (it != pending_.end()) {
            done = std::move(it->second);
            pending_.erase(it);
            if (inflight_ > 0) --inflight_;
          }
          while (inflight_ < max_inflight_ && !backlog_.empty()) {
            const std::uint64_t next = backlog_.front();
            backlog_.pop_front();
            auto nit = pending_.find(next);
            if (nit == pending_.end()) continue;
            if (!SubmitLocked(next, nit->second.get())) {
              backlog_failures.push_back(std::move(nit->second));
              pending_.erase(nit);
            }
          }
        }
        for (auto& p : backlog_failures) {
          p->cb(false, std::string());
        }
        if (done) {
          const bool ok =
              res >= 0 && static_cast<std::size_t>(res) == done->bytes.size();
          done->cb(ok, ok ? std::move(done->bytes) : std::string());
        }
      }
    }
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_ring_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_ring_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;

  Mutex mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Pending>> pending_ GUARDED_BY(mu_);
  std::deque<std::uint64_t> backlog_ GUARDED_BY(mu_);
  unsigned inflight_ GUARDED_BY(mu_) = 0;
  unsigned max_inflight_ = 48;
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::thread completion_thread_;
};

#endif  // CUCKOO_HAVE_IO_URING

}  // namespace

std::unique_ptr<AsyncFileReader> AsyncFileReader::Create(std::string_view backend,
                                                         int threads) {
#if CUCKOO_HAVE_IO_URING
  if (backend == "uring" || backend == "auto") {
    auto uring = IoUringReader::TryCreate(/*entries=*/64);
    if (uring) return uring;
    if (backend == "uring") return nullptr;
  }
#else
  if (backend == "uring") return nullptr;
#endif
  return std::make_unique<ThreadPoolReader>(threads);
}

}  // namespace store
}  // namespace cuckoo
