#include "src/store/value_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/crc32c.h"

namespace cuckoo {
namespace store {
namespace {

// Segment header, 24 bytes: magic, version, flags, sequence number. Chosen to
// match the WAL header shape ("CKWALSG1") so tooling can sniff both.
constexpr char kMagic[8] = {'C', 'K', 'V', 'L', 'O', 'G', 'S', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegmentHeaderSize = 8 + 4 + 4 + 8;

// Frame: u32 masked_crc32c (over length + payload), u32 payload length,
// payload. Payload: u8 record type, u32 klen, u32 dlen, key, data.
constexpr std::size_t kFrameHeaderSize = 8;
constexpr std::size_t kPayloadHeaderSize = 1 + 4 + 4;
constexpr std::uint8_t kValueRecord = 1;

void PutU32(std::string* out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

void PutU64(std::string* out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(buf));
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void EncodeSegmentHeader(std::uint32_t seq, std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  PutU32(out, kFormatVersion);
  PutU32(out, 0);  // flags
  PutU64(out, seq);
}

// Full pread (restarting on EINTR / short reads). Returns bytes read, or -1.
ssize_t PreadFully(int fd, char* buf, std::size_t len, std::uint64_t offset) {
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = ::pread(fd, buf + done, len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // EOF
    done += static_cast<std::size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

bool ValidSegmentHeader(int fd, std::uint32_t expect_seq) {
  char buf[kSegmentHeaderSize];
  if (PreadFully(fd, buf, sizeof(buf), 0) != static_cast<ssize_t>(sizeof(buf))) {
    return false;
  }
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) return false;
  if (GetU32(buf + 8) != kFormatVersion) return false;
  return GetU64(buf + 16) == expect_seq;
}

}  // namespace

void EncodeValueLocation(const ValueLocation& loc, std::string* out) {
  PutU32(out, loc.segment);
  PutU32(out, loc.length);
  PutU64(out, loc.offset);
}

bool DecodeValueLocation(std::string_view bytes, ValueLocation* loc) {
  if (bytes.size() != kEncodedValueLocationSize) return false;
  loc->segment = GetU32(bytes.data());
  loc->length = GetU32(bytes.data() + 4);
  loc->offset = GetU64(bytes.data() + 8);
  return true;
}

ValueLog::Segment::~Segment() {
  if (read_fd >= 0) ::close(read_fd);
}

std::string ValueLog::SegmentFileName(std::uint32_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "vlog-%010u.vlog", seq);
  return buf;
}

bool ValueLog::CreateSegmentLocked(std::uint32_t seq, std::string* error) {
  const std::string path = dir_ + "/" + SegmentFileName(seq);
  AppendFile file;
  if (!file.Open(path, /*truncate=*/true)) {
    if (error) *error = "value log: cannot create " + path;
    return false;
  }
  std::string header;
  EncodeSegmentHeader(seq, &header);
  if (!file.Append(header) || !file.Sync()) {
    if (error) *error = "value log: cannot write header of " + path;
    return false;
  }
  if (!SyncDir(dir_)) {
    if (error) *error = "value log: cannot sync " + dir_;
    return false;
  }
  int read_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (read_fd < 0) {
    if (error) *error = "value log: cannot reopen " + path;
    return false;
  }
  auto seg = std::make_shared<Segment>();
  seg->seq = seq;
  seg->path = path;
  seg->read_fd = read_fd;
  seg->valid_size.store(kSegmentHeaderSize, std::memory_order_release);
  {
    MutexLock reg(reg_mu_);
    segments_[seq] = seg;
  }
  active_ = std::move(seg);
  active_file_.Close();
  if (!active_file_.Open(path, /*truncate=*/false)) {
    if (error) *error = "value log: cannot open " + path + " for append";
    return false;
  }
  unsynced_bytes_ = 0;
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ValueLog::SealActiveLocked() {
  if (!active_) return true;
  if (unsynced_bytes_ != 0) {
    if (!active_file_.Sync()) return false;
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    unsynced_bytes_ = 0;
  }
  active_file_.Close();
  active_.reset();
  return true;
}

bool ValueLog::Open(const ValueLogOptions& options, std::string* error) {
  MutexLock io(io_mu_);
  dir_ = options.dir;
  segment_bytes_ = std::max<std::uint64_t>(options.segment_bytes, kSegmentHeaderSize + 1);
  if (!EnsureDir(dir_)) {
    if (error) *error = "value log: cannot create directory " + dir_;
    return false;
  }

  std::vector<std::string> names = ListFilesWithPrefix(dir_, "vlog-");
  std::vector<std::uint32_t> seqs;
  for (const std::string& name : names) {
    unsigned seq = 0;
    char suffix[8] = {0};
    if (std::sscanf(name.c_str(), "vlog-%10u.vlo%1s", &seq, suffix) == 2 &&
        std::strcmp(suffix, "g") == 0) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());

  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const std::uint32_t seq = seqs[i];
    const std::string path = dir_ + "/" + SegmentFileName(seq);
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (error) *error = "value log: cannot open " + path;
      return false;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      if (error) *error = "value log: cannot stat " + path;
      return false;
    }
    std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
    if (size < kSegmentHeaderSize || !ValidSegmentHeader(fd, seq)) {
      // A sealed segment (or even the active one) with a broken header is
      // unrecoverable data loss for every record it holds — fail loudly
      // rather than silently dropping a whole segment of acked values.
      ::close(fd);
      if (error) *error = "value log: corrupt segment header in " + path;
      return false;
    }
    if (i + 1 == seqs.size()) {
      // Newest segment: the only place a crash can leave a torn append.
      // Scan frames from the header to find the valid prefix, truncate the
      // rest (mirrors the WAL's torn-tail rule). Never reads value bytes of
      // older segments.
      std::uint64_t valid_end = kSegmentHeaderSize;
      std::string frame;
      while (valid_end + kFrameHeaderSize <= size) {
        char hdr[kFrameHeaderSize];
        if (PreadFully(fd, hdr, sizeof(hdr), valid_end) !=
            static_cast<ssize_t>(sizeof(hdr))) {
          break;
        }
        const std::uint32_t payload_len = GetU32(hdr + 4);
        if (payload_len < kPayloadHeaderSize || payload_len > kMaxRecordPayload ||
            valid_end + kFrameHeaderSize + payload_len > size) {
          break;
        }
        frame.resize(payload_len);
        if (PreadFully(fd, frame.data(), payload_len, valid_end + kFrameHeaderSize) !=
            static_cast<ssize_t>(payload_len)) {
          break;
        }
        std::uint32_t crc = Crc32c(hdr + 4, 4);
        crc = Crc32cExtend(crc, frame.data(), frame.size());
        if (Crc32cUnmask(GetU32(hdr)) != crc) break;
        valid_end += kFrameHeaderSize + payload_len;
      }
      if (valid_end < size) {
        torn_tail_bytes_.fetch_add(size - valid_end, std::memory_order_relaxed);
        if (!TruncateFile(path, valid_end)) {
          ::close(fd);
          if (error) *error = "value log: cannot truncate torn tail of " + path;
          return false;
        }
      }
      size = valid_end;
    }
    auto seg = std::make_shared<Segment>();
    seg->seq = seq;
    seg->path = path;
    seg->read_fd = fd;
    seg->valid_size.store(size, std::memory_order_release);
    MutexLock reg(reg_mu_);
    segments_[seq] = seg;
  }

  // Resume appending to the newest segment (or create the first one).
  if (!seqs.empty()) {
    const std::uint32_t seq = seqs.back();
    std::shared_ptr<Segment> seg;
    {
      MutexLock reg(reg_mu_);
      seg = segments_[seq];
    }
    if (seg->valid_size.load(std::memory_order_acquire) < segment_bytes_) {
      if (!active_file_.Open(seg->path, /*truncate=*/false)) {
        if (error) *error = "value log: cannot open " + seg->path + " for append";
        return false;
      }
      active_ = seg;
      unsynced_bytes_ = 0;
    } else if (!CreateSegmentLocked(seq + 1, error)) {
      return false;
    }
  } else if (!CreateSegmentLocked(1, error)) {
    return false;
  }
  open_ = true;
  io_error_ = false;
  return true;
}

void ValueLog::Close() {
  MutexLock io(io_mu_);
  if (!open_) return;
  if (active_ && unsynced_bytes_ != 0 && active_file_.Sync()) {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    unsynced_bytes_ = 0;
  }
  active_file_.Close();
  active_.reset();
  {
    MutexLock reg(reg_mu_);
    segments_.clear();
  }
  open_ = false;
}

bool ValueLog::Append(std::string_view key, std::string_view data, ValueLocation* loc) {
  const std::uint64_t payload_len = kPayloadHeaderSize + key.size() + data.size();
  if (payload_len > kMaxRecordPayload) return false;

  std::string payload;
  payload.reserve(payload_len);
  payload.push_back(static_cast<char>(kValueRecord));
  PutU32(&payload, static_cast<std::uint32_t>(key.size()));
  PutU32(&payload, static_cast<std::uint32_t>(data.size()));
  payload.append(key);
  payload.append(data);

  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  std::string len_bytes;
  PutU32(&len_bytes, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = Crc32c(len_bytes);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  PutU32(&frame, Crc32cMask(crc));
  frame.append(len_bytes);
  frame.append(payload);

  MutexLock io(io_mu_);
  if (!open_ || io_error_) return false;
  if (active_file_.Size() + frame.size() > segment_bytes_ &&
      active_file_.Size() > kSegmentHeaderSize) {
    const std::uint32_t next = active_->seq + 1;
    if (!SealActiveLocked() || !CreateSegmentLocked(next, nullptr)) {
      io_error_ = true;
      return false;
    }
  }
  const std::uint64_t offset = active_file_.Size();
  if (!active_file_.Append(frame)) {
    // Freeze: a torn frame mid-file would corrupt the recovery scan if later
    // appends succeeded past it.
    io_error_ = true;
    return false;
  }
  unsynced_bytes_ += frame.size();
  active_->valid_size.store(offset + frame.size(), std::memory_order_release);
  appends_.fetch_add(1, std::memory_order_relaxed);
  append_bytes_.fetch_add(frame.size(), std::memory_order_relaxed);
  if (loc) {
    loc->segment = active_->seq;
    loc->offset = offset;
    loc->length = static_cast<std::uint32_t>(frame.size());
  }
  return true;
}

bool ValueLog::VerifyRecord(std::string_view frame, const ValueLocation& loc,
                            std::string_view expected_key, std::string* data_out) {
  if (frame.size() != loc.length || frame.size() < kFrameHeaderSize + kPayloadHeaderSize) {
    return false;
  }
  const char* p = frame.data();
  const std::uint32_t payload_len = GetU32(p + 4);
  if (payload_len != frame.size() - kFrameHeaderSize) return false;
  std::uint32_t crc = Crc32c(p + 4, 4);
  crc = Crc32cExtend(crc, p + kFrameHeaderSize, payload_len);
  if (Crc32cUnmask(GetU32(p)) != crc) return false;
  const char* payload = p + kFrameHeaderSize;
  if (static_cast<std::uint8_t>(payload[0]) != kValueRecord) return false;
  const std::uint32_t klen = GetU32(payload + 1);
  const std::uint32_t dlen = GetU32(payload + 5);
  if (kPayloadHeaderSize + static_cast<std::uint64_t>(klen) + dlen != payload_len) {
    return false;
  }
  if (std::string_view(payload + kPayloadHeaderSize, klen) != expected_key) return false;
  if (data_out) data_out->assign(payload + kPayloadHeaderSize + klen, dlen);
  return true;
}

bool ValueLog::Read(const ValueLocation& loc, std::string_view expected_key,
                    std::string* data_out) {
  SegmentRef seg = Pin(loc.segment);
  if (!seg || loc.offset + loc.length > seg->valid_size.load(std::memory_order_acquire)) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string frame;
  frame.resize(loc.length);
  if (PreadFully(seg->read_fd, frame.data(), frame.size(), loc.offset) !=
          static_cast<ssize_t>(frame.size()) ||
      !VerifyRecord(frame, loc, expected_key, data_out)) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  read_bytes_.fetch_add(loc.length, std::memory_order_relaxed);
  return true;
}

ValueLog::SegmentRef ValueLog::Pin(std::uint32_t segment_seq) const {
  MutexLock reg(reg_mu_);
  auto it = segments_.find(segment_seq);
  return it == segments_.end() ? nullptr : it->second;
}

bool ValueLog::ValidLocation(const ValueLocation& loc) const {
  if (!loc.IsValid()) return false;
  SegmentRef seg = Pin(loc.segment);
  return seg && loc.offset >= kSegmentHeaderSize &&
         loc.offset + loc.length <= seg->valid_size.load(std::memory_order_acquire);
}

bool ValueLog::EnsureDurable() {
  MutexLock io(io_mu_);
  if (!open_) return false;
  if (io_error_) return false;
  if (!active_ || unsynced_bytes_ == 0) return true;
  if (!active_file_.Sync()) {
    io_error_ = true;
    return false;
  }
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  unsynced_bytes_ = 0;
  return true;
}

void ValueLog::MarkDead(const ValueLocation& loc) {
  if (!loc.IsValid()) return;
  SegmentRef seg = Pin(loc.segment);
  if (seg) {
    const_cast<Segment*>(seg.get())
        ->dead_bytes.fetch_add(loc.length, std::memory_order_relaxed);
  }
}

std::vector<ValueLog::SegmentInfo> ValueLog::Segments() const {
  std::uint32_t active_seq = 0;
  {
    MutexLock io(io_mu_);
    if (active_) active_seq = active_->seq;
  }
  std::vector<SegmentInfo> out;
  MutexLock reg(reg_mu_);
  out.reserve(segments_.size());
  for (const auto& [seq, seg] : segments_) {
    SegmentInfo info;
    info.seq = seq;
    info.size = seg->valid_size.load(std::memory_order_acquire);
    info.dead_bytes = seg->dead_bytes.load(std::memory_order_relaxed);
    info.active = seq == active_seq;
    out.push_back(info);
  }
  return out;
}

bool ValueLog::RotateActive() {
  MutexLock io(io_mu_);
  if (!open_ || io_error_ || !active_) return false;
  if (active_file_.Size() <= kSegmentHeaderSize) return true;  // nothing to seal
  const std::uint32_t next = active_->seq + 1;
  if (!SealActiveLocked() || !CreateSegmentLocked(next, nullptr)) {
    io_error_ = true;
    return false;
  }
  return true;
}

bool ValueLog::ForEachRecord(
    std::uint32_t segment_seq,
    const std::function<bool(std::string_view, std::string_view, const ValueLocation&)>& fn) {
  SegmentRef seg = Pin(segment_seq);
  if (!seg) return false;
  const std::uint64_t end = seg->valid_size.load(std::memory_order_acquire);
  std::uint64_t off = kSegmentHeaderSize;
  std::string frame;
  while (off < end) {
    if (off + kFrameHeaderSize > end) return false;
    char hdr[kFrameHeaderSize];
    if (PreadFully(seg->read_fd, hdr, sizeof(hdr), off) !=
        static_cast<ssize_t>(sizeof(hdr))) {
      return false;
    }
    const std::uint32_t payload_len = GetU32(hdr + 4);
    if (payload_len < kPayloadHeaderSize || payload_len > kMaxRecordPayload ||
        off + kFrameHeaderSize + payload_len > end) {
      return false;
    }
    frame.assign(hdr, kFrameHeaderSize);
    frame.resize(kFrameHeaderSize + payload_len);
    if (PreadFully(seg->read_fd, frame.data() + kFrameHeaderSize, payload_len,
                   off + kFrameHeaderSize) != static_cast<ssize_t>(payload_len)) {
      return false;
    }
    ValueLocation loc;
    loc.segment = segment_seq;
    loc.offset = off;
    loc.length = static_cast<std::uint32_t>(frame.size());
    // Reuse the read-path validator (CRC + shape) with the key it claims.
    const char* payload = frame.data() + kFrameHeaderSize;
    const std::uint32_t klen = GetU32(payload + 1);
    if (kPayloadHeaderSize + static_cast<std::uint64_t>(klen) > payload_len) return false;
    std::string_view key(payload + kPayloadHeaderSize, klen);
    std::string data;
    if (!VerifyRecord(frame, loc, key, &data)) return false;
    if (!fn(key, data, loc)) return false;
    off += frame.size();
  }
  return true;
}

bool ValueLog::RetireSegment(std::uint32_t segment_seq) {
  std::shared_ptr<Segment> seg;
  {
    MutexLock io(io_mu_);
    if (active_ && active_->seq == segment_seq) return false;
    MutexLock reg(reg_mu_);
    auto it = segments_.find(segment_seq);
    if (it == segments_.end()) return false;
    seg = it->second;
    segments_.erase(it);
  }
  reclaimed_bytes_.fetch_add(seg->valid_size.load(std::memory_order_acquire),
                             std::memory_order_relaxed);
  segments_retired_.fetch_add(1, std::memory_order_relaxed);
  RemoveFile(seg->path);
  SyncDir(dir_);
  return true;
}

ValueLogStats ValueLog::Stats() const {
  ValueLogStats s;
  s.appends = appends_.load(std::memory_order_relaxed);
  s.append_bytes = append_bytes_.load(std::memory_order_relaxed);
  s.reads = reads_.load(std::memory_order_relaxed);
  s.read_bytes = read_bytes_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.segments_created = segments_created_.load(std::memory_order_relaxed);
  s.segments_retired = segments_retired_.load(std::memory_order_relaxed);
  s.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
  s.torn_tail_bytes = torn_tail_bytes_.load(std::memory_order_relaxed);
  {
    MutexLock io(io_mu_);
    if (active_) s.active_segment = active_->seq;
  }
  MutexLock reg(reg_mu_);
  s.live_segments = segments_.size();
  for (const auto& [seq, seg] : segments_) {
    (void)seq;
    s.dead_bytes += seg->dead_bytes.load(std::memory_order_relaxed);
    s.total_bytes += seg->valid_size.load(std::memory_order_acquire);
  }
  return s;
}

}  // namespace store
}  // namespace cuckoo
