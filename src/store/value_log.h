// ValueLog — an append-only, segmented, CRC32C-framed log of (key, value)
// records on disk. It is the cold half of the larger-than-memory tier: values
// above the tiering threshold live here, and the cuckoo table holds only a
// 16-byte ValueLocation per key. The framing, rotation, and torn-tail rules
// deliberately mirror the WAL (docs/persistence.md) so one mental model covers
// both logs; see docs/storage.md for the full format and failure model.
//
// Concurrency contract: Append/EnsureDurable serialize on an internal mutex;
// Read/Pin/MarkDead/ValidLocation are safe from any thread concurrently with
// appends. A segment stays readable (via its pinned read fd) even after
// RetireSegment unlinks it — POSIX keeps the inode alive until the last
// std::shared_ptr<Segment> drops.
#ifndef SRC_STORE_VALUE_LOG_H_
#define SRC_STORE_VALUE_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/file_util.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace cuckoo {
namespace store {

// Where one value's bytes live. `length` is the full frame length (header +
// payload), so a single pread fetches everything needed to verify and decode.
// length == 0 means "no location" (the entry is inline in RAM).
struct ValueLocation {
  std::uint32_t segment = 0;  // segment sequence number, 1-based
  std::uint32_t length = 0;   // full frame length in bytes
  std::uint64_t offset = 0;   // frame start offset within the segment file

  bool IsValid() const noexcept { return length != 0; }
  friend bool operator==(const ValueLocation& a, const ValueLocation& b) {
    return a.segment == b.segment && a.length == b.length && a.offset == b.offset;
  }
  friend bool operator!=(const ValueLocation& a, const ValueLocation& b) { return !(a == b); }
};

// 16-byte little-endian wire form (segment, length, offset) — embedded as the
// data field of tiered WAL records and snapshot entries.
void EncodeValueLocation(const ValueLocation& loc, std::string* out);
bool DecodeValueLocation(std::string_view bytes, ValueLocation* loc);
inline constexpr std::size_t kEncodedValueLocationSize = 16;

struct ValueLogOptions {
  std::string dir;
  // Rotate the active segment once it reaches this many bytes.
  std::uint64_t segment_bytes = 64ull << 20;
};

struct ValueLogStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t segments_retired = 0;
  std::uint64_t reclaimed_bytes = 0;   // bytes freed by retired segments
  std::uint64_t torn_tail_bytes = 0;   // truncated from the tail at Open()
  std::uint64_t live_segments = 0;
  std::uint64_t dead_bytes = 0;        // sum of MarkDead charges, live segments
  std::uint64_t total_bytes = 0;       // on-disk bytes across live segments
  std::uint32_t active_segment = 0;
};

class ValueLog {
 public:
  // One on-disk segment. Readers hold a shared_ptr so retirement never
  // invalidates an in-flight pread.
  struct Segment {
    std::uint32_t seq = 0;
    std::string path;
    int read_fd = -1;  // O_RDONLY, shared pread handle
    // Bytes of fully-written records (header included). Published with
    // release after each append completes; readers load acquire.
    std::atomic<std::uint64_t> valid_size{0};
    // Approximate garbage accounting for GC triggering only; liveness is
    // re-checked authoritatively during compaction.
    std::atomic<std::uint64_t> dead_bytes{0};
    ~Segment();
    Segment() = default;
    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;
  };
  using SegmentRef = std::shared_ptr<const Segment>;

  ValueLog() = default;
  ~ValueLog() { Close(); }
  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  // Scans existing segments (torn-tail-truncating only the newest; index
  // rebuild never reads value bytes) and opens/creates the active segment.
  bool Open(const ValueLogOptions& options, std::string* error);
  void Close();

  // Appends one record, returning its location. Thread-safe. After the first
  // write failure the log freezes (every later Append fails) so a torn frame
  // can never be buried under later valid ones — same sticky-error rule as
  // the WAL.
  bool Append(std::string_view key, std::string_view data, ValueLocation* loc);

  // Blocking read + verify (CRC, frame shape, key match). Used by the sync
  // path and tests; the async path goes through Pin() + VerifyRecord().
  bool Read(const ValueLocation& loc, std::string_view expected_key, std::string* data_out);

  // Resolve a segment for pread. Null if unknown/retired. The returned ref
  // keeps the fd (and unlinked inode) alive.
  SegmentRef Pin(std::uint32_t segment_seq) const;

  // Validate + decode one raw frame fetched from `loc`. `frame` must be
  // exactly loc.length bytes. On success *data_out receives the value bytes.
  static bool VerifyRecord(std::string_view frame, const ValueLocation& loc,
                           std::string_view expected_key, std::string* data_out);

  // True when `loc` lies fully inside a live segment's valid extent —
  // recovery uses this to detect WAL/snapshot records whose value bytes were
  // lost in a crash (never-acked writes).
  bool ValidLocation(const ValueLocation& loc) const;

  // fsync the active segment if it has unsynced appends. Called by the
  // durability layer before acking (kAlways) or on its cadence (kEverySec).
  bool EnsureDurable();

  // Garbage accounting: the record at `loc` no longer backs any table entry.
  void MarkDead(const ValueLocation& loc);

  // ----- GC support ---------------------------------------------------------

  struct SegmentInfo {
    std::uint32_t seq = 0;
    std::uint64_t size = 0;
    std::uint64_t dead_bytes = 0;
    bool active = false;
  };
  std::vector<SegmentInfo> Segments() const;

  // Seal the active segment (sync + stop appending to it) and start a fresh
  // one, so even the newest data becomes GC-eligible. No-op if empty.
  bool RotateActive();

  // Iterate every record of a sealed segment in file order. `fn` returns
  // false to abort the walk (ForEachRecord then returns false). Returns false
  // on I/O or framing errors too — a sealed segment is expected to be clean.
  bool ForEachRecord(
      std::uint32_t segment_seq,
      const std::function<bool(std::string_view key, std::string_view data,
                               const ValueLocation& loc)>& fn);

  // Drop a sealed segment from the registry and unlink it. In-flight pinned
  // readers finish against the open fd. Refuses the active segment.
  bool RetireSegment(std::uint32_t segment_seq);

  ValueLogStats Stats() const;
  const std::string& dir() const noexcept { return dir_; }

  // Record payload cap (key + value + framing must fit one segment
  // comfortably); mirrors the WAL's 8 MiB sanity bound.
  static constexpr std::uint32_t kMaxRecordPayload = 8u << 20;

 private:
  bool CreateSegmentLocked(std::uint32_t seq, std::string* error) REQUIRES(io_mu_);
  bool SealActiveLocked() REQUIRES(io_mu_);
  static std::string SegmentFileName(std::uint32_t seq);

  mutable Mutex io_mu_;          // serializes append/rotate/sync
  mutable Mutex reg_mu_;         // guards the segment registry
  std::map<std::uint32_t, std::shared_ptr<Segment>> segments_ GUARDED_BY(reg_mu_);

  std::string dir_;
  std::uint64_t segment_bytes_ = 64ull << 20;
  bool open_ = false;
  bool io_error_ GUARDED_BY(io_mu_) = false;
  AppendFile active_file_ GUARDED_BY(io_mu_);
  std::shared_ptr<Segment> active_ GUARDED_BY(io_mu_);
  std::uint64_t unsynced_bytes_ GUARDED_BY(io_mu_) = 0;

  // Stats (monotonic counters; gauges derived from the registry).
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> append_bytes_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> read_bytes_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> fsyncs_{0};
  std::atomic<std::uint64_t> segments_created_{0};
  std::atomic<std::uint64_t> segments_retired_{0};
  std::atomic<std::uint64_t> reclaimed_bytes_{0};
  std::atomic<std::uint64_t> torn_tail_bytes_{0};
};

}  // namespace store
}  // namespace cuckoo

#endif  // SRC_STORE_VALUE_LOG_H_
