// TieredStore — the larger-than-memory tier: glues the ValueLog (cold bytes
// on disk), a byte-budgeted ClockCache (hot value tier), and an
// AsyncFileReader (parked disk GETs) into one policy object the KV service
// drives. The cuckoo table stays the single source of truth for *which*
// version of a key is current (its cas_id); this class only stores and
// fetches bytes:
//
//   SET  value >= threshold  → Append to the log, table stores the location
//   GET  tiered entry        → hot cache (cas-checked) → disk read → admit
//   GC                       → compact sealed segments, re-installing live
//                              records through the host's relocate hook
//
// Hot-cache staleness is defended by comparison, not invalidation: a cached
// value is served only when its cas_id equals the table entry's cas_id, so
// overwrites/deletes never need to chase cache entries.
#ifndef SRC_STORE_TIERED_STORE_H_
#define SRC_STORE_TIERED_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/cuckoo/clock_cache.h"
#include "src/obs/histogram.h"
#include "src/store/async_reader.h"
#include "src/store/value_log.h"

namespace cuckoo {
namespace store {

struct TieredStoreOptions {
  std::string dir;
  // Values with at least this many bytes are tiered to the log; smaller ones
  // stay inline in the table.
  std::size_t threshold_bytes = 4096;
  std::uint64_t segment_bytes = 64ull << 20;
  // Start compacting a sealed segment once dead_bytes/size reaches this
  // ratio. 0 disables the GC thread.
  double gc_trigger = 0.0;
  std::uint64_t gc_interval_ms = 500;
  // Hot value cache budget (byte mode ClockCache in front of the log).
  std::size_t cache_capacity_bytes = 64ull << 20;
  std::size_t cache_bucket_count_log2 = 14;
  std::string reader_backend = "auto";  // auto | uring | threads
  int reader_threads = 4;
};

struct TieredStoreStats {
  std::uint64_t tiered_sets = 0;
  std::uint64_t hot_hits = 0;
  std::uint64_t hot_misses = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_read_errors = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_segments = 0;
  std::uint64_t gc_records_scanned = 0;
  std::uint64_t gc_records_relocated = 0;
  std::uint64_t gc_failures = 0;
  ValueLogStats log;
};

class TieredStore {
 public:
  // The hot tier: ClockCache holds trivially-copyable 128-bit key digests
  // (TableCore's optimistic reads forbid in-slot strings) and acts as the
  // admission/eviction policy and index; the actual bytes live in a sharded
  // registry reclaimed through the cache's on_evict hook. A digest collision
  // cannot serve wrong data: entries are only served when their cas_id
  // equals the table entry's, and cas ids are globally unique mutations.
  struct HotKey {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    friend bool operator==(const HotKey& a, const HotKey& b) {
      return a.lo == b.lo && a.hi == b.hi;
    }
  };
  struct HotKeyHash {
    std::uint64_t operator()(const HotKey& k) const noexcept { return k.lo ^ (k.hi >> 1); }
  };
  struct HotValue {
    std::uint64_t cas_id = 0;
    std::string data;
  };
  using HotCache = ClockCache<HotKey, std::uint8_t, HotKeyHash>;

  // What the GC's relocate hook did with one live-candidate record.
  enum class RelocateResult : std::uint8_t {
    kDead,       // record no longer backs the current table entry; drop it
    kRelocated,  // table now points at the record's new location
    kFailed,     // could not relocate (I/O or table error); keep the segment
  };
  // Host-side re-insertion through the normal map path: must re-check
  // liveness under the table's own locks (compare the entry's location with
  // `old_loc`) before installing `new_loc`, and treat any mismatch as kDead.
  using RelocateFn = std::function<RelocateResult(
      const std::string& key, const ValueLocation& old_loc, std::string_view data)>;
  // Runs after a segment's live records are re-installed and must make both
  // the value-log appends and the relocation log records durable before the
  // old segment may be unlinked. Return false to abort the retirement.
  using PersistBarrierFn = std::function<bool()>;

  TieredStore() = default;
  ~TieredStore() { Close(); }
  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  bool Open(const TieredStoreOptions& options, std::string* error);
  void Close();

  std::size_t threshold_bytes() const noexcept { return opts_.threshold_bytes; }
  bool ShouldTier(std::size_t value_size) const noexcept {
    return value_size >= opts_.threshold_bytes;
  }

  // ----- Write path ---------------------------------------------------------

  // Append the value bytes; on success *loc identifies them. Call before the
  // table mutation (a crash between leaves an unreferenced record that GC
  // reclaims).
  bool AppendValue(std::string_view key, std::string_view data, ValueLocation* loc);

  // The record at `loc` stopped backing a table entry (overwrite, delete,
  // expiry, failed CAS). Garbage accounting only; reclamation is GC's job.
  void MarkDead(const ValueLocation& loc);

  // fsync the log's active segment (durability layer hook).
  bool SyncLog() { return log_.EnsureDurable(); }

  bool ValidLocation(const ValueLocation& loc) const { return log_.ValidLocation(loc); }

  // ----- Read path ----------------------------------------------------------

  // Hot-tier probe: serves only if the cached cas matches the table's.
  bool TryHot(const std::string& key, std::uint64_t cas_id, std::string* out);

  // Blocking read: hot tier, then disk (verify + admit). For the sync
  // Process() path, recovery checks, and tests.
  bool ReadValue(const std::string& key, const ValueLocation& loc, std::uint64_t cas_id,
                 std::string* out);

  // Non-blocking read for the parked-GET path: the callback runs on a reader
  // thread with the verified bytes (already admitted to the hot tier). Probe
  // TryHot first — this always goes to disk.
  void ReadValueAsync(std::string key, const ValueLocation& loc, std::uint64_t cas_id,
                      std::function<void(bool ok, std::string data)> cb);

  // Make a freshly-written value servable from RAM (write-through admission).
  void Admit(const std::string& key, std::uint64_t cas_id, std::string data);

  // ----- GC -----------------------------------------------------------------

  // Install hooks, then StartGc. RunGcOnce picks the worst sealed segment at
  // or above the trigger ratio and compacts it; returns true if a segment
  // was retired. Also usable directly by tests with gc_trigger == 0.
  void SetGcHooks(RelocateFn relocate, PersistBarrierFn barrier);
  bool RunGcOnce(double trigger_override = -1.0);
  void StartGc();
  void StopGc();

  // Tests: delay injected into every async disk read (on the reader thread,
  // never the caller's), to simulate a slow device.
  void SetReadDelayForTesting(std::uint64_t ms) {
    read_delay_ms_.store(ms, std::memory_order_relaxed);
  }

  bool HasAsyncReader() const noexcept { return reader_ != nullptr; }
  const char* reader_backend() const noexcept {
    return reader_ ? reader_->backend_name() : "none";
  }

  TieredStoreStats Stats() const;
  HotCache::CacheStats HotStats() const { return hot_->Stats(); }
  obs::HistogramSnapshot DiskReadLatency() const { return disk_read_ns_.Snapshot(); }
  ValueLog& log() noexcept { return log_; }
  const TieredStoreOptions& options() const noexcept { return opts_; }

 private:
  void GcLoop();

  static HotKey DigestOf(std::string_view key) noexcept;

  static constexpr std::size_t kRegistryShards = 16;
  struct RegistryShard {
    Mutex mu;
    std::unordered_map<HotKey, std::shared_ptr<HotValue>, HotKeyHash> map GUARDED_BY(mu);
  };
  RegistryShard& ShardFor(const HotKey& k) const noexcept {
    return registry_[k.hi % kRegistryShards];
  }

  TieredStoreOptions opts_;
  ValueLog log_;
  std::unique_ptr<HotCache> hot_;
  mutable std::unique_ptr<RegistryShard[]> registry_;
  std::unique_ptr<AsyncFileReader> reader_;
  bool open_ = false;

  RelocateFn relocate_;
  PersistBarrierFn barrier_;
  std::thread gc_thread_;
  Mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ GUARDED_BY(gc_mu_) = false;

  std::atomic<std::uint64_t> read_delay_ms_{0};
  std::atomic<std::uint64_t> tiered_sets_{0};
  std::atomic<std::uint64_t> hot_hits_{0};
  std::atomic<std::uint64_t> hot_misses_{0};
  std::atomic<std::uint64_t> disk_reads_{0};
  std::atomic<std::uint64_t> disk_read_errors_{0};
  std::atomic<std::uint64_t> gc_runs_{0};
  std::atomic<std::uint64_t> gc_segments_{0};
  std::atomic<std::uint64_t> gc_records_scanned_{0};
  std::atomic<std::uint64_t> gc_records_relocated_{0};
  std::atomic<std::uint64_t> gc_failures_{0};
  obs::Histogram disk_read_ns_;
};

}  // namespace store
}  // namespace cuckoo

#endif  // SRC_STORE_TIERED_STORE_H_
