#include "src/store/value_log.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"

namespace cuckoo {
namespace store {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_vlog_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

TEST(ValueLocationTest, EncodeDecodeRoundTrip) {
  ValueLocation loc;
  loc.segment = 7;
  loc.length = 1234;
  loc.offset = (1ull << 40) + 99;
  std::string bytes;
  EncodeValueLocation(loc, &bytes);
  EXPECT_EQ(bytes.size(), kEncodedValueLocationSize);
  ValueLocation out;
  ASSERT_TRUE(DecodeValueLocation(bytes, &out));
  EXPECT_EQ(out, loc);
  // Wrong size fails cleanly.
  EXPECT_FALSE(DecodeValueLocation(bytes.substr(1), &out));
  EXPECT_FALSE(DecodeValueLocation(bytes + "x", &out));
}

TEST(ValueLogTest, AppendReadRoundTrip) {
  TempDir dir;
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;

  std::vector<ValueLocation> locs(100);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string data(100 + i, static_cast<char>('a' + i % 26));
    ASSERT_TRUE(log.Append(key, data, &locs[i]));
    EXPECT_TRUE(locs[i].IsValid());
    EXPECT_TRUE(log.ValidLocation(locs[i]));
  }
  for (int i = 0; i < 100; ++i) {
    std::string data;
    ASSERT_TRUE(log.Read(locs[i], "key" + std::to_string(i), &data));
    EXPECT_EQ(data, std::string(100 + i, static_cast<char>('a' + i % 26)));
  }
  // A read with the wrong key fails (the frame embeds the key).
  std::string data;
  EXPECT_FALSE(log.Read(locs[0], "not-the-key", &data));
  const ValueLogStats stats = log.Stats();
  EXPECT_EQ(stats.appends, 100u);
  EXPECT_EQ(stats.live_segments, 1u);
}

TEST(ValueLogTest, ReopenServesOldRecordsAndKeepsAppending) {
  TempDir dir;
  ValueLocation loc;
  {
    ValueLog log;
    ValueLogOptions options;
    options.dir = dir.path;
    std::string error;
    ASSERT_TRUE(log.Open(options, &error)) << error;
    ASSERT_TRUE(log.Append("persist", std::string(512, 'p'), &loc));
    ASSERT_TRUE(log.EnsureDurable());
    log.Close();
  }
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  ASSERT_TRUE(log.ValidLocation(loc));
  std::string data;
  ASSERT_TRUE(log.Read(loc, "persist", &data));
  EXPECT_EQ(data, std::string(512, 'p'));
  ValueLocation loc2;
  ASSERT_TRUE(log.Append("after", "x", &loc2));
  EXPECT_TRUE(log.ValidLocation(loc2));
}

TEST(ValueLogTest, SegmentRotationAtSizeLimit) {
  TempDir dir;
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  options.segment_bytes = 4096;  // tiny segments force rotation
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  std::vector<ValueLocation> locs;
  for (int i = 0; i < 32; ++i) {
    ValueLocation loc;
    ASSERT_TRUE(log.Append("k" + std::to_string(i), std::string(1024, 'r'), &loc));
    locs.push_back(loc);
  }
  EXPECT_GT(log.Stats().live_segments, 2u);
  // Records remain readable across sealed segments.
  for (int i = 0; i < 32; ++i) {
    std::string data;
    ASSERT_TRUE(log.Read(locs[i], "k" + std::to_string(i), &data));
    EXPECT_EQ(data.size(), 1024u);
  }
}

TEST(ValueLogTest, TornTailTruncatedOnOpen) {
  TempDir dir;
  ValueLocation good;
  std::string active_path;
  {
    ValueLog log;
    ValueLogOptions options;
    options.dir = dir.path;
    std::string error;
    ASSERT_TRUE(log.Open(options, &error)) << error;
    ASSERT_TRUE(log.Append("good", std::string(200, 'g'), &good));
    ValueLocation torn;
    ASSERT_TRUE(log.Append("torn", std::string(200, 't'), &torn));
    ASSERT_TRUE(log.EnsureDurable());
    log.Close();
    // Chop the last record in half — a crash mid-append.
    active_path = dir.path + "/";
    for (const std::string& name : ListFilesWithPrefix(dir.path, "vlog-")) {
      active_path = dir.path + "/" + name;
    }
    ASSERT_EQ(::truncate(active_path.c_str(),
                         static_cast<off_t>(torn.offset + torn.length / 2)),
              0);
  }
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  EXPECT_GT(log.Stats().torn_tail_bytes, 0u);
  std::string data;
  ASSERT_TRUE(log.Read(good, "good", &data));
  EXPECT_EQ(data, std::string(200, 'g'));
  // The torn record's bytes are gone; its location no longer validates, and
  // new appends land after the truncated tail without colliding.
  ValueLocation fresh;
  ASSERT_TRUE(log.Append("fresh", std::string(64, 'f'), &fresh));
  ASSERT_TRUE(log.Read(fresh, "fresh", &data));
  EXPECT_EQ(data, std::string(64, 'f'));
}

TEST(ValueLogTest, CorruptRecordFailsRead) {
  TempDir dir;
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  ValueLocation loc;
  ASSERT_TRUE(log.Append("victim", std::string(300, 'v'), &loc));
  ASSERT_TRUE(log.EnsureDurable());

  // Flip a payload byte on disk; the CRC must catch it.
  std::string path;
  for (const std::string& name : ListFilesWithPrefix(dir.path, "vlog-")) {
    path = dir.path + "/" + name;
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(loc.offset + loc.length - 10), SEEK_SET), 0);
  std::fputc('X', f);
  std::fclose(f);

  std::string data;
  EXPECT_FALSE(log.Read(loc, "victim", &data));
  EXPECT_GT(log.Stats().read_errors, 0u);
}

TEST(ValueLogTest, MarkDeadAccountingAndRetire) {
  TempDir dir;
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  options.segment_bytes = 2048;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  std::vector<ValueLocation> locs;
  for (int i = 0; i < 8; ++i) {
    ValueLocation loc;
    ASSERT_TRUE(log.Append("k" + std::to_string(i), std::string(512, 'd'), &loc));
    locs.push_back(loc);
  }
  for (const ValueLocation& loc : locs) {
    log.MarkDead(loc);
  }
  EXPECT_GT(log.Stats().dead_bytes, 0u);

  // Sealed segments can be retired; their locations stop validating but a
  // pinned reference keeps in-flight reads safe.
  std::vector<ValueLog::SegmentInfo> segs = log.Segments();
  ASSERT_GT(segs.size(), 1u);
  const std::uint32_t sealed = segs.front().seq;
  ASSERT_FALSE(segs.front().active);
  ValueLog::SegmentRef pin = log.Pin(sealed);
  ASSERT_NE(pin, nullptr);
  ASSERT_TRUE(log.RetireSegment(sealed));
  EXPECT_EQ(log.Pin(sealed), nullptr);
  EXPECT_FALSE(log.ValidLocation(locs[0]));
  EXPECT_GT(log.Stats().segments_retired, 0u);
  // The pinned ref still reads the unlinked file (pread + VerifyRecord is
  // exactly what the tiered store's async read path does).
  std::string frame(locs[0].length, '\0');
  ASSERT_EQ(::pread(pin->read_fd, frame.data(), frame.size(),
                    static_cast<off_t>(locs[0].offset)),
            static_cast<ssize_t>(frame.size()));
  std::string data;
  EXPECT_TRUE(ValueLog::VerifyRecord(frame, locs[0], "k0", &data));
  EXPECT_EQ(data, std::string(512, 'd'));
}

TEST(ValueLogTest, ForEachRecordWalksSealedSegment) {
  TempDir dir;
  ValueLog log;
  ValueLogOptions options;
  options.dir = dir.path;
  options.segment_bytes = 2048;
  std::string error;
  ASSERT_TRUE(log.Open(options, &error)) << error;
  for (int i = 0; i < 8; ++i) {
    ValueLocation loc;
    ASSERT_TRUE(log.Append("walk" + std::to_string(i), std::string(512, 'w'), &loc));
  }
  std::vector<ValueLog::SegmentInfo> segs = log.Segments();
  ASSERT_GT(segs.size(), 1u);
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(log.ForEachRecord(
      segs.front().seq,
      [&](std::string_view key, std::string_view data, const ValueLocation& loc) {
        EXPECT_EQ(loc.segment, segs.front().seq);
        seen.emplace(std::string(key), std::string(data));
        return true;
      }));
  EXPECT_FALSE(seen.empty());
  for (const auto& [key, data] : seen) {
    EXPECT_EQ(data, std::string(512, 'w')) << key;
  }
}

}  // namespace
}  // namespace store
}  // namespace cuckoo
