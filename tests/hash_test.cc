#include "src/common/hash.h"

#include <array>
#include <cstring>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(XxHash64Test, DeterministicForSameInput) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  EXPECT_EQ(XxHash64(data.data(), data.size()), XxHash64(data.data(), data.size()));
}

TEST(XxHash64Test, SeedChangesHash) {
  const std::string data = "payload";
  EXPECT_NE(XxHash64(data.data(), data.size(), 1), XxHash64(data.data(), data.size(), 2));
}

TEST(XxHash64Test, LengthChangesHash) {
  const std::string data = "abcdefgh";
  EXPECT_NE(XxHash64(data.data(), 7), XxHash64(data.data(), 8));
}

TEST(XxHash64Test, EmptyInputIsStable) {
  EXPECT_EQ(XxHash64(nullptr, 0), XxHash64(nullptr, 0));
  EXPECT_NE(XxHash64(nullptr, 0, 0), XxHash64(nullptr, 0, 1));
}

TEST(XxHash64Test, CoversAllTailPaths) {
  // Lengths straddling the 32-byte block loop and 8/4/1-byte tails.
  std::vector<unsigned char> buf(100, 0xab);
  std::set<std::uint64_t> hashes;
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 63u, 64u, 100u}) {
    hashes.insert(XxHash64(buf.data(), len));
  }
  EXPECT_EQ(hashes.size(), 13u) << "every length class should hash differently";
}

TEST(XxHash64Test, SingleBitFlipsChangeHash) {
  std::array<unsigned char, 40> buf{};
  const std::uint64_t base = XxHash64(buf.data(), buf.size());
  for (std::size_t byte = 0; byte < buf.size(); ++byte) {
    buf[byte] ^= 1;
    EXPECT_NE(XxHash64(buf.data(), buf.size()), base) << "byte " << byte;
    buf[byte] ^= 1;
  }
}

TEST(XxHash64Test, OutputBitsLookBalanced) {
  // Coarse avalanche check: each output bit should be ~50% across many inputs.
  constexpr int kSamples = 4096;
  int bit_counts[64] = {};
  for (int i = 0; i < kSamples; ++i) {
    std::uint64_t h = XxHash64(&i, sizeof(i));
    for (int b = 0; b < 64; ++b) {
      bit_counts[b] += static_cast<int>((h >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(bit_counts[b], kSamples * 2 / 5) << "bit " << b;
    EXPECT_LT(bit_counts[b], kSamples * 3 / 5) << "bit " << b;
  }
}

TEST(Mix64Test, InjectiveOnSample) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 200000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << i;
  }
}

TEST(Fmix64Test, DiffersFromMix64) {
  int same = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (Mix64(i) == Fmix64(i)) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(DefaultHashTest, IntegralKeysAreMixed) {
  DefaultHash<std::uint64_t> h;
  // Sequential keys must not produce sequential hashes (std::hash identity
  // would be fatal for cuckoo bucket derivation).
  EXPECT_NE(h(1) + 1, h(2));
  EXPECT_NE(h(0), 0u);
}

TEST(DefaultHashTest, StringKeysUseContent) {
  DefaultHash<std::string> h;
  EXPECT_EQ(h(std::string("abc")), h(std::string("abc")));
  EXPECT_NE(h(std::string("abc")), h(std::string("abd")));
}

TEST(DefaultHashTest, EnumKeysWork) {
  enum class Color : std::uint32_t { kRed = 1, kBlue = 2 };
  DefaultHash<Color> h;
  EXPECT_NE(h(Color::kRed), h(Color::kBlue));
}

TEST(HashedKeyTest, TagNeverZero) {
  for (std::uint64_t i = 0; i < 100000; ++i) {
    EXPECT_NE(HashedKey::From(Mix64(i)).tag, 0) << i;
  }
  // Hash whose top byte is zero still yields a nonzero tag.
  EXPECT_EQ(HashedKey::From(0).tag, 1);
}

class HashedKeyBucketTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashedKeyBucketTest, AltBucketIsInvolutive) {
  const std::size_t mask = GetParam() - 1;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    HashedKey h = HashedKey::From(Mix64(i));
    std::size_t b1 = h.Bucket1(mask);
    std::size_t b2 = h.AltBucket(b1, mask);
    ASSERT_LE(b1, mask);
    ASSERT_LE(b2, mask);
    EXPECT_NE(b1, b2) << "alternate bucket must differ";
    EXPECT_EQ(h.AltBucket(b2, mask), b1) << "alt(alt(b)) must return to b";
    EXPECT_EQ(h.Bucket2(mask), b2);
  }
}

TEST_P(HashedKeyBucketTest, BucketsCoverTheTable) {
  const std::size_t buckets = GetParam();
  const std::size_t mask = buckets - 1;
  std::vector<int> histogram(buckets, 0);
  const std::uint64_t n = buckets * 64;
  for (std::uint64_t i = 0; i < n; ++i) {
    ++histogram[HashedKey::From(Mix64(i)).Bucket1(mask)];
  }
  // Every bucket should receive something at 64x average.
  for (std::size_t b = 0; b < buckets; ++b) {
    EXPECT_GT(histogram[b], 0) << "bucket " << b << " never hit";
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, HashedKeyBucketTest,
                         ::testing::Values(2, 8, 64, 1024, 65536));

}  // namespace
}  // namespace cuckoo
