#include "src/benchkit/workload.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(KeyForIdTest, BijectiveOnSample) {
  std::unordered_set<std::uint64_t> keys;
  for (std::uint64_t id = 0; id < 100000; ++id) {
    EXPECT_TRUE(keys.insert(KeyForId(id)).second) << id;
  }
}

TEST(KeyForIdTest, SeedSeparatesKeySpaces) {
  EXPECT_NE(KeyForId(1, 1), KeyForId(1, 2));
  EXPECT_EQ(KeyForId(1, 1), KeyForId(1, 1));
}

TEST(OpStreamTest, InsertIdsAreStridedAndDisjoint) {
  std::atomic<std::uint64_t> watermark{0};
  constexpr int kThreads = 4;
  std::set<std::uint64_t> all_ids;
  for (int t = 0; t < kThreads; ++t) {
    OpStream::Config cfg;
    cfg.thread_index = t;
    cfg.thread_count = kThreads;
    OpStream stream(cfg, &watermark, 0);
    for (int i = 0; i < 1000; ++i) {
      std::uint64_t id = stream.NextInsertId();
      EXPECT_EQ(id % kThreads, static_cast<std::uint64_t>(t));
      EXPECT_TRUE(all_ids.insert(id).second) << "ids must be globally unique";
    }
  }
  EXPECT_EQ(all_ids.size(), 4000u);
  // Union is exactly [0, 4000).
  EXPECT_EQ(*all_ids.begin(), 0u);
  EXPECT_EQ(*all_ids.rbegin(), 3999u);
}

TEST(OpStreamTest, LookupRatioIsExactForHalfInserts) {
  std::atomic<std::uint64_t> watermark{100};
  OpStream::Config cfg;
  cfg.insert_fraction = 0.5;
  OpStream stream(cfg, &watermark, 0);
  std::uint64_t lookups = 0;
  for (int i = 0; i < 10000; ++i) {
    stream.NextInsertKey();
    lookups += stream.LookupsOwedAfterInsert();
  }
  EXPECT_EQ(lookups, 10000u) << "50% inserts => one lookup per insert";
}

TEST(OpStreamTest, LookupRatioIsExactForTenPercentInserts) {
  std::atomic<std::uint64_t> watermark{100};
  OpStream::Config cfg;
  cfg.insert_fraction = 0.1;
  OpStream stream(cfg, &watermark, 0);
  std::uint64_t lookups = 0;
  for (int i = 0; i < 10000; ++i) {
    lookups += stream.LookupsOwedAfterInsert();
  }
  // 10% inserts => 9 lookups per insert.
  EXPECT_NEAR(static_cast<double>(lookups), 90000.0, 2.0);
}

TEST(OpStreamTest, PureInsertOwesNoLookups) {
  std::atomic<std::uint64_t> watermark{0};
  OpStream::Config cfg;
  cfg.insert_fraction = 1.0;
  OpStream stream(cfg, &watermark, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(stream.LookupsOwedAfterInsert(), 0u);
  }
}

TEST(OpStreamTest, LookupKeysComeFromInsertedPrefix) {
  std::atomic<std::uint64_t> watermark{500};
  OpStream::Config cfg;
  cfg.seed = 9;
  OpStream stream(cfg, &watermark, 0);
  std::set<std::uint64_t> prefix_keys;
  for (std::uint64_t id = 0; id < 500; ++id) {
    prefix_keys.insert(KeyForId(id, cfg.seed));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(prefix_keys.count(stream.NextLookupKey()) == 1);
  }
}

TEST(OpStreamTest, WatermarkAdvances) {
  std::atomic<std::uint64_t> watermark{0};
  OpStream::Config cfg;
  OpStream stream(cfg, &watermark, 0);
  stream.AdvanceWatermark(256);
  EXPECT_EQ(watermark.load(), 256u);
}

TEST(OpStreamTest, FirstLocalInsertIndexOffsetsStream) {
  std::atomic<std::uint64_t> watermark{0};
  OpStream::Config cfg;
  cfg.thread_index = 1;
  cfg.thread_count = 2;
  OpStream a(cfg, &watermark, 0);
  OpStream b(cfg, &watermark, 100);
  EXPECT_EQ(a.NextInsertId(), 1u);
  EXPECT_EQ(b.NextInsertId(), 201u);
}

}  // namespace
}  // namespace cuckoo
