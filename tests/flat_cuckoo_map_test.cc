// Single-threaded behaviour of FlatCuckooMap across every factor-analysis
// knob combination from §6.1: all variants must be functionally identical;
// only their internal path statistics differ.
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/random.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

struct Knobs {
  SearchMode search;
  bool lock_after;
  bool prefetch;
};

class FlatKnobTest : public ::testing::TestWithParam<Knobs> {};

TEST_P(FlatKnobTest, ModelEquivalenceUnderRandomOps) {
  const Knobs knobs = GetParam();
  FlatOptions o;
  o.bucket_count_log2 = 8;
  o.search_mode = knobs.search;
  o.lock_after_discovery = knobs.lock_after;
  o.prefetch = knobs.prefetch;
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::unordered_map<std::uint64_t, std::uint64_t> model;

  Xorshift128Plus rng(7);
  for (int step = 0; step < 40000; ++step) {
    std::uint64_t key = rng.NextBelow(900);
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(4)) {
      case 0: {
        bool fresh = model.find(key) == model.end();
        InsertResult r = map.Insert(key, value);
        if (r == InsertResult::kTableFull) {
          break;  // fixed-size table may legitimately fill
        }
        ASSERT_EQ(r == InsertResult::kOk, fresh);
        if (fresh) {
          model[key] = value;
        }
        break;
      }
      case 1: {
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 2: {
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      }
      case 3: {
        std::uint64_t v = 0;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
  for (const auto& [key, value] : model) {
    std::uint64_t v = 0;
    ASSERT_TRUE(map.Find(key, &v));
    ASSERT_EQ(v, value);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, FlatKnobTest,
    ::testing::Values(Knobs{SearchMode::kDfs, false, false},   // MemC3 baseline
                      Knobs{SearchMode::kDfs, true, false},    // +lock later
                      Knobs{SearchMode::kBfs, true, false},    // +BFS
                      Knobs{SearchMode::kBfs, true, true},     // +prefetch
                      Knobs{SearchMode::kBfs, false, true}),
    [](const ::testing::TestParamInfo<Knobs>& param_info) {
      return std::string(ToString(param_info.param.search)) +
             (param_info.param.lock_after ? "_locklater" : "_lockfirst") +
             (param_info.param.prefetch ? "_prefetch" : "_noprefetch");
    });

TEST(FlatCuckooMapTest, FixedSizeReportsTableFull) {
  FlatOptions o;
  o.bucket_count_log2 = 6;  // 256 slots at B=4
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  // The failed search is randomized (DFS), so the *same* key may succeed on a
  // retry; the durable invariants are high occupancy, an eventual hard stop,
  // and intact contents.
  EXPECT_GT(map.Stats().insert_failures, 0);
  EXPECT_GT(map.LoadFactor(), 0.85);
  EXPECT_EQ(map.SlotCount(), 256u);
  // Contents intact at the failure point.
  std::uint64_t v;
  for (std::uint64_t k = 0; k < i; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
  }
}

TEST(FlatCuckooMapTest, DfsPathsLongerThanBfsAtHighLoad) {
  auto fill = [](SearchMode mode) {
    FlatOptions o;
    o.bucket_count_log2 = 12;
    o.search_mode = mode;
    o.lock_after_discovery = true;
    FlatCuckooMap<std::uint64_t, std::uint64_t> map(o);
    std::uint64_t i = 0;
    while (map.Insert(i, i) == InsertResult::kOk) {
      ++i;
    }
    return map.Stats();
  };
  MapStatsSnapshot dfs = fill(SearchMode::kDfs);
  MapStatsSnapshot bfs = fill(SearchMode::kBfs);
  EXPECT_GT(dfs.MaxPathLength(), bfs.MaxPathLength());
  EXPECT_GT(dfs.MeanPathLength(), bfs.MeanPathLength());
  EXPECT_LE(bfs.MaxPathLength(), static_cast<std::int64_t>(MaxBfsPathLength(4, 2000)));
  EXPECT_LE(dfs.MaxPathLength(), 250);
}

TEST(FlatCuckooMapTest, GlobalLockTypesAreInterchangeable) {
  // The same workload through a pthread mutex, a raw spinlock, and both
  // elision policies (emulated RTM) must produce identical contents.
  RtmForceUsable(0);
  auto run = [](auto& map) {
    for (std::uint64_t i = 0; i < 3000; ++i) {
      EXPECT_EQ(map.Insert(i, i * 3), InsertResult::kOk);
    }
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 3000; ++i) {
      EXPECT_TRUE(map.Find(i, &v));
      EXPECT_EQ(v, i * 3);
    }
  };
  FlatOptions o;
  o.bucket_count_log2 = 10;
  FlatCuckooMap<std::uint64_t, std::uint64_t, std::mutex> mutex_map(o);
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> spin_map(o);
  FlatCuckooMap<std::uint64_t, std::uint64_t, GlibcElided<SpinLock>> glibc_map(o);
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>> tuned_map(o);
  run(mutex_map);
  run(spin_map);
  run(glibc_map);
  run(tuned_map);
  // Elided locks accumulated statistics.
  auto s = tuned_map.global_lock().stats().Read();
  EXPECT_GT(s.commits + s.fallback_acquisitions, 0u);
  RtmForceUsable(-1);
}

TEST(FlatCuckooMapTest, NullLockVariantForSingleThreadBench) {
  FlatOptions o;
  o.bucket_count_log2 = 8;
  FlatCuckooMap<std::uint64_t, std::uint64_t, NullLock> map(o);
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  EXPECT_EQ(map.Size(), 500u);
}

TEST(FlatCuckooMapTest, HigherAssociativityTemplateParameter) {
  FlatOptions o;
  o.bucket_count_log2 = 8;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock, DefaultHash<std::uint64_t>,
                std::equal_to<std::uint64_t>, 8>
      map8(o);
  std::uint64_t i = 0;
  while (map8.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  EXPECT_GT(map8.LoadFactor(), 0.93);
}

TEST(FlatCuckooMapTest, StatsExposePathSearchActivity) {
  FlatOptions o;
  o.bucket_count_log2 = 8;
  o.lock_after_discovery = true;
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(o);
  std::uint64_t i = 0;
  while (map.Insert(i, i) == InsertResult::kOk) {
    ++i;
  }
  MapStatsSnapshot s = map.Stats();
  EXPECT_GT(s.path_searches, 0);
  EXPECT_GT(s.displacements, 0);
  EXPECT_EQ(s.inserts, static_cast<std::int64_t>(i));
  EXPECT_EQ(s.insert_failures, 1);
}

TEST(FlatCuckooMapTest, HeapBytesIncludesCoreAndStripes) {
  FlatOptions o;
  o.bucket_count_log2 = 8;
  o.version_stripe_count = 64;
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(o);
  // 256 buckets * 4 slots * 16 B/pair + 1024 tag bytes + 64 stripe lines.
  EXPECT_EQ(map.HeapBytes(), 256u * 4u * 16u + 1024u + 64u * kCacheLineSize);
}

}  // namespace
}  // namespace cuckoo
