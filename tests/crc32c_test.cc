#include "src/common/crc32c.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors for CRC32C.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);

  unsigned char zeros[32];
  std::memset(zeros, 0, sizeof(zeros));
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  unsigned char ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) {
    ascending[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(Crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInput) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly, at length, "
      "so that the slicing-by-8 word loop actually runs a few iterations";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    std::uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, UnalignedStartMatches) {
  // The alignment prologue must produce the same result from any offset.
  std::string buffer(64, '\0');
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<char>(i * 37 + 11);
  }
  const std::uint32_t want = Crc32c(buffer.data() + 3, 40);
  std::string copy = buffer.substr(3, 40);  // differently aligned storage
  EXPECT_EQ(Crc32c(copy.data(), copy.size()), want);
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (std::uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    const std::uint32_t masked = Crc32cMask(crc);
    EXPECT_NE(masked, crc);
    EXPECT_EQ(Crc32cUnmask(masked), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "payload that must be protected";
  const std::uint32_t want = Crc32c(data);
  for (std::size_t bit = 0; bit < data.size() * 8; bit += 13) {
    std::string flipped = data;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    EXPECT_NE(Crc32c(flipped), want) << "bit " << bit;
  }
}

}  // namespace
}  // namespace cuckoo
