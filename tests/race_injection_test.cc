// Deterministic race tests driven by the schedule-perturbation test points
// (src/common/test_points.h). Each test arms a handler inside one of the
// protocol windows and performs a conflicting operation there, forcing the
// exact interleaving the §4.3.1/§4.4 validation machinery exists to survive:
//
//   * a cuckoo path invalidated between discovery and execution (Appendix B),
//   * an optimistic reader invalidated between snapshot and validation,
//   * a reversed-argument bucket-pair lock ordered by the canonical stripe
//     discipline instead of deadlocking.
//
// The whole file is inert unless built with -DCUCKOO_ENABLE_TEST_POINTS=1
// (the tsan/asan/ubsan/debug presets); the release tier then just reports
// skipped tests.
#include "src/common/test_points.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/debug_checks.h"
#include "src/common/striped_locks.h"
#include "src/cuckoo/cuckoo_map.h"
#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/cuckoo/general_cuckoo_map.h"
#include "src/cuckoo/types.h"

#if !CUCKOO_ENABLE_TEST_POINTS

TEST(RaceInjectionTest, RequiresTestPoints) {
  GTEST_SKIP() << "built without CUCKOO_ENABLE_TEST_POINTS; use the tsan/asan/"
                  "ubsan/debug presets to run the deterministic race tests";
}

#else

namespace cuckoo {
namespace {

using testpoints::ScopedHandler;

// ---------------------------------------------------------------------------
// 1. Path invalidated between discovery and execution (CuckooMap, §4.3.1).
//
// The inserting thread discovers a cuckoo path with no lock held. Before it
// takes the first displacement lock, the armed handler erases every item in
// the table, so every hop's source tag is gone. ExecutePath's per-hop
// validation must fail (counted as a path invalidation), and the retried
// insert must succeed against the now-empty table.
TEST(RaceInjectionTest, PathInvalidatedBetweenDiscoveryAndExecution) {
  using Map = CuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 4;  // 16 buckets * 8 slots = 128 slots
  opts.auto_expand = false;            // keep the table crowded
  Map map(opts);

  // Fill to ~90% so fresh inserts reliably need a cuckoo path.
  std::vector<std::uint64_t> resident;
  for (std::uint64_t k = 1; map.Size() < 115 && k < 100000; ++k) {
    if (map.Insert(k, k) == InsertResult::kOk) {
      resident.push_back(k);
    }
  }
  ASSERT_GE(map.Size(), 100u) << "BFS should pack a 128-slot table past 100";

  const std::int64_t invalidations_before = map.Stats().path_invalidations;

  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kInsertAfterPathDiscovery,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        for (std::uint64_t k : resident) {
          map.Erase(k);  // consumes every path's source slots
        }
      },
      /*max_fires=*/1);

  // Probe keys until one actually needs a path search (free slots left by the
  // fill may absorb the first few).
  std::uint64_t probe = 1'000'000;
  InsertResult last = InsertResult::kOk;
  for (int i = 0; fired.load(std::memory_order_relaxed) == 0 && i < 10000; ++i) {
    last = map.Insert(probe, probe);
    ++probe;
  }
  ASSERT_EQ(fired.load(), 1) << "no insert ever reached the path-discovery window";
  EXPECT_EQ(last, InsertResult::kOk) << "insert must survive the invalidated path";

  EXPECT_GE(map.Stats().path_invalidations, invalidations_before + 1)
      << "the erased path must fail validate-and-execute";
  for (std::uint64_t k : resident) {
    EXPECT_FALSE(map.Contains(k));
  }
  map.AssertInvariants();
}

// Same window for FlatCuckooMap's Algorithm 2 ("lock after discovering a
// cuckoo path"): the handler fires between SearchPath and taking the global
// lock, erases the table, and ExecutePathLocked must reject the stale path.
TEST(RaceInjectionTest, FlatMapLockLaterPathInvalidated) {
  FlatOptions opts;
  opts.bucket_count_log2 = 4;  // 16 buckets * 4 slots = 64 slots
  opts.search_mode = SearchMode::kBfs;
  opts.lock_after_discovery = true;
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(opts);

  std::vector<std::uint64_t> resident;
  for (std::uint64_t k = 1; map.Size() < 55 && k < 100000; ++k) {
    if (map.Insert(k, k) == InsertResult::kOk) {
      resident.push_back(k);
    }
  }
  ASSERT_GE(map.Size(), 48u);

  const std::int64_t invalidations_before = map.Stats().path_invalidations;

  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kInsertAfterPathDiscovery,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        for (std::uint64_t k : resident) {
          map.Erase(k);
        }
      },
      /*max_fires=*/1);

  std::uint64_t probe = 1'000'000;
  InsertResult last = InsertResult::kOk;
  for (int i = 0; fired.load(std::memory_order_relaxed) == 0 && i < 10000; ++i) {
    last = map.Insert(probe, probe);
    ++probe;
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_EQ(last, InsertResult::kOk);
  EXPECT_GE(map.Stats().path_invalidations, invalidations_before + 1);
  for (std::uint64_t k : resident) {
    EXPECT_FALSE(map.Contains(k));
  }
}

// ---------------------------------------------------------------------------
// 2. Optimistic reader invalidated mid-read (§4.4 seqlock validation).
//
// The handler runs on the reading thread between its version snapshot and the
// data read, and overwrites the value it is about to load. Validation must
// fail (version bumped), the read must retry, and the retry must return the
// new value — never a torn or stale one.
TEST(RaceInjectionTest, ReaderRetriesWhenWriterInvalidatesAfterSnapshot) {
  using Map = CuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 8;
  Map map(opts);
  ASSERT_EQ(map.Insert(1, 100), InsertResult::kOk);

  const std::int64_t retries_before = map.Stats().read_retries;
  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kReadAfterVersionSnapshot,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        ASSERT_TRUE(map.Update(1, 200));
      },
      /*max_fires=*/1);

  std::uint64_t out = 0;
  ASSERT_TRUE(map.Find(1, &out));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(out, 200u) << "retried read must observe the concurrent update";
  EXPECT_GE(map.Stats().read_retries, retries_before + 1)
      << "the version bump must invalidate the in-flight read";
}

// Same protocol, second window: the writer slips in after the reader already
// copied the (stale) value but before validation. The stale copy must be
// discarded by the version check.
TEST(RaceInjectionTest, ReaderDiscardsStaleValueCopiedBeforeValidation) {
  using Map = CuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 8;
  Map map(opts);
  ASSERT_EQ(map.Insert(7, 100), InsertResult::kOk);

  const std::int64_t retries_before = map.Stats().read_retries;
  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kReadBeforeValidate,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        ASSERT_TRUE(map.Update(7, 300));
      },
      /*max_fires=*/1);

  std::uint64_t out = 0;
  ASSERT_TRUE(map.Find(7, &out));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(out, 300u) << "the pre-update copy must not escape validation";
  EXPECT_GE(map.Stats().read_retries, retries_before + 1);
}

// FlatCuckooMap shares the same seqlock read protocol; cover it too.
TEST(RaceInjectionTest, FlatMapReaderRetriesOnConcurrentUpdate) {
  FlatOptions opts;
  opts.bucket_count_log2 = 8;
  FlatCuckooMap<std::uint64_t, std::uint64_t> map(opts);
  ASSERT_EQ(map.Insert(1, 100), InsertResult::kOk);

  const std::int64_t retries_before = map.Stats().read_retries;
  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kReadAfterVersionSnapshot,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        ASSERT_TRUE(map.Update(1, 200));
      },
      /*max_fires=*/1);

  std::uint64_t out = 0;
  ASSERT_TRUE(map.Find(1, &out));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(out, 200u);
  EXPECT_GE(map.Stats().read_retries, retries_before + 1);
}

// ---------------------------------------------------------------------------
// 3. Stripe-ordered double lock (§4.4 deadlock avoidance).
//
// Thread A locks the pair (2, 5) and is held inside the window between its
// two acquisitions (holding stripe 2, not yet stripe 5). Thread B then locks
// the same pair with the arguments REVERSED. Because LockPair canonicalizes
// to ascending stripe order, B also starts with stripe 2, blocks behind A,
// and the classic AB/BA deadlock cannot form: A finishes both acquisitions
// strictly before B gets either lock.
TEST(RaceInjectionTest, StripeOrderedDoubleLockCannotDeadlock) {
  LockStripes stripes(16);
  constexpr std::size_t kLow = 2;   // bucket 2 -> stripe 2
  constexpr std::size_t kHigh = 5;  // bucket 5 -> stripe 5

  std::atomic<bool> a_in_window{false};
  std::atomic<bool> b_attempting{false};
  std::atomic<bool> a_locked_both{false};
  std::atomic<bool> b_locked_both{false};

  // One-shot: fires on thread A only (B's pass through the window is budget-
  // exhausted). Holds A inside the window until B has committed to its
  // reversed acquisition, then lingers so B is really blocked on stripe 2.
  ScopedHandler handler(
      TestPoint::kPairLockBetweenAcquires,
      [&] {
#if CUCKOO_DEBUG_CHECKS
        EXPECT_EQ(debug::HeldStripeCount(&stripes), 1u);
#endif
        a_in_window.store(true, std::memory_order_release);
        while (!b_attempting.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        EXPECT_FALSE(b_locked_both.load(std::memory_order_acquire))
            << "B must not own the pair while A sits between its acquisitions";
      },
      /*max_fires=*/1);

  std::thread a([&] {
    stripes.LockPair(kLow, kHigh);
    a_locked_both.store(true, std::memory_order_release);
    // B is blocked on stripe 2 (its canonical first lock) until we release.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(b_locked_both.load(std::memory_order_acquire));
    stripes.UnlockPair(kLow, kHigh);
  });

  std::thread b([&] {
    while (!a_in_window.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    b_attempting.store(true, std::memory_order_release);
    stripes.LockPair(kHigh, kLow);  // reversed arguments, same canonical order
    EXPECT_TRUE(a_locked_both.load(std::memory_order_acquire))
        << "A must complete both acquisitions before B gets either stripe";
    b_locked_both.store(true, std::memory_order_release);
    stripes.UnlockPair(kHigh, kLow);
  });

  a.join();
  b.join();
  EXPECT_TRUE(b_locked_both.load());
  // Both threads released via UnlockPair: each stripe's version advanced twice
  // and no lock bit is left behind.
  EXPECT_EQ(stripes.Stripe(kLow).AwaitVersion(), 2u);
  EXPECT_EQ(stripes.Stripe(kHigh).AwaitVersion(), 2u);
}

// ---------------------------------------------------------------------------
// 4. Expansion allocates the fresh core OUTSIDE the writer-visible pause.
//
// kExpansionCoreAllocated fires after the first-attempt core is allocated
// (and zeroed) but before any stripe is taken. The handler performs a table
// read from inside the window: if the allocation ever regresses to inside
// the AllGuard hold, the read self-deadlocks (the expanding thread already
// owns every stripe / has every seqlock version odd) and the test hangs
// instead of passing. The pause histogram must meanwhile have recorded one
// sample per expansion — the pause accounting survives the hoist.
TEST(RaceInjectionTest, CuckooMapExpansionAllocatesCoreOutsidePause) {
  using Map = CuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 4;  // tiny: first fill forces an expansion
  Map map(opts);
  ASSERT_EQ(map.Insert(42, 4242), InsertResult::kOk);

  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kExpansionCoreAllocated,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t out = 0;
        EXPECT_TRUE(map.Find(42, &out)) << "reads must run during core allocation";
        EXPECT_EQ(out, 4242u);
      },
      /*max_fires=*/1);

  for (std::uint64_t k = 100; fired.load(std::memory_order_relaxed) == 0 && k < 100000;
       ++k) {
    ASSERT_NE(map.Insert(k, k), InsertResult::kTableFull);
  }
  ASSERT_EQ(fired.load(), 1) << "the fill never triggered an expansion";
  const auto stats = map.Stats();
  EXPECT_GT(stats.expansions, 0);
  EXPECT_EQ(stats.expansion_pause_ns.Count(),
            static_cast<std::uint64_t>(stats.expansions))
      << "each expansion must still record exactly one pause sample";
}

// Same window for GeneralCuckooMap, both expansion flavors. Locked reads make
// the deadlock-on-regression even more direct: Contains() takes the bucket's
// stripe, which the expanding thread would already hold.
TEST(RaceInjectionTest, GeneralMapStopTheWorldExpansionAllocatesCoreOutsidePause) {
  using Map = GeneralCuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 4;
  opts.incremental_expand = false;
  Map map(opts);
  ASSERT_EQ(map.Insert(42, 4242), InsertResult::kOk);

  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kExpansionCoreAllocated,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        EXPECT_TRUE(map.Contains(42)) << "locked reads must run during allocation";
      },
      /*max_fires=*/1);

  for (std::uint64_t k = 100; fired.load(std::memory_order_relaxed) == 0 && k < 100000;
       ++k) {
    ASSERT_NE(map.Insert(k, k), InsertResult::kTableFull);
  }
  ASSERT_EQ(fired.load(), 1);
  const auto stats = map.Stats();
  EXPECT_GT(stats.expansions, 0);
  EXPECT_EQ(stats.expansion_pause_ns.Count(),
            static_cast<std::uint64_t>(stats.expansions));
}

TEST(RaceInjectionTest, GeneralMapIncrementalExpansionAllocatesCoreOutsidePause) {
  using Map = GeneralCuckooMap<std::uint64_t, std::uint64_t>;
  Map::Options opts;
  opts.initial_bucket_count_log2 = 6;
  opts.stripe_count = 8;  // aligned from the start: expansion goes incremental
  Map map(opts);
  ASSERT_EQ(map.Insert(42, 4242), InsertResult::kOk);

  std::atomic<int> fired{0};
  ScopedHandler handler(
      TestPoint::kExpansionCoreAllocated,
      [&] {
        fired.fetch_add(1, std::memory_order_relaxed);
        EXPECT_TRUE(map.Contains(42));
      },
      /*max_fires=*/1);

  for (std::uint64_t k = 100; fired.load(std::memory_order_relaxed) == 0 && k < 100000;
       ++k) {
    ASSERT_NE(map.Insert(k, k), InsertResult::kTableFull);
  }
  ASSERT_EQ(fired.load(), 1);
  const auto stats = map.Stats();
  EXPECT_GT(stats.migrations_started, 0) << "the expansion must have gone incremental";
  EXPECT_EQ(stats.expansion_pause_ns.Count(),
            static_cast<std::uint64_t>(stats.expansions));
}

}  // namespace
}  // namespace cuckoo

#endif  // CUCKOO_ENABLE_TEST_POINTS
