#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(RtmTest, StatusConstantsMatchIntelLayout) {
  EXPECT_EQ(kRtmStarted, ~0u);
  EXPECT_EQ(kRtmAbortExplicit, 1u << 0);
  EXPECT_EQ(kRtmAbortRetry, 1u << 1);
  EXPECT_EQ(kRtmAbortConflict, 1u << 2);
  EXPECT_EQ(kRtmAbortCapacity, 1u << 3);
}

TEST(RtmTest, AbortCodeExtraction) {
  unsigned status = kRtmAbortExplicit | (0xffu << 24);
  EXPECT_EQ(RtmAbortCode(status), 0xff);
  EXPECT_EQ(RtmAbortCode(kRtmAbortConflict), 0u);
}

TEST(RtmTest, DetectionIsStableAndProbed) {
  bool a = RtmIsUsable();
  bool b = RtmIsUsable();
  EXPECT_EQ(a, b);
}

TEST(RtmTest, ForceUsableOverridesDetection) {
  RtmForceUsable(0);
  EXPECT_FALSE(RtmIsUsable());
  RtmForceUsable(-1);  // restore autodetection; value depends on host
  bool detected = RtmIsUsable();
  RtmForceUsable(detected ? 1 : 0);
  EXPECT_EQ(RtmIsUsable(), detected);
  RtmForceUsable(-1);
}

TEST(RtmTest, TransactionRoundTripWhenUsable) {
  if (!RtmIsUsable()) {
    GTEST_SKIP() << "host cannot commit RTM transactions";
  }
  // The probe already committed a transaction; do one more with a store.
  volatile int x = 0;
  for (int i = 0; i < 64; ++i) {
    unsigned status = RtmBegin();
    if (status == kRtmStarted) {
      x = 1;
      RtmEnd();
      break;
    }
  }
  EXPECT_TRUE(x == 0 || x == 1);
  EXPECT_FALSE(RtmInTransaction());
}

TEST(RtmTest, NotInTransactionByDefault) { EXPECT_FALSE(RtmInTransaction()); }

}  // namespace
}  // namespace cuckoo
