#include "src/common/per_thread_counter.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(PerThreadCounterTest, StartsAtZero) {
  PerThreadCounter counter;
  EXPECT_EQ(counter.Sum(), 0);
}

TEST(PerThreadCounterTest, SingleThreadAddAndSubtract) {
  PerThreadCounter counter;
  counter.Add(10);
  counter.Add(-3);
  counter.Increment();
  counter.Decrement();
  EXPECT_EQ(counter.Sum(), 7);
}

TEST(PerThreadCounterTest, AggregatesAcrossThreads) {
  PerThreadCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.Sum(), static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(PerThreadCounterTest, MixedIncrementDecrementNetsOut) {
  PerThreadCounter counter;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) {
        if (t % 2 == 0) {
          counter.Increment();
        } else {
          counter.Decrement();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.Sum(), 0);
}

TEST(PerThreadCounterTest, ResetZeroesEverything) {
  PerThreadCounter counter;
  std::thread other([&] { counter.Add(100); });
  other.join();
  counter.Add(5);
  EXPECT_EQ(counter.Sum(), 105);
  counter.Reset();
  EXPECT_EQ(counter.Sum(), 0);
}

}  // namespace
}  // namespace cuckoo
