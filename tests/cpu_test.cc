#include "src/common/cpu.h"

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(CpuTest, CacheLineSizeIs64) { EXPECT_EQ(kCacheLineSize, 64u); }

TEST(CpuTest, RelaxAndPrefetchAreSafe) {
  int data = 0;
  CpuRelax();
  PrefetchRead(&data);
  PrefetchWrite(&data);
  PrefetchRead(nullptr);  // prefetch of any address is a hint, never a fault
  SUCCEED();
}

TEST(CpuTest, NumOnlineCpusPositive) { EXPECT_GE(NumOnlineCpus(), 1); }

TEST(CpuTest, RtmDetectionIsStable) {
  bool a = CpuSupportsRtm();
  bool b = CpuSupportsRtm();
  EXPECT_EQ(a, b);
}

TEST(CpuTest, PinThreadToCpuHandlesAnyIndex) {
  // Pinning wraps modulo the online count, so large indexes are valid.
  EXPECT_TRUE(PinThreadToCpu(0));
  EXPECT_TRUE(PinThreadToCpu(12345));
}

TEST(CpuTest, ThreadIdStableWithinThread) {
  int a = CurrentThreadId();
  int b = CurrentThreadId();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, kMaxThreads);
}

TEST(CpuTest, ThreadIdsDistinctAcrossThreads) {
  constexpr int kThreads = 8;
  std::vector<int> ids(kThreads, -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] { ids[t] = CurrentThreadId(); });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::set<int> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
  for (int id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, kMaxThreads);
  }
}

}  // namespace
}  // namespace cuckoo
