// Epoll server integration: TCP + UNIX listeners, request pipelining,
// multi-get over the wire, concurrent mixed workloads, the max-connection
// cap, idle timeout, backpressure, and graceful shutdown drain.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/kvserver/kv_service.h"
#include "src/kvserver/socket_server.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using namespace std::chrono_literals;

std::size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(EpollServerTest, TcpEndToEnd) {
  KvService service;
  SocketServer::Options opts;
  opts.enable_tcp = true;  // port 0: ephemeral
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.tcp_port(), 0);
  {
    SocketClient client("127.0.0.1", server.tcp_port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.RoundTrip("set hello 0 0 5\r\nworld\r\n", "\r\n"), "STORED\r\n");
    EXPECT_EQ(client.RoundTrip("get hello\r\n", "END\r\n"),
              "VALUE hello 0 5\r\nworld\r\nEND\r\n");
  }
  server.Stop();
  EXPECT_EQ(server.ConnectionsAccepted(), 1u);
}

TEST(EpollServerTest, UnixAndTcpListenersSimultaneously) {
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_dual.sock";
  opts.enable_tcp = true;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  SocketClient unix_client(server.path());
  SocketClient tcp_client("127.0.0.1", server.tcp_port());
  ASSERT_TRUE(unix_client.connected());
  ASSERT_TRUE(tcp_client.connected());
  EXPECT_EQ(unix_client.RoundTrip("set k 0 0 1\r\nu\r\n", "\r\n"), "STORED\r\n");
  EXPECT_EQ(tcp_client.RoundTrip("get k\r\n", "END\r\n"), "VALUE k 0 1\r\nu\r\nEND\r\n");
  server.Stop();
}

TEST(EpollServerTest, PipelinedMultiGetOverTheWire) {
  KvService service;
  SocketServer server(&service, "/tmp/cuckoo_kv_test_pipeline.sock");
  ASSERT_TRUE(server.Start());
  SocketClient client(server.path());
  ASSERT_TRUE(client.connected());
  // One write carrying 16 sets and then a 16-key multi-get; the server must
  // parse the whole pipeline and flush every response.
  std::string pipeline;
  std::string get_line = "get";
  for (int i = 0; i < 16; ++i) {
    std::string key = "p" + std::to_string(i);
    pipeline += "set " + key + " 0 0 2\r\nvv\r\n";
    get_line += " " + key;
  }
  pipeline += get_line + "\r\n";
  ASSERT_TRUE(client.Send(pipeline));
  std::string response;
  while (CountOccurrences(response, "STORED\r\n") < 16 ||
         CountOccurrences(response, "END\r\n") < 1) {
    ASSERT_GT(client.Receive(&response), 0) << response;
  }
  EXPECT_EQ(CountOccurrences(response, "VALUE "), 16u);
  server.Stop();
}

TEST(EpollServerTest, ConcurrentMixedWorkload) {
  // Many pipelined connections issuing mixed multi-get/set/cas/delete — the
  // TSan target for the server's event loops sharing one service.
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_mixed.sock";
  opts.enable_tcp = true;
  opts.event_threads = 2;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  constexpr int kClients = 4;
  constexpr int kRounds = 60;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      const bool tcp = c % 2 == 0;
      SocketClient client = tcp ? SocketClient("127.0.0.1", server.tcp_port())
                                : SocketClient(server.path());
      ASSERT_TRUE(client.connected());
      for (int r = 0; r < kRounds; ++r) {
        std::string k1 = "c" + std::to_string(c) + "_" + std::to_string(r);
        std::string k2 = k1 + "_b";
        // Pipeline: 2 sets, a multi-get, a cas (stale id: EXISTS or
        // NOT_FOUND), a delete, and a get of the deleted key.
        std::string pipeline = "set " + k1 + " 0 0 2\r\naa\r\n" +
                               "set " + k2 + " 0 0 2\r\nbb\r\n" +
                               "gets " + k1 + " " + k2 + "\r\n" +
                               "cas " + k1 + " 0 0 2 999999999\r\ncc\r\n" +
                               "delete " + k2 + "\r\n" +
                               "get " + k2 + "\r\n";
        ASSERT_TRUE(client.Send(pipeline));
        std::string response;
        // Responses: STORED, STORED, VALUE*2+END, EXISTS, DELETED, END.
        while (CountOccurrences(response, "END\r\n") < 2) {
          ASSERT_GT(client.Receive(&response), 0)
              << "round " << r << " got: " << response;
        }
        ASSERT_EQ(CountOccurrences(response, "STORED\r\n"), 2u) << response;
        ASSERT_EQ(CountOccurrences(response, "VALUE "), 2u) << response;
        ASSERT_EQ(CountOccurrences(response, "EXISTS\r\n"), 1u) << response;
        ASSERT_EQ(CountOccurrences(response, "DELETED\r\n"), 1u) << response;
      }
    });
  }
  for (auto& th : clients) {
    th.join();
  }
  server.Stop();
  EXPECT_EQ(service.ItemCount(), static_cast<std::size_t>(kClients * kRounds));
}

TEST(EpollServerTest, MaxConnectionCapRejectsExcessClients) {
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_cap.sock";
  opts.max_connections = 2;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  SocketClient a(server.path());
  SocketClient b(server.path());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  EXPECT_EQ(a.RoundTrip("set k 0 0 1\r\nx\r\n", "\r\n"), "STORED\r\n");
  EXPECT_EQ(b.RoundTrip("get k\r\n", "END\r\n"), "VALUE k 0 1\r\nx\r\nEND\r\n");
  // The third connection is accepted by the kernel but closed by the server.
  SocketClient c(server.path());
  ASSERT_TRUE(c.connected());
  c.Send("get k\r\n");
  std::string response;
  long n;
  while ((n = c.Receive(&response)) > 0) {
  }
  // EOF if the server closed before our request landed, ECONNRESET (-1) if
  // it closed with the request still unread; no bytes served either way.
  EXPECT_LE(n, 0) << "over-cap connection must be closed";
  EXPECT_TRUE(response.empty()) << response;
  EXPECT_GE(server.Stats().rejected_over_limit, 1u);
  server.Stop();
}

TEST(EpollServerTest, IdleConnectionsAreClosed) {
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_idle_to.sock";
  opts.idle_timeout_ms = 100;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  SocketClient silent(server.path());
  ASSERT_TRUE(silent.connected());
  // An active client must NOT be reaped while it keeps talking.
  SocketClient active(server.path());
  ASSERT_TRUE(active.connected());
  // Chatter on the active connection for ~600 ms — several idle windows.
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(active.RoundTrip("get nothing\r\n", "END\r\n"), "END\r\n") << i;
    std::this_thread::sleep_for(30ms);
  }
  // The silent connection must have been reaped by now; a blocking read
  // observes the server-side close as EOF.
  std::string ignored;
  EXPECT_EQ(silent.Receive(&ignored), 0);
  EXPECT_TRUE(ignored.empty()) << ignored;
  // The active connection survived because its traffic kept resetting the
  // idle clock.
  EXPECT_EQ(active.RoundTrip("get nothing\r\n", "END\r\n"), "END\r\n");
  EXPECT_GE(server.Stats().closed_idle, 1u);
  server.Stop();
}

TEST(EpollServerTest, BackpressureDeliversEverythingIntact) {
  // A tiny output cap forces the server to pause reading the pipeline while
  // the client drains; every response must still arrive, in order.
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_bp.sock";
  opts.max_output_buffered = 4096;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  SocketClient client(server.path());
  ASSERT_TRUE(client.connected());
  const std::string value(2000, 'v');
  ASSERT_EQ(client.RoundTrip("set big 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                                 "\r\n",
                             "\r\n"),
            "STORED\r\n");
  constexpr int kGets = 200;  // ~400 KB of responses vs a 4 KB output cap
  std::string pipeline;
  for (int i = 0; i < kGets; ++i) {
    pipeline += "get big\r\n";
  }
  std::string response;
  std::thread reader([&] {
    while (CountOccurrences(response, "END\r\n") < kGets) {
      ASSERT_GT(client.Receive(&response), 0);
    }
  });
  ASSERT_TRUE(client.Send(pipeline));
  reader.join();
  EXPECT_EQ(CountOccurrences(response, "VALUE big 0 2000\r\n"), static_cast<std::size_t>(kGets));
  server.Stop();
}

TEST(EpollServerTest, GracefulShutdownDrainsInFlightResponses) {
  KvService service;
  SocketServer::Options opts;
  opts.unix_path = "/tmp/cuckoo_kv_test_drain.sock";
  opts.drain_timeout_ms = 5000;
  SocketServer server(&service, opts);
  ASSERT_TRUE(server.Start());
  SocketClient client(server.path());
  ASSERT_TRUE(client.connected());
  const std::string value(8000, 'd');
  ASSERT_EQ(client.RoundTrip("set big 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                                 "\r\n",
                             "\r\n"),
            "STORED\r\n");
  constexpr std::uint64_t kGets = 100;
  std::string pipeline;
  for (std::uint64_t i = 0; i < kGets; ++i) {
    pipeline += "get big\r\n";
  }
  std::string response;
  std::thread reader([&] {
    while (client.Receive(&response) > 0) {
    }
  });
  ASSERT_TRUE(client.Send(pipeline));
  // Wait until the service has processed every request, then stop: the drain
  // must deliver all responses already owed before closing.
  auto deadline = std::chrono::steady_clock::now() + 10s;
  while (service.GetHits() < kGets && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(service.GetHits(), kGets);
  server.Stop();
  reader.join();
  EXPECT_EQ(CountOccurrences(response, "END\r\n"), kGets)
      << "graceful stop must flush every response already processed";
}

TEST(EpollServerTest, BrokenProtocolStreamClosesConnection) {
  KvService service;
  SocketServer server(&service, "/tmp/cuckoo_kv_test_broken.sock");
  ASSERT_TRUE(server.Start());
  SocketClient client(server.path());
  ASSERT_TRUE(client.connected());
  // A parseable but un-bufferable byte count cannot be resynced; the server
  // answers ERROR and closes.
  ASSERT_TRUE(client.Send("set k 0 0 99999999999\r\n"));
  std::string response;
  long n;
  while ((n = client.Receive(&response)) > 0) {
  }
  EXPECT_EQ(n, 0);
  EXPECT_EQ(response, "ERROR\r\n");
  server.Stop();
}

TEST(EpollServerTest, LegacyUnixOnlyConstructorStillWorks) {
  KvService service;
  {
    SocketServer server(&service, "/tmp/cuckoo_kv_test_legacy.sock");
    ASSERT_TRUE(server.Start());
    server.Stop();
  }
  SocketServer again(&service, "/tmp/cuckoo_kv_test_legacy.sock");
  EXPECT_TRUE(again.Start());
  again.Stop();
}

}  // namespace
}  // namespace cuckoo
