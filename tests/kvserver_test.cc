// Memcached-protocol codec and KvService end-to-end behaviour, including
// partial-input streaming, pipelining, malformed input, and concurrent
// connections sharing one service.
#include <string>
#include <thread>
#include <vector>

#include "src/cuckoo/simd_probe.h"
#include "src/kvserver/kv_service.h"
#include "src/kvserver/protocol.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

// ---- Parser ---------------------------------------------------------------

TEST(RequestParserTest, ParsesGet) {
  RequestParser parser;
  parser.Feed("get hello\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kGet);
  EXPECT_EQ(req.key, "hello");
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore);
}

TEST(RequestParserTest, ParsesSetWithData) {
  RequestParser parser;
  parser.Feed("set k1 7 0 5\r\nabcde\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kSet);
  EXPECT_EQ(req.key, "k1");
  EXPECT_EQ(req.flags, 7u);
  EXPECT_EQ(req.data, "abcde");
}

TEST(RequestParserTest, HandlesBinaryDataWithEmbeddedCrlf) {
  RequestParser parser;
  std::string payload = "ab\r\ncd";  // length 6, contains CRLF
  parser.Feed("set k 0 0 6\r\n" + payload + "\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.data, payload);
}

TEST(RequestParserTest, ByteAtATimeStreaming) {
  RequestParser parser;
  const std::string stream = "set key 1 2 3\r\nxyz\r\nget key\r\n";
  std::vector<Request> requests;
  Request req;
  for (char c : stream) {
    parser.Feed(std::string_view(&c, 1));
    while (parser.Next(&req) == ParseStatus::kOk) {
      requests.push_back(req);
    }
  }
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].type, RequestType::kSet);
  EXPECT_EQ(requests[0].data, "xyz");
  EXPECT_EQ(requests[1].type, RequestType::kGet);
}

TEST(RequestParserTest, PipelinedRequests) {
  RequestParser parser;
  parser.Feed("get a\r\nget b\r\ndelete c\r\nstats\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "a");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "b");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kDelete);
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kStats);
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore);
}

TEST(RequestParserTest, MalformedLinesAreErrorsNotCrashes) {
  const char* bad[] = {
      "bogus\r\n",
      "get\r\n",               // missing key
      "set k x 0 5\r\n",       // non-numeric flags
      "set k 0 0\r\n",         // missing byte count
      "set k 0 0 99999999999999\r\n",  // absurd length
      " get a\r\n",            // leading space
  };
  for (const char* input : bad) {
    RequestParser parser;
    parser.Feed(input);
    Request req;
    EXPECT_EQ(parser.Next(&req), ParseStatus::kError) << input;
  }
}

TEST(RequestParserTest, ParsesMultiKeyGet) {
  RequestParser parser;
  parser.Feed("get a b c\r\ngets x y\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kGet);
  ASSERT_EQ(req.keys.size(), 3u);
  EXPECT_EQ(req.keys[0], "a");
  EXPECT_EQ(req.keys[1], "b");
  EXPECT_EQ(req.keys[2], "c");
  EXPECT_EQ(req.key, "a");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kGets);
  ASSERT_EQ(req.keys.size(), 2u);
  EXPECT_EQ(req.keys[1], "y");
}

TEST(RequestParserTest, MultiKeyGetRespectsKeyCountCap) {
  RequestParser parser;
  std::string line = "get";
  for (std::size_t i = 0; i <= RequestParser::kMaxGetKeys; ++i) {
    line += " k" + std::to_string(i);  // one key over the cap
  }
  parser.Feed(line + "\r\n");
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
}

// Regression (parser desync): a rejected set/cas command line still announces
// a data block; the parser must swallow it, or the payload bytes get reparsed
// as commands and the connection desyncs.
TEST(RequestParserTest, MalformedSetSwallowsAnnouncedDataBlock) {
  struct Case {
    const char* name;
    std::string line;
  };
  const Case cases[] = {
      {"non-numeric flags", "set k x 0 19\r\n"},
      {"oversize key", "set " + std::string(300, 'k') + " 0 0 19\r\n"},
      {"extra token", "set k 0 0 19 junk\r\n"},
      {"cas with bad id", "cas k 0 0 19 notanumber\r\n"},
  };
  for (const Case& c : cases) {
    RequestParser parser;
    // The 19-byte payload ("delete victim\r\nabcd") spells protocol commands;
    // it must NOT execute. The final \r\n is the block terminator.
    parser.Feed(c.line + "delete victim\r\nabcd\r\n" + "get ok\r\n");
    Request req;
    EXPECT_EQ(parser.Next(&req), ParseStatus::kError) << c.name;
    ASSERT_EQ(parser.Next(&req), ParseStatus::kOk) << c.name;
    EXPECT_EQ(req.type, RequestType::kGet) << c.name;
    EXPECT_EQ(req.key, "ok") << c.name;
  }
}

TEST(RequestParserTest, MalformedSetSwallowsDataArrivingLater) {
  // The announced block may arrive in a later Feed() — swallow must span
  // reads like normal data blocks do.
  RequestParser parser;
  Request req;
  parser.Feed("set k x 0 5\r\n");
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore) << "waiting to swallow the block";
  parser.Feed("abc");
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore);
  parser.Feed("de\r\nget ok\r\n");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "ok");
}

TEST(RequestParserTest, UnswallowableBlockMarksParserBroken) {
  RequestParser parser;
  parser.Feed("set k 0 0 99999999999\r\n");  // parseable but un-bufferable
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  EXPECT_TRUE(parser.Broken()) << "stream cannot be resynced; connection should close";
  parser.Feed("get ok\r\n");
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError) << "broken parser stays broken";
}

TEST(RequestParserTest, RecoversAfterError) {
  RequestParser parser;
  parser.Feed("garbage line\r\nget ok\r\n");
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "ok");
}

TEST(RequestParserTest, BadDataTerminatorIsError) {
  RequestParser parser;
  parser.Feed("set k 0 0 3\r\nabcXX");  // XX instead of \r\n
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
}

TEST(RequestParserTest, OversizedKeyRejected) {
  RequestParser parser;
  parser.Feed("get " + std::string(300, 'k') + "\r\n");
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
}

TEST(RequestParserTest, UnterminatedFloodIsBounded) {
  RequestParser parser;
  // The line-length bound now admits a full multi-get line (64 keys of 250
  // bytes); anything past that with no CRLF is a flood.
  parser.Feed(std::string(40000, 'x'));  // no CRLF ever
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  EXPECT_EQ(parser.BufferedBytes(), 0u) << "flood must be discarded";
}

// ---- Serializers ------------------------------------------------------------

TEST(ProtocolSerializeTest, ValueResponseFormat) {
  std::string out;
  AppendValueResponse("k", 7, "abc", &out);
  AppendEnd(&out);
  EXPECT_EQ(out, "VALUE k 7 3\r\nabc\r\nEND\r\n");
}

TEST(ProtocolSerializeTest, StatLine) {
  std::string out;
  AppendStat("curr_items", 42, &out);
  EXPECT_EQ(out, "STAT curr_items 42\r\n");
}

// ---- Service ---------------------------------------------------------------

TEST(KvServiceTest, SetGetDeleteRoundTrip) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set greeting 3 0 5\r\nhello\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get greeting\r\n", &out);
  EXPECT_EQ(out, "VALUE greeting 3 5\r\nhello\r\nEND\r\n");
  out.clear();
  conn.Drive("delete greeting\r\n", &out);
  EXPECT_EQ(out, "DELETED\r\n");
  out.clear();
  conn.Drive("get greeting\r\n", &out);
  EXPECT_EQ(out, "END\r\n");
  out.clear();
  conn.Drive("delete greeting\r\n", &out);
  EXPECT_EQ(out, "NOT_FOUND\r\n");
}

TEST(KvServiceTest, SetOverwrites) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\na\r\nset k 9 0 2\r\nbc\r\nget k\r\n", &out);
  EXPECT_EQ(out, "STORED\r\nSTORED\r\nVALUE k 9 2\r\nbc\r\nEND\r\n");
  EXPECT_EQ(service.ItemCount(), 1u);
}

TEST(KvServiceTest, StatsReflectTraffic) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set a 0 0 1\r\nx\r\nget a\r\nget missing\r\n", &out);
  out.clear();
  conn.Drive("stats\r\n", &out);
  EXPECT_NE(out.find("STAT curr_items 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_hits 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_misses 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT cmd_set 1\r\n"), std::string::npos);
}

TEST(KvServiceTest, ErrorResponsesForGarbage) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("nonsense\r\nget k\r\n", &out);
  EXPECT_EQ(out, "ERROR\r\nEND\r\n");
}

TEST(KvServiceTest, MultiKeyGetReturnsOneValueBlockPerHit) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set a 1 0 2\r\naa\r\nset c 3 0 2\r\ncc\r\n", &out);
  out.clear();
  conn.Drive("get a missing c\r\n", &out);
  EXPECT_EQ(out, "VALUE a 1 2\r\naa\r\nVALUE c 3 2\r\ncc\r\nEND\r\n");
  EXPECT_EQ(service.GetHits(), 2u);
  EXPECT_EQ(service.GetMisses(), 1u);
}

TEST(KvServiceTest, MultiKeyGetsCarriesCasIds) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n", &out);
  out.clear();
  conn.Drive("gets a b\r\n", &out);
  // Two VALUE lines, each with 5 tokens (VALUE key flags bytes cas).
  ASSERT_EQ(out.substr(0, 6), "VALUE ");
  std::size_t first_line_end = out.find("\r\n");
  std::string first_line = out.substr(0, first_line_end);
  int spaces = 0;
  for (char ch : first_line) {
    spaces += ch == ' ' ? 1 : 0;
  }
  EXPECT_EQ(spaces, 4) << first_line;
  EXPECT_NE(out.find("VALUE b 0 1 "), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 5), "END\r\n");
}

TEST(KvServiceTest, LargeMultiGetBatch) {
  // Drives the batched (prefetch-pipelined) lookup path with more keys than
  // the pipeline depth.
  KvService service;
  auto conn = service.Connect();
  std::string out;
  std::string get_line = "get";
  for (int i = 0; i < 32; ++i) {
    std::string key = "bulk" + std::to_string(i);
    out.clear();
    conn.Drive("set " + key + " 0 0 2\r\nvv\r\n", &out);
    get_line += " " + key;
  }
  out.clear();
  conn.Drive(get_line + "\r\n", &out);
  for (int i = 0; i < 32; ++i) {
    EXPECT_NE(out.find("VALUE bulk" + std::to_string(i) + " 0 2\r\nvv\r\n"),
              std::string::npos);
  }
  EXPECT_EQ(out.substr(out.size() - 5), "END\r\n");
  EXPECT_EQ(service.GetHits(), 32u);
}

// Regression (parser desync, service level): after a malformed set the
// payload must not execute as commands; the very next command on the same
// connection works normally.
TEST(KvServiceTest, MalformedSetDoesNotExecutePayloadAsCommands) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set victim 0 0 1\r\nv\r\n", &out);
  out.clear();
  // Bad flags token; the 19-byte payload would delete `victim` if reparsed.
  conn.Drive("set k BAD 0 19\r\ndelete victim\r\nabcd\r\nget victim\r\n", &out);
  EXPECT_EQ(out, "ERROR\r\nVALUE victim 0 1\r\nv\r\nEND\r\n");
  EXPECT_EQ(service.ItemCount(), 1u) << "payload must not have executed";
}

TEST(KvServiceTest, StatsIncludeTableCounters) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set a 0 0 1\r\nx\r\nget a\r\n", &out);
  out.clear();
  conn.Drive("stats\r\n", &out);
  EXPECT_NE(out.find("STAT table_lookups "), std::string::npos);
  EXPECT_NE(out.find("STAT table_read_retries "), std::string::npos);
  EXPECT_NE(out.find("STAT table_path_searches "), std::string::npos);
  EXPECT_NE(out.find("STAT table_expansions "), std::string::npos);
}

TEST(KvServiceTest, StatsExposeHugepageBytesAndProbeKernel) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("stats\r\n", &out);
  EXPECT_NE(out.find("STAT table_hugepage_bytes "), std::string::npos);
  // probe_kernel is detail-only (a string enum, not a counter).
  EXPECT_EQ(out.find("STAT probe_kernel "), std::string::npos);
  out.clear();
  conn.Drive("stats detail\r\n", &out);
  const std::string want = std::string("STAT probe_kernel ") +
                           simd::ProbeLevelName(simd::ActiveProbeLevel()) + "\r\n";
  EXPECT_NE(out.find(want), std::string::npos) << out;

  std::string metrics;
  service.AppendMetricsText(&metrics);
  EXPECT_NE(metrics.find("cuckoo_table_hugepage_bytes 0\n"), std::string::npos);
  const std::string active = std::string("cuckoo_probe_kernel{level=\"") +
                             simd::ProbeLevelName(simd::ActiveProbeLevel()) + "\"} 1\n";
  EXPECT_NE(metrics.find(active), std::string::npos) << metrics;
  // Exactly one level reports 1.
  std::size_t ones = 0;
  for (std::size_t pos = metrics.find("cuckoo_probe_kernel{"); pos != std::string::npos;
       pos = metrics.find("cuckoo_probe_kernel{", pos + 1)) {
    if (metrics.compare(metrics.find('}', pos), 4, "} 1\n") == 0) {
      ++ones;
    }
  }
  EXPECT_EQ(ones, 1u);
}

TEST(KvServiceTest, HugepageOptionReportsGrantedBytes) {
  KvService::Options o;
  o.initial_bucket_count_log2 = 8;
  o.hugepages = true;
  KvService service(o);
  auto conn = service.Connect();
  std::string out;
  conn.Drive("stats\r\n", &out);
  // The grant is advisory (kernel may decline); the stat must exist either
  // way, and a granted value must be a positive byte count.
  const std::size_t pos = out.find("STAT table_hugepage_bytes ");
  ASSERT_NE(pos, std::string::npos);
}

TEST(KvServiceTest, ExtraStatsHookAppendsServerCounters) {
  KvService service;
  service.AddExtraStatsHook([](std::string* out) { AppendStat("server_custom", 7, out); });
  auto conn = service.Connect();
  std::string out;
  conn.Drive("stats\r\n", &out);
  EXPECT_NE(out.find("STAT server_custom 7\r\n"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 5), "END\r\n");
}

TEST(KvServiceTest, ConcurrentConnectionsShareTheStore) {
  KvService service;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      auto conn = service.Connect();
      std::string out;
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key = "k" + std::to_string(t) + "_" + std::to_string(i);
        std::string value = "v" + std::to_string(i);
        out.clear();
        conn.Drive("set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                       "\r\n",
                   &out);
        EXPECT_EQ(out, "STORED\r\n");
        out.clear();
        conn.Drive("get " + key + "\r\n", &out);
        EXPECT_NE(out.find(value), std::string::npos);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(service.ItemCount(), static_cast<std::size_t>(kThreads * kKeysPerThread));
}

TEST(KvServiceTest, LargeBinaryValues) {
  KvService service;
  auto conn = service.Connect();
  std::string blob(100000, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31);
  }
  std::string out;
  conn.Drive("set blob 0 0 " + std::to_string(blob.size()) + "\r\n" + blob + "\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get blob\r\n", &out);
  const std::string expected_prefix = "VALUE blob 0 " + std::to_string(blob.size()) + "\r\n";
  ASSERT_EQ(out.substr(0, expected_prefix.size()), expected_prefix);
  EXPECT_EQ(out.substr(expected_prefix.size(), blob.size()), blob);
}

}  // namespace
}  // namespace cuckoo
