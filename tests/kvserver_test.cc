// Memcached-protocol codec and KvService end-to-end behaviour, including
// partial-input streaming, pipelining, malformed input, and concurrent
// connections sharing one service.
#include <string>
#include <thread>
#include <vector>

#include "src/kvserver/kv_service.h"
#include "src/kvserver/protocol.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

// ---- Parser ---------------------------------------------------------------

TEST(RequestParserTest, ParsesGet) {
  RequestParser parser;
  parser.Feed("get hello\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kGet);
  EXPECT_EQ(req.key, "hello");
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore);
}

TEST(RequestParserTest, ParsesSetWithData) {
  RequestParser parser;
  parser.Feed("set k1 7 0 5\r\nabcde\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kSet);
  EXPECT_EQ(req.key, "k1");
  EXPECT_EQ(req.flags, 7u);
  EXPECT_EQ(req.data, "abcde");
}

TEST(RequestParserTest, HandlesBinaryDataWithEmbeddedCrlf) {
  RequestParser parser;
  std::string payload = "ab\r\ncd";  // length 6, contains CRLF
  parser.Feed("set k 0 0 6\r\n" + payload + "\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.data, payload);
}

TEST(RequestParserTest, ByteAtATimeStreaming) {
  RequestParser parser;
  const std::string stream = "set key 1 2 3\r\nxyz\r\nget key\r\n";
  std::vector<Request> requests;
  Request req;
  for (char c : stream) {
    parser.Feed(std::string_view(&c, 1));
    while (parser.Next(&req) == ParseStatus::kOk) {
      requests.push_back(req);
    }
  }
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].type, RequestType::kSet);
  EXPECT_EQ(requests[0].data, "xyz");
  EXPECT_EQ(requests[1].type, RequestType::kGet);
}

TEST(RequestParserTest, PipelinedRequests) {
  RequestParser parser;
  parser.Feed("get a\r\nget b\r\ndelete c\r\nstats\r\n");
  Request req;
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "a");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "b");
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kDelete);
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.type, RequestType::kStats);
  EXPECT_EQ(parser.Next(&req), ParseStatus::kNeedMore);
}

TEST(RequestParserTest, MalformedLinesAreErrorsNotCrashes) {
  const char* bad[] = {
      "bogus\r\n",
      "get\r\n",               // missing key
      "get a b\r\n",           // extra token
      "set k x 0 5\r\n",       // non-numeric flags
      "set k 0 0\r\n",         // missing byte count
      "set k 0 0 99999999999999\r\n",  // absurd length
      " get a\r\n",            // leading space
  };
  for (const char* input : bad) {
    RequestParser parser;
    parser.Feed(input);
    Request req;
    EXPECT_EQ(parser.Next(&req), ParseStatus::kError) << input;
  }
}

TEST(RequestParserTest, RecoversAfterError) {
  RequestParser parser;
  parser.Feed("garbage line\r\nget ok\r\n");
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  ASSERT_EQ(parser.Next(&req), ParseStatus::kOk);
  EXPECT_EQ(req.key, "ok");
}

TEST(RequestParserTest, BadDataTerminatorIsError) {
  RequestParser parser;
  parser.Feed("set k 0 0 3\r\nabcXX");  // XX instead of \r\n
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
}

TEST(RequestParserTest, OversizedKeyRejected) {
  RequestParser parser;
  parser.Feed("get " + std::string(300, 'k') + "\r\n");
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
}

TEST(RequestParserTest, UnterminatedFloodIsBounded) {
  RequestParser parser;
  parser.Feed(std::string(10000, 'x'));  // no CRLF ever
  Request req;
  EXPECT_EQ(parser.Next(&req), ParseStatus::kError);
  EXPECT_EQ(parser.BufferedBytes(), 0u) << "flood must be discarded";
}

// ---- Serializers ------------------------------------------------------------

TEST(ProtocolSerializeTest, ValueResponseFormat) {
  std::string out;
  AppendValueResponse("k", 7, "abc", &out);
  AppendEnd(&out);
  EXPECT_EQ(out, "VALUE k 7 3\r\nabc\r\nEND\r\n");
}

TEST(ProtocolSerializeTest, StatLine) {
  std::string out;
  AppendStat("curr_items", 42, &out);
  EXPECT_EQ(out, "STAT curr_items 42\r\n");
}

// ---- Service ---------------------------------------------------------------

TEST(KvServiceTest, SetGetDeleteRoundTrip) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set greeting 3 0 5\r\nhello\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get greeting\r\n", &out);
  EXPECT_EQ(out, "VALUE greeting 3 5\r\nhello\r\nEND\r\n");
  out.clear();
  conn.Drive("delete greeting\r\n", &out);
  EXPECT_EQ(out, "DELETED\r\n");
  out.clear();
  conn.Drive("get greeting\r\n", &out);
  EXPECT_EQ(out, "END\r\n");
  out.clear();
  conn.Drive("delete greeting\r\n", &out);
  EXPECT_EQ(out, "NOT_FOUND\r\n");
}

TEST(KvServiceTest, SetOverwrites) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set k 0 0 1\r\na\r\nset k 9 0 2\r\nbc\r\nget k\r\n", &out);
  EXPECT_EQ(out, "STORED\r\nSTORED\r\nVALUE k 9 2\r\nbc\r\nEND\r\n");
  EXPECT_EQ(service.ItemCount(), 1u);
}

TEST(KvServiceTest, StatsReflectTraffic) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("set a 0 0 1\r\nx\r\nget a\r\nget missing\r\n", &out);
  out.clear();
  conn.Drive("stats\r\n", &out);
  EXPECT_NE(out.find("STAT curr_items 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_hits 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT get_misses 1\r\n"), std::string::npos);
  EXPECT_NE(out.find("STAT cmd_set 1\r\n"), std::string::npos);
}

TEST(KvServiceTest, ErrorResponsesForGarbage) {
  KvService service;
  auto conn = service.Connect();
  std::string out;
  conn.Drive("nonsense\r\nget k\r\n", &out);
  EXPECT_EQ(out, "ERROR\r\nEND\r\n");
}

TEST(KvServiceTest, ConcurrentConnectionsShareTheStore) {
  KvService service;
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, t] {
      auto conn = service.Connect();
      std::string out;
      for (int i = 0; i < kKeysPerThread; ++i) {
        std::string key = "k" + std::to_string(t) + "_" + std::to_string(i);
        std::string value = "v" + std::to_string(i);
        out.clear();
        conn.Drive("set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" + value +
                       "\r\n",
                   &out);
        EXPECT_EQ(out, "STORED\r\n");
        out.clear();
        conn.Drive("get " + key + "\r\n", &out);
        EXPECT_NE(out.find(value), std::string::npos);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(service.ItemCount(), static_cast<std::size_t>(kThreads * kKeysPerThread));
}

TEST(KvServiceTest, LargeBinaryValues) {
  KvService service;
  auto conn = service.Connect();
  std::string blob(100000, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31);
  }
  std::string out;
  conn.Drive("set blob 0 0 " + std::to_string(blob.size()) + "\r\n" + blob + "\r\n", &out);
  EXPECT_EQ(out, "STORED\r\n");
  out.clear();
  conn.Drive("get blob\r\n", &out);
  const std::string expected_prefix = "VALUE blob 0 " + std::to_string(blob.size()) + "\r\n";
  ASSERT_EQ(out.substr(0, expected_prefix.size()), expected_prefix);
  EXPECT_EQ(out.substr(expected_prefix.size(), blob.size()), blob);
}

}  // namespace
}  // namespace cuckoo
