#include "src/baselines/global_lock_map.h"

#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/baselines/chaining_map.h"
#include "src/baselines/dense_map.h"
#include "src/common/spinlock.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

template <typename MapT>
void ExerciseConcurrently(MapT& map) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key + 7), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
    ASSERT_EQ(v, k + 7);
  }
}

TEST(GlobalLockMapTest, ChainingUnderMutex) {
  GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, std::mutex> map;
  ExerciseConcurrently(map);
}

TEST(GlobalLockMapTest, ChainingUnderSpinLock) {
  GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, SpinLock> map;
  ExerciseConcurrently(map);
}

TEST(GlobalLockMapTest, DenseUnderMutex) {
  GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, std::mutex> map;
  ExerciseConcurrently(map);
}

TEST(GlobalLockMapTest, DenseUnderTunedElision) {
  RtmForceUsable(0);
  GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, TunedElided<SpinLock>> map;
  ExerciseConcurrently(map);
  auto s = map.global_lock().stats().Read();
  EXPECT_GT(s.commits + s.fallback_acquisitions, 0u);
  RtmForceUsable(-1);
}

TEST(GlobalLockMapTest, ChainingUnderGlibcElision) {
  RtmForceUsable(0);
  GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, GlibcElided<SpinLock>> map;
  ExerciseConcurrently(map);
  RtmForceUsable(-1);
}

TEST(GlobalLockMapTest, ForwardsConstructorArguments) {
  GlobalLockMap<ChainingMap<std::uint64_t, std::uint64_t>, std::mutex> map(1 << 12);
  EXPECT_EQ(map.inner().BucketCount(), 1u << 12);
}

TEST(GlobalLockMapTest, SequentialSemanticsPreserved) {
  GlobalLockMap<DenseMap<std::uint64_t, std::uint64_t>, SpinLock> map;
  EXPECT_EQ(map.Insert(1, 1), InsertResult::kOk);
  EXPECT_EQ(map.Insert(1, 2), InsertResult::kKeyExists);
  EXPECT_EQ(map.Upsert(1, 3), InsertResult::kKeyExists);
  std::uint64_t v;
  ASSERT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 3u);
  EXPECT_TRUE(map.Update(1, 4));
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Contains(1));
  EXPECT_GT(map.HeapBytes(), 0u);
}

}  // namespace
}  // namespace cuckoo
