// Concurrency tests for CuckooMap: multiple writers, readers racing with
// displacements (the §4.2 false-miss hazard), erase/insert churn, and
// expansion under load. Runs are modest so the suite stays fast on a 1-core
// host; every scenario is still a real interleaving test because threads
// preempt mid-operation.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/cuckoo/cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

TEST(CuckooMapConcurrentTest, DisjointWritersAllLand) {
  Map::Options o;
  o.initial_bucket_count_log2 = 12;
  Map map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        ASSERT_EQ(map.Insert(key, key + 1), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
    ASSERT_EQ(v, k + 1);
  }
}

TEST(CuckooMapConcurrentTest, RacingInsertersOnSameKeysExactlyOneWins) {
  Map::Options o;
  o.initial_bucket_count_log2 = 10;
  Map map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 10000;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &wins, t] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (map.Insert(k, static_cast<std::uint64_t>(t)) == InsertResult::kOk) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(wins.load(), kKeys) << "each key must be inserted exactly once";
  EXPECT_EQ(map.Size(), kKeys);
  // Winner's value must be one of the contenders' ids (no torn writes).
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.Find(k, &v));
    ASSERT_LT(v, static_cast<std::uint64_t>(kThreads));
  }
}

TEST(CuckooMapConcurrentTest, ReadersNeverMissDuringDisplacements) {
  // The core §4.2 property: items being cuckoo-displaced must always be
  // visible to readers. Prefill near capacity, then hammer inserts (forcing
  // displacements of resident keys) while readers assert the prefilled keys
  // never disappear.
  Map::Options o;
  o.initial_bucket_count_log2 = 11;  // 16K slots
  o.auto_expand = false;
  Map map(o);
  constexpr std::uint64_t kResident = 12000;  // ~73% full
  for (std::uint64_t i = 0; i < kResident; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&map, &stop, &misses, r] {
      std::uint64_t key = static_cast<std::uint64_t>(r);
      std::uint64_t v;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!map.Find(key % kResident, &v) || v != key % kResident) {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
        ++key;
      }
    });
  }
  std::thread writer([&map] {
    // Push occupancy toward the limit: lots of displacement traffic.
    for (std::uint64_t i = kResident; i < kResident + 3000; ++i) {
      map.Insert(i, i);
    }
    // Churn: erase and reinsert the same high keys repeatedly.
    for (int round = 0; round < 10; ++round) {
      for (std::uint64_t i = kResident; i < kResident + 3000; ++i) {
        map.Erase(i);
      }
      for (std::uint64_t i = kResident; i < kResident + 3000; ++i) {
        map.Insert(i, i);
      }
    }
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(misses.load(), 0u) << "resident keys must never be unobservable";
}

TEST(CuckooMapConcurrentTest, ConcurrentUpsertsConverge) {
  Map::Options o;
  o.initial_bucket_count_log2 = 8;
  Map map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map] {
      for (int round = 0; round < 50; ++round) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          map.Upsert(k, k * 10);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kKeys);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(map.Find(k, &v));
    ASSERT_EQ(v, k * 10);
  }
}

TEST(CuckooMapConcurrentTest, EraseInsertChurnKeepsSizeConsistent) {
  Map::Options o;
  o.initial_bucket_count_log2 = 10;
  Map map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeysPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * kKeysPerThread;
      for (int round = 0; round < 20; ++round) {
        for (std::uint64_t i = 0; i < kKeysPerThread; ++i) {
          ASSERT_EQ(map.Insert(base + i, round), InsertResult::kOk);
        }
        for (std::uint64_t i = 0; i < kKeysPerThread; ++i) {
          ASSERT_TRUE(map.Erase(base + i));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), 0u);
}

TEST(CuckooMapConcurrentTest, ExpansionUnderConcurrentWriters) {
  Map::Options o;
  o.initial_bucket_count_log2 = 6;  // tiny: many expansions under load
  Map map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        ASSERT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
  EXPECT_GT(map.Stats().expansions, 0);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < kPerThread * kThreads; ++k) {
    ASSERT_TRUE(map.Find(k, &v)) << k;
    ASSERT_EQ(v, k);
  }
}

TEST(CuckooMapConcurrentTest, ReadersSurviveExpansion) {
  Map::Options o;
  o.initial_bucket_count_log2 = 8;
  Map map(o);
  constexpr std::uint64_t kResident = 1500;
  for (std::uint64_t i = 0; i < kResident; ++i) {
    map.Insert(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread reader([&] {
    std::uint64_t key = 0;
    std::uint64_t v;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!map.Find(key % kResident, &v)) {
        misses.fetch_add(1);
      }
      ++key;
    }
  });
  // Force several expansions while the reader runs.
  for (std::uint64_t i = kResident; i < 200000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(misses.load(), 0u);
  EXPECT_GT(map.Stats().expansions, 3);
}

TEST(CuckooMapConcurrentTest, ReadersNeverObserveTornValues) {
  // Writers always store self-consistent values (low half == high half);
  // optimistic readers must never see a mix of two writes — this is exactly
  // what the version validation protects.
  Map::Options o;
  o.initial_bucket_count_log2 = 6;
  o.auto_expand = false;
  Map map(o);
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    map.Insert(k, 0);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&map, &stop, w] {
      std::uint64_t x = static_cast<std::uint64_t>(w) << 20;
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t stamped = (x << 32) | (x & 0xffffffffu);
        map.Update(x % kKeys, stamped);
        ++x;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&map, &stop, &torn] {
      std::uint64_t k = 0;
      std::uint64_t v;
      while (!stop.load(std::memory_order_relaxed)) {
        if (map.Find(k % kKeys, &v)) {
          if ((v >> 32) != (v & 0xffffffffu)) {
            torn.fetch_add(1);
          }
        }
        ++k;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& th : writers) {
    th.join();
  }
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(torn.load(), 0u);
}

TEST(CuckooMapConcurrentTest, MixedOperationTorture) {
  Map::Options o;
  o.initial_bucket_count_log2 = 9;
  Map map(o);
  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, &failed, t] {
      Xorshift128Plus rng(1000 + t);
      const std::uint64_t base = static_cast<std::uint64_t>(t) << 32;
      std::uint64_t next = 0;
      std::uint64_t v;
      for (int i = 0; i < 40000; ++i) {
        switch (rng.NextBelow(4)) {
          case 0:
            map.Insert(base + (next++), 1);
            break;
          case 1:
            map.Find(base + rng.NextBelow(next + 1), &v);
            break;
          case 2:
            map.Erase(base + rng.NextBelow(next + 1));
            break;
          case 3:
            map.Upsert(base + rng.NextBelow(next + 1), 2);
            break;
        }
      }
      // Own-partition keys written by this thread must never be visible to
      // failures in other partitions.
      if (map.Size() > 400000) {
        failed.store(true);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace cuckoo
