#include "src/baselines/dense_map.h"

#include <cstdint>
#include <unordered_map>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(DenseMapTest, EmptyBasics) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map.Size(), 0u);
  std::uint64_t v;
  EXPECT_FALSE(map.Find(0, &v));
  EXPECT_FALSE(map.Erase(0));
  EXPECT_FALSE(map.Update(0, 1));
}

TEST(DenseMapTest, InsertFindUpdateErase) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map.Insert(42, 1), InsertResult::kOk);
  EXPECT_EQ(map.Insert(42, 2), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(42, &v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(map.Update(42, 5));
  map.Find(42, &v);
  EXPECT_EQ(v, 5u);
  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Contains(42));
}

TEST(DenseMapTest, MaintainsHalfLoadFactor) {
  DenseMap<std::uint64_t, std::uint64_t> map(32);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
    ASSERT_LE(map.LoadFactor(), 0.5) << "dense_hash_map-style 0.5 cap";
  }
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
  }
}

TEST(DenseMapTest, TombstoneSlotsAreReused) {
  DenseMap<std::uint64_t, std::uint64_t> map(64);
  map.Insert(1, 1);
  std::size_t cap = map.Capacity();
  // Churn one key far more times than the capacity: without tombstone reuse
  // or cleanup the probe chains / capacity would explode.
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(map.Erase(1));
    ASSERT_EQ(map.Insert(1, static_cast<std::uint64_t>(i)), InsertResult::kOk);
  }
  EXPECT_LE(map.Capacity(), cap * 4);
  EXPECT_EQ(map.Size(), 1u);
}

TEST(DenseMapTest, EraseInsertDifferentKeySameSlotChain) {
  DenseMap<std::uint64_t, std::uint64_t> map(64);
  for (std::uint64_t i = 0; i < 20; ++i) {
    map.Insert(i, i);
  }
  for (std::uint64_t i = 0; i < 20; i += 2) {
    map.Erase(i);
  }
  // Keys behind tombstones must stay findable.
  std::uint64_t v;
  for (std::uint64_t i = 1; i < 20; i += 2) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
  }
  for (std::uint64_t i = 0; i < 20; i += 2) {
    ASSERT_FALSE(map.Find(i, &v)) << i;
  }
}

TEST(DenseMapTest, ModelEquivalence) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  Xorshift128Plus rng(11);
  for (int i = 0; i < 60000; ++i) {
    std::uint64_t key = rng.NextBelow(1500);
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(4)) {
      case 0: {
        bool fresh = model.emplace(key, value).second;
        ASSERT_EQ(map.Insert(key, value) == InsertResult::kOk, fresh);
        break;
      }
      case 1: {
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 2:
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      case 3: {
        std::uint64_t v;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
  for (const auto& [key, value] : model) {
    std::uint64_t v;
    ASSERT_TRUE(map.Find(key, &v));
    ASSERT_EQ(v, value);
  }
}

TEST(DenseMapTest, ForEachVisitsLiveEntriesOnly) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 50; ++i) {
    map.Insert(i, i);
  }
  for (std::uint64_t i = 0; i < 50; i += 2) {
    map.Erase(i);
  }
  std::size_t count = 0;
  map.ForEach([&](std::uint64_t k, std::uint64_t) {
    EXPECT_EQ(k % 2, 1u);
    ++count;
  });
  EXPECT_EQ(count, 25u);
}

TEST(DenseMapTest, ClearResets) {
  DenseMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 100; ++i) {
    map.Insert(i, i);
  }
  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Insert(7, 7), InsertResult::kOk);
}

TEST(DenseMapTest, SingleArrayMemoryAccounting) {
  DenseMap<std::uint64_t, std::uint64_t> map(1024);
  // 1024 slots * (16-byte pair + 1-byte state).
  EXPECT_EQ(map.HeapBytes(), 1024u * 17u);
}

}  // namespace
}  // namespace cuckoo
