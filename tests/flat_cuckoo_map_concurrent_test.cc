// Multi-threaded behaviour of FlatCuckooMap: Algorithm 2 ("lock later")
// must support concurrent writers through any global lock type, and
// optimistic readers must never observe torn or missing data.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/cuckoo/flat_cuckoo_map.h"
#include "src/htm/elided_lock.h"
#include "src/htm/rtm.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

FlatOptions ConcurrentOpts() {
  FlatOptions o;
  o.bucket_count_log2 = 13;  // 32K slots at B=4
  o.search_mode = SearchMode::kBfs;
  o.lock_after_discovery = true;
  o.prefetch = true;
  return o;
}

template <typename MapT>
void RunDisjointWriters(MapT& map, std::uint64_t per_thread) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, per_thread, t] {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key * 2), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), per_thread * kThreads);
  std::uint64_t v;
  for (std::uint64_t k = 0; k < per_thread * kThreads; ++k) {
    EXPECT_TRUE(map.Find(k, &v)) << k;
    EXPECT_EQ(v, k * 2);
  }
}

TEST(FlatConcurrentTest, MultiWriterWithSpinLock) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(ConcurrentOpts());
  RunDisjointWriters(map, 6000);
}

TEST(FlatConcurrentTest, MultiWriterWithMutex) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, std::mutex> map(ConcurrentOpts());
  RunDisjointWriters(map, 6000);
}

TEST(FlatConcurrentTest, MultiWriterWithTunedElision) {
  RtmForceUsable(0);
  FlatCuckooMap<std::uint64_t, std::uint64_t, TunedElided<SpinLock>> map(ConcurrentOpts());
  RunDisjointWriters(map, 6000);
  auto s = map.global_lock().stats().Read();
  EXPECT_GT(s.commits + s.fallback_acquisitions, 0u);
  RtmForceUsable(-1);
}

TEST(FlatConcurrentTest, MultiWriterWithGlibcElision) {
  RtmForceUsable(0);
  FlatCuckooMap<std::uint64_t, std::uint64_t, GlibcElided<SpinLock>> map(ConcurrentOpts());
  RunDisjointWriters(map, 6000);
  RtmForceUsable(-1);
}

TEST(FlatConcurrentTest, Algorithm1AlsoSafeWithRealLock) {
  // Lock-first (Algorithm 1) holds the lock across search+execute: slower,
  // but must still be correct with concurrent writers.
  FlatOptions o = ConcurrentOpts();
  o.lock_after_discovery = false;
  o.search_mode = SearchMode::kDfs;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(o);
  RunDisjointWriters(map, 4000);
}

TEST(FlatConcurrentTest, ReadersNeverMissResidentKeysDuringInserts) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(ConcurrentOpts());
  constexpr std::uint64_t kResident = 24000;  // ~73% of 32K slots
  for (std::uint64_t i = 0; i < kResident; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t key = static_cast<std::uint64_t>(r);
      std::uint64_t v;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!map.Find(key % kResident, &v) || v != key % kResident) {
          misses.fetch_add(1);
        }
        ++key;
      }
    });
  }
  std::thread writer([&map] {
    // Push occupancy up, forcing displacement of resident keys.
    for (std::uint64_t i = kResident; i < kResident + 6000; ++i) {
      map.Insert(i, i);
    }
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_EQ(misses.load(), 0u);
}

TEST(FlatConcurrentTest, PathInvalidationsAreObservedAndRecovered) {
  // With many writers and a small table, some unlocked path discoveries go
  // stale and the Algorithm 2 retry loop must recover without losing inserts.
  FlatOptions o;
  o.bucket_count_log2 = 9;  // 2K slots: heavy collision pressure
  o.search_mode = SearchMode::kBfs;
  o.lock_after_discovery = true;
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(o);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 450;  // ~88% aggregate fill
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        std::uint64_t key = i * kThreads + static_cast<std::uint64_t>(t);
        EXPECT_EQ(map.Insert(key, key), InsertResult::kOk);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), kPerThread * kThreads);
}

TEST(FlatConcurrentTest, ConcurrentErasesAndInsertsOnSharedKeys) {
  FlatCuckooMap<std::uint64_t, std::uint64_t, SpinLock> map(ConcurrentOpts());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * 5000;
      for (int round = 0; round < 15; ++round) {
        for (std::uint64_t i = 0; i < 5000; ++i) {
          EXPECT_EQ(map.Insert(base + i, i), InsertResult::kOk);
        }
        for (std::uint64_t i = 0; i < 5000; ++i) {
          EXPECT_TRUE(map.Erase(base + i));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), 0u);
}

}  // namespace
}  // namespace cuckoo
