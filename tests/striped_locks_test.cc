#include "src/common/striped_locks.h"

#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(LockStripesTest, DefaultStripeCount) {
  LockStripes stripes;
  EXPECT_EQ(stripes.stripe_count(), LockStripes::kDefaultStripeCount);
}

TEST(LockStripesTest, StripeForWrapsPowerOfTwo) {
  LockStripes stripes(8);
  EXPECT_EQ(stripes.StripeFor(0), 0u);
  EXPECT_EQ(stripes.StripeFor(7), 7u);
  EXPECT_EQ(stripes.StripeFor(8), 0u);
  EXPECT_EQ(stripes.StripeFor(12345), 12345u % 8);
}

TEST(LockStripesTest, LockPairSameStripeAcquiresOnce) {
  LockStripes stripes(4);
  // Buckets 1 and 5 map to the same stripe (1).
  stripes.LockPair(1, 5);
  EXPECT_TRUE(stripes.Stripe(1).IsLocked());
  // A same-stripe pair must not deadlock on double-acquire and must release
  // cleanly with a single unlock.
  stripes.UnlockPair(1, 5);
  EXPECT_FALSE(stripes.Stripe(1).IsLocked());
  EXPECT_EQ(stripes.Stripe(1).AwaitVersion(), 1u) << "one bump for one modify-unlock";
}

TEST(LockStripesTest, LockPairDistinctStripes) {
  LockStripes stripes(8);
  stripes.LockPair(2, 5);
  EXPECT_TRUE(stripes.Stripe(2).IsLocked());
  EXPECT_TRUE(stripes.Stripe(5).IsLocked());
  stripes.UnlockPair(2, 5);
  EXPECT_FALSE(stripes.Stripe(2).IsLocked());
  EXPECT_FALSE(stripes.Stripe(5).IsLocked());
}

TEST(LockStripesTest, UnlockPairNoModifyKeepsVersions) {
  LockStripes stripes(8);
  std::uint64_t v2 = stripes.Stripe(2).AwaitVersion();
  std::uint64_t v5 = stripes.Stripe(5).AwaitVersion();
  stripes.LockPair(2, 5);
  stripes.UnlockPairNoModify(2, 5);
  EXPECT_EQ(stripes.Stripe(2).AwaitVersion(), v2);
  EXPECT_EQ(stripes.Stripe(5).AwaitVersion(), v5);
}

TEST(LockStripesTest, LockAllBlocksEverything) {
  LockStripes stripes(16);
  stripes.LockAll();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(stripes.Stripe(i).IsLocked());
  }
  stripes.UnlockAll();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(stripes.Stripe(i).IsLocked());
  }
}

TEST(LockStripesTest, RandomPairsNeverDeadlock) {
  // §4.4: pair locks are ordered by stripe id; hammer random (possibly equal)
  // pairs from several threads — any ordering bug shows up as a hang or a
  // corrupted counter.
  LockStripes stripes(32);
  long counters[32] = {};
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xorshift128Plus rng(1000 + t);
      for (int i = 0; i < kIters; ++i) {
        std::size_t b1 = rng.NextBelow(1024);
        std::size_t b2 = rng.NextBelow(1024);
        PairGuard guard(stripes, b1, b2);
        ++counters[stripes.StripeFor(b1)];
        if (stripes.StripeFor(b2) != stripes.StripeFor(b1)) {
          ++counters[stripes.StripeFor(b2)];
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  long total = 0;
  for (long c : counters) {
    total += c;
  }
  EXPECT_GT(total, static_cast<long>(kThreads) * kIters);  // >= one bump per iter
}

TEST(PairGuardTest, ReleaseNoModifySkipsBump) {
  LockStripes stripes(8);
  {
    PairGuard guard(stripes, 1, 2);
    guard.ReleaseNoModify();
  }
  EXPECT_EQ(stripes.Stripe(1).AwaitVersion(), 0u);
  EXPECT_EQ(stripes.Stripe(2).AwaitVersion(), 0u);
}

TEST(PairGuardTest, DestructorBumpsVersions) {
  LockStripes stripes(8);
  {
    PairGuard guard(stripes, 1, 2);
  }
  EXPECT_EQ(stripes.Stripe(1).AwaitVersion(), 1u);
  EXPECT_EQ(stripes.Stripe(2).AwaitVersion(), 1u);
}

TEST(AllGuardTest, LocksAndReleasesEverything) {
  LockStripes stripes(8);
  {
    AllGuard guard(stripes);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(stripes.Stripe(i).IsLocked());
    }
  }
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(stripes.Stripe(i).IsLocked());
    EXPECT_EQ(stripes.Stripe(i).AwaitVersion(), 1u);
  }
}

}  // namespace
}  // namespace cuckoo
