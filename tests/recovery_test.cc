// Recovery pipeline: newest valid snapshot + WAL replay, fallback across
// corrupt snapshots, GC-gap refusal, and torn-tail tolerance — exercised
// through the real DurabilityManager write path.
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/kvserver/kv_service.h"
#include "src/persist/durability.h"
#include "src/persist/recovery.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"

namespace cuckoo {
namespace persist {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_recover_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

std::string Drive(KvService* service, const std::string& input) {
  auto conn = service->Connect();
  std::string out;
  conn.Drive(input, &out);
  return out;
}

void SetKey(KvService* service, const std::string& key, const std::string& value) {
  ASSERT_EQ(Drive(service, "set " + key + " 0 0 " + std::to_string(value.size()) +
                               "\r\n" + value + "\r\n"),
            "STORED\r\n");
}

std::string GetValue(KvService* service, const std::string& key) {
  const std::string response = Drive(service, "get " + key + "\r\n");
  const std::size_t data_start = response.find("\r\n");
  if (response.rfind("VALUE ", 0) != 0) {
    return "";
  }
  return response.substr(data_start + 2,
                         response.rfind("\r\nEND\r\n") - data_start - 2);
}

bool Recover(const std::string& dir, KvService* service, RecoveryStats* stats) {
  std::string error;
  const bool ok = RecoverKvService(dir, service, stats, &error);
  if (!ok) {
    EXPECT_FALSE(error.empty());
  }
  return ok;
}

TEST(RecoveryTest, EmptyDirRecoversToEmptyService) {
  TempDir dir;
  KvService service;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &service, &stats));
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.wal_records_applied, 0u);
  EXPECT_EQ(stats.next_lsn, 1u);
  EXPECT_EQ(service.ItemCount(), 0u);
}

TEST(RecoveryTest, WalOnlyRoundTripThroughDurabilityManager) {
  TempDir dir;
  {
    KvService service;
    DurabilityManager durability(&service);
    DurabilityOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    for (int i = 0; i < 100; ++i) {
      SetKey(&service, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    ASSERT_EQ(Drive(&service, "delete key50\r\n"), "DELETED\r\n");
    durability.Stop();
  }
  KvService restored;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &restored, &stats));
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.wal_records_applied, 101u);
  EXPECT_EQ(stats.next_lsn, 102u);
  EXPECT_EQ(restored.ItemCount(), 99u);
  EXPECT_EQ(GetValue(&restored, "key7"), "value7");
  EXPECT_EQ(GetValue(&restored, "key50"), "");  // the delete replayed too
}

TEST(RecoveryTest, SnapshotPlusWalTailAndCasContinuity) {
  TempDir dir;
  std::string cas_before;
  {
    KvService service;
    DurabilityManager durability(&service);
    DurabilityOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    for (int i = 0; i < 200; ++i) {
      SetKey(&service, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    ASSERT_TRUE(durability.TriggerSnapshot());
    ASSERT_TRUE(durability.WaitForSnapshot());
    EXPECT_EQ(durability.SnapshotsCompleted(), 1u);
    // Mutations past the snapshot live only in the WAL tail.
    for (int i = 200; i < 260; ++i) {
      SetKey(&service, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    SetKey(&service, "key0", "rewritten");
    ASSERT_EQ(Drive(&service, "delete key199\r\n"), "DELETED\r\n");
    cas_before = Drive(&service, "gets key123\r\n");
    durability.Stop();
  }

  KvService restored;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &restored, &stats));
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshot_entries, 200u);
  EXPECT_GT(stats.wal_records_applied, 0u);
  EXPECT_EQ(restored.ItemCount(), 260u - 1u);
  EXPECT_EQ(GetValue(&restored, "key0"), "rewritten");
  EXPECT_EQ(GetValue(&restored, "key259"), "value259");
  EXPECT_EQ(GetValue(&restored, "key199"), "");
  // CAS ids (client-visible tokens) survive recovery bit-for-bit.
  EXPECT_EQ(Drive(&restored, "gets key123\r\n"), cas_before);
}

TEST(RecoveryTest, CorruptNewestSnapshotFallsBackToOlderPlusWal) {
  TempDir dir;
  {
    KvService service;
    DurabilityManager durability(&service);
    DurabilityOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    for (int i = 0; i < 100; ++i) {
      SetKey(&service, "key" + std::to_string(i), "v1-" + std::to_string(i));
    }
    ASSERT_TRUE(durability.TriggerSnapshot());
    ASSERT_TRUE(durability.WaitForSnapshot());
    for (int i = 0; i < 100; ++i) {
      SetKey(&service, "key" + std::to_string(i), "v2-" + std::to_string(i));
    }
    SetKey(&service, "extra", "tail");
    ASSERT_TRUE(durability.TriggerSnapshot());
    ASSERT_TRUE(durability.WaitForSnapshot());
    durability.Stop();
  }
  auto snapshots = ListSnapshots(dir.path);
  ASSERT_EQ(snapshots.size(), 2u);
  // Truncate the NEWEST snapshot mid-file: recovery must fall back to the
  // older one and make up the difference from the (un-GC'd) WAL.
  const std::string newest = dir.path + "/" + snapshots.back().second;
  ASSERT_TRUE(TruncateFile(newest, FileSize(newest) / 2));

  KvService restored;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &restored, &stats));
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(stats.snapshots_skipped, 1u);
  EXPECT_EQ(stats.snapshot_path, dir.path + "/" + snapshots.front().second);
  EXPECT_EQ(restored.ItemCount(), 101u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(GetValue(&restored, "key" + std::to_string(i)), "v2-" + std::to_string(i));
  }
  EXPECT_EQ(GetValue(&restored, "extra"), "tail");
}

TEST(RecoveryTest, GcGapBetweenSnapshotAndWalFailsLoudly) {
  TempDir dir;
  {
    // A WAL whose oldest surviving segment starts at LSN 21, with no
    // snapshot covering 1..20 — e.g. the snapshot was deleted by hand.
    WriteAheadLog wal;
    WalOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(wal.Open(options, 21));
    wal.WaitDurable(wal.Append(WalRecord::Type::kSet, "k", "v", 0, 0, 1));
    wal.Shutdown();
  }
  KvService service;
  RecoveryStats stats;
  std::string error;
  EXPECT_FALSE(RecoverKvService(dir.path, &service, &stats, &error));
  EXPECT_NE(error.find("gap"), std::string::npos) << error;
}

TEST(RecoveryTest, TornWalTailIsTruncatedAndStateIsConsistent) {
  TempDir dir;
  {
    KvService service;
    DurabilityManager durability(&service);
    DurabilityOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    for (int i = 0; i < 30; ++i) {
      SetKey(&service, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    durability.Stop();
  }
  std::vector<std::string> segments = ListFilesWithPrefix(dir.path, "wal-");
  ASSERT_FALSE(segments.empty());
  {
    AppendFile f;
    ASSERT_TRUE(f.Open(dir.path + "/" + segments.back(), /*truncate=*/false));
    ASSERT_TRUE(f.Append(std::string("\x01\x02half-a-record", 15)));
  }

  KvService restored;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &restored, &stats));
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_EQ(stats.wal_records_applied, 30u);
  EXPECT_EQ(restored.ItemCount(), 30u);

  // The torn bytes were truncated away on disk, so a SECOND recovery sees a
  // clean log and converges to the identical state (replay idempotence).
  KvService again;
  RecoveryStats stats2;
  ASSERT_TRUE(Recover(dir.path, &again, &stats2));
  EXPECT_FALSE(stats2.truncated_tail);
  EXPECT_EQ(stats2.wal_records_applied, 30u);
  EXPECT_EQ(again.ItemCount(), 30u);
  EXPECT_EQ(GetValue(&again, "key29"), "value29");
}

TEST(RecoveryTest, SnapshotAheadOfDurableWalTailDoesNotWedgeRestarts) {
  TempDir dir;
  DurabilityOptions options;
  options.dir = dir.path;
  options.fsync_policy = FsyncPolicy::kAlways;
  // Run 1: 20 durable WAL records (LSNs 1..20), no snapshot.
  {
    KvService service;
    DurabilityManager durability(&service);
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    for (int i = 0; i < 20; ++i) {
      SetKey(&service, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    durability.Stop();
  }
  // Forge the crash shape the fix targets: a snapshot PUBLISHED at LSN 25,
  // ahead of the durable WAL tail — what a crash right after the snapshot
  // rename but before the post-snapshot WAL flush leaves behind under
  // fsync=everysec/none.
  {
    KvService donor;
    for (int i = 0; i < 20; ++i) {
      SetKey(&donor, "key" + std::to_string(i), "value" + std::to_string(i));
    }
    SnapshotWriteStats stats;
    std::string error;
    ASSERT_TRUE(WriteKvSnapshot(donor, dir.path, [] { return std::uint64_t{25}; }, 8,
                                &stats, &error))
        << error;
  }
  // Restart 2: recovery loads the snapshot (LSN 25), tolerates the WAL
  // ending at 20, and the manager opens a fresh segment at LSN 26.
  {
    KvService service;
    DurabilityManager durability(&service);
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    EXPECT_EQ(durability.recovery().next_lsn, 26u);
    SetKey(&service, "after-crash", "v");  // LSN 26, lands in wal-26
    durability.Stop();
  }
  // Restart 3 (the regression): the dir now holds wal-1 (ending at 20) AND
  // wal-26 — replay must anchor at wal-26 instead of refusing to start on
  // the 21..25 inter-segment hole, forever.
  {
    KvService service;
    DurabilityManager durability(&service);
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    EXPECT_EQ(service.ItemCount(), 21u);
    EXPECT_EQ(GetValue(&service, "after-crash"), "v");
    EXPECT_EQ(GetValue(&service, "key7"), "value7");
    durability.Stop();
  }
}

TEST(RecoveryTest, WalIoErrorRefusesAcksInsteadOfLyingAboutDurability) {
  TempDir dir;
  KvService service;
  DurabilityManager durability(&service);
  DurabilityOptions options;
  options.dir = dir.path;
  options.fsync_policy = FsyncPolicy::kAlways;
  std::string error;
  ASSERT_TRUE(durability.Start(options, &error)) << error;
  SetKey(&service, "before", "v");  // healthy log: STORED

  durability.wal_for_testing().InjectIoErrorForTesting();
  EXPECT_EQ(Drive(&service, "set broken 0 0 1\r\nx\r\n"),
            "SERVER_ERROR wal io error\r\n");
  // Sticky: later writes keep being refused rather than silently acked with
  // durability disabled.
  EXPECT_EQ(Drive(&service, "set broken2 0 0 1\r\nx\r\n"),
            "SERVER_ERROR wal io error\r\n");
  EXPECT_EQ(Drive(&service, "delete before\r\n"), "SERVER_ERROR wal io error\r\n");
  EXPECT_TRUE(durability.wal().InErrorState());
  // Reads still serve from memory, and the operator can see the state.
  const std::string stats_out = Drive(&service, "stats\r\n");
  EXPECT_NE(stats_out.find("STAT wal_io_error 1\r\n"), std::string::npos) << stats_out;
  durability.Stop();
}

TEST(RecoveryTest, RestartingTheManagerChainsLsnsAcrossRuns) {
  TempDir dir;
  for (int run = 0; run < 3; ++run) {
    KvService service;
    DurabilityManager durability(&service);
    DurabilityOptions options;
    options.dir = dir.path;
    options.fsync_policy = FsyncPolicy::kAlways;
    std::string error;
    ASSERT_TRUE(durability.Start(options, &error)) << error;
    EXPECT_EQ(service.ItemCount(), static_cast<std::size_t>(run * 10));
    for (int i = 0; i < 10; ++i) {
      SetKey(&service, "run" + std::to_string(run) + "-" + std::to_string(i), "v");
    }
    EXPECT_EQ(durability.recovery().next_lsn,
              static_cast<std::uint64_t>(run * 10 + 1));
    durability.Stop();
  }
  KvService final_state;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(dir.path, &final_state, &stats));
  EXPECT_EQ(final_state.ItemCount(), 30u);
  EXPECT_EQ(stats.next_lsn, 31u);
}

}  // namespace
}  // namespace persist
}  // namespace cuckoo
