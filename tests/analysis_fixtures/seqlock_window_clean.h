// Clean fixture for check_seqlock.py rule `seqlock-window`: the canonical
// optimistic-read shape from docs/memory_model.md, which must produce ZERO
// findings — tear-tolerant relaxed loads between AwaitVersion() and the
// acquire fence + LoadRaw() validation, and nothing that blocks or allocates.
//
// This file is NOT compiled — it exists to prove the checker stays quiet.
#ifndef TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_CLEAN_H_
#define TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_CLEAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fixture {

template <typename Stripes, typename Core, typename K, typename V>
bool CanonicalOptimisticFind(Stripes& stripes, const Core& core,
                             std::size_t b1, std::size_t b2, const K& key,
                             V* out) {
  const std::size_t s1 = stripes.StripeFor(b1);
  const std::size_t s2 = stripes.StripeFor(b2);
  for (;;) {
    const std::uint64_t v1 = stripes.Stripe(s1).AwaitVersion();
    const std::uint64_t v2 = (s2 == s1) ? v1 : stripes.Stripe(s2).AwaitVersion();
    // Mentioning MutexLock or push_back in a comment inside the window is
    // fine — the checker strips comments before matching.
    bool found = false;
    V value{};
    for (std::size_t bucket : {b1, b2}) {
      for (int s = 0; s < Core::kSlotsPerBucket; ++s) {
        if (core.LoadKey(bucket, s) == key) {
          value = core.LoadValue(bucket, s);
          found = true;
          break;
        }
      }
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (stripes.Stripe(s1).LoadRaw() == v1 && stripes.Stripe(s2).LoadRaw() == v2) {
      if (found) {
        *out = value;
      }
      return found;
    }
  }
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_CLEAN_H_
