// Seeded violations for check_seqlock.py rule `seqlock-window`: blocking or
// allocating between a version read (AwaitVersion) and its validating re-read
// (LoadRaw) can deadlock against the writer that must bump the version, and
// makes the bounded optimistic-retry loop unbounded.
//
// This file is NOT compiled — it exists to prove the checker fires.
#ifndef TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_VIOLATION_H_
#define TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_VIOLATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

template <typename Stripes, typename Core, typename K>
bool AllocatingReader(Stripes& stripes, const Core& core, std::size_t b,
                      std::vector<K>* seen) {
  const std::uint64_t v = stripes.Stripe(0).AwaitVersion();
  // Container growth can allocate, and allocation can block (or worse,
  // re-enter a table that holds the same stripe).
  // EXPECT-VIOLATION(seqlock-window)
  seen->push_back(core.LoadKey(b, 0));
  std::atomic_thread_fence(std::memory_order_acquire);
  return stripes.Stripe(0).LoadRaw() == v;
}

template <typename Stripes, typename MutexT>
bool GuardInWindow(Stripes& stripes, MutexT& mu) {
  const std::uint64_t v = stripes.Stripe(0).AwaitVersion();
  // Taking any lock inside the window deadlocks if its holder is the writer
  // waiting to bump this very version.
  // EXPECT-VIOLATION(seqlock-window)
  MutexLock lk(mu);
  return stripes.Stripe(0).LoadRaw() == v;
}

template <typename Stripes, typename MutexT>
bool BareLockInWindow(Stripes& stripes, MutexT& mu) {
  const std::uint64_t v = stripes.Stripe(0).AwaitVersion();
  // Same hazard, spelled as a bare member lock() call.
  // EXPECT-VIOLATION(seqlock-window)
  mu.lock();
  const bool ok = stripes.Stripe(0).LoadRaw() == v;
  mu.unlock();
  return ok;
}

template <typename Stripes>
std::uint64_t LeakyVersion(Stripes& stripes) {
  // A version read that is never re-validated before the function returns:
  // the caller has no way to know whether the copied data was torn.
  // EXPECT-VIOLATION(seqlock-window)
  return stripes.Stripe(0).AwaitVersion();
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_SEQLOCK_WINDOW_VIOLATION_H_
