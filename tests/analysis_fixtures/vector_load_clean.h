// Clean fixture for check_seqlock.py rule `raw-vector-load`: everything in
// here must produce ZERO findings, proving the checker does not false-positive
// on the sanctioned snapshot-then-probe pattern, on non-load vector
// intrinsics, or on comments/strings that merely mention a load intrinsic.
//
// This file is NOT compiled — it exists to prove the checker stays quiet.
#ifndef TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_CLEAN_H_
#define TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_CLEAN_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fixture {

// The sanctioned pattern: the core's LoadTagsVector() accessor produces a
// private TagGroup copy (element-wise relaxed under TSan, memcpy otherwise),
// and the simd_probe.h kernels only ever see that copy. A comment spelling
// out _mm_loadu_si128 must not trip the rule: comments are stripped first.
template <typename Core, int B>
bool CleanVectorProbe(const Core& core, std::size_t bucket, std::uint8_t tag) {
  const auto group = core.LoadTagsVector(bucket);
  return simd::MatchTagMask<B>(group, tag) != 0;
}

// Non-load vector intrinsics on already-private data are fine; the rule only
// targets the memory-reading forms.
inline std::uint32_t CleanRegisterOnlyMath(__m128i a, __m128i b) {
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
}

inline std::string DiagnosticText() {
  // String literals are stripped too: this must not be reported.
  return std::string("use LoadTagsVector, never _mm_load_si128, on live tags");
}

// Identifiers that merely contain "load" must not match: the rule anchors on
// the _mm/_mm256/_mm512 intrinsic prefix.
template <typename T>
T CleanLookalikes(const T& t) {
  return t.preload_table(t.loadu_count);
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_CLEAN_H_
