// Clean fixture for check_seqlock.py rule `memory-order`: only orders from
// the default allowlist {relaxed, acquire, release} appear, so this file must
// produce ZERO findings. A seq_cst inside a comment or string must not trip
// the rule either: std::memory_order_seq_cst stays legal to *talk* about.
//
// This file is NOT compiled — it exists to prove the checker stays quiet.
#ifndef TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_CLEAN_H_
#define TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_CLEAN_H_

#include <atomic>
#include <cstdint>

namespace fixture {

inline void Publish(std::atomic<std::uint64_t>* a, std::uint64_t v) {
  a->store(v, std::memory_order_release);
}

inline std::uint64_t Consume(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_acquire);
}

inline std::uint64_t Stat(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

inline const char* WhySeqCstIsBanned() {
  return "std::memory_order_seq_cst costs a full fence on ARM for ordering "
         "this codebase never relies on";
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_CLEAN_H_
