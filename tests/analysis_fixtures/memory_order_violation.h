// Seeded violations for check_seqlock.py rule `memory-order`. This file is
// not listed in tools/analysis/memory_order_allowlist.json, so it gets the
// default allowlist {relaxed, acquire, release}; the seq_cst and acq_rel uses
// below must each be reported.
//
// This file is NOT compiled — it exists to prove the checker fires.
#ifndef TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_VIOLATION_H_
#define TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_VIOLATION_H_

#include <atomic>
#include <cstdint>

namespace fixture {

inline std::uint64_t SeqCstLoad(const std::atomic<std::uint64_t>& a) {
  // seq_cst is never needed in this codebase (the lone exception, the signal
  // fence in cpu.cc, is explicitly allowlisted) — new uses must be justified.
  // EXPECT-VIOLATION(memory-order)
  return a.load(std::memory_order_seq_cst);
}

inline void AcqRelBump(std::atomic<std::uint64_t>* a) {
  // acq_rel is allowlisted only where a CAS publishes and consumes in one
  // step (histogram.h, wal.cc, metrics_http.cc) — not here.
  // EXPECT-VIOLATION(memory-order)
  a->fetch_add(1, std::memory_order_acq_rel);
}

inline std::uint64_t BuiltinSeqCst(std::uint64_t* p) {
  // GCC builtin spelling of the same thing must be caught too.
  // EXPECT-VIOLATION(memory-order)
  return __atomic_load_n(p, __ATOMIC_SEQ_CST);
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_MEMORY_ORDER_VIOLATION_H_
