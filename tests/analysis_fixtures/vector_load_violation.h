// Seeded violations for check_seqlock.py rule `raw-vector-load`.
// Each EXPECT-VIOLATION(rule) marker applies to the next line; the fixture
// self-test (check_seqlock.py --fixtures) fails unless every marked line is
// reported and nothing else is.
//
// This file is NOT compiled — it exists to prove the checker fires.
#ifndef TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_VIOLATION_H_
#define TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_VIOLATION_H_

#include <cstddef>
#include <cstdint>

namespace fixture {

// A 16-byte vector read straight off the live (concurrently mutated) tag
// array: unannotatable race, and the bytes may be reloaded from the array by
// later instructions. Must snapshot via core.LoadTagsVector() instead.
template <typename Core>
std::uint32_t LeakyVectorProbe(const Core& core, std::size_t bucket, std::uint8_t tag) {
  // EXPECT-VIOLATION(raw-vector-load)
  const __m128i group = _mm_loadu_si128(reinterpret_cast<const __m128i*>(core.TagsPtr(bucket)));
  const __m128i needle = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(group, needle)));
}

// Aligned and half-width forms are the same hazard.
template <typename Core>
std::uint64_t LeakyAlignedLoad(const Core& core, std::size_t bucket) {
  // EXPECT-VIOLATION(raw-vector-load)
  const __m128i a = _mm_load_si128(reinterpret_cast<const __m128i*>(core.TagsPtr(bucket)));
  // EXPECT-VIOLATION(raw-vector-load)
  const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(core.TagsPtr(bucket)));
  return static_cast<std::uint64_t>(_mm_movemask_epi8(a)) |
         (static_cast<std::uint64_t>(_mm_movemask_epi8(b)) << 32);
}

// 256-bit AVX2 form through a raw pointer.
inline __m256i LeakyWideLoad(const void* live_tags) {
  // EXPECT-VIOLATION(raw-vector-load)
  return _mm256_loadu_si256(static_cast<const __m256i*>(live_tags));
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_VECTOR_LOAD_VIOLATION_H_
