// Compile-fail smoke test for the -Wthread-safety leg of tools/lint.sh.
//
// Without FIXTURE_FIXED defined, main() returns while still holding `mu` —
// Clang Thread Safety Analysis must reject this translation unit under
// `-Wthread-safety -Werror` (expected diagnostic: mutex 'mu' is still held
// at the end of function). With FIXTURE_FIXED defined, the same file must
// compile cleanly, proving the failure comes from the seeded bug and not a
// broken toolchain or include path.
//
// Driven by tests/run_tsa_compile_fail.sh (ctest label: static); skipped
// when no clang++ with -Wthread-safety support is available.

#include "src/common/mutex.h"

namespace {

cuckoo::Mutex mu;
int counter GUARDED_BY(mu) = 0;

}  // namespace

int main() {
  mu.Lock();
  ++counter;
  const int out = counter;
#ifdef FIXTURE_FIXED
  mu.Unlock();
#endif
  return out;
}
