// Seeded violations for check_seqlock.py rule `raw-bucket-access`.
// Each EXPECT-VIOLATION(rule) marker applies to the next line; the fixture
// self-test (check_seqlock.py --fixtures) fails unless every marked line is
// reported and nothing else is.
//
// This file is NOT compiled — it exists to prove the checker fires.
#ifndef TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_VIOLATION_H_
#define TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_VIOLATION_H_

#include <cstddef>

namespace fixture {

template <typename Core, typename K>
bool LeakyFind(const Core& core, std::size_t bucket, int slot, const K& key) {
  // Direct member read of the seqlock-protected key array: a torn-read
  // hazard on the optimistic path. Must go through core.LoadKey().
  // EXPECT-VIOLATION(raw-bucket-access)
  return core.buckets[bucket].keys[slot] == key;
}

template <typename Core, typename V>
void LeakyWrite(Core* core, std::size_t bucket, int slot, const V& value) {
  // Direct member store through a pointer (`->values[`): same hazard on the
  // writer side. Must go through core->WriteValue().
  // EXPECT-VIOLATION(raw-bucket-access)
  core->buckets[bucket].values[slot] = value;
}

// Function named like a table_core.h accessor — the allowlist is keyed on
// (file == table_core.h AND function name), so the name alone must NOT
// exempt it in any other file.
template <typename Core, typename K>
K LoadKey(const Core& core, std::size_t bucket, int slot) {
  // EXPECT-VIOLATION(raw-bucket-access)
  return core.buckets[bucket].keys[slot];
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_VIOLATION_H_
