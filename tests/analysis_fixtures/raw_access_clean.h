// Clean fixture for check_seqlock.py rule `raw-bucket-access`: everything in
// here must produce ZERO findings, proving the checker does not false-positive
// on accessor calls, comments, or string literals.
//
// This file is NOT compiled — it exists to prove the checker stays quiet.
#ifndef TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_CLEAN_H_
#define TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_CLEAN_H_

#include <cstddef>
#include <string>

namespace fixture {

// A comment mentioning buckets[b].keys[s] and buckets[b].values[s] must not
// trip the rule: the checker strips comments before matching (table_core.h's
// own header comment contains the same spelling).
template <typename Core, typename K>
bool CleanFind(const Core& core, std::size_t bucket, int slot, const K& key) {
  return core.LoadKey(bucket, slot) == key;
}

template <typename Core, typename V>
void CleanWrite(Core* core, std::size_t bucket, int slot, const V& value) {
  core->WriteValue(bucket, slot, value);
}

inline std::string DiagnosticText() {
  // String literals are stripped too: this ".keys[" must not be reported.
  return std::string("direct .keys[i] and .values[j] access is forbidden");
}

// Unrelated members that merely *contain* the substring are fine: the rule
// matches whole member names (keys/values), not monkeys_ or keyslots.
template <typename T>
int CleanLookalikes(const T& t, std::size_t i) {
  return t.monkeys[i] + t.keyslot[i];
}

}  // namespace fixture

#endif  // TESTS_ANALYSIS_FIXTURES_RAW_ACCESS_CLEAN_H_
