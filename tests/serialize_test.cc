#include "src/cuckoo/serialize.h"

#include <array>
#include <cstdint>
#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

Map::Options SmallOpts() {
  Map::Options o;
  o.initial_bucket_count_log2 = 8;
  return o;
}

TEST(SerializeTest, EmptyMapRoundTrip) {
  Map map(SmallOpts());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, stream), 0);
  EXPECT_EQ(loaded.Size(), 0u);
}

TEST(SerializeTest, FullRoundTripPreservesEverything) {
  Map map(SmallOpts());
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    map.Insert(i, i * 3 + 1);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));

  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, stream), static_cast<std::int64_t>(kN));
  EXPECT_EQ(loaded.Size(), kN);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(loaded.Find(i, &v)) << i;
    ASSERT_EQ(v, i * 3 + 1);
  }
}

TEST(SerializeTest, LoadIntoNonEmptyMapUpserts) {
  Map source(SmallOpts());
  source.Insert(1, 100);
  source.Insert(2, 200);
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(source, stream));

  Map target(SmallOpts());
  target.Insert(1, 999);  // will be overwritten
  target.Insert(3, 300);  // untouched
  EXPECT_EQ(LoadSnapshot(target, stream), 2);
  std::uint64_t v;
  target.Find(1, &v);
  EXPECT_EQ(v, 100u);
  target.Find(3, &v);
  EXPECT_EQ(v, 300u);
  EXPECT_EQ(target.Size(), 3u);
}

TEST(SerializeTest, SnapshotIsPortableAcrossTableShapes) {
  // Different initial size AND associativity: records go through the public
  // API, so the snapshot does not encode table geometry.
  Map map(SmallOpts());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    map.Insert(i, ~i);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));

  CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
            std::equal_to<std::uint64_t>, 4>::Options o4;
  o4.initial_bucket_count_log2 = 4;
  CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
            std::equal_to<std::uint64_t>, 4>
      loaded(o4);
  EXPECT_EQ(LoadSnapshot(loaded, stream), 5000);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(loaded.Find(i, &v));
    ASSERT_EQ(v, ~i);
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream stream;
  stream << "NOTASNAPSHOT and some garbage bytes...............";
  Map map(SmallOpts());
  EXPECT_EQ(LoadSnapshot(map, stream), -1);
  EXPECT_EQ(map.Size(), 0u);
}

TEST(SerializeTest, RejectsSizeMismatch) {
  CuckooMap<std::uint32_t, std::uint32_t>::Options o32;
  o32.initial_bucket_count_log2 = 4;
  CuckooMap<std::uint32_t, std::uint32_t> narrow(o32);
  narrow.Insert(1, 1);
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(narrow, stream));

  Map wide(SmallOpts());  // 8-byte keys: must refuse a 4-byte snapshot
  EXPECT_EQ(LoadSnapshot(wide, stream), -1);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  Map map(SmallOpts());
  for (std::uint64_t i = 0; i < 100; ++i) {
    map.Insert(i, i);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, truncated), -1);
}

TEST(SerializeTest, RejectsForgedHugeCountWithoutAllocating) {
  // A corrupt/malicious header must not drive Reserve() into a multi-GB
  // allocation: the count is bounded by the bytes actually in the stream.
  internal::SnapshotHeader header{};
  std::memcpy(header.magic, internal::kSnapshotMagic, sizeof(header.magic));
  header.version = internal::kSnapshotVersion;
  header.flags = 0;
  header.key_size = sizeof(std::uint64_t);
  header.value_size = sizeof(std::uint64_t);
  header.count = ~std::uint64_t{0} / 16;  // absurd: would be exabytes of records
  std::stringstream stream;
  stream.write(reinterpret_cast<const char*>(&header), sizeof(header));
  const std::uint64_t one[2] = {1, 2};  // a single real record follows
  stream.write(reinterpret_cast<const char*>(one), sizeof(one));

  Map map(SmallOpts());
  EXPECT_EQ(LoadSnapshot(map, stream), -1);
  EXPECT_EQ(map.Size(), 0u);
  // The table must not have been expanded toward the forged count.
  EXPECT_LT(map.SlotCount(), std::size_t{1} << 20);
}

TEST(SerializeTest, RejectsV1MagicAndUnknownVersion) {
  Map map(SmallOpts());
  map.Insert(1, 1);
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  std::string bytes = stream.str();

  {
    // Old "CKSNAP1" files must not be readable by the v2 loader.
    std::string v1 = bytes;
    v1[6] = '1';
    std::stringstream forged(v1);
    Map loaded(SmallOpts());
    EXPECT_EQ(LoadSnapshot(loaded, forged), -1);
  }
  {
    // Same magic but a future version field: refuse rather than misread.
    std::string future = bytes;
    internal::SnapshotHeader header{};
    std::memcpy(&header, future.data(), sizeof(header));
    header.version = internal::kSnapshotVersion + 1;
    std::memcpy(future.data(), &header, sizeof(header));
    std::stringstream forged(future);
    Map loaded(SmallOpts());
    EXPECT_EQ(LoadSnapshot(loaded, forged), -1);
  }
  {
    // Reserved flags must be zero in v2.
    std::string flagged = bytes;
    internal::SnapshotHeader header{};
    std::memcpy(&header, flagged.data(), sizeof(header));
    header.flags = 0x1;
    std::memcpy(flagged.data(), &header, sizeof(header));
    std::stringstream forged(flagged);
    Map loaded(SmallOpts());
    EXPECT_EQ(LoadSnapshot(loaded, forged), -1);
  }
}

TEST(SerializeTest, HeaderCarriesMagicAndVersion) {
  Map map(SmallOpts());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  internal::SnapshotHeader header{};
  stream.read(reinterpret_cast<char*>(&header), sizeof(header));
  EXPECT_EQ(std::memcmp(header.magic, "CKSNAP2", 8), 0);
  EXPECT_EQ(header.version, internal::kSnapshotVersion);
  EXPECT_EQ(header.flags, 0u);
}

TEST(SerializeTest, WideValueTypes) {
  using Wide = std::array<char, 40>;
  CuckooMap<std::uint64_t, Wide>::Options o;
  o.initial_bucket_count_log2 = 6;
  CuckooMap<std::uint64_t, Wide> map(o);
  for (std::uint64_t i = 0; i < 500; ++i) {
    Wide w{};
    std::snprintf(w.data(), w.size(), "payload-%llu", static_cast<unsigned long long>(i));
    map.Insert(i, w);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  CuckooMap<std::uint64_t, Wide> loaded(o);
  EXPECT_EQ(LoadSnapshot(loaded, stream), 500);
  Wide out{};
  ASSERT_TRUE(loaded.Find(123, &out));
  EXPECT_STREQ(out.data(), "payload-123");
}

}  // namespace
}  // namespace cuckoo
