#include "src/cuckoo/serialize.h"

#include <array>
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

Map::Options SmallOpts() {
  Map::Options o;
  o.initial_bucket_count_log2 = 8;
  return o;
}

TEST(SerializeTest, EmptyMapRoundTrip) {
  Map map(SmallOpts());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, stream), 0);
  EXPECT_EQ(loaded.Size(), 0u);
}

TEST(SerializeTest, FullRoundTripPreservesEverything) {
  Map map(SmallOpts());
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    map.Insert(i, i * 3 + 1);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));

  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, stream), static_cast<std::int64_t>(kN));
  EXPECT_EQ(loaded.Size(), kN);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(loaded.Find(i, &v)) << i;
    ASSERT_EQ(v, i * 3 + 1);
  }
}

TEST(SerializeTest, LoadIntoNonEmptyMapUpserts) {
  Map source(SmallOpts());
  source.Insert(1, 100);
  source.Insert(2, 200);
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(source, stream));

  Map target(SmallOpts());
  target.Insert(1, 999);  // will be overwritten
  target.Insert(3, 300);  // untouched
  EXPECT_EQ(LoadSnapshot(target, stream), 2);
  std::uint64_t v;
  target.Find(1, &v);
  EXPECT_EQ(v, 100u);
  target.Find(3, &v);
  EXPECT_EQ(v, 300u);
  EXPECT_EQ(target.Size(), 3u);
}

TEST(SerializeTest, SnapshotIsPortableAcrossTableShapes) {
  // Different initial size AND associativity: records go through the public
  // API, so the snapshot does not encode table geometry.
  Map map(SmallOpts());
  for (std::uint64_t i = 0; i < 5000; ++i) {
    map.Insert(i, ~i);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));

  CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
            std::equal_to<std::uint64_t>, 4>::Options o4;
  o4.initial_bucket_count_log2 = 4;
  CuckooMap<std::uint64_t, std::uint64_t, DefaultHash<std::uint64_t>,
            std::equal_to<std::uint64_t>, 4>
      loaded(o4);
  EXPECT_EQ(LoadSnapshot(loaded, stream), 5000);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(loaded.Find(i, &v));
    ASSERT_EQ(v, ~i);
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream stream;
  stream << "NOTASNAPSHOT and some garbage bytes...............";
  Map map(SmallOpts());
  EXPECT_EQ(LoadSnapshot(map, stream), -1);
  EXPECT_EQ(map.Size(), 0u);
}

TEST(SerializeTest, RejectsSizeMismatch) {
  CuckooMap<std::uint32_t, std::uint32_t>::Options o32;
  o32.initial_bucket_count_log2 = 4;
  CuckooMap<std::uint32_t, std::uint32_t> narrow(o32);
  narrow.Insert(1, 1);
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(narrow, stream));

  Map wide(SmallOpts());  // 8-byte keys: must refuse a 4-byte snapshot
  EXPECT_EQ(LoadSnapshot(wide, stream), -1);
}

TEST(SerializeTest, RejectsTruncatedStream) {
  Map map(SmallOpts());
  for (std::uint64_t i = 0; i < 100; ++i) {
    map.Insert(i, i);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  Map loaded(SmallOpts());
  EXPECT_EQ(LoadSnapshot(loaded, truncated), -1);
}

TEST(SerializeTest, WideValueTypes) {
  using Wide = std::array<char, 40>;
  CuckooMap<std::uint64_t, Wide>::Options o;
  o.initial_bucket_count_log2 = 6;
  CuckooMap<std::uint64_t, Wide> map(o);
  for (std::uint64_t i = 0; i < 500; ++i) {
    Wide w{};
    std::snprintf(w.data(), w.size(), "payload-%llu", static_cast<unsigned long long>(i));
    map.Insert(i, w);
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(map, stream));
  CuckooMap<std::uint64_t, Wide> loaded(o);
  EXPECT_EQ(LoadSnapshot(loaded, stream), 500);
  Wide out{};
  ASSERT_TRUE(loaded.Find(123, &out));
  EXPECT_STREQ(out.data(), "payload-123");
}

}  // namespace
}  // namespace cuckoo
