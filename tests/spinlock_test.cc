#include "src/common/spinlock.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/rw_spinlock.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(SpinLockTest, BasicLockUnlock) {
  SpinLock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  long counter = 0;  // deliberately non-atomic: the lock must protect it
  constexpr int kThreads = 4;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLockTest, PaddedVariantIsCacheLineSized) {
  EXPECT_EQ(sizeof(PaddedSpinLock), kCacheLineSize);
}

TEST(RwSpinLockTest, WriterExcludesWriters) {
  RwSpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(RwSpinLockTest, ReadersShareTheLock) {
  RwSpinLock lock;
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        lock.LockShared();
        int now = concurrent_readers.fetch_add(1) + 1;
        int prev = max_concurrent.load();
        while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
        }
        concurrent_readers.fetch_sub(1);
        lock.UnlockShared();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // On a single-core host overlap is scheduler-dependent, but the counter
  // must never be corrupted and may legitimately exceed 1.
  EXPECT_GE(max_concurrent.load(), 1);
  EXPECT_EQ(concurrent_readers.load(), 0);
}

TEST(RwSpinLockTest, WriterExcludesReaders) {
  RwSpinLock lock;
  // value is written as two halves; readers must never observe a mixed state.
  volatile std::uint32_t lo = 0;
  volatile std::uint32_t hi = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    for (std::uint32_t i = 1; i < 20000; ++i) {
      lock.Lock();
      lo = i;
      hi = i;
      lock.Unlock();
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      lock.LockShared();
      std::uint32_t a = lo;
      std::uint32_t b = hi;
      lock.UnlockShared();
      if (a != b) {
        torn.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace cuckoo
