// GeneralCuckooMap (§7 generality extension): arbitrary-type keys/values,
// locked reads, move-based displacement, and expansion with live non-trivial
// elements.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/cuckoo/general_cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using StringMap = GeneralCuckooMap<std::string, std::string>;

TEST(GeneralCuckooMapTest, StringRoundTrip) {
  StringMap map;
  EXPECT_EQ(map.Insert(std::string("hello"), std::string("world")), InsertResult::kOk);
  EXPECT_EQ(map.Insert(std::string("hello"), std::string("again")), InsertResult::kKeyExists);
  std::string v;
  ASSERT_TRUE(map.Find("hello", &v));
  EXPECT_EQ(v, "world");
  EXPECT_TRUE(map.Update("hello", "mundo"));
  map.Find("hello", &v);
  EXPECT_EQ(v, "mundo");
  EXPECT_TRUE(map.Erase("hello"));
  EXPECT_FALSE(map.Contains("hello"));
  EXPECT_EQ(map.Size(), 0u);
}

TEST(GeneralCuckooMapTest, WithValueBatchAgreesWithSingularLookups) {
  StringMap map;
  constexpr std::size_t kN = 1000;
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert("key" + std::to_string(i), "value" + std::to_string(i)),
              InsertResult::kOk);
  }
  // Batch sizes around the pipeline depth (8) exercise lead-in/lead-out.
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{8}, std::size_t{9},
                            std::size_t{64}}) {
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < batch; ++i) {
      // Every other key is a miss.
      keys.push_back(i % 2 == 0 ? "key" + std::to_string(i) : "absent" + std::to_string(i));
    }
    std::vector<std::string> got(batch);
    std::vector<bool> hit(batch, false);
    std::size_t hits =
        map.WithValueBatch(keys.data(), keys.size(), [&](std::size_t i, const std::string& v) {
          got[i] = v;
          hit[i] = true;
        });
    EXPECT_EQ(hits, (batch + 1) / 2);
    for (std::size_t i = 0; i < batch; ++i) {
      std::string single;
      ASSERT_EQ(map.Find(keys[i], &single), static_cast<bool>(hit[i])) << keys[i];
      if (hit[i]) {
        EXPECT_EQ(got[i], single);
      }
    }
  }
}

TEST(GeneralCuckooMapTest, WithValueBatchResidentKeysNeverMissedDuringInserts) {
  StringMap map;
  constexpr std::size_t kResident = 512;
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < kResident; ++i) {
    keys.push_back("resident" + std::to_string(i));
    ASSERT_EQ(map.Insert(keys.back(), "v"), InsertResult::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::size_t hits = map.WithValueBatch(keys.data(), keys.size(),
                                            [](std::size_t, const std::string&) {});
      misses.fetch_add(kResident - hits, std::memory_order_relaxed);
    }
  });
  // Writer churns other keys, forcing displacements and expansions.
  for (std::size_t i = 0; i < 20000; ++i) {
    map.Upsert("churn" + std::to_string(i % 4096), std::string(16, 'x'));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(misses.load(), 0u) << "resident keys must never be missed by batched reads";
}

TEST(GeneralCuckooMapTest, LongStringsSurviveDisplacementAndExpansion) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 4;  // tiny: forces displacements + expansions
  StringMap map(o);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    std::string key = "key-" + std::to_string(i) + std::string(i % 50, 'k');
    std::string value = "value-" + std::to_string(i) + std::string(i % 100, 'v');
    ASSERT_EQ(map.Insert(std::move(key), std::move(value)), InsertResult::kOk) << i;
  }
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kN));
  EXPECT_GT(map.Stats().expansions, 5);
  for (int i = 0; i < kN; ++i) {
    std::string key = "key-" + std::to_string(i) + std::string(i % 50, 'k');
    std::string expected = "value-" + std::to_string(i) + std::string(i % 100, 'v');
    std::string v;
    ASSERT_TRUE(map.Find(key, &v)) << i;
    ASSERT_EQ(v, expected) << i;
  }
}

TEST(GeneralCuckooMapTest, MoveOnlyValues) {
  GeneralCuckooMap<std::uint64_t, std::unique_ptr<std::string>> map;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(map.Insert(i, std::make_unique<std::string>("v" + std::to_string(i))),
              InsertResult::kOk);
  }
  // Find() would require copying; WithValue reads in place.
  int checked = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    bool hit = map.WithValue(i, [&](const std::unique_ptr<std::string>& p) {
      EXPECT_EQ(*p, "v" + std::to_string(i));
      ++checked;
    });
    ASSERT_TRUE(hit) << i;
  }
  EXPECT_EQ(checked, 1000);
  // Mutate through WithValueMut.
  EXPECT_TRUE(map.WithValueMut(42, [](std::unique_ptr<std::string>& p) { *p += "!"; }));
  map.WithValue(42, [](const std::unique_ptr<std::string>& p) { EXPECT_EQ(*p, "v42!"); });
  EXPECT_TRUE(map.Erase(42));
  EXPECT_FALSE(map.Contains(42));
}

TEST(GeneralCuckooMapTest, UpsertOverwrites) {
  StringMap map;
  EXPECT_EQ(map.Upsert(std::string("k"), std::string("1")), InsertResult::kOk);
  EXPECT_EQ(map.Upsert(std::string("k"), std::string("2")), InsertResult::kKeyExists);
  std::string v;
  map.Find("k", &v);
  EXPECT_EQ(v, "2");
  EXPECT_EQ(map.Size(), 1u);
}

TEST(GeneralCuckooMapTest, ModelEquivalenceRandomOps) {
  GeneralCuckooMap<std::string, std::uint64_t> map;
  std::unordered_map<std::string, std::uint64_t> model;
  Xorshift128Plus rng(31);
  for (int step = 0; step < 30000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBelow(800));
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(4)) {
      case 0: {
        bool fresh = model.emplace(key, value).second;
        ASSERT_EQ(map.Insert(key, value) == InsertResult::kOk, fresh);
        break;
      }
      case 1: {
        bool existed = model.find(key) != model.end();
        ASSERT_EQ(map.Update(key, value), existed);
        if (existed) {
          model[key] = value;
        }
        break;
      }
      case 2:
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      case 3: {
        std::uint64_t v = 0;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
  for (const auto& [key, value] : model) {
    std::uint64_t v;
    ASSERT_TRUE(map.Find(key, &v));
    ASSERT_EQ(v, value);
  }
}

TEST(GeneralCuckooMapTest, EraseIfConditional) {
  GeneralCuckooMap<std::string, int> map;
  map.Insert(std::string("k"), 5);
  EXPECT_FALSE(map.EraseIf("k", [](const int& v) { return v > 10; }));
  EXPECT_TRUE(map.Contains("k")) << "failed predicate must not erase";
  EXPECT_TRUE(map.EraseIf("k", [](const int& v) { return v == 5; }));
  EXPECT_FALSE(map.Contains("k"));
  EXPECT_FALSE(map.EraseIf("k", [](const int&) { return true; })) << "absent key";
}

TEST(GeneralCuckooMapTest, EraseIfIsAtomicWithConcurrentReplacement) {
  // Threads replace a key's value and conditionally erase stale values; the
  // predicate runs under the bucket lock, so a fresh value must never be
  // deleted by a staleness check.
  GeneralCuckooMap<std::string, std::uint64_t> map;
  map.Insert(std::string("slot"), 1);
  std::atomic<bool> stop{false};
  std::thread refresher([&] {
    std::uint64_t generation = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      map.Upsert(std::string("slot"), generation);
      generation += 2;  // refresher writes even generations
    }
  });
  std::thread reaper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // "Stale" = odd generation; the refresher only writes even ones after
      // the initial 1, so after the first refresh nothing should qualify.
      map.EraseIf("slot", [](const std::uint64_t& v) { return v % 2 == 1; });
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  refresher.join();
  reaper.join();
  // The key must still exist with an even generation (the initial odd value
  // may have been legitimately reaped once).
  std::uint64_t v = 0;
  if (map.Find("slot", &v)) {
    EXPECT_EQ(v % 2, 0u);
  }
  // The map survived the race intact and stays fully usable.
  EXPECT_EQ(map.Upsert(std::string("slot"), 42u) == InsertResult::kOk ||
                map.Contains("slot"),
            true);
}

TEST(GeneralCuckooMapTest, ConcurrentStringWritersAndReaders) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 8;
  StringMap map(o);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string key = std::to_string(t) + ":" + std::to_string(i);
        EXPECT_EQ(map.Insert(key, "v" + key), InsertResult::kOk);
        // Immediately read back a key this thread owns.
        std::string v;
        EXPECT_TRUE(map.Find(key, &v));
        EXPECT_EQ(v, "v" + key);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(GeneralCuckooMapTest, ConcurrentReadersDuringDisplacements) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 9;
  o.auto_expand = false;  // keep buckets fixed -> displacement traffic
  StringMap map(o);
  constexpr int kResident = 1400;  // ~68% of 2048 slots at B=4
  for (int i = 0; i < kResident; ++i) {
    ASSERT_EQ(map.Insert("res" + std::to_string(i), std::to_string(i)), InsertResult::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  std::thread reader([&] {
    int i = 0;
    std::string v;
    while (!stop.load(std::memory_order_relaxed)) {
      if (!map.Find("res" + std::to_string(i % kResident), &v)) {
        misses.fetch_add(1);
      }
      ++i;
    }
  });
  std::thread writer([&] {
    for (int i = 0; i < 550; ++i) {
      map.Insert("extra" + std::to_string(i), "x");
    }
  });
  writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(misses.load(), 0);
}

TEST(GeneralCuckooMapTest, ForEachVisitsEverythingExactlyOnce) {
  StringMap map;
  for (int i = 0; i < 500; ++i) {
    map.Insert("k" + std::to_string(i), std::to_string(i));
  }
  std::unordered_map<std::string, int> seen;
  map.ForEach([&](const std::string& k, std::string& v) {
    ++seen[k];
    v += "!";  // mutation through ForEach must stick
  });
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& [k, count] : seen) {
    EXPECT_EQ(count, 1) << k;
  }
  std::string v;
  ASSERT_TRUE(map.Find("k123", &v));
  EXPECT_EQ(v, "123!");
}

TEST(GeneralCuckooMapTest, ReserveAvoidsExpansions) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 4;
  StringMap map(o);
  map.Reserve(10000);
  const std::int64_t reserve_expansions = map.Stats().expansions;
  EXPECT_GT(reserve_expansions, 0) << "Reserve itself grows the table";
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(map.Insert("k" + std::to_string(i), "v"), InsertResult::kOk);
  }
  EXPECT_EQ(map.Stats().expansions, reserve_expansions)
      << "the reserved fill must trigger no further growth";
}

TEST(GeneralCuckooMapTest, ClearDestroysElements) {
  // Track destructions through a shared_ptr payload.
  auto token = std::make_shared<int>(7);
  {
    GeneralCuckooMap<std::uint64_t, std::shared_ptr<int>> map;
    for (std::uint64_t i = 0; i < 100; ++i) {
      map.Insert(i, token);
    }
    EXPECT_EQ(token.use_count(), 101);
    map.Clear();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_EQ(map.Size(), 0u);
    map.Insert(1, token);
    EXPECT_EQ(token.use_count(), 2);
  }
  // Destructor releases remaining elements.
  EXPECT_EQ(token.use_count(), 1);
}

// ----- Incremental expansion ------------------------------------------------

// Poll until every opened migration window has drained (the background
// migrator runs on its own schedule).
template <typename Map>
void WaitForMigrationsToComplete(const Map& map) {
  for (int i = 0; i < 10000; ++i) {
    const MapStatsSnapshot s = map.Stats();
    if (s.migrations_completed == s.migrations_started) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "migration window never drained";
}

TEST(GeneralCuckooMapTest, IncrementalExpansionKeepsEveryKeyVisible) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 6;  // 64 buckets
  o.stripe_count = 8;               // 64 % 8 == 0: incremental from the start
  StringMap map(o);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 6000;
  std::atomic<int> writers_done{0};
  std::atomic<int> reader_misses{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        std::string key = "w" + std::to_string(w) + ":" + std::to_string(i);
        EXPECT_EQ(map.Insert(key, "v" + key), InsertResult::kOk);
        // Read-your-writes must hold across the two-core window: the key may
        // still sit in the draining core or have just been piggybacked over.
        std::string v;
        EXPECT_TRUE(map.Find(key, &v)) << key;
        EXPECT_EQ(v, "v" + key);
      }
      writers_done.fetch_add(1);
    });
  }
  // A reader hammering each writer's older keys while cores swap under it.
  threads.emplace_back([&] {
    std::string v;
    int i = 0;
    while (writers_done.load() < kWriters) {
      std::string key = "w" + std::to_string(i % kWriters) + ":" + std::to_string(i % 100);
      if (map.Contains(key) && !map.Find(key, &v)) {
        reader_misses.fetch_add(1);
      }
      ++i;
    }
  });
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(reader_misses.load(), 0);
  EXPECT_EQ(map.Size(), static_cast<std::size_t>(kWriters * kPerWriter));
  const MapStatsSnapshot stats = map.Stats();
  EXPECT_GT(stats.migrations_started, 0) << "expansions must have gone incremental";
  WaitForMigrationsToComplete(map);
  // Every key must still be present after the old cores fully drained.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kPerWriter; ++i) {
      std::string key = "w" + std::to_string(w) + ":" + std::to_string(i);
      std::string v;
      ASSERT_TRUE(map.Find(key, &v)) << key;
      ASSERT_EQ(v, "v" + key);
    }
  }
}

TEST(GeneralCuckooMapTest, MigrationGaugesReportCompletedDrain) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 6;
  o.stripe_count = 8;
  StringMap map(o);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_EQ(map.Insert("k" + std::to_string(i), "v"), InsertResult::kOk);
  }
  WaitForMigrationsToComplete(map);
  const MapStatsSnapshot stats = map.Stats();
  ASSERT_GT(stats.migrations_started, 0);
  EXPECT_EQ(stats.migrations_completed, stats.migrations_started);
  EXPECT_GT(stats.migrated_entries, 0) << "the drain must have moved residents";
  // The progress gauge pair describes the last window: fully drained.
  EXPECT_GT(stats.migration_buckets_total, 0);
  EXPECT_EQ(stats.migration_buckets_done, stats.migration_buckets_total);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(map.Contains("k" + std::to_string(i))) << i;
  }
}

TEST(GeneralCuckooMapTest, StopTheWorldFallbackWhenIncrementalDisabled) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 4;
  o.incremental_expand = false;
  StringMap map(o);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_EQ(map.Insert("k" + std::to_string(i), std::to_string(i)), InsertResult::kOk);
  }
  const MapStatsSnapshot stats = map.Stats();
  EXPECT_GT(stats.expansions, 0);
  EXPECT_EQ(stats.migrations_started, 0) << "flag off must force stop-the-world";
  for (int i = 0; i < 3000; ++i) {
    std::string v;
    ASSERT_TRUE(map.Find("k" + std::to_string(i), &v)) << i;
    ASSERT_EQ(v, std::to_string(i));
  }
}

TEST(GeneralCuckooMapTest, UnalignedTablesFallBackThenGoIncremental) {
  // 16 buckets with 64 stripes: 16 % 64 != 0, so the first expansions are
  // stop-the-world; once the table reaches 64 buckets the alignment
  // invariant holds and expansion goes online.
  StringMap::Options o;
  o.initial_bucket_count_log2 = 4;
  o.stripe_count = 64;
  StringMap map(o);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_EQ(map.Insert("k" + std::to_string(i), "v"), InsertResult::kOk);
  }
  const MapStatsSnapshot stats = map.Stats();
  EXPECT_GT(stats.expansions, stats.migrations_started)
      << "the sub-stripe-count expansions must have been stop-the-world";
  EXPECT_GT(stats.migrations_started, 0)
      << "expansions past 64 buckets must have gone incremental";
  WaitForMigrationsToComplete(map);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(map.Contains("k" + std::to_string(i))) << i;
  }
}

TEST(GeneralCuckooMapTest, ClearDuringOpenMigrationWindow) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 6;
  o.stripe_count = 8;
  o.help_drain_buckets = 1;  // keep windows open longer
  StringMap map(o);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(map.Insert("r" + std::to_string(round) + ":" + std::to_string(i), "v"),
                InsertResult::kOk);
    }
    // Clear may land mid-window: it must cancel the migrator, empty both
    // cores, and leave the map reusable.
    map.Clear();
    EXPECT_EQ(map.Size(), 0u);
    EXPECT_FALSE(map.Contains("r" + std::to_string(round) + ":0"));
  }
}

TEST(GeneralCuckooMapTest, MoveOnlyValuesSurviveIncrementalExpansion) {
  using MoveOnlyMap = GeneralCuckooMap<std::uint64_t, std::unique_ptr<std::string>>;
  MoveOnlyMap::Options o;
  o.initial_bucket_count_log2 = 6;
  o.stripe_count = 8;
  MoveOnlyMap map(o);
  constexpr std::uint64_t kN = 4000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(map.Insert(i, std::make_unique<std::string>(std::to_string(i))),
              InsertResult::kOk);
  }
  WaitForMigrationsToComplete(map);
  EXPECT_GT(map.Stats().migrations_started, 0);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.WithValue(
        i, [&](const std::unique_ptr<std::string>& p) { EXPECT_EQ(*p, std::to_string(i)); }))
        << i;
  }
}

struct SnapshotSink {
  template <typename A, typename B>
  void operator()(const A&, const B&) const {}
};

// Dependent context: a requires-expression over a non-dependent type makes
// the failed call a hard error instead of evaluating to false.
template <typename M>
constexpr bool kSnapshotable =
    requires(const M& m, SnapshotSink s) { m.TrySnapshotBuckets(s); };

TEST(GeneralCuckooMapTest, SnapshotUnavailableForMoveOnlyElements) {
  // The displacement side log stores copies; for move-only K/V the walk
  // would silently drop displaced elements, so the overload must not exist
  // (detectable, rather than silently incomplete snapshots).
  using MoveOnlyMap = GeneralCuckooMap<std::uint64_t, std::unique_ptr<std::string>>;
  using CopyableMap = GeneralCuckooMap<std::uint64_t, std::string>;
  static_assert(!kSnapshotable<MoveOnlyMap>,
                "TrySnapshotBuckets must be constrained away for move-only V");
  static_assert(kSnapshotable<CopyableMap>,
                "TrySnapshotBuckets must remain available for copyable K/V");
}

TEST(GeneralCuckooMapTest, FixedSizeReportsTableFull) {
  StringMap::Options o;
  o.initial_bucket_count_log2 = 4;  // 64 slots
  o.auto_expand = false;
  StringMap map(o);
  int inserted = 0;
  while (map.Insert("k" + std::to_string(inserted), "v") == InsertResult::kOk) {
    ++inserted;
  }
  EXPECT_GT(inserted, 40);  // >60% of 64 slots at B=4
  EXPECT_GT(map.Stats().insert_failures, 0);
}

}  // namespace
}  // namespace cuckoo
