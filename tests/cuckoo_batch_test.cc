// FindBatch: the software-pipelined batched read path must agree exactly with
// singular Find under every configuration and under concurrent writes.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/cuckoo/cuckoo_map.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

using Map = CuckooMap<std::uint64_t, std::uint64_t>;

Map::Options Opts(ReadMode mode = ReadMode::kOptimistic) {
  Map::Options o;
  o.initial_bucket_count_log2 = 12;
  o.read_mode = mode;
  return o;
}

TEST(FindBatchTest, AllHits) {
  Map map(Opts());
  constexpr std::size_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    map.Insert(i, i * 3);
  }
  std::vector<std::uint64_t> keys(kN);
  std::vector<std::uint64_t> values(kN);
  std::vector<bool> found_vec(kN);
  // std::vector<bool> is bit-packed; FindBatch needs bool*. Use a raw buffer.
  std::unique_ptr<bool[]> found(new bool[kN]);
  for (std::size_t i = 0; i < kN; ++i) {
    keys[i] = i;
  }
  std::size_t hits = map.FindBatch(keys.data(), kN, values.data(), found.get());
  EXPECT_EQ(hits, kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(found[i]) << i;
    ASSERT_EQ(values[i], i * 3) << i;
  }
  (void)found_vec;
}

TEST(FindBatchTest, MixedHitsAndMisses) {
  Map map(Opts());
  for (std::uint64_t i = 0; i < 5000; i += 2) {
    map.Insert(i, i);
  }
  constexpr std::size_t kN = 5000;
  std::vector<std::uint64_t> keys(kN);
  std::vector<std::uint64_t> values(kN);
  std::unique_ptr<bool[]> found(new bool[kN]);
  for (std::size_t i = 0; i < kN; ++i) {
    keys[i] = i;
  }
  std::size_t hits = map.FindBatch(keys.data(), kN, values.data(), found.get());
  EXPECT_EQ(hits, kN / 2);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(found[i], i % 2 == 0) << i;
    if (found[i]) {
      ASSERT_EQ(values[i], i);
    }
  }
}

class FindBatchSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FindBatchSizeTest, AgreesWithSingularFindAtEveryBatchSize) {
  // Batch sizes around the pipeline depth (8) exercise the lead-in/lead-out
  // boundary logic.
  const std::size_t n = GetParam();
  Map map(Opts());
  Xorshift128Plus rng(5);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    map.Insert(rng.Next() % 4000, i);
  }
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint64_t> batch_values(n);
  std::unique_ptr<bool[]> found(new bool[n]);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.Next() % 4000;
  }
  map.FindBatch(keys.data(), n, batch_values.data(), found.get());
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    bool hit = map.Find(keys[i], &v);
    ASSERT_EQ(found[i], hit) << "index " << i;
    if (hit) {
      ASSERT_EQ(batch_values[i], v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FindBatchSizeTest,
                         ::testing::Values(0, 1, 3, 7, 8, 9, 15, 16, 17, 64, 1000));

TEST(FindBatchTest, LockedReadModeWorks) {
  Map map(Opts(ReadMode::kLocked));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.Insert(i, ~i);
  }
  std::vector<std::uint64_t> keys(1000);
  std::vector<std::uint64_t> values(1000);
  std::unique_ptr<bool[]> found(new bool[1000]);
  for (std::size_t i = 0; i < 1000; ++i) {
    keys[i] = i;
  }
  EXPECT_EQ(map.FindBatch(keys.data(), 1000, values.data(), found.get()), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(values[i], ~static_cast<std::uint64_t>(i));
  }
}

TEST(FindBatchTest, ResidentKeysNeverMissedDuringConcurrentInserts) {
  Map::Options o = Opts();
  o.initial_bucket_count_log2 = 11;
  o.auto_expand = false;
  Map map(o);
  constexpr std::uint64_t kResident = 12000;
  for (std::uint64_t i = 0; i < kResident; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread reader([&] {
    constexpr std::size_t kBatch = 256;
    std::vector<std::uint64_t> keys(kBatch);
    std::vector<std::uint64_t> values(kBatch);
    std::unique_ptr<bool[]> found(new bool[kBatch]);
    std::uint64_t cursor = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        keys[i] = (cursor + i) % kResident;
      }
      std::size_t hits = map.FindBatch(keys.data(), kBatch, values.data(), found.get());
      misses.fetch_add(kBatch - hits, std::memory_order_relaxed);
      cursor += kBatch;
    }
  });
  std::thread writer([&] {
    for (std::uint64_t i = kResident; i < kResident + 3000; ++i) {
      map.Insert(i, i);  // forces displacements of resident keys
    }
  });
  writer.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(misses.load(), 0u);
}

TEST(FindBatchTest, StatsCountBatchedLookups) {
  Map map(Opts());
  map.Insert(1, 1);
  std::uint64_t keys[3] = {1, 2, 3};
  std::uint64_t values[3];
  bool found[3];
  map.FindBatch(keys, 3, values, found);
  MapStatsSnapshot s = map.Stats();
  EXPECT_EQ(s.lookups, 3);
  EXPECT_EQ(s.lookup_hits, 1);
}

}  // namespace
}  // namespace cuckoo
