#include "src/cuckoo/cuckoo_set.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(CuckooSetTest, AddContainsRemove) {
  CuckooSet<std::uint64_t> set;
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Add(1));
  EXPECT_FALSE(set.Add(1)) << "second add of the same key reports not-new";
  EXPECT_TRUE(set.Contains(1));
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_TRUE(set.Remove(1));
  EXPECT_FALSE(set.Remove(1));
  EXPECT_FALSE(set.Contains(1));
}

TEST(CuckooSetTest, TryAddReportsResult) {
  CuckooSet<std::uint64_t> set;
  EXPECT_EQ(set.TryAdd(5), InsertResult::kOk);
  EXPECT_EQ(set.TryAdd(5), InsertResult::kKeyExists);
}

TEST(CuckooSetTest, ModelEquivalence) {
  CuckooSet<std::uint64_t> set;
  std::set<std::uint64_t> model;
  Xorshift128Plus rng(17);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t k = rng.NextBelow(3000);
    switch (rng.NextBelow(3)) {
      case 0:
        ASSERT_EQ(set.Add(k), model.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(set.Remove(k), model.erase(k) > 0);
        break;
      case 2:
        ASSERT_EQ(set.Contains(k), model.count(k) > 0);
        break;
    }
  }
  ASSERT_EQ(set.Size(), model.size());
}

TEST(CuckooSetTest, ConcurrentAddsCountExactly) {
  CuckooSet<std::uint64_t> set;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 20000;
  std::atomic<std::uint64_t> new_adds{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (set.Add(k)) {
          new_adds.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(new_adds.load(), kKeys) << "each key must be 'new' exactly once across threads";
  EXPECT_EQ(set.Size(), kKeys);
}

TEST(CuckooSetTest, ForEachVisitsAllMembers) {
  CuckooSet<std::uint64_t> set;
  for (std::uint64_t i = 0; i < 777; ++i) {
    set.Add(i);
  }
  std::set<std::uint64_t> seen;
  set.ForEach([&](std::uint64_t k) { EXPECT_TRUE(seen.insert(k).second); });
  EXPECT_EQ(seen.size(), 777u);
  EXPECT_EQ(*seen.rbegin(), 776u);
}

TEST(CuckooSetTest, MemoryStaysLean) {
  // Size the table for the workload (131072 slots for 100K members at ~76%).
  CuckooSet<std::uint64_t>::Options o;
  o.initial_bucket_count_log2 = 14;
  CuckooSet<std::uint64_t> set(o);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    set.Add(i);
  }
  // Key (8B) + tag (1B) + unit-value padding: well under 24 bytes/element.
  EXPECT_LT(static_cast<double>(set.HeapBytes()) / 100000.0, 24.0);
}

TEST(CuckooSetTest, ClearAndReuse) {
  CuckooSet<std::uint64_t> set;
  for (std::uint64_t i = 0; i < 100; ++i) {
    set.Add(i);
  }
  set.Clear();
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_TRUE(set.Add(1));
}

}  // namespace
}  // namespace cuckoo
