#include "src/baselines/chaining_map.h"

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/random.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(ChainingMapTest, EmptyBasics) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map.Size(), 0u);
  std::uint64_t v;
  EXPECT_FALSE(map.Find(1, &v));
  EXPECT_FALSE(map.Erase(1));
}

TEST(ChainingMapTest, InsertFindEraseRoundTrip) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map.Insert(1, 10), InsertResult::kOk);
  EXPECT_EQ(map.Insert(1, 20), InsertResult::kKeyExists);
  std::uint64_t v = 0;
  ASSERT_TRUE(map.Find(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_TRUE(map.Update(1, 30));
  map.Find(1, &v);
  EXPECT_EQ(v, 30u);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Contains(1));
}

TEST(ChainingMapTest, UpsertOverwrites) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  EXPECT_EQ(map.Upsert(5, 1), InsertResult::kOk);
  EXPECT_EQ(map.Upsert(5, 2), InsertResult::kKeyExists);
  std::uint64_t v;
  map.Find(5, &v);
  EXPECT_EQ(v, 2u);
}

TEST(ChainingMapTest, GrowsThroughRehash) {
  ChainingMap<std::uint64_t, std::uint64_t> map(16);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_EQ(map.Insert(i, i), InsertResult::kOk);
  }
  EXPECT_GE(map.BucketCount(), 100000u);
  EXPECT_LE(map.LoadFactor(), 1.0);
  std::uint64_t v;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_TRUE(map.Find(i, &v)) << i;
    ASSERT_EQ(v, i);
  }
}

TEST(ChainingMapTest, ModelEquivalence) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  std::unordered_map<std::uint64_t, std::uint64_t> model;
  Xorshift128Plus rng(3);
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t key = rng.NextBelow(2000);
    std::uint64_t value = rng.Next();
    switch (rng.NextBelow(3)) {
      case 0: {
        bool fresh = model.emplace(key, value).second;
        ASSERT_EQ(map.Insert(key, value) == InsertResult::kOk, fresh);
        break;
      }
      case 1:
        ASSERT_EQ(map.Erase(key), model.erase(key) > 0);
        break;
      case 2: {
        std::uint64_t v;
        auto it = model.find(key);
        ASSERT_EQ(map.Find(key, &v), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
    }
  }
  ASSERT_EQ(map.Size(), model.size());
}

TEST(ChainingMapTest, ForEachVisitsEverything) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 100; ++i) {
    map.Insert(i, i);
  }
  std::uint64_t sum = 0;
  std::size_t count = 0;
  map.ForEach([&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(k, v);
    sum += k;
    ++count;
  });
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(sum, 99u * 100u / 2);
}

TEST(ChainingMapTest, ClearReleasesEntries) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.Insert(i, i);
  }
  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.Contains(1));
  EXPECT_EQ(map.Insert(1, 1), InsertResult::kOk);
}

TEST(ChainingMapTest, HeapBytesGrowWithEntries) {
  ChainingMap<std::uint64_t, std::uint64_t> map;
  std::size_t empty = map.HeapBytes();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map.Insert(i, i);
  }
  EXPECT_GT(map.HeapBytes(), empty);
  // Pointer-heavy design: well over 16 bytes per 16-byte pair.
  EXPECT_GT(map.HeapBytes(), 1000u * 24u);
}

TEST(ChainingMapTest, StringKeys) {
  ChainingMap<std::string, int> map;
  EXPECT_EQ(map.Insert("alpha", 1), InsertResult::kOk);
  EXPECT_EQ(map.Insert("beta", 2), InsertResult::kOk);
  int v = 0;
  ASSERT_TRUE(map.Find("alpha", &v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(map.Find("gamma", &v));
}

}  // namespace
}  // namespace cuckoo
