// In-process replication-hub tests: the semi-sync ack gate driven through a
// real DurabilityManager + ReplicationHub with a scripted replica on the
// other end of a socketpair, plus the regression for the WaitDurable
// ordering contract — a replica ack must never resurrect a client ack the
// local WAL already refused.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/kvserver/kv_service.h"
#include "src/persist/durability.h"
#include "src/persist/repl_bridge.h"
#include "src/persist/wal.h"
#include "src/repl/replication.h"
#include "src/repl/replication_hub.h"

namespace cuckoo {
namespace repl {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_hub_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

std::string Drive(KvService* service, const std::string& input) {
  auto conn = service->Connect();
  std::string out;
  conn.Drive(input, &out);
  return out;
}

// A scripted replica on the hub side of a socketpair: reads the SYNC line,
// decodes WAL frames, and (while `acking` is set) acknowledges every LSN it
// sees. No KvService behind it — just the wire protocol.
class ScriptedReplica {
 public:
  explicit ScriptedReplica(int fd) : fd_(fd) {
    thread_ = std::thread([this] { Run(); });
  }
  ~ScriptedReplica() {
    stop_.store(true, std::memory_order_release);
    ::shutdown(fd_, SHUT_RDWR);
    thread_.join();
    ::close(fd_);
  }

  void SetAcking(bool acking) { acking_.store(acking, std::memory_order_release); }
  std::uint64_t last_seen_lsn() const {
    return last_seen_lsn_.load(std::memory_order_acquire);
  }

 private:
  void Run() {
    std::string buffer;
    bool saw_sync = false;
    char buf[4096];
    std::uint64_t applied = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        return;
      }
      buffer.append(buf, static_cast<std::size_t>(n));
      if (!saw_sync) {
        const std::size_t eol = buffer.find('\n');
        if (eol == std::string::npos) {
          continue;
        }
        EXPECT_EQ(buffer.rfind("SYNC ", 0), 0u) << buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        saw_sync = true;
      }
      std::size_t pos = 0;
      persist::WalRecord record;
      while (persist::internal::DecodeWalRecord(buffer, &pos, &record) == 1) {
        if (record.lsn != 0) {  // heartbeats carry lsn 0
          applied = record.lsn;
        }
        last_seen_lsn_.store(applied, std::memory_order_release);
        if (acking_.load(std::memory_order_acquire) && applied != 0) {
          const std::string ack = "ACK " + std::to_string(applied) + "\r\n";
          (void)::send(fd_, ack.data(), ack.size(), MSG_NOSIGNAL);
        }
      }
      buffer.erase(0, pos);
    }
  }

  int fd_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> acking_{true};
  std::atomic<std::uint64_t> last_seen_lsn_{0};
};

TEST(ReplAckLevelTest, ParsesAndNames) {
  AckLevel level = AckLevel::kNone;
  EXPECT_TRUE(ParseAckLevel("none", &level));
  EXPECT_EQ(level, AckLevel::kNone);
  EXPECT_TRUE(ParseAckLevel("async", &level));
  EXPECT_EQ(level, AckLevel::kAsync);
  EXPECT_TRUE(ParseAckLevel("semi-sync", &level));
  EXPECT_EQ(level, AckLevel::kSemiSync);
  EXPECT_TRUE(ParseAckLevel("semisync", &level));
  EXPECT_EQ(level, AckLevel::kSemiSync);
  EXPECT_FALSE(ParseAckLevel("quorum", &level));
  EXPECT_STREQ(AckLevelName(AckLevel::kNone), "none");
  EXPECT_STREQ(AckLevelName(AckLevel::kAsync), "async");
  EXPECT_STREQ(AckLevelName(AckLevel::kSemiSync), "semi-sync");
}

// The regression (see DurabilityManager::WaitDurable): once the local WAL
// reports an I/O error, the write must be refused BEFORE replication is even
// consulted. A bridge that happily confirms every LSN — the pathological
// best-case replica — must not be able to turn the refusal into an ack.
TEST(ReplBridgeOrderingTest, ReplicaAckNeverResurrectsLocalWalFailure) {
  struct AlwaysYesBridge : persist::ReplicationBridge {
    std::atomic<int> wait_calls{0};
    void OnWalCommit(std::uint64_t, std::uint64_t) override {}
    bool WaitReplicated(std::uint64_t) override {
      wait_calls.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::uint64_t MinReplicaLsn() override { return UINT64_MAX; }
  };

  TempDir dir;
  KvService service;
  persist::DurabilityManager durability(&service);
  AlwaysYesBridge bridge;
  durability.SetReplicationBridge(&bridge);
  persist::DurabilityOptions options;
  options.dir = dir.path;
  options.fsync_policy = persist::FsyncPolicy::kAlways;
  std::string error;
  ASSERT_TRUE(durability.Start(options, &error)) << error;

  // Healthy path: the ack consults replication exactly once per write.
  EXPECT_EQ(Drive(&service, "set healthy 0 0 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_EQ(bridge.wait_calls.load(), 1);

  durability.wal_for_testing().InjectIoErrorForTesting();
  EXPECT_EQ(Drive(&service, "set broken 0 0 1\r\nx\r\n"),
            "SERVER_ERROR wal io error\r\n");
  // The write failed locally, so the all-confirming bridge must never have
  // been asked — a "yes" here would have lied to the client.
  EXPECT_EQ(bridge.wait_calls.load(), 1);
  durability.Stop();
}

TEST(ReplHubTest, SemiSyncGatesClientAcksOnReplicaAcks) {
  TempDir dir;
  KvService service;
  persist::DurabilityManager durability(&service);
  ReplicationHubOptions hub_options;
  hub_options.service = &service;
  hub_options.durability = &durability;
  hub_options.wal_dir = dir.path;
  hub_options.ack = AckLevel::kSemiSync;
  hub_options.semi_sync_timeout_ms = 300;
  hub_options.heartbeat_ms = 50;
  ReplicationHub hub(hub_options);
  durability.SetReplicationBridge(&hub);
  persist::DurabilityOptions options;
  options.dir = dir.path;
  options.fsync_policy = persist::FsyncPolicy::kAlways;
  std::string error;
  ASSERT_TRUE(durability.Start(options, &error)) << error;

  // Degraded mode: no replica connected yet, writes still ack locally.
  EXPECT_EQ(Drive(&service, "set pre 0 0 1\r\nx\r\n"), "STORED\r\n");
  {
    std::string stats;
    hub.AppendStats(&stats);
    EXPECT_NE(stats.find("STAT repl_degraded_acks 1\r\n"), std::string::npos) << stats;
  }

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, O_NONBLOCK), 0);  // the hub's side
  ScriptedReplica replica(fds[1]);
  hub.Adopt(fds[0], durability.wal().LastAssignedLsn() + 1, "");

  // With an acking replica attached, writes flow and are genuinely gated:
  // the replica saw the record's LSN by the time the client was acked.
  EXPECT_EQ(Drive(&service, "set gated 0 0 1\r\nx\r\n"), "STORED\r\n");
  EXPECT_GE(replica.last_seen_lsn(), durability.wal().LastAssignedLsn());
  EXPECT_EQ(hub.ConnectedReplicas(), 1u);
  EXPECT_EQ(hub.LagLsns(), 0u);

  // A replica that stops acknowledging turns semi-sync writes into refusals
  // once the timeout lapses — silence is not durability.
  replica.SetAcking(false);
  const std::string refused = Drive(&service, "set mute 0 0 1\r\nx\r\n");
  EXPECT_EQ(refused.rfind("SERVER_ERROR", 0), 0u) << refused;
  {
    std::string stats;
    hub.AppendStats(&stats);
    EXPECT_NE(stats.find("STAT repl_semi_sync_timeouts 1\r\n"), std::string::npos)
        << stats;
  }

  // GC holdback: while the replica is attached the hub pins the WAL at the
  // oldest LSN it may still need; detaching releases the pin.
  EXPECT_NE(hub.MinReplicaLsn(), UINT64_MAX);
  durability.Stop();
  hub.Stop();
  EXPECT_EQ(hub.MinReplicaLsn(), UINT64_MAX);
  EXPECT_EQ(hub.ConnectedReplicas(), 0u);
}

}  // namespace
}  // namespace repl
}  // namespace cuckoo
