// Replication failover and fault-injection suite: real multi-process
// clusters (one cuckoo_kv_server per role) wired over loopback TCP, with a
// userspace proxy in front of the replication link so the tests can drop,
// partition, and throttle it.
//
// The headline guarantee under test: at --ack=semi-sync, a client ack
// implies the record is applied on a replica, so kill -9 of the primary
// followed by `replicaof none` promotion loses nothing that was ever
// acknowledged. Async mode only promises convergence, which the lag/fault
// tests pin down.
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "tests/process_harness.h"

namespace cuckoo {
namespace {

using testsupport::Client;
using testsupport::HttpGet;
using testsupport::ServerProcess;
using testsupport::StatValue;
using testsupport::TempDir;

std::string ValueFor(int i) { return "value-" + std::to_string(i) + "-payload"; }

// Spin (10ms steps) until the replica serves `value` for `key`; false on
// timeout. Opens a fresh connection per probe so a dead server fails fast
// instead of wedging a stale fd.
bool WaitForKey(const std::string& sock, const std::string& key,
                const std::string& value, int spins = 1500) {
  for (int i = 0; i < spins; ++i) {
    Client probe(sock);
    if (probe.connected() && probe.Get(key) == value) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

// Spin until `stats` reports `name` with a value accepted by `pred`.
template <typename Pred>
long long WaitForStat(const std::string& sock, const std::string& name, Pred pred,
                      int spins = 1500) {
  long long value = -1;
  for (int i = 0; i < spins; ++i) {
    Client probe(sock);
    value = StatValue(probe.Roundtrip("stats\r\n", "END\r\n"), name);
    if (pred(value)) {
      return value;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return value;
}

std::vector<std::string> PrimaryArgs() {
  // --tcp-port=0: the replication link runs over TCP; 0 = ephemeral, the
  // harness reads the bound port off the READY line.
  return {"--tcp-port=0"};
}

// ---- Fault-injection proxy --------------------------------------------------

// A loopback TCP proxy the replica dials instead of the primary. Three
// faults, switchable at runtime:
//   DropConnections() — RST every proxied pair (link flap; forces the
//                       replica through its reconnect/resume path).
//   SetPaused(true)   — partition: primary->replica bytes are buffered, not
//                       delivered (acks keep flowing, so the primary sees a
//                       live but infinitely lagging replica). Unpausing
//                       releases the buffer in order — no corruption.
//   SetThrottle(n)    — slow link: at most n bytes delivered per 20ms slice.
class TcpProxy {
 public:
  explicit TcpProxy(int target_port) : target_port_(target_port) {
    Listen();  // ASSERTs live there
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~TcpProxy() {
    stop_.store(true, std::memory_order_release);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    accept_thread_.join();
    DropConnections();
    for (std::thread& t : pumps_) {
      t.join();
    }
  }

  int port() const { return port_; }
  void SetPaused(bool paused) { paused_.store(paused, std::memory_order_release); }
  void SetThrottle(std::size_t bytes_per_slice) {
    throttle_.store(bytes_per_slice, std::memory_order_release);
  }

  // Hard-close every currently proxied connection (both sides).
  void DropConnections() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    // Pump threads observe EOF, deregister their fd, and close it — the fd
    // stays in conn_fds_ until then so this never touches a recycled number.
  }

 private:
  void Listen() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }

  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        return;  // listener shut down
      }
      const int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(target_port_));
      if (upstream < 0 ||
          ::connect(upstream, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(client);
        if (upstream >= 0) {
          ::close(upstream);
        }
        continue;
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(mu_);
      conn_fds_.push_back(client);
      conn_fds_.push_back(upstream);
      // Faults only shape the downstream direction (primary -> replica, the
      // WAL frames); acks keep flowing so "partitioned" reads as a live,
      // lagging peer rather than a dead one.
      pumps_.emplace_back([this, upstream, client] { Pump(upstream, client, true); });
      pumps_.emplace_back([this, client, upstream] { Pump(client, upstream, false); });
    }
  }

  void Pump(int from, int to, bool shaped) {
    std::string pending;
    char buf[16384];
    bool open = true;
    while (open || !pending.empty()) {
      if (open) {
        pollfd pfd{from, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 20);
        if (rc > 0) {
          const ssize_t n = ::read(from, buf, sizeof(buf));
          if (n <= 0) {
            open = false;
          } else {
            pending.append(buf, static_cast<std::size_t>(n));
          }
        }
      } else if (pending.empty() || stop_.load(std::memory_order_acquire)) {
        break;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (shaped && paused_.load(std::memory_order_acquire) &&
          !stop_.load(std::memory_order_acquire)) {
        continue;  // partition: hold the bytes
      }
      std::size_t quota = pending.size();
      if (shaped) {
        const std::size_t throttle = throttle_.load(std::memory_order_acquire);
        if (throttle != 0 && throttle < quota) {
          quota = throttle;  // slow link: one slice per loop turn
        }
      }
      std::size_t off = 0;
      while (off < quota) {
        const ssize_t n = ::send(to, pending.data() + off, quota - off, MSG_NOSIGNAL);
        if (n <= 0) {
          open = false;
          pending.clear();
          off = 0;
          break;
        }
        off += static_cast<std::size_t>(n);
      }
      pending.erase(0, off);
    }
    ::shutdown(to, SHUT_RDWR);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < conn_fds_.size(); ++i) {
        if (conn_fds_[i] == from) {
          conn_fds_.erase(conn_fds_.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    ::close(from);  // each pump owns its `from` fd; the paired pump closes `to`
  }

  int target_port_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  std::atomic<std::size_t> throttle_{0};
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> pumps_;
};

// ---- Tests ------------------------------------------------------------------

TEST(ReplFailoverTest, AsyncReplicaConvergesServesReadsAndRejectsWrites) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";

  std::vector<std::string> pargs = PrimaryArgs();
  pargs.push_back("--ack=async");
  pargs.push_back("--metrics-port=0");
  ServerProcess primary(dir.path + "/pwal", psock, "always", pargs);
  ASSERT_GT(primary.tcp_port(), 0);
  EXPECT_EQ(primary.repl_role(), "primary");

  Client load(psock);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(load.Set("key" + std::to_string(i), ValueFor(i)));
  }

  ServerProcess replica(
      dir.path + "/rwal", rsock, "always",
      {"--replicaof=127.0.0.1:" + std::to_string(primary.tcp_port())});
  EXPECT_EQ(replica.repl_role(), "replica");

  // The replica announces itself read-only and serves the streamed data.
  ASSERT_TRUE(WaitForKey(rsock, "key499", ValueFor(499)));
  Client reader(rsock);
  for (int i = 0; i < 500; i += 31) {
    EXPECT_EQ(reader.Get("key" + std::to_string(i)), ValueFor(i));
  }
  const std::string refused =
      reader.Roundtrip("set nope 0 0 1\r\nx\r\n", "\r\n");
  EXPECT_NE(refused.find("SERVER_ERROR read only replica"), std::string::npos)
      << refused;
  EXPECT_NE(refused.find("127.0.0.1:" + std::to_string(primary.tcp_port())),
            std::string::npos)
      << refused;
  const std::string rstats = reader.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_NE(rstats.find("STAT repl_role replica\r\n"), std::string::npos) << rstats;
  EXPECT_NE(rstats.find("STAT repl_state streaming\r\n"), std::string::npos) << rstats;
  EXPECT_GE(StatValue(rstats, "replica_applied_records"), 500) << rstats;

  // Primary sees one connected, caught-up replica, over stats and /metrics.
  EXPECT_EQ(WaitForStat(psock, "repl_replicas", [](long long v) { return v == 1; }), 1);
  EXPECT_EQ(WaitForStat(psock, "repl_lag_lsn", [](long long v) { return v == 0; }), 0);
  const std::string page = HttpGet(primary.metrics_port(), "/metrics");
  EXPECT_NE(page.find("cuckoo_repl_lag_lsn 0\n"), std::string::npos) << page;
  EXPECT_NE(page.find("cuckoo_repl_replicas 1\n"), std::string::npos) << page;

  // Writes keep replicating after the initial catch-up.
  ASSERT_TRUE(load.Set("late", "late-value"));
  EXPECT_TRUE(WaitForKey(rsock, "late", "late-value"));
}

TEST(ReplFailoverTest, SemiSyncKill9FailoverLosesNoAckedWrite) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";

  std::vector<std::string> pargs = PrimaryArgs();
  pargs.push_back("--ack=semi-sync");
  ServerProcess primary(dir.path + "/pwal", psock, "always", pargs);
  ServerProcess replica(
      dir.path + "/rwal", rsock, "always",
      {"--replicaof=127.0.0.1:" + std::to_string(primary.tcp_port())});
  // Make sure the replica is attached before the load starts, so acks are
  // genuinely replica-gated rather than degraded-mode.
  ASSERT_EQ(WaitForStat(psock, "repl_replicas", [](long long v) { return v == 1; }), 1);

  std::atomic<int> last_acked{-1};
  std::thread loader([&] {
    Client client(psock);
    for (int i = 0; i < 100000; ++i) {
      if (!client.Set("key" + std::to_string(i), ValueFor(i))) {
        return;  // EOF/EPIPE: the primary died; i was NOT acked
      }
      last_acked.store(i, std::memory_order_release);
    }
  });
  while (last_acked.load(std::memory_order_acquire) < 300) {
    std::this_thread::yield();
  }
  primary.Kill9();
  loader.join();
  const int acked = last_acked.load(std::memory_order_acquire);
  ASSERT_GE(acked, 300);

  // Promote the survivor. It must accept the promotion, flip its role, and
  // hold every write the dead primary ever acknowledged.
  Client admin(rsock);
  EXPECT_EQ(admin.Roundtrip("replicaof none\r\n", "\r\n"), "OK\r\n");
  const std::string stats = admin.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_NE(stats.find("STAT repl_role primary\r\n"), std::string::npos) << stats;
  for (int i = 0; i <= acked; ++i) {
    ASSERT_EQ(admin.Get("key" + std::to_string(i)), ValueFor(i))
        << "semi-sync acked write key" << i << " lost in failover";
  }
  // The promoted node is a real primary: writes flow again.
  ASSERT_TRUE(admin.Set("post-failover", "v"));
  EXPECT_EQ(admin.Get("post-failover"), "v");
}

TEST(ReplFailoverTest, SemiSyncWithoutReplicasDegradesToLocalAcks) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  std::vector<std::string> pargs = PrimaryArgs();
  pargs.push_back("--ack=semi-sync");
  ServerProcess primary(dir.path + "/pwal", psock, "always", pargs);

  // No replica connected: semi-sync must not brick the server — writes ack
  // locally and the degradation is visible in stats.
  Client client(psock);
  ASSERT_TRUE(client.Set("k", "v"));
  EXPECT_EQ(client.Get("k"), "v");
  const std::string stats = client.Roundtrip("stats\r\n", "END\r\n");
  EXPECT_GE(StatValue(stats, "repl_degraded_acks"), 1) << stats;
  EXPECT_NE(stats.find("STAT repl_ack semi-sync\r\n"), std::string::npos) << stats;
}

TEST(ReplFailoverTest, ReplicaBootstrapsViaFullSyncAfterWalGc) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";
  const std::string pwal = dir.path + "/pwal";

  std::vector<std::string> pargs = PrimaryArgs();
  pargs.push_back("--segment-bytes=4096");
  ServerProcess primary(pwal, psock, "always", pargs);
  Client load(psock);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(load.Set("key" + std::to_string(i), ValueFor(i)));
  }
  // Snapshot + segment GC: with no replica connected there is no holdback,
  // so every sealed segment (including the one holding LSN 1) is removed.
  ASSERT_EQ(load.Roundtrip("bgsave\r\n", "\r\n"), "OK\r\n");
  bool gc_done = false;
  for (int spin = 0; spin < 1000 && !gc_done; ++spin) {
    gc_done = true;
    for (const std::string& name : ListFilesWithPrefix(pwal, "wal-")) {
      gc_done &= name != "wal-1.log";
    }
    if (!gc_done) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(gc_done) << "snapshot GC never removed the first WAL segment";

  // A brand-new replica asks for LSN 1, which is gone: the primary must
  // bootstrap it with a full snapshot, then stream the tail.
  ServerProcess replica(
      dir.path + "/rwal", rsock, "always",
      {"--replicaof=127.0.0.1:" + std::to_string(primary.tcp_port())});
  ASSERT_TRUE(WaitForKey(rsock, "key399", ValueFor(399)));
  Client reader(rsock);
  for (int i = 0; i < 400; i += 17) {
    EXPECT_EQ(reader.Get("key" + std::to_string(i)), ValueFor(i));
  }
  // Converged data is visible the moment the snapshot swap lands, slightly
  // before the client bumps its bootstrap counters — wait, don't sample.
  EXPECT_GE(WaitForStat(rsock, "repl_client_full_syncs",
                        [](long long v) { return v >= 1; }),
            1);
  EXPECT_GE(WaitForStat(rsock, "replica_resyncs", [](long long v) { return v >= 1; }),
            1);
  Client pstats(psock);
  EXPECT_GE(StatValue(pstats.Roundtrip("stats\r\n", "END\r\n"), "repl_full_syncs"), 1);

  // The bootstrapped replica keeps tailing live writes.
  ASSERT_TRUE(load.Set("after-fullsync", "v"));
  EXPECT_TRUE(WaitForKey(rsock, "after-fullsync", "v"));
}

TEST(ReplFailoverTest, LinkFlapReconnectsAndConverges) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";

  ServerProcess primary(dir.path + "/pwal", psock, "always", PrimaryArgs());
  TcpProxy proxy(primary.tcp_port());
  ServerProcess replica(dir.path + "/rwal", rsock, "always",
                        {"--replicaof=127.0.0.1:" + std::to_string(proxy.port())});

  Client load(psock);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(load.Set("key" + std::to_string(i), ValueFor(i)));
  }
  ASSERT_TRUE(WaitForKey(rsock, "key199", ValueFor(199)));

  // Flap the link, keep writing through the outage, and verify the replica
  // resumes from its own WAL position and converges on the whole history.
  proxy.DropConnections();
  for (int i = 200; i < 400; ++i) {
    ASSERT_TRUE(load.Set("key" + std::to_string(i), ValueFor(i)));
  }
  ASSERT_TRUE(WaitForKey(rsock, "key399", ValueFor(399)));
  Client reader(rsock);
  for (int i = 0; i < 400; i += 23) {
    EXPECT_EQ(reader.Get("key" + std::to_string(i)), ValueFor(i));
  }
  EXPECT_GE(StatValue(reader.Roundtrip("stats\r\n", "END\r\n"), "repl_reconnects"), 1);
}

TEST(ReplFailoverTest, PartitionShowsLagThenHealsWithoutLoss) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";

  ServerProcess primary(dir.path + "/pwal", psock, "always", PrimaryArgs());
  TcpProxy proxy(primary.tcp_port());
  ServerProcess replica(dir.path + "/rwal", rsock, "always",
                        {"--replicaof=127.0.0.1:" + std::to_string(proxy.port())});
  Client load(psock);
  ASSERT_TRUE(load.Set("pre", "v"));
  ASSERT_TRUE(WaitForKey(rsock, "pre", "v"));

  // Partition the downstream direction. Async writes keep acking; the
  // primary's lag gauge must expose the growing debt.
  proxy.SetPaused(true);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(load.Set("part" + std::to_string(i), ValueFor(i)));
  }
  EXPECT_GT(WaitForStat(psock, "repl_lag_lsn", [](long long v) { return v > 0; }), 0);
  {
    Client reader(rsock);
    EXPECT_EQ(reader.Get("part149"), "") << "write crossed a partitioned link";
  }

  // Heal: the buffered frames drain in order; no reconnect, no loss.
  proxy.SetPaused(false);
  ASSERT_TRUE(WaitForKey(rsock, "part149", ValueFor(149)));
  EXPECT_EQ(WaitForStat(psock, "repl_lag_lsn", [](long long v) { return v == 0; }), 0);
  Client reader(rsock);
  for (int i = 0; i < 150; i += 13) {
    EXPECT_EQ(reader.Get("part" + std::to_string(i)), ValueFor(i));
  }
}

TEST(ReplFailoverTest, SlowLinkStillConvergesAndNeverBlocksAsyncAcks) {
  TempDir dir;
  const std::string psock = dir.path + "/primary.sock";
  const std::string rsock = dir.path + "/replica.sock";

  ServerProcess primary(dir.path + "/pwal", psock, "always", PrimaryArgs());
  TcpProxy proxy(primary.tcp_port());
  // ~2 KB per 20ms slice: slower than the write burst below, so the stream
  // visibly trails the load, but fast enough for the test to converge.
  proxy.SetThrottle(2048);
  ServerProcess replica(dir.path + "/rwal", rsock, "always",
                        {"--replicaof=127.0.0.1:" + std::to_string(proxy.port())});

  Client load(psock);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(load.Set("key" + std::to_string(i), ValueFor(i)));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Async acks are local-durability-only: a slow replica link must not leak
  // into the client write path. 300 fsync=always sets finish in well under
  // a minute even on a loaded CI box; the bound just catches pathological
  // coupling (e.g. acks gated on the throttled stream).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 60);

  ASSERT_TRUE(WaitForKey(rsock, "key299", ValueFor(299)));
  Client reader(rsock);
  for (int i = 0; i < 300; i += 29) {
    EXPECT_EQ(reader.Get("key" + std::to_string(i)), ValueFor(i));
  }
}

}  // namespace
}  // namespace cuckoo
