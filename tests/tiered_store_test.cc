#include "src/store/tiered_store.h"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"

namespace cuckoo {
namespace store {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_tier_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

TieredStoreOptions SmallOptions(const std::string& dir) {
  TieredStoreOptions o;
  o.dir = dir;
  o.threshold_bytes = 64;
  o.segment_bytes = 8192;
  o.cache_capacity_bytes = 1u << 20;
  o.reader_threads = 2;
  return o;
}

TEST(TieredStoreTest, AppendThenReadColdAndHot) {
  TempDir dir;
  TieredStore tier;
  std::string error;
  ASSERT_TRUE(tier.Open(SmallOptions(dir.path), &error)) << error;

  ValueLocation loc;
  ASSERT_TRUE(tier.AppendValue("key", std::string(500, 'v'), &loc));
  ASSERT_TRUE(tier.ValidLocation(loc));

  // Cold read goes to disk and admits the bytes.
  std::string data;
  ASSERT_TRUE(tier.ReadValue("key", loc, /*cas_id=*/7, &data));
  EXPECT_EQ(data, std::string(500, 'v'));
  EXPECT_GE(tier.Stats().disk_reads, 1u);

  // Now hot, served only under the matching cas.
  data.clear();
  EXPECT_TRUE(tier.TryHot("key", 7, &data));
  EXPECT_EQ(data, std::string(500, 'v'));
  EXPECT_FALSE(tier.TryHot("key", 8, &data));  // stale cas never served
  EXPECT_FALSE(tier.TryHot("other", 7, &data));
  tier.Close();
}

TEST(TieredStoreTest, AdmitWriteThrough) {
  TempDir dir;
  TieredStore tier;
  std::string error;
  ASSERT_TRUE(tier.Open(SmallOptions(dir.path), &error)) << error;
  tier.Admit("wk", /*cas_id=*/3, std::string(200, 'w'));
  std::string data;
  EXPECT_TRUE(tier.TryHot("wk", 3, &data));
  EXPECT_EQ(data, std::string(200, 'w'));
  const std::uint64_t reads_before = tier.Stats().disk_reads;
  EXPECT_EQ(tier.Stats().disk_reads, reads_before);  // never touched disk
  tier.Close();
}

TEST(TieredStoreTest, AsyncReadDeliversVerifiedBytes) {
  TempDir dir;
  TieredStore tier;
  std::string error;
  ASSERT_TRUE(tier.Open(SmallOptions(dir.path), &error)) << error;
  ValueLocation loc;
  ASSERT_TRUE(tier.AppendValue("async", std::string(300, 'a'), &loc));

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool got_ok = false;
  std::string got;
  tier.ReadValueAsync("async", loc, /*cas_id=*/1, [&](bool ok, std::string data) {
    std::lock_guard<std::mutex> lk(mu);
    got_ok = ok;
    got = std::move(data);
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }
  EXPECT_TRUE(got_ok);
  EXPECT_EQ(got, std::string(300, 'a'));
  // The async read admits on the reader thread: a follow-up probe is hot.
  std::string data;
  EXPECT_TRUE(tier.TryHot("async", 1, &data));
  tier.Close();
}

TEST(TieredStoreTest, AsyncReadOfRetiredLocationFails) {
  TempDir dir;
  TieredStore tier;
  std::string error;
  ASSERT_TRUE(tier.Open(SmallOptions(dir.path), &error)) << error;
  ValueLocation loc;
  ASSERT_TRUE(tier.AppendValue("gone", std::string(100, 'g'), &loc));
  ValueLocation bogus = loc;
  bogus.segment += 100;  // never existed

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool got_ok = true;
  tier.ReadValueAsync("gone", bogus, 1, [&](bool ok, std::string) {
    std::lock_guard<std::mutex> lk(mu);
    got_ok = ok;
    done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done; });
  }
  EXPECT_FALSE(got_ok);
  tier.Close();
}

// GC end-to-end against a fake table: a map from key -> (loc, cas). The
// relocate hook re-checks the location like the real service does.
TEST(TieredStoreTest, GcCompactsWorstSegmentAndRelocatesLive) {
  TempDir dir;
  TieredStore tier;
  std::string error;
  TieredStoreOptions opts = SmallOptions(dir.path);
  ASSERT_TRUE(tier.Open(opts, &error)) << error;

  struct Entry {
    ValueLocation loc;
    bool live = true;
  };
  std::mutex table_mu;
  std::map<std::string, Entry> table;

  // Fill a few segments; kill every other key.
  for (int i = 0; i < 24; ++i) {
    const std::string key = "k" + std::to_string(i);
    ValueLocation loc;
    ASSERT_TRUE(tier.AppendValue(key, std::string(700, static_cast<char>('a' + i % 26)),
                                 &loc));
    std::lock_guard<std::mutex> lk(table_mu);
    table[key] = Entry{loc, true};
  }
  for (int i = 0; i < 24; i += 2) {
    const std::string key = "k" + std::to_string(i);
    std::lock_guard<std::mutex> lk(table_mu);
    tier.MarkDead(table[key].loc);
    table[key].live = false;
  }

  std::atomic<int> barriers{0};
  tier.SetGcHooks(
      [&](const std::string& key, const ValueLocation& old_loc, std::string_view data) {
        std::lock_guard<std::mutex> lk(table_mu);
        auto it = table.find(key);
        if (it == table.end() || !it->second.live || !(it->second.loc == old_loc)) {
          return TieredStore::RelocateResult::kDead;
        }
        ValueLocation new_loc;
        if (!tier.AppendValue(key, data, &new_loc)) {
          return TieredStore::RelocateResult::kFailed;
        }
        it->second.loc = new_loc;
        return TieredStore::RelocateResult::kRelocated;
      },
      [&] {
        barriers.fetch_add(1);
        return tier.SyncLog();
      });

  // Compact until nothing qualifies at a low trigger.
  int retired = 0;
  while (tier.RunGcOnce(/*trigger_override=*/0.3) && retired < 64) {
    ++retired;
  }
  ASSERT_GT(retired, 0);
  EXPECT_GT(barriers.load(), 0);
  const TieredStoreStats stats = tier.Stats();
  EXPECT_GT(stats.gc_segments, 0u);
  EXPECT_GT(stats.gc_records_relocated, 0u);
  EXPECT_GT(stats.log.reclaimed_bytes, 0u);
  EXPECT_EQ(stats.gc_failures, 0u);

  // Every live key still reads back through its (possibly moved) location.
  std::lock_guard<std::mutex> lk(table_mu);
  for (const auto& [key, entry] : table) {
    if (!entry.live) {
      continue;
    }
    ASSERT_TRUE(tier.ValidLocation(entry.loc)) << key;
    std::string data;
    ASSERT_TRUE(tier.ReadValue(key, entry.loc, 1, &data)) << key;
    EXPECT_EQ(data.size(), 700u);
  }
  tier.Close();
}

TEST(TieredStoreTest, ReaderBackendSelection) {
  TempDir dir;
  // The thread-pool fallback must always be available.
  TieredStore tier;
  TieredStoreOptions opts = SmallOptions(dir.path);
  opts.reader_backend = "threads";
  std::string error;
  ASSERT_TRUE(tier.Open(opts, &error)) << error;
  EXPECT_STREQ(tier.reader_backend(), "threads");
  ValueLocation loc;
  ASSERT_TRUE(tier.AppendValue("tp", std::string(128, 't'), &loc));
  std::string data;
  ASSERT_TRUE(tier.ReadValue("tp", loc, 1, &data));
  EXPECT_EQ(data.size(), 128u);
  tier.Close();
}

}  // namespace
}  // namespace store
}  // namespace cuckoo
