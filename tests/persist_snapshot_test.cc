#include "src/persist/snapshot.h"

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/file_util.h"
#include "src/kvserver/kv_service.h"

namespace cuckoo {
namespace persist {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "cuckoo_snap_XXXXXX";
    path = ::mkdtemp(tmpl.data());
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() {
    for (const std::string& name : ListFilesWithPrefix(path, "")) {
      RemoveFile(path + "/" + name);
    }
    ::rmdir(path.c_str());
  }
};

std::string Drive(KvService* service, const std::string& input) {
  auto conn = service->Connect();
  std::string out;
  conn.Drive(input, &out);
  return out;
}

std::string WriteSnapshotOrDie(const KvService& service, const std::string& dir,
                               std::uint64_t lsn, SnapshotWriteStats* stats = nullptr) {
  SnapshotWriteStats local;
  std::string error;
  EXPECT_TRUE(WriteKvSnapshot(service, dir, [lsn] { return lsn; }, /*max_attempts=*/8,
                              stats != nullptr ? stats : &local, &error))
      << error;
  return dir + "/" + internal::SnapshotFileName(lsn);
}

TEST(SnapshotTest, WriteLoadRoundTrip) {
  TempDir dir;
  KvService source;
  for (int i = 0; i < 200; ++i) {
    const std::string k = "key" + std::to_string(i);
    const std::string v = "value" + std::to_string(i);
    ASSERT_EQ(Drive(&source, "set " + k + " " + std::to_string(i % 32) + " 0 " +
                                 std::to_string(v.size()) + "\r\n" + v + "\r\n"),
              "STORED\r\n");
  }
  SnapshotWriteStats write_stats;
  const std::string path = WriteSnapshotOrDie(source, dir.path, 77, &write_stats);
  EXPECT_EQ(write_stats.entries, 200u);
  EXPECT_EQ(write_stats.wal_lsn, 77u);
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(FileExists(dir.path + "/snap.tmp"));  // tmp renamed away

  auto listed = ListSnapshots(dir.path);
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].first, 77u);

  KvService restored;
  SnapshotLoadStats load_stats;
  std::string error;
  ASSERT_TRUE(LoadKvSnapshot(path, &restored, &load_stats, &error)) << error;
  EXPECT_EQ(load_stats.entries, 200u);
  EXPECT_EQ(load_stats.wal_lsn, 77u);
  EXPECT_EQ(restored.ItemCount(), 200u);
  EXPECT_EQ(Drive(&restored, "get key7\r\n"), "VALUE key7 7 6\r\nvalue7\r\nEND\r\n");
  EXPECT_EQ(Drive(&restored, "get key199\r\n"),
            "VALUE key199 7 8\r\nvalue199\r\nEND\r\n");
}

TEST(SnapshotTest, PreservesCasIdsAcrossReload) {
  TempDir dir;
  KvService source;
  ASSERT_EQ(Drive(&source, "set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\n"),
            "STORED\r\nSTORED\r\n");
  const std::string gets_before = Drive(&source, "gets a\r\ngets b\r\n");

  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  ASSERT_TRUE(LoadKvSnapshot(WriteSnapshotOrDie(source, dir.path, 2), &restored, &stats,
                             &error))
      << error;
  // Identical CAS ids after reload, and the CAS floor advanced past them so
  // new writes can't reuse an id a client already observed.
  EXPECT_EQ(Drive(&restored, "gets a\r\ngets b\r\n"), gets_before);
  EXPECT_GE(stats.max_cas, 2u);
  ASSERT_EQ(Drive(&restored, "set c 0 0 1\r\nz\r\n"), "STORED\r\n");
  const std::string gets_c = Drive(&restored, "gets c\r\n");
  EXPECT_EQ(gets_c.find("VALUE c"), 0u);
  EXPECT_EQ(gets_c, Drive(&restored, "gets c\r\n"));
}

TEST(SnapshotTest, EmptyServiceSnapshotsAndLoads) {
  TempDir dir;
  KvService source;
  const std::string path = WriteSnapshotOrDie(source, dir.path, 0);
  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  ASSERT_TRUE(LoadKvSnapshot(path, &restored, &stats, &error)) << error;
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(restored.ItemCount(), 0u);
}

TEST(SnapshotTest, TruncatedMidRecordIsRejected) {
  TempDir dir;
  KvService source;
  for (int i = 0; i < 50; ++i) {
    Drive(&source, "set key" + std::to_string(i) + " 0 0 4\r\nbody\r\n");
  }
  const std::string path = WriteSnapshotOrDie(source, dir.path, 50);
  const std::uint64_t full = FileSize(path);
  // Cut in the middle of the record stream: past the header, well before the
  // footer.
  ASSERT_TRUE(TruncateFile(path, full / 2));

  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  EXPECT_FALSE(LoadKvSnapshot(path, &restored, &stats, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, MissingFooterIsRejected) {
  TempDir dir;
  KvService source;
  Drive(&source, "set only 0 0 3\r\nval\r\n");
  const std::string path = WriteSnapshotOrDie(source, dir.path, 1);
  // Drop the last byte: the footer frame no longer parses, so the file must
  // be treated as an incomplete snapshot even though every entry is intact.
  ASSERT_TRUE(TruncateFile(path, FileSize(path) - 1));

  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  EXPECT_FALSE(LoadKvSnapshot(path, &restored, &stats, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, BitFlippedRecordIsRejected) {
  TempDir dir;
  KvService source;
  for (int i = 0; i < 20; ++i) {
    Drive(&source, "set key" + std::to_string(i) + " 0 0 7\r\npayload\r\n");
  }
  const std::string path = WriteSnapshotOrDie(source, dir.path, 20);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes));
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x04);
  ASSERT_TRUE(WriteFileAtomic(path, bytes));

  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  EXPECT_FALSE(LoadKvSnapshot(path, &restored, &stats, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, BadMagicOrVersionIsRejected) {
  TempDir dir;
  KvService source;
  Drive(&source, "set k 0 0 1\r\nv\r\n");
  const std::string path = WriteSnapshotOrDie(source, dir.path, 1);
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(path, &bytes));

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  ASSERT_TRUE(WriteFileAtomic(path, bad_magic));
  KvService restored;
  SnapshotLoadStats stats;
  std::string error;
  EXPECT_FALSE(LoadKvSnapshot(path, &restored, &stats, &error));

  std::string bad_version = bytes;
  bad_version[8] = static_cast<char>(bad_version[8] + 1);  // version u32 LSB
  ASSERT_TRUE(WriteFileAtomic(path, bad_version));
  error.clear();
  EXPECT_FALSE(LoadKvSnapshot(path, &restored, &stats, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotTest, ListSnapshotsSortsByLsnAndIgnoresStrangers) {
  TempDir dir;
  KvService source;
  Drive(&source, "set k 0 0 1\r\nv\r\n");
  WriteSnapshotOrDie(source, dir.path, 30);
  WriteSnapshotOrDie(source, dir.path, 5);
  WriteSnapshotOrDie(source, dir.path, 900);
  ASSERT_TRUE(WriteFileAtomic(dir.path + "/snap-notanumber.ckpt", "junk"));
  ASSERT_TRUE(WriteFileAtomic(dir.path + "/unrelated.txt", "junk"));

  auto listed = ListSnapshots(dir.path);
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_EQ(listed[0].first, 5u);
  EXPECT_EQ(listed[1].first, 30u);
  EXPECT_EQ(listed[2].first, 900u);
}

}  // namespace
}  // namespace persist
}  // namespace cuckoo
