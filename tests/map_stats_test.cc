// Regression tests for MapStats' snapshot consistency contract (stats.h):
// the paired counters with a subset relationship must never read torn —
// a concurrent Read() may be stale, but can never report more lookup hits
// than lookups or more path invalidations than path searches. The torn
// variant (plain relaxed increments on both sides) reproduces within
// milliseconds under this load, so these tests guard the release/acquire
// pairing of IncrementRelease/SumAcquire.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/cuckoo/stats.h"

namespace cuckoo {
namespace {

TEST(MapStatsTest, SubsetInvariantsHoldUnderConcurrentSnapshots) {
  MapStats stats;
  constexpr int kRecorders = 4;
  constexpr std::int64_t kOpsPerThread = 200000;
  std::atomic<bool> stop{false};

  // Every recorded lookup is a hit and every path search an invalidation:
  // the worst case for the invariant, since the dependent counter trails the
  // base one by exactly one store on every single op.
  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&stats] {
      for (std::int64_t i = 0; i < kOpsPerThread; ++i) {
        stats.RecordLookup(/*hit=*/true);
        stats.RecordPathSearch();
        stats.RecordPathInvalidation();
      }
    });
  }

  std::atomic<std::uint64_t> snapshots_taken{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const MapStatsSnapshot s = stats.Read();
        ASSERT_LE(s.lookup_hits, s.lookups)
            << "torn snapshot: more hits than lookups";
        ASSERT_LE(s.path_invalidations, s.path_searches)
            << "torn snapshot: more invalidations than searches";
        snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& th : recorders) {
    th.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) {
    th.join();
  }
  EXPECT_GT(snapshots_taken.load(), 0u);

  // Quiesced: totals are exact.
  const MapStatsSnapshot s = stats.Read();
  const std::int64_t expected = kRecorders * kOpsPerThread;
  EXPECT_EQ(s.lookups, expected);
  EXPECT_EQ(s.lookup_hits, expected);
  EXPECT_EQ(s.path_searches, expected);
  EXPECT_EQ(s.path_invalidations, expected);
  EXPECT_DOUBLE_EQ(s.PathInvalidationRate(), 1.0);
}

TEST(MapStatsTest, LatencyProfilingSwitchGatesTheSampledTimers) {
  MapStats stats;
  stats.SetLatencyProfiling(false);
  EXPECT_FALSE(stats.LatencyProfilingEnabled());
  for (int i = 0; i < 512; ++i) {
    EXPECT_EQ(stats.MaybeStartLookupTimer(), 0u) << "timer fired while profiling off";
    EXPECT_EQ(stats.MaybeStartInsertTimer(), 0u) << "timer fired while profiling off";
  }
  EXPECT_EQ(stats.Read().lookup_ns.Count(), 0u);

  stats.SetLatencyProfiling(true);
  int fired = 0;
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t start = stats.MaybeStartLookupTimer();
    if (start != 0) {
      ++fired;
      stats.FinishLookupTimer(start);
    }
  }
  // 1-in-64 sampling: any 512 consecutive ticks fire exactly 8 times,
  // whatever phase the thread-local counter started at.
  EXPECT_EQ(fired, 8);
  EXPECT_EQ(stats.Read().lookup_ns.Count(), static_cast<std::uint64_t>(fired));
}

// Regression: lookup and insert must sample from independent gate counters.
// With a single shared counter, a strict insert/lookup alternation (exactly
// what RunMixedFill produces at 50% inserts) aliases with the even sampling
// period — every sample lands on the insert path and the lookup histogram
// stays empty forever.
TEST(MapStatsTest, AlternatingOpsFeedBothLatencyHistograms) {
  MapStats stats;
  stats.SetLatencyProfiling(true);
  for (int i = 0; i < 64 * 64; ++i) {
    stats.FinishInsertTimer(stats.MaybeStartInsertTimer());
    stats.FinishLookupTimer(stats.MaybeStartLookupTimer());
  }
  const MapStatsSnapshot s = stats.Read();
  EXPECT_EQ(s.insert_ns.Count(), 64u);
  EXPECT_EQ(s.lookup_ns.Count(), 64u)
      << "lookup sampling starved by a shared gate counter";
}

TEST(MapStatsTest, PathLengthHistogramClampsAtTheOverflowBucket) {
  MapStats stats;
  stats.RecordPathLength(3);
  stats.RecordPathLength(3);
  stats.RecordPathLength(5000);  // beyond MemC3's 250-hop cap: clamped
  const MapStatsSnapshot s = stats.Read();
  EXPECT_EQ(s.path_length_hist[3], 2);
  EXPECT_EQ(s.path_length_hist[kPathHistogramBuckets - 1], 1);
  EXPECT_EQ(s.MaxPathLength(), static_cast<std::int64_t>(kPathHistogramBuckets - 1));
}

TEST(MapStatsTest, SnapshotMergeAggregatesAcrossInstances) {
  MapStats a;
  MapStats b;
  a.RecordLookup(true);
  a.RecordLookup(false);
  a.RecordBatchHits(4);
  b.RecordLookup(true);
  b.RecordExpansionPauseNanos(1000);
  MapStatsSnapshot merged = a.Read();
  merged.Merge(b.Read());
  EXPECT_EQ(merged.lookups, 3);
  EXPECT_EQ(merged.lookup_hits, 2);
  EXPECT_EQ(merged.batch_hits.Count(), 1u);
  EXPECT_EQ(merged.expansion_pause_ns.Count(), 1u);
}

TEST(MapStatsTest, ResetZeroesCountersAndHistograms) {
  MapStats stats;
  stats.RecordLookup(true);
  stats.RecordPathLength(2);
  stats.RecordBatchHits(8);
  stats.Reset();
  const MapStatsSnapshot s = stats.Read();
  EXPECT_EQ(s.lookups, 0);
  EXPECT_EQ(s.lookup_hits, 0);
  EXPECT_EQ(s.path_length_hist[2], 0);
  EXPECT_EQ(s.batch_hits.Count(), 0u);
}

}  // namespace
}  // namespace cuckoo
