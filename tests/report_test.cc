#include "src/benchkit/report.h"

#include <sstream>

#include "src/benchkit/flags.h"
#include "src/benchkit/memory.h"

#include <gtest/gtest.h>

namespace cuckoo {
namespace {

TEST(ReportTableTest, TextOutputAlignsColumns) {
  ReportTable table({"name", "mops"});
  table.Row().Cell("cuckoo+").Cell(29.21);
  table.Row().Cell("tbb").Cell(7.5);
  std::ostringstream os;
  table.PrintText(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("mops"), std::string::npos);
  EXPECT_NE(out.find("cuckoo+"), std::string::npos);
  EXPECT_NE(out.find("29.21"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(ReportTableTest, CsvOutputExactFormat) {
  ReportTable table({"a", "b", "c"});
  table.Row().Cell("x").Cell(std::uint64_t{7}).Cell(1.5);
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,7,1.50\n");
}

TEST(ReportTableTest, PrintDispatchesOnFlag) {
  ReportTable table({"h"});
  table.Row().Cell("v");
  std::ostringstream text_os;
  std::ostringstream csv_os;
  table.Print(text_os, false);
  table.Print(csv_os, true);
  EXPECT_NE(text_os.str(), csv_os.str());
  EXPECT_EQ(csv_os.str(), "h\nv\n");
}

TEST(ReportTableTest, ShortRowsArePadded) {
  ReportTable table({"a", "b"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nonly,\n");
}

TEST(ReportTableTest, RowCount) {
  ReportTable table({"x"});
  EXPECT_EQ(table.RowCount(), 0u);
  table.Row().Cell(1);
  table.Row().Cell(2);
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--threads=8", "--ratio", "0.5", "--csv", "--name=fig1"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("threads", 1), 8);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 1.0), 0.5);
  EXPECT_TRUE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("name", ""), "fig1");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("threads", 4), 4);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.9), 0.9);
  EXPECT_FALSE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("name", "def"), "def");
  EXPECT_FALSE(flags.Has("anything"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const char* argv[] = {"prog", "--a=true", "--b=false", "--c=1", "--d=0"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
  EXPECT_FALSE(flags.GetBool("d"));
}

TEST(MemoryTest, RssIsPositiveOnLinux) {
  std::size_t rss = CurrentRssBytes();
  EXPECT_GT(rss, 0u);
  // A test binary plausibly sits between 1 MB and 100 GB.
  EXPECT_LT(rss, 100ull << 30);
}

}  // namespace
}  // namespace cuckoo
